// Parameterized cross-cutting sweeps: the packed tree and the OASIS search
// must behave identically across block sizes and alphabets, and the result
// formatting helpers must render stable output.

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "core/report.h"
#include "suffix/packed_builder.h"
#include "suffix/partitioned_builder.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

// --- Block-size sweep -------------------------------------------------------

class BlockSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BlockSizeSweep, SearchResultsIndependentOfBlockSize) {
  const uint32_t block_size = GetParam();
  util::Random rng(block_size);
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i) {
    std::string s;
    for (int k = 0; k < 120; ++k) s.push_back("ACGT"[rng.Uniform(4)]);
    texts.push_back(s);
  }
  auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
  testing::PackedFixture fixture(db, /*pool_bytes=*/1 << 20, block_size);

  auto query = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  core::OasisOptions options;
  options.min_score = 5;
  auto results = testing::RunOasis(
      *fixture.tree, score::SubstitutionMatrix::UnitDna(), query, options);
  auto sw = align::ScanDatabase(query, db,
                                score::SubstitutionMatrix::UnitDna(), 5);
  ASSERT_EQ(results.size(), sw.size()) << "block size " << block_size;
  std::map<seq::SequenceId, score::ScoreT> a, b;
  for (const auto& r : results) a[r.sequence_id] = r.score;
  for (const auto& h : sw) b[h.sequence_id] = h.score;
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeSweep,
                         ::testing::Values(256u, 512u, 1024u, 2048u, 4096u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

// --- Protein-alphabet suffix tree -------------------------------------------

TEST(ProteinSuffixTree, FullInvariantsOnWorkloadData) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 5000;
  options.seed = 321;
  auto db = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(db.ok());
  auto tree = suffix::SuffixTree::BuildUkkonen(*db);
  ASSERT_TRUE(tree.ok());
  OASIS_EXPECT_OK(tree->Validate());
  EXPECT_EQ(tree->num_leaves(), db->total_length());

  // Every sampled substring of the database must be found.
  util::Random rng(321);
  const auto& text = db->symbols();
  for (int i = 0; i < 50; ++i) {
    uint64_t pos = rng.Uniform(text.size() - 12);
    std::vector<seq::Symbol> window;
    for (uint64_t k = pos; k < pos + 10; ++k) {
      if (db->IsTerminator(text[k])) break;
      window.push_back(text[k]);
    }
    if (window.empty()) continue;
    EXPECT_TRUE(tree->ContainsSubstring(window));
  }
}

TEST(ProteinSuffixTree, PartitionedEqualsUkkonenOnProtein) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 2000;
  options.seed = 322;
  auto db = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(db.ok());
  auto ukkonen = suffix::SuffixTree::BuildUkkonen(*db);
  ASSERT_TRUE(ukkonen.ok());
  suffix::PartitionedBuildOptions build_options;
  build_options.prefix_length = 1;
  build_options.max_suffixes_per_pass = 256;
  auto partitioned = suffix::BuildPartitioned(*db, build_options);
  ASSERT_TRUE(partitioned.ok());
  EXPECT_TRUE(suffix::SuffixTree::Equal(*ukkonen, *partitioned));
}

// --- Result formatting -------------------------------------------------------

TEST(Report, FormatResultFields) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"});
  core::OasisResult result;
  result.sequence_id = 0;
  result.score = 4;
  result.query_end = 3;
  result.target_end = 5;
  std::string line = core::FormatResult(result, db);
  EXPECT_NE(line.find("s0"), std::string::npos);
  EXPECT_NE(line.find("score=4"), std::string::npos);
  EXPECT_NE(line.find("target_end=5"), std::string::npos);
  EXPECT_EQ(line.find("E="), std::string::npos);  // suppressed by default

  std::string with_e = core::FormatResult(result, db, 0.25);
  EXPECT_NE(with_e.find("E=0.25"), std::string::npos);
}

TEST(Report, VerboseIncludesAlignmentBlock) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"});
  testing::PackedFixture fixture(db);
  auto query = Encode(seq::Alphabet::Dna(), "TACG");
  core::OasisOptions options;
  options.min_score = 4;
  options.reconstruct_alignments = true;
  auto results = testing::RunOasis(
      *fixture.tree, score::SubstitutionMatrix::UnitDna(), query, options);
  ASSERT_EQ(results.size(), 1u);
  std::string verbose = core::FormatResultVerbose(results[0], db, query);
  EXPECT_NE(verbose.find("cigar  4="), std::string::npos);
  EXPECT_NE(verbose.find("TACG"), std::string::npos);
  EXPECT_NE(verbose.find("||||"), std::string::npos);
}

// --- Search-statistics contracts ---------------------------------------------

TEST(SearchStats, CountersAreConsistent) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 4000;
  options.seed = 55;
  auto db = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(db.ok());
  testing::PackedFixture fixture(*db);
  const seq::Sequence& src = db->sequence(0);
  std::vector<seq::Symbol> query(src.symbols().begin(),
                                 src.symbols().begin() + 10);

  core::OasisSearch search(fixture.tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  core::OasisOptions search_options;
  search_options.min_score = 20;
  core::OasisStats stats;
  auto results = search.SearchAll(query, search_options, &stats);
  ASSERT_TRUE(results.ok());

  // Every expanded node is classified exactly once; the root enters the
  // queue as viable without an Expand call, hence the +1.
  EXPECT_EQ(stats.nodes_expanded + 1,
            stats.nodes_viable + stats.nodes_accepted + stats.nodes_unviable);
  EXPECT_EQ(stats.results_emitted, results->size());
  EXPECT_GT(stats.columns_expanded, 0u);
  EXPECT_GE(stats.cells_computed, stats.columns_expanded * query.size());
  EXPECT_GT(stats.max_queue_size, 0u);
}

}  // namespace
}  // namespace oasis
