// Repeat masking and quality-aware scoring, proven adversarially.
//
// The central invariant is *clean-input parity*: on input the repeat
// detector leaves untouched, an engine built with --mask soft must be THE
// SAME index as one built with masking off — identical suffix counts,
// identical streaming / batch / BLAST results — because gentle masking
// only removes seeds that repeats would have produced. The adversarial
// half is the other direction: on a repeat-bomb database the soft build
// must index measurably fewer suffixes while alignments still extend
// through the masked runs at full score (sequences round-trip unchanged).
// Sidecar persistence (masks and phred qualities surviving reopen, append
// and compaction, with soft mode sticky) and the quality-binned scoring
// tables are covered here too. The Mask* and Quality* suites run under
// the TSan CI leg.

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "api/engine.h"
#include "mask/tantan.h"
#include "score/quality.h"
#include "test_util.h"
#include "util/random.h"
#include "util/stats_json.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;

// --- Shared helpers ---------------------------------------------------------

/// Repeat-free protein sequences, certified by the same detector the
/// engine runs: any draw the detector flags is redrawn, so a soft build
/// over these provably masks nothing.
std::vector<seq::Sequence> CleanProteinSequences(uint32_t num_sequences,
                                                 size_t length,
                                                 uint64_t seed) {
  const uint32_t sigma = seq::Alphabet::Protein().size();
  util::Random rng(seed);
  std::vector<seq::Sequence> sequences;
  for (uint32_t i = 0; i < num_sequences; ++i) {
    std::vector<seq::Symbol> residues;
    for (int round = 0; round < 200; ++round) {
      residues = workload::RandomProteinResidues(rng, length);
      const std::vector<uint8_t> flags = mask::FindRepeats(residues, sigma);
      if (std::count(flags.begin(), flags.end(), 1) == 0) break;
      residues.clear();
    }
    EXPECT_FALSE(residues.empty()) << "no repeat-free draw in 200 rounds";
    sequences.emplace_back("CLEAN" + std::to_string(i), std::move(residues));
  }
  return sequences;
}

seq::SequenceDatabase BuildDatabase(const seq::Alphabet& alphabet,
                                    std::vector<seq::Sequence> sequences) {
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(sequences));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Multi-volume engine over `db` with the requested mask mode.
std::unique_ptr<Engine> BuildEngine(const seq::SequenceDatabase& db,
                                    const std::string& dir,
                                    api::MaskMode mode) {
  EngineOptions options;
  options.alphabet = db.alphabet().size() == 4 ? seq::AlphabetKind::kDna
                                               : seq::AlphabetKind::kProtein;
  options.volume_size_bytes = 10000;
  options.build_threads = 2;
  options.mask_mode = mode;
  std::vector<seq::Sequence> copy(db.sequences().begin(),
                                  db.sequences().end());
  auto engine = Engine::CreateFromDatabase(
      BuildDatabase(db.alphabet(), std::move(copy)), dir, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.ok() ? std::move(engine).value() : nullptr;
}

/// (indexed, masked) suffix totals across all volumes.
std::pair<uint64_t, uint64_t> SuffixCounts(const Engine& engine) {
  const util::EngineStatsSnapshot snapshot = engine.CollectStats();
  uint64_t indexed = 0, masked = 0;
  for (const util::VolumeStatsRow& row : snapshot.volumes) {
    indexed += row.indexed_suffixes;
    masked += row.masked_suffixes;
  }
  return {indexed, masked};
}

std::vector<core::OasisResult> Drain(ResultCursor& cursor) {
  std::vector<core::OasisResult> out;
  while (true) {
    auto next = cursor.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

std::vector<core::OasisResult> DrainSearch(const Engine& engine,
                                           const SearchRequest& request) {
  auto cursor = engine.Search(request);
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  if (!cursor.ok()) return {};
  return Drain(*cursor);
}

/// Byte-level result equality — same index, not merely equivalent hits.
void ExpectResultsIdentical(const std::vector<core::OasisResult>& a,
                            const std::vector<core::OasisResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("result #" + std::to_string(i));
    EXPECT_EQ(a[i].sequence_id, b[i].sequence_id);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_DOUBLE_EQ(a[i].evalue, b[i].evalue);
    EXPECT_EQ(a[i].db_end_pos, b[i].db_end_pos);
    EXPECT_EQ(a[i].query_end, b[i].query_end);
  }
}

std::vector<SearchRequest> MotifRequests(Engine& engine, uint32_t count,
                                         double evalue, uint64_t seed) {
  workload::MotifQueryOptions q_options;
  q_options.num_queries = count;
  q_options.seed = seed;
  auto db = engine.ResidentDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  auto queries =
      workload::GenerateMotifQueries(**db, engine.matrix(), q_options);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();
  std::vector<SearchRequest> requests;
  for (auto& q : *queries) {
    requests.push_back(SearchRequest(std::move(q.symbols)).EValue(evalue));
  }
  return requests;
}

// --- Tantan repeat detection ------------------------------------------------

TEST(MaskTantan, FlagsHomopolymerRun) {
  util::Random rng(1);
  std::vector<seq::Symbol> symbols;
  for (int i = 0; i < 100; ++i) {
    symbols.push_back(static_cast<seq::Symbol>(rng.Uniform(4)));
  }
  const size_t run_start = symbols.size();
  symbols.insert(symbols.end(), 60, seq::Symbol{0});  // poly-A
  const size_t run_end = symbols.size();
  for (int i = 0; i < 100; ++i) {
    symbols.push_back(static_cast<seq::Symbol>(rng.Uniform(4)));
  }

  const std::vector<uint8_t> flags = mask::FindRepeats(symbols, 4);
  ASSERT_EQ(flags.size(), symbols.size());
  const auto flagged_in = [&](size_t lo, size_t hi) {
    return static_cast<size_t>(
        std::count(flags.begin() + lo, flags.begin() + hi, 1));
  };
  // The run lights up almost entirely; the flanks stay mostly dark.
  EXPECT_GE(flagged_in(run_start, run_end), 50u);
  EXPECT_LE(flagged_in(0, run_start) + flagged_in(run_end, flags.size()), 40u);
}

TEST(MaskTantan, FlagsShortPeriodMicrosatellite) {
  // (ACG)^40: period 3, no position matches its immediate predecessor.
  std::vector<seq::Symbol> symbols;
  for (int i = 0; i < 40; ++i) {
    symbols.insert(symbols.end(), {0, 1, 2});
  }
  const std::vector<uint8_t> flags = mask::FindRepeats(symbols, 4);
  EXPECT_GE(std::count(flags.begin(), flags.end(), 1),
            static_cast<long>(symbols.size() / 2));
}

TEST(MaskTantan, LeavesDiverseSequenceUntouched) {
  // Twenty distinct residues: no tandem structure whatsoever.
  const std::vector<seq::Symbol> symbols =
      Encode(seq::Alphabet::Protein(), "ARNDCQEGHILKMFPSTWYV");
  const std::vector<uint8_t> flags =
      mask::FindRepeats(symbols, seq::Alphabet::Protein().size());
  EXPECT_EQ(std::count(flags.begin(), flags.end(), 1), 0);
}

TEST(MaskTantan, DeterministicAcrossCalls) {
  util::Random rng(7);
  std::vector<seq::Symbol> symbols;
  for (int i = 0; i < 500; ++i) {
    symbols.push_back(static_cast<seq::Symbol>(rng.Uniform(4)));
  }
  symbols.insert(symbols.end(), 40, seq::Symbol{2});
  EXPECT_EQ(mask::FindRepeats(symbols, 4), mask::FindRepeats(symbols, 4));
}

TEST(MaskTantan, SoftMaskOrsIntoLowercaseMask) {
  // Position 0 is lowercase-masked on input; tantan adds the poly-T run.
  // The union survives, and SoftMask reports only the *new* positions.
  auto sequence = *seq::Sequence::FromString(
      seq::Alphabet::Dna(), "s", "aACGATCAGCTGACTGACTGCA" + std::string(40, 'T'));
  ASSERT_TRUE(sequence.has_mask());
  ASSERT_EQ(sequence.mask()[0], 1);
  const uint64_t newly = mask::SoftMask(&sequence, 4);
  EXPECT_GT(newly, 20u);
  EXPECT_EQ(sequence.mask()[0], 1) << "input soft-mask must be preserved";
  const auto& m = sequence.mask();
  EXPECT_GE(std::count(m.end() - 40, m.end(), 1), 30);
}

TEST(MaskTantan, BuildExclusionMapsGlobalPositions) {
  std::vector<seq::Sequence> sequences;
  sequences.push_back(*seq::Sequence::FromString(seq::Alphabet::Dna(), "a",
                                                 "ACGT"));
  auto masked = *seq::Sequence::FromString(seq::Alphabet::Dna(), "b",
                                           "AcgT");
  sequences.push_back(std::move(masked));
  seq::SequenceDatabase db =
      BuildDatabase(seq::Alphabet::Dna(), std::move(sequences));

  const std::vector<uint8_t> exclusion = mask::BuildExclusion(db);
  ASSERT_EQ(exclusion.size(), db.total_length());
  const seq::GlobalPos b_start = db.SequenceStart(1);
  for (size_t i = 0; i < exclusion.size(); ++i) {
    const bool expect_masked = i == b_start + 1 || i == b_start + 2;
    EXPECT_EQ(exclusion[i], expect_masked ? 1 : 0) << "global position " << i;
  }

  // No mask anywhere -> the cheap empty signal, not an all-zero vector.
  std::vector<seq::Sequence> plain;
  plain.push_back(*seq::Sequence::FromString(seq::Alphabet::Dna(), "a",
                                             "ACGT"));
  EXPECT_TRUE(
      mask::BuildExclusion(BuildDatabase(seq::Alphabet::Dna(),
                                         std::move(plain)))
          .empty());
}

// --- Clean-input parity: soft == off on repeat-free input -------------------

struct CleanParityFixture {
  util::TempDir off_dir{"mask_off"};
  util::TempDir soft_dir{"mask_soft"};
  seq::SequenceDatabase db;
  std::unique_ptr<Engine> off;
  std::unique_ptr<Engine> soft;

  CleanParityFixture()
      : db(BuildDatabase(seq::Alphabet::Protein(),
                         CleanProteinSequences(40, 400, 99))) {
    off = BuildEngine(db, off_dir.path(), api::MaskMode::kOff);
    soft = BuildEngine(db, soft_dir.path(), api::MaskMode::kSoft);
    EXPECT_NE(off, nullptr);
    EXPECT_NE(soft, nullptr);
    EXPECT_GE(soft->num_volumes(), 2u) << "fixture must span volumes";
  }
};

TEST(MaskParity, CleanInputBuildsTheIdenticalIndex) {
  CleanParityFixture fx;
  EXPECT_FALSE(fx.off->soft_masking());
  EXPECT_TRUE(fx.soft->soft_masking());
  const auto [off_indexed, off_masked] = SuffixCounts(*fx.off);
  const auto [soft_indexed, soft_masked] = SuffixCounts(*fx.soft);
  EXPECT_EQ(off_masked, 0u);
  EXPECT_EQ(soft_masked, 0u)
      << "certified repeat-free input must mask nothing";
  EXPECT_EQ(soft_indexed, off_indexed)
      << "clean-input soft build must be the same index";
  EXPECT_GT(off_indexed, 0u);
}

TEST(MaskParity, CleanInputStreamingSearchByteIdentical) {
  CleanParityFixture fx;
  for (SearchRequest& request : MotifRequests(*fx.off, 6, 1000.0, 17)) {
    ExpectResultsIdentical(DrainSearch(*fx.off, request),
                           DrainSearch(*fx.soft, request));
  }
}

TEST(MaskParity, CleanInputBatchSearchByteIdentical) {
  CleanParityFixture fx;
  std::vector<SearchRequest> requests = MotifRequests(*fx.off, 6, 100.0, 18);
  BatchOptions batch;
  batch.threads = 3;
  auto off_results = fx.off->SearchBatch(requests, batch);
  auto soft_results = fx.soft->SearchBatch(requests, batch);
  OASIS_ASSERT_OK(off_results.status());
  OASIS_ASSERT_OK(soft_results.status());
  ASSERT_EQ(off_results->size(), soft_results->size());
  for (size_t i = 0; i < off_results->size(); ++i) {
    SCOPED_TRACE("query #" + std::to_string(i));
    ExpectResultsIdentical((*off_results)[i].results,
                           (*soft_results)[i].results);
  }
}

TEST(MaskParity, CleanInputBlastSearchByteIdentical) {
  CleanParityFixture fx;
  for (SearchRequest& request : MotifRequests(*fx.off, 4, 100.0, 19)) {
    auto off_cursor = fx.off->BlastSearch(request);
    auto soft_cursor = fx.soft->BlastSearch(request);
    OASIS_ASSERT_OK(off_cursor.status());
    OASIS_ASSERT_OK(soft_cursor.status());
    ExpectResultsIdentical(Drain(*off_cursor), Drain(*soft_cursor));
  }
}

// --- The adversarial direction: repeat bombs --------------------------------

seq::SequenceDatabase RepeatBomb(uint64_t residues, uint64_t seed) {
  workload::RepeatBombOptions options;
  options.target_residues = residues;
  options.num_sequences = 16;
  options.seed = seed;
  auto db = workload::GenerateRepeatBombDatabase(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TEST(MaskAdversarial, RepeatBombShrinksTheSeedIndex) {
  const seq::SequenceDatabase db = RepeatBomb(60000, 5);
  util::TempDir off_dir("bomb_off");
  util::TempDir soft_dir("bomb_soft");
  auto off = BuildEngine(db, off_dir.path(), api::MaskMode::kOff);
  auto soft = BuildEngine(db, soft_dir.path(), api::MaskMode::kSoft);
  ASSERT_NE(off, nullptr);
  ASSERT_NE(soft, nullptr);

  const auto [off_indexed, off_masked] = SuffixCounts(*off);
  const auto [soft_indexed, soft_masked] = SuffixCounts(*soft);
  EXPECT_EQ(off_masked, 0u);
  EXPECT_GT(soft_masked, off_indexed / 2)
      << "the bomb is mostly repeats; most suffixes must be excluded";
  EXPECT_EQ(soft_indexed + soft_masked, off_indexed)
      << "every suffix is either indexed or masked, never dropped";
}

TEST(MaskAdversarial, MaskingIsGentleSequencesRoundTripUnchanged) {
  const seq::SequenceDatabase db = RepeatBomb(20000, 6);
  util::TempDir dir("bomb_gentle");
  auto soft = BuildEngine(db, dir.path(), api::MaskMode::kSoft);
  ASSERT_NE(soft, nullptr);
  auto resident = soft->ResidentDatabase();
  OASIS_ASSERT_OK(resident.status());
  ASSERT_EQ((*resident)->num_sequences(), db.num_sequences());
  uint64_t masked_positions = 0;
  for (uint32_t i = 0; i < db.num_sequences(); ++i) {
    const seq::Sequence& original = db.sequence(i);
    const seq::Sequence& stored = (*resident)->sequence(i);
    // Gentle masking: every residue is still there, byte for byte...
    ASSERT_TRUE(std::equal(original.symbols().begin(),
                           original.symbols().end(),
                           stored.symbols().begin(),
                           stored.symbols().end()))
        << "sequence " << i;
    // ...and the mask that excluded its suffixes is persisted alongside.
    for (uint8_t bit : stored.mask()) masked_positions += bit;
  }
  EXPECT_GT(masked_positions, 0u);
}

TEST(MaskAdversarial, UniqueRegionsStaySearchableInTheMaskedIndex) {
  const seq::SequenceDatabase db = RepeatBomb(20000, 7);
  util::TempDir dir("bomb_search");
  auto soft = BuildEngine(db, dir.path(), api::MaskMode::kSoft);
  ASSERT_NE(soft, nullptr);
  auto resident = soft->ResidentDatabase();
  OASIS_ASSERT_OK(resident.status());

  // Find a run of 28 consecutive unmasked positions — a unique spacer the
  // index still seeds — and search for it verbatim.
  for (uint32_t i = 0; i < (*resident)->num_sequences(); ++i) {
    const seq::Sequence& s = (*resident)->sequence(i);
    if (!s.has_mask()) continue;
    size_t run = 0;
    for (size_t j = 0; j < s.size(); ++j) {
      run = s.mask()[j] ? 0 : run + 1;
      if (run < 28) continue;
      std::vector<seq::Symbol> query(s.symbols().begin() + (j + 1 - 28),
                                     s.symbols().begin() + (j + 1));
      SearchRequest request(std::move(query));
      request.MinScore(25);
      const auto results = DrainSearch(*soft, request);
      ASSERT_FALSE(results.empty());
      const bool found = std::any_of(
          results.begin(), results.end(),
          [&](const core::OasisResult& r) { return r.sequence_id == i; });
      EXPECT_TRUE(found) << "unmasked region of sequence " << i
                         << " must remain findable";
      return;
    }
  }
  FAIL() << "no 28-wide unmasked run found in the bomb database";
}

// --- Sidecar persistence and sticky soft mode -------------------------------

TEST(MaskSidecar, MasksAndQualsSurviveReopen) {
  // Clean sequences (tantan adds nothing) with a hand-set mask and phred
  // qualities: what comes back after close-and-reopen must be exactly
  // what went in.
  std::vector<seq::Sequence> sequences = CleanProteinSequences(6, 300, 31);
  std::vector<uint8_t> mask(sequences[1].size(), 0);
  for (size_t i = 10; i < 60; ++i) mask[i] = 1;
  sequences[1].set_mask(mask);
  std::vector<uint8_t> quals(sequences[2].size());
  for (size_t i = 0; i < quals.size(); ++i) {
    quals[i] = static_cast<uint8_t>(i % 41);
  }
  sequences[2].set_quals(quals);

  util::TempDir dir("sidecar");
  EngineOptions options;
  options.volume_size_bytes = 800;  // several volumes
  options.mask_mode = api::MaskMode::kSoft;
  auto built = Engine::CreateFromDatabase(
      BuildDatabase(seq::Alphabet::Protein(), std::move(sequences)),
      dir.path(), options);
  OASIS_ASSERT_OK(built.status());
  ASSERT_GE((*built)->num_volumes(), 2u);
  built->reset();  // close before reopening

  // Reopen with DEFAULT options: mask_mode off. The index was built soft,
  // so the engine must adopt soft mode from the sidecars (sticky).
  auto reopened = Engine::Open(dir.path());
  OASIS_ASSERT_OK(reopened.status());
  EXPECT_TRUE((*reopened)->soft_masking());
  auto resident = (*reopened)->ResidentDatabase();
  OASIS_ASSERT_OK(resident.status());
  EXPECT_EQ((*resident)->sequence(1).mask(), mask);
  EXPECT_FALSE((*resident)->sequence(0).has_mask());
  EXPECT_EQ((*resident)->sequence(2).quals(), quals);
  EXPECT_FALSE((*resident)->sequence(0).has_quals());
}

TEST(MaskSidecar, AppendToSoftIndexMasksTheNewVolume) {
  util::TempDir dir("sidecar_append");
  EngineOptions options;
  options.volume_size_bytes = 10000;
  options.mask_mode = api::MaskMode::kSoft;
  auto engine = Engine::CreateFromDatabase(
      BuildDatabase(seq::Alphabet::Protein(), CleanProteinSequences(8, 300, 32)),
      dir.path(), options);
  OASIS_ASSERT_OK(engine.status());
  (*engine)->WaitForCompaction();
  (*engine).reset();

  // Reopen with masking off; append a repeat-heavy sequence. Sticky soft
  // mode must mask it anyway — otherwise the appended volume would
  // reintroduce exactly the seeds the index was built to exclude.
  auto reopened = Engine::Open(dir.path());
  OASIS_ASSERT_OK(reopened.status());
  ASSERT_TRUE((*reopened)->soft_masking());
  std::string repeat;
  for (int i = 0; i < 100; ++i) repeat += "ARN";
  std::vector<seq::Sequence> tail;
  tail.push_back(*seq::Sequence::FromString(seq::Alphabet::Protein(),
                                            "BOMBAPPEND", repeat));
  OASIS_ASSERT_OK((*reopened)->AppendSequences(std::move(tail)));
  (*reopened)->WaitForCompaction();

  const auto [indexed, masked] = SuffixCounts(**reopened);
  EXPECT_GT(masked, 200u) << "the appended tandem repeat must be masked";
  EXPECT_GT(indexed, 0u);
}

TEST(MaskSidecar, CompactionPreservesMasksQualsAndSoftMode) {
  std::vector<seq::Sequence> sequences = CleanProteinSequences(10, 200, 33);
  std::vector<uint8_t> quals(sequences[4].size(), 17);
  sequences[4].set_quals(quals);
  std::vector<uint8_t> mask(sequences[5].size(), 0);
  for (size_t i = 0; i < 50; ++i) mask[i] = 1;
  sequences[5].set_mask(mask);

  util::TempDir dir("sidecar_compact");
  EngineOptions options;
  options.volume_size_bytes = 10000;
  options.compact_trigger_volumes = 0;  // explicit Compact() only
  options.mask_mode = api::MaskMode::kSoft;
  std::vector<seq::Sequence> base(
      std::make_move_iterator(sequences.begin()),
      std::make_move_iterator(sequences.begin() + 4));
  auto engine = Engine::CreateFromDatabase(
      BuildDatabase(seq::Alphabet::Protein(), std::move(base)), dir.path(),
      options);
  OASIS_ASSERT_OK(engine.status());
  // Append the annotated tail one sequence at a time: a pile of tiny
  // volumes, each with its own sidecars, for Compact() to merge.
  for (size_t i = 4; i < sequences.size(); ++i) {
    std::vector<seq::Sequence> one;
    one.push_back(std::move(sequences[i]));
    OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(one)));
  }
  const size_t volumes_before = (*engine)->num_volumes();
  ASSERT_GE(volumes_before, 3u);
  OASIS_ASSERT_OK((*engine)->Compact());
  EXPECT_LT((*engine)->num_volumes(), volumes_before);
  EXPECT_TRUE((*engine)->soft_masking());

  auto resident = (*engine)->ResidentDatabase();
  OASIS_ASSERT_OK(resident.status());
  EXPECT_EQ((*resident)->sequence(4).quals(), quals);
  EXPECT_EQ((*resident)->sequence(5).mask(), mask);

  // And the compacted index reopens soft, with the annotations intact.
  (*engine).reset();
  auto reopened = Engine::Open(dir.path());
  OASIS_ASSERT_OK(reopened.status());
  EXPECT_TRUE((*reopened)->soft_masking());
  auto reread = (*reopened)->ResidentDatabase();
  OASIS_ASSERT_OK(reread.status());
  EXPECT_EQ((*reread)->sequence(4).quals(), quals);
  EXPECT_EQ((*reread)->sequence(5).mask(), mask);
}

// --- Quality-binned scoring tables ------------------------------------------

TEST(Quality, TopBinIsTheRawMatrix) {
  const score::SubstitutionMatrix& matrix =
      score::SubstitutionMatrix::Blosum62();
  const score::QualityAdjust quality(matrix);
  for (seq::Symbol a = 0; a < quality.sigma(); ++a) {
    for (seq::Symbol b = 0; b < quality.sigma(); ++b) {
      EXPECT_EQ(quality.Score(a, b, score::QualityAdjust::kNumBins - 1),
                matrix.Score(a, b))
          << "a=" << int(a) << " b=" << int(b);
    }
  }
}

TEST(Quality, LowQualityBlendsTowardTheBackground) {
  // With blastn (+2 match / -3 mismatch) an uncertain call must weaken
  // the match reward and soften the mismatch penalty, monotonically in
  // the bin: less evidence either way.
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Blastn();
  const score::QualityAdjust quality(matrix);
  for (uint32_t bin = 0; bin + 1 < score::QualityAdjust::kNumBins; ++bin) {
    EXPECT_LE(quality.Score(0, 0, bin), quality.Score(0, 0, bin + 1))
        << "match reward must not grow as quality drops (bin " << bin << ")";
    EXPECT_GE(quality.Score(0, 1, bin), quality.Score(0, 1, bin + 1))
        << "mismatch penalty must not deepen as quality drops";
  }
  EXPECT_LT(quality.Score(0, 0, 0), matrix.Score(0, 0));
  EXPECT_GT(quality.Score(0, 1, 0), matrix.Score(0, 1));
}

TEST(Quality, BinBoundariesAndEffectiveCoding) {
  EXPECT_EQ(score::QualityAdjust::BinOf(0), 0u);
  EXPECT_EQ(score::QualityAdjust::BinOf(5), 0u);
  EXPECT_EQ(score::QualityAdjust::BinOf(6), 1u);
  EXPECT_EQ(score::QualityAdjust::BinOf(12), 1u);
  EXPECT_EQ(score::QualityAdjust::BinOf(13), 2u);
  EXPECT_EQ(score::QualityAdjust::BinOf(19), 2u);
  EXPECT_EQ(score::QualityAdjust::BinOf(20), 3u);
  EXPECT_EQ(score::QualityAdjust::BinOf(93), 3u);

  const score::QualityAdjust quality(score::SubstitutionMatrix::Blastn());
  const std::vector<seq::Symbol> target = {0, 1, 2, 3};
  const std::vector<uint8_t> quals = {2, 8, 15, 40};
  std::vector<seq::Symbol> effective;
  quality.EffectiveTarget(target, quals, &effective);
  ASSERT_EQ(effective.size(), target.size());
  for (size_t j = 0; j < target.size(); ++j) {
    const uint32_t bin = score::QualityAdjust::BinOf(quals[j]);
    EXPECT_EQ(effective[j], quality.EffectiveCode(bin, target[j]));
    for (seq::Symbol a = 0; a < quality.sigma(); ++a) {
      EXPECT_EQ(quality.ScoreEffective(a, effective[j]),
                quality.Score(a, target[j], bin));
    }
  }
}

// --- Quality-weighted alignment ---------------------------------------------

TEST(Quality, ConfidentQualsAlignByteIdenticalToPlain) {
  util::Random rng(41);
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Blastn();
  const score::QualityAdjust quality(matrix);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<seq::Symbol> query(30 + rng.Uniform(30));
    std::vector<seq::Symbol> target(50 + rng.Uniform(100));
    for (auto& s : query) s = static_cast<seq::Symbol>(rng.Uniform(4));
    for (auto& s : target) s = static_cast<seq::Symbol>(rng.Uniform(4));
    const std::vector<uint8_t> confident(target.size(), 40);

    const align::SequenceHit plain = align::AlignPair(query, target, matrix);
    const align::SequenceHit adjusted =
        align::AlignPairQuality(query, target, quality, confident);
    EXPECT_EQ(adjusted.score, plain.score) << "trial " << trial;
    EXPECT_EQ(adjusted.query_end, plain.query_end) << "trial " << trial;
    EXPECT_EQ(adjusted.target_end, plain.target_end) << "trial " << trial;
  }
}

TEST(Quality, LowQualityMismatchCostsLess) {
  // Same alignment, one mismatch. Marking only the mismatched base as a
  // junk call must recover part of the penalty; marking a matched base
  // instead must not help.
  const seq::Alphabet& dna = seq::Alphabet::Dna();
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Blastn();
  const score::QualityAdjust quality(matrix);
  const std::vector<seq::Symbol> query = Encode(dna, "ACGTACGTACGTACGT");
  std::vector<seq::Symbol> target = query;
  target[8] = static_cast<seq::Symbol>((target[8] + 1) % 4);

  std::vector<uint8_t> confident(target.size(), 40);
  std::vector<uint8_t> doubt_mismatch = confident;
  doubt_mismatch[8] = 2;
  std::vector<uint8_t> doubt_match = confident;
  doubt_match[3] = 2;

  const auto base =
      align::AlignPairQuality(query, target, quality, confident);
  const auto softened =
      align::AlignPairQuality(query, target, quality, doubt_mismatch);
  const auto weakened =
      align::AlignPairQuality(query, target, quality, doubt_match);
  EXPECT_GT(softened.score, base.score);
  EXPECT_LE(weakened.score, base.score);
}

TEST(QualityScan, SimdAndScalarAgreeOnQualityScoring) {
  // The striped kernels score quality-carrying targets through the
  // effective-symbol profile; the scalar path uses the three-index
  // lookup. Same tables, same hits — across a database mixing annotated
  // and plain sequences.
  util::Random rng(43);
  std::vector<seq::Sequence> sequences;
  for (uint32_t i = 0; i < 24; ++i) {
    std::vector<seq::Symbol> symbols(60 + rng.Uniform(200));
    for (auto& s : symbols) s = static_cast<seq::Symbol>(rng.Uniform(4));
    seq::Sequence sequence("t" + std::to_string(i), std::move(symbols));
    if (i % 2 == 0) {
      std::vector<uint8_t> quals(sequence.size());
      for (auto& q : quals) q = static_cast<uint8_t>(rng.Uniform(45));
      sequence.set_quals(std::move(quals));
    }
    sequences.push_back(std::move(sequence));
  }
  const seq::SequenceDatabase db =
      BuildDatabase(seq::Alphabet::Dna(), std::move(sequences));
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Blastn();
  const score::QualityAdjust quality(matrix);

  std::vector<seq::Symbol> query(48);
  for (auto& s : query) s = static_cast<seq::Symbol>(rng.Uniform(4));

  const auto scalar = align::ScanDatabase(query, db, matrix, 10, nullptr,
                                          align::simd::SimdMode::kOff,
                                          &quality);
  const auto simd = align::ScanDatabase(query, db, matrix, 10, nullptr,
                                        align::simd::SimdMode::kAuto,
                                        &quality);
  ASSERT_EQ(scalar.size(), simd.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].sequence_id, simd[i].sequence_id) << "hit " << i;
    EXPECT_EQ(scalar[i].score, simd[i].score) << "hit " << i;
    EXPECT_EQ(scalar[i].query_end, simd[i].query_end) << "hit " << i;
    EXPECT_EQ(scalar[i].target_end, simd[i].target_end) << "hit " << i;
  }
}

TEST(QualityScan, QualLessDatabaseByteIdenticalWithAdjustEngaged) {
  // Passing the quality tables over a database with no qualities must
  // change nothing: every sequence takes the exact plain path.
  util::Random rng(44);
  std::vector<seq::Sequence> sequences;
  for (uint32_t i = 0; i < 12; ++i) {
    std::vector<seq::Symbol> symbols(80 + rng.Uniform(120));
    for (auto& s : symbols) s = static_cast<seq::Symbol>(rng.Uniform(4));
    sequences.emplace_back("t" + std::to_string(i), std::move(symbols));
  }
  const seq::SequenceDatabase db =
      BuildDatabase(seq::Alphabet::Dna(), std::move(sequences));
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Blastn();
  const score::QualityAdjust quality(matrix);
  std::vector<seq::Symbol> query(40);
  for (auto& s : query) s = static_cast<seq::Symbol>(rng.Uniform(4));

  for (auto mode : {align::simd::SimdMode::kOff, align::simd::SimdMode::kAuto}) {
    const auto plain = align::ScanDatabase(query, db, matrix, 8, nullptr, mode);
    const auto adjusted =
        align::ScanDatabase(query, db, matrix, 8, nullptr, mode, &quality);
    ASSERT_EQ(plain.size(), adjusted.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].sequence_id, adjusted[i].sequence_id);
      EXPECT_EQ(plain[i].score, adjusted[i].score);
      EXPECT_EQ(plain[i].query_end, adjusted[i].query_end);
      EXPECT_EQ(plain[i].target_end, adjusted[i].target_end);
    }
  }
}

}  // namespace
}  // namespace oasis
