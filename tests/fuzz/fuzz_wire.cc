// Fuzz harness for the wire-protocol decoders — the bytes a hostile
// client controls. Three layers are driven per input:
//
//   1. DecodeFrame over the raw bytes, consuming frames until the buffer
//      is exhausted, incomplete, or rejected (the loop mirrors a
//      connection handler draining its read buffer);
//   2. the payload parser matching each decoded frame's type
//      (WireRequest::Parse / ParseDone / DecodeError);
//   3. WireRequest::Parse over the raw input directly, so payload-level
//      coverage does not depend on the fuzzer minting valid headers.
//
// The invariant under test: arbitrary bytes produce a Status, never a
// crash, hang, or overlong allocation. Built two ways (see CMakeLists):
// a libFuzzer binary with OASIS_LIBFUZZER, or a standalone driver that
// replays the files named on its command line (the fuzz_wire_replay
// ctest entry runs it over tests/fuzz/corpus/fuzz_wire).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "server/wire.h"

namespace {

void DriveWire(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  std::string_view buf = input;
  // A handler's drain loop: at most one frame per kFrameHeaderBytes of
  // input, so the loop is trivially bounded.
  while (!buf.empty()) {
    oasis::server::Frame frame;
    auto consumed = oasis::server::DecodeFrame(buf, &frame);
    if (!consumed.ok() || *consumed == 0) break;
    buf.remove_prefix(*consumed);
    switch (frame.type) {
      case oasis::server::FrameType::kQuery: {
        auto request = oasis::server::WireRequest::Parse(frame.payload);
        if (request.ok()) {
          // Round-trip: a parsed request must re-encode and re-parse.
          auto again =
              oasis::server::WireRequest::Parse(request->Encode());
          if (!again.ok()) __builtin_trap();
        }
        break;
      }
      case oasis::server::FrameType::kDone:
        (void)oasis::server::ParseDone(frame.payload);
        break;
      case oasis::server::FrameType::kError:
        (void)oasis::server::DecodeError(frame.payload);
        break;
      default:
        break;
    }
  }

  (void)oasis::server::WireRequest::Parse(input);
  (void)oasis::server::ParseDone(input);
  (void)oasis::server::DecodeError(input);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DriveWire(data, size);
  return 0;
}

#ifndef OASIS_LIBFUZZER
#include "fuzz_standalone.h"
int main(int argc, char** argv) {
  return oasis::fuzz::ReplayMain(argc, argv, LLVMFuzzerTestOneInput);
}
#endif
