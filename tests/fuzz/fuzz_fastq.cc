// Fuzz harness for the FASTQ reader — sequencing reads are operator
// input, frequently produced by other tools with their own bugs. The
// input bytes are parsed as a whole FASTQ stream against both alphabets
// and both quality offsets; the invariant is a Status on malformed
// input, never a crash, regardless of structure (truncated records,
// mismatched quality lengths, '@'/'+' quality bytes that mimic record
// boundaries, CRLF, embedded NULs).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "seq/alphabet.h"
#include "seq/fastq.h"

namespace {

void DriveFastq(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  for (const auto* alphabet :
       {&oasis::seq::Alphabet::Protein(), &oasis::seq::Alphabet::Dna()}) {
    for (auto offset : {oasis::seq::FastqOffset::kSanger,
                        oasis::seq::FastqOffset::kIllumina}) {
      std::istringstream in(input);
      auto records = oasis::seq::ReadFastq(in, *alphabet, offset);
      if (records.ok()) {
        // Round-trip: whatever parsed must re-serialize cleanly.
        std::ostringstream out;
        auto written =
            oasis::seq::WriteFastq(out, *alphabet, *records, offset);
        if (!written.ok()) __builtin_trap();
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DriveFastq(data, size);
  return 0;
}

#ifndef OASIS_LIBFUZZER
#include "fuzz_standalone.h"
int main(int argc, char** argv) {
  return oasis::fuzz::ReplayMain(argc, argv, LLVMFuzzerTestOneInput);
}
#endif
