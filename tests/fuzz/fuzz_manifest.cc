// Fuzz harness for the volume-set manifest parser — the manifest is
// read back from disk on every engine open, and a corrupt or hostile
// index directory must fail with Corruption, never crash the reader.
// Drives the pure VolumeSetManifest::Parse (the function Load() is
// built on), plus a save/re-parse round trip for inputs that parse.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "api/volume_set.h"

namespace {

void DriveManifest(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto manifest = oasis::api::VolumeSetManifest::Parse(input, "fuzz-input");
  if (!manifest.ok()) return;
  // Structural invariants of a successful parse.
  if (manifest->num_volumes() == 0) __builtin_trap();
  for (const auto& volume : manifest->volumes()) {
    // The escape check must hold for every accepted name.
    if (volume.name != "." &&
        (volume.name.find('/') != std::string::npos ||
         volume.name.find("..") != std::string::npos)) {
      __builtin_trap();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DriveManifest(data, size);
  return 0;
}

#ifndef OASIS_LIBFUZZER
#include "fuzz_standalone.h"
int main(int argc, char** argv) {
  return oasis::fuzz::ReplayMain(argc, argv, LLVMFuzzerTestOneInput);
}
#endif
