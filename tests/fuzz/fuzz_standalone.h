// Standalone replay driver shared by the fuzz harnesses when built
// without libFuzzer (any toolchain, notably gcc): each command-line
// argument is a corpus file, fed whole to the harness entry point. This
// keeps the harness logic itself exercised by plain `ctest` on every
// toolchain, while the clang fuzz-smoke CI leg links the same sources
// against libFuzzer for real coverage-guided runs.

#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace oasis {
namespace fuzz {

/// Replays every file in argv through `one_input`; returns a process
/// exit code (non-zero when a file cannot be read — a missing corpus is
/// a test-setup bug, not a pass).
inline int ReplayMain(int argc, char** argv,
                      int (*one_input)(const uint8_t*, size_t)) {
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read corpus file '%s'\n", argv[i]);
      ++failures;
      continue;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    one_input(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    std::fprintf(stderr, "replayed %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace fuzz
}  // namespace oasis
