// Workload generators: determinism, shape constraints matching the paper's
// data-set descriptions (§4.1), and planted-homology strength.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "mask/tantan.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

TEST(ProteinGenerator, RespectsLengthBoundsAndTarget) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 20000;
  options.seed = 1;
  auto db = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GE(db->num_residues(), options.target_residues);
  EXPECT_LT(db->num_residues(), options.target_residues + 2048);
  for (const auto& s : db->sequences()) {
    EXPECT_GE(s.size(), 7u);
    EXPECT_LE(s.size(), 2048u);
    for (seq::Symbol sym : s.symbols()) {
      EXPECT_LT(sym, 20u);  // only standard residues
    }
  }
}

TEST(ProteinGenerator, DeterministicForSeed) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 5000;
  options.seed = 9;
  auto a = workload::GenerateProteinDatabase(options);
  auto b = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_sequences(), b->num_sequences());
  EXPECT_EQ(a->symbols(), b->symbols());

  options.seed = 10;
  auto c = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->symbols(), c->symbols());
}

TEST(ProteinGenerator, CompositionTracksBackground) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = 200000;
  options.seed = 2;
  auto db = workload::GenerateProteinDatabase(options);
  ASSERT_TRUE(db.ok());
  std::vector<uint64_t> counts(23, 0);
  for (seq::Symbol s : db->symbols()) {
    if (s < 23) ++counts[s];
  }
  std::vector<double> bg = score::BackgroundFrequencies(seq::Alphabet::Protein());
  const double n = static_cast<double>(db->num_residues());
  for (uint32_t a = 0; a < 20; ++a) {
    double freq = counts[a] / n;
    EXPECT_NEAR(freq, bg[a], 0.01) << "residue " << a;
  }
}

TEST(ProteinGenerator, RejectsBadOptions) {
  workload::ProteinDatabaseOptions options;
  options.min_length = 0;
  EXPECT_FALSE(workload::GenerateProteinDatabase(options).ok());
  options = {};
  options.target_residues = 0;
  EXPECT_FALSE(workload::GenerateProteinDatabase(options).ok());
  options = {};
  options.min_length = 100;
  options.max_length = 10;
  EXPECT_FALSE(workload::GenerateProteinDatabase(options).ok());
}

TEST(DnaGenerator, ShapeAndDeterminism) {
  workload::DnaDatabaseOptions options;
  options.target_residues = 30000;
  options.num_sequences = 10;
  options.seed = 3;
  auto db = workload::GenerateDnaDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->num_sequences(), 10u);
  for (const auto& s : db->sequences()) {
    for (seq::Symbol sym : s.symbols()) EXPECT_LT(sym, 4u);
  }
  auto again = workload::GenerateDnaDatabase(options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(db->symbols(), again->symbols());
}

TEST(DnaGenerator, PlantedRepeatsShareLongSubstrings) {
  workload::DnaDatabaseOptions options;
  options.target_residues = 40000;
  options.num_sequences = 8;
  options.repeat_fraction = 0.5;
  options.repeat_divergence = 0.0;  // identical copies
  options.num_repeat_families = 2;
  options.seed = 4;
  auto db = workload::GenerateDnaDatabase(options);
  ASSERT_TRUE(db.ok());

  // With exact repeat copies, some 100-mer must occur more than once.
  auto tree = suffix::SuffixTree::BuildUkkonen(*db);
  ASSERT_TRUE(tree.ok());
  bool found_repeat = false;
  const auto& text = db->symbols();
  for (uint64_t pos = 0; pos + 100 < text.size() && !found_repeat; pos += 997) {
    bool clean = true;
    for (uint64_t k = pos; k < pos + 100; ++k) {
      if (db->IsTerminator(text[k])) {
        clean = false;
        break;
      }
    }
    if (!clean) continue;
    std::vector<seq::Symbol> window(text.begin() + pos, text.begin() + pos + 100);
    if (tree->FindOccurrences(window).size() > 1) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);
}

TEST(MotifQueries, ShapeMatchesPaperWorkload) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 30000;
  db_options.seed = 5;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());

  workload::MotifQueryOptions q_options;
  q_options.num_queries = 100;
  q_options.seed = 5;
  auto queries = workload::GenerateMotifQueries(
      *db, score::SubstitutionMatrix::Pam30(), q_options);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  ASSERT_EQ(queries->size(), 100u);

  double total_len = 0;
  for (const auto& q : *queries) {
    EXPECT_GE(q.symbols.size(), 6u);
    EXPECT_LE(q.symbols.size(), 56u);
    total_len += q.symbols.size();
    EXPECT_LT(q.source_sequence, db->num_sequences());
  }
  // Paper: average query length ~16.
  double mean = total_len / queries->size();
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 24.0);
}

TEST(MotifQueries, PlantedHomologScoresWell) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 10000;
  db_options.seed = 6;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());

  workload::MotifQueryOptions q_options;
  q_options.num_queries = 20;
  q_options.seed = 6;
  auto queries = workload::GenerateMotifQueries(
      *db, score::SubstitutionMatrix::Pam30(), q_options);
  ASSERT_TRUE(queries.ok());

  // Each query's source sequence should carry a strong alignment: at least
  // half the self-score of an unmutated query of that length.
  int strong = 0;
  for (const auto& q : *queries) {
    align::SequenceHit hit = align::AlignPair(
        q.symbols, db->sequence(q.source_sequence).symbols(),
        score::SubstitutionMatrix::Pam30());
    score::ScoreT self = 0;
    for (seq::Symbol s : q.symbols) {
      self += score::SubstitutionMatrix::Pam30().Score(s, s);
    }
    if (hit.score * 2 >= self) ++strong;
  }
  EXPECT_GE(strong, 15) << "planted homologies too weak";
}

TEST(MotifQueries, DeterministicForSeed) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  db_options.seed = 7;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 10;
  q_options.seed = 7;
  auto a = workload::GenerateMotifQueries(*db,
                                          score::SubstitutionMatrix::Pam30(),
                                          q_options);
  auto b = workload::GenerateMotifQueries(*db,
                                          score::SubstitutionMatrix::Pam30(),
                                          q_options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].symbols, (*b)[i].symbols);
  }
}

TEST(RepeatBomb, ShapeDeterminismAndRepeatDensity) {
  workload::RepeatBombOptions options;
  options.target_residues = 20000;
  options.num_sequences = 8;
  options.seed = 5;
  auto a = workload::GenerateRepeatBombDatabase(options);
  auto b = workload::GenerateRepeatBombDatabase(options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->num_sequences(), 8u);
  EXPECT_EQ(a->sequence(0).id(), "BOMB0");
  uint64_t residues = 0;
  for (uint32_t i = 0; i < a->num_sequences(); ++i) {
    EXPECT_EQ(a->sequence(i).symbols(), b->sequence(i).symbols())
        << "sequence " << i;
    residues += a->sequence(i).size();
  }
  EXPECT_NEAR(static_cast<double>(residues), 20000.0, 200.0);
  // The bomb must actually be a bomb: the detector the engine uses flags
  // a large fraction of it.
  uint64_t flagged = 0;
  for (uint32_t i = 0; i < a->num_sequences(); ++i) {
    std::vector<seq::Symbol> symbols(a->sequence(i).symbols().begin(),
                                     a->sequence(i).symbols().end());
    const std::vector<uint8_t> flags = mask::FindRepeats(symbols, 4);
    flagged += std::count(flags.begin(), flags.end(), 1);
  }
  EXPECT_GT(flagged, residues / 2);
}

TEST(RepeatBomb, RejectsBadOptions) {
  workload::RepeatBombOptions options;
  options.num_sequences = 0;
  EXPECT_FALSE(workload::GenerateRepeatBombDatabase(options).ok());
  options = {};
  options.repeat_fraction = 1.5;
  EXPECT_FALSE(workload::GenerateRepeatBombDatabase(options).ok());
  options = {};
  options.run_length = 0;
  EXPECT_FALSE(workload::GenerateRepeatBombDatabase(options).ok());
}

TEST(QualityReads, CarryDecayingQualitiesAndPhredCalibratedErrors) {
  workload::DnaDatabaseOptions db_options;
  db_options.target_residues = 20000;
  db_options.seed = 6;
  auto db = workload::GenerateDnaDatabase(db_options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  workload::QualityDegradedReadOptions options;
  options.num_reads = 200;
  options.read_length = 100;
  options.seed = 9;
  auto reads = workload::GenerateQualityDegradedReads(*db, options);
  auto again = workload::GenerateQualityDegradedReads(*db, options);
  ASSERT_TRUE(reads.ok()) << reads.status().ToString();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(reads->size(), 200u);

  double head_q = 0, tail_q = 0;
  for (size_t i = 0; i < reads->size(); ++i) {
    const seq::Sequence& read = (*reads)[i];
    ASSERT_TRUE(read.has_quals()) << "read " << i;
    ASSERT_EQ(read.quals().size(), read.size());
    EXPECT_EQ(read.id(), "READ" + std::to_string(i));
    EXPECT_EQ(read.symbols(), (*again)[i].symbols()) << "determinism";
    EXPECT_EQ(read.quals(), (*again)[i].quals()) << "determinism";
    head_q += read.quals().front();
    tail_q += read.quals().back();
  }
  // Illumina-style 3' decay: first cycles near start_quality, last near
  // end_quality.
  EXPECT_GT(head_q / reads->size(), 30.0);
  EXPECT_LT(tail_q / reads->size(), 10.0);
}

}  // namespace
}  // namespace oasis
