// util/flag_parse.h: the strict numeric parsing behind oasis_cli's flags.
// The bug class under test: strtoul-family parsing that silently wrapped
// "--threads -1" to 4294967295 and read "--pool-mb abc" as 0.

#include "util/flag_parse.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace oasis {
namespace util {
namespace {

TEST(FlagParse, Uint32AcceptsPlainIntegers) {
  auto v = ParseUint32("42", 1, 100);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42u);
  EXPECT_EQ(*ParseUint32("1", 1, 100), 1u);
  EXPECT_EQ(*ParseUint32("100", 1, 100), 100u);
  EXPECT_EQ(*ParseUint32("+7", 1, 100), 7u);  // explicit plus is fine
}

TEST(FlagParse, Uint32RejectsNegativeInsteadOfWrapping) {
  // The regression: strtoul("-1") wraps to 4294967295.
  auto v = ParseUint32("-1", 1, std::numeric_limits<uint32_t>::max());
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_FALSE(ParseUint32("-42", 0, 100).ok());
}

TEST(FlagParse, Uint32RejectsMalformedInput) {
  for (const char* bad : {"", "abc", "12abc", "abc12", "1.5", "0x10", " 7",
                          "7 ", "1e3", "--3", "++1"}) {
    auto v = ParseUint32(bad, 0, 1000000);
    EXPECT_FALSE(v.ok()) << "'" << bad << "' must not parse";
    EXPECT_TRUE(v.status().IsInvalidArgument()) << bad;
  }
}

TEST(FlagParse, Uint32EnforcesRange) {
  EXPECT_TRUE(ParseUint32("0", 1, 8).status().IsOutOfRange());
  EXPECT_TRUE(ParseUint32("9", 1, 8).status().IsOutOfRange());
  // Values past uint64 range are out of range, not wrapped.
  EXPECT_TRUE(
      ParseUint32("99999999999999999999999", 0, 100).status().IsOutOfRange());
}

TEST(FlagParse, Uint64HandlesLargeValues) {
  auto v = ParseUint64("1099511627776", 0, 1ull << 41);  // 1 TiB
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1ull << 40);
  EXPECT_TRUE(ParseUint64("18446744073709551616", 0,
                          std::numeric_limits<uint64_t>::max())
                  .status().IsOutOfRange());  // 2^64
}

TEST(FlagParse, Int64AcceptsSignsAndEnforcesRange) {
  EXPECT_EQ(*ParseInt64("-5", -10, 10), -5);
  EXPECT_EQ(*ParseInt64("5", -10, 10), 5);
  EXPECT_TRUE(ParseInt64("-11", -10, 10).status().IsOutOfRange());
  EXPECT_TRUE(ParseInt64("11", -10, 10).status().IsOutOfRange());
  EXPECT_FALSE(ParseInt64("1x", -10, 10).ok());
  EXPECT_FALSE(ParseInt64("", -10, 10).ok());
  // Whole-string contract, same as the unsigned parsers: strtoll's
  // leading-whitespace skipping must not leak through.
  EXPECT_FALSE(ParseInt64(" 5", -10, 10).ok());
  EXPECT_FALSE(ParseInt64("5 ", -10, 10).ok());
  EXPECT_FALSE(ParseInt64("+-5", -10, 10).ok());
}

TEST(FlagParse, DoubleAcceptsDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5", 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3", 0.0, 10.0), 1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble("10", 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.5", -10.0, 10.0), -2.5);
}

TEST(FlagParse, DoubleRejectsMalformedAndNonFinite) {
  for (const char* bad : {"", "abc", "1.5x", "nan", "inf", "-inf", "0x1p3",
                          "1.2.3", "1e", " 1"}) {
    auto v = ParseDouble(bad, -1e30, 1e30);
    EXPECT_FALSE(v.ok()) << "'" << bad << "' must not parse";
  }
  // The regression: "--evalue abc" used to strtod to 0.0 and silently
  // search with an E-value cutoff of zero.
  EXPECT_TRUE(ParseDouble("abc", 0.0, 1e12).status().IsInvalidArgument());
}

TEST(FlagParse, DoubleEnforcesRange) {
  EXPECT_TRUE(ParseDouble("-0.1", 0.0, 1.0).status().IsOutOfRange());
  EXPECT_TRUE(ParseDouble("1.1", 0.0, 1.0).status().IsOutOfRange());
  EXPECT_TRUE(ParseDouble("1e400", 0.0, 1e308).status().IsOutOfRange() ||
              ParseDouble("1e400", 0.0, 1e308).status().IsInvalidArgument());
}

TEST(FlagParse, DoubleRangeMessageShowsRealBounds) {
  // A tiny positive minimum must not print as "0.000000" — the message
  // would then claim the rejected value sits inside the printed range.
  auto v = ParseDouble("0", 1e-300, 1e12);
  ASSERT_TRUE(v.status().IsOutOfRange());
  const std::string message = v.status().ToString();
  EXPECT_EQ(message.find("0.000000"), std::string::npos) << message;
  EXPECT_NE(message.find("1e-300"), std::string::npos) << message;
}

}  // namespace
}  // namespace util
}  // namespace oasis
