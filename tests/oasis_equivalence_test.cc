// The paper's central claim (invariant #1 in DESIGN.md): OASIS is *exact*.
// For every database sequence whose Smith-Waterman best local-alignment
// score is >= minScore, OASIS reports that sequence with exactly that
// score; no sequence below the threshold is reported; and results arrive
// in non-increasing score order.
//
// Verified by randomized property tests over both alphabets, several
// matrices, gap penalties and thresholds (parameterized sweep).

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::MakeDatabase;
using testing::PackedFixture;
using testing::RunOasis;

std::vector<seq::Symbol> RandomResidues(util::Random& rng, uint32_t sigma,
                                        size_t len) {
  std::vector<seq::Symbol> out(len);
  for (auto& s : out) s = static_cast<seq::Symbol>(rng.Uniform(sigma));
  return out;
}

/// Checks the exactness contract for one (db, query, matrix, minScore).
void CheckEquivalence(const seq::SequenceDatabase& db,
                      const suffix::PackedSuffixTree& tree,
                      const score::SubstitutionMatrix& matrix,
                      const std::vector<seq::Symbol>& query,
                      score::ScoreT min_score) {
  // Ground truth: per-sequence S-W maxima.
  auto sw_hits = align::ScanDatabase(query, db, matrix, min_score);
  std::map<seq::SequenceId, score::ScoreT> expected;
  for (const auto& hit : sw_hits) expected[hit.sequence_id] = hit.score;

  core::OasisOptions options;
  options.min_score = min_score;
  auto results = RunOasis(tree, matrix, query, options);

  // (a) Online order: non-increasing scores.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score)
        << "online order violated at result " << i;
  }
  // (b) Each reported sequence appears once, with the S-W max score.
  std::map<seq::SequenceId, score::ScoreT> reported;
  for (const auto& r : results) {
    EXPECT_TRUE(reported.find(r.sequence_id) == reported.end())
        << "sequence " << r.sequence_id << " reported twice";
    reported[r.sequence_id] = r.score;
  }
  // (c) Exactly the S-W hit set.
  EXPECT_EQ(reported, expected);

  // (d) The pull-based cursor replays a byte-identical stream in identical
  // order to the callback path, across every corpus of the sweep.
  core::OasisSearch search(&tree, &matrix);
  auto cursor = search.Cursor(query, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  size_t pulled = 0;
  while (true) {
    auto next = cursor->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ASSERT_LT(pulled, results.size()) << "cursor emitted extra results";
    EXPECT_EQ((*next)->sequence_id, results[pulled].sequence_id);
    EXPECT_EQ((*next)->score, results[pulled].score);
    EXPECT_EQ((*next)->db_end_pos, results[pulled].db_end_pos);
    EXPECT_EQ((*next)->target_end, results[pulled].target_end);
    EXPECT_EQ((*next)->query_end, results[pulled].query_end);
    ++pulled;
  }
  EXPECT_EQ(pulled, results.size());
}

struct EquivalenceCase {
  const char* name;
  seq::AlphabetKind kind;
  const score::SubstitutionMatrix* matrix;
  uint32_t num_sequences;
  uint32_t max_seq_len;
  uint32_t query_len;
  score::ScoreT min_score;
  uint64_t seed;
};

class OasisEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(OasisEquivalence, MatchesSmithWaterman) {
  const EquivalenceCase& c = GetParam();
  util::Random rng(c.seed);
  const seq::Alphabet& alphabet = seq::Alphabet::Get(c.kind);
  // Sample only real residues (protein generators avoid B/Z/X like real
  // sequence data does).
  const uint32_t sigma = c.kind == seq::AlphabetKind::kDna ? 4 : 20;

  std::vector<seq::Sequence> sequences;
  for (uint32_t i = 0; i < c.num_sequences; ++i) {
    size_t len = 1 + rng.Uniform(c.max_seq_len);
    sequences.emplace_back("s" + std::to_string(i),
                           RandomResidues(rng, sigma, len));
  }
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(sequences));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  PackedFixture fixture(*db);

  // Several random queries per case, plus one planted homolog (a mutated
  // substring) so strong matches are exercised, not just noise.
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<seq::Symbol> query;
    if (trial == 2) {
      const seq::Sequence& src = db->sequence(0);
      size_t len = std::min<size_t>(c.query_len, src.size());
      size_t off = src.size() > len ? rng.Uniform(src.size() - len) : 0;
      query.assign(src.symbols().begin() + off,
                   src.symbols().begin() + off + len);
      for (auto& s : query) {
        if (rng.Bernoulli(0.15)) s = static_cast<seq::Symbol>(rng.Uniform(sigma));
      }
    } else {
      query = RandomResidues(rng, sigma, c.query_len);
    }
    CheckEquivalence(*db, *fixture.tree, *c.matrix, query, c.min_score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OasisEquivalence,
    ::testing::Values(
        EquivalenceCase{"dna_unit_tiny", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::UnitDna(), 4, 24, 6, 3, 101},
        EquivalenceCase{"dna_unit_small", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::UnitDna(), 8, 60, 10, 5, 102},
        EquivalenceCase{"dna_unit_low_threshold", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::UnitDna(), 6, 40, 8, 2, 103},
        EquivalenceCase{"dna_blastn", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::Blastn(), 8, 60, 12, 20, 104},
        EquivalenceCase{"dna_blastn_loose", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::Blastn(), 5, 80, 9, 11, 105},
        EquivalenceCase{"protein_pam30", seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Pam30(), 8, 50, 10, 25, 106},
        EquivalenceCase{"protein_pam30_loose", seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Pam30(), 10, 40, 8, 12, 107},
        EquivalenceCase{"protein_blosum62", seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Blosum62(), 8, 50, 12, 18, 108},
        EquivalenceCase{"protein_blosum62_loose", seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Blosum62(), 6, 60, 10, 10, 109},
        EquivalenceCase{"protein_long_targets", seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Pam30(), 4, 300, 14, 30, 110},
        EquivalenceCase{"dna_many_sequences", seq::AlphabetKind::kDna,
                        &score::SubstitutionMatrix::UnitDna(), 40, 30, 8, 4, 111},
        EquivalenceCase{"protein_single_residue_query",
                        seq::AlphabetKind::kProtein,
                        &score::SubstitutionMatrix::Pam30(), 6, 30, 1, 5, 112}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

// Repetitive databases stress suffix-tree path sharing and the rule-2
// pruning ("existing alignment as good").
TEST(OasisEquivalenceSpecial, RepetitiveDna) {
  auto db = MakeDatabase(seq::Alphabet::Dna(),
                         {"AAAAAAAAAAAAAAAA", "ACACACACACACACAC",
                          "AAAACCCCAAAACCCC", "ACGTACGTACGTACGT"});
  PackedFixture fixture(db);
  util::Random rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    auto query = RandomResidues(rng, 4, 1 + rng.Uniform(8));
    for (score::ScoreT min_score : {1, 2, 4}) {
      CheckEquivalence(db, *fixture.tree, score::SubstitutionMatrix::UnitDna(),
                       query, min_score);
    }
  }
}

// Queries longer than every database sequence force gap-heavy alignments.
TEST(OasisEquivalenceSpecial, QueryLongerThanTargets) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACG", "TTT", "GATC"});
  PackedFixture fixture(db);
  util::Random rng(8);
  for (int trial = 0; trial < 4; ++trial) {
    auto query = RandomResidues(rng, 4, 12);
    CheckEquivalence(db, *fixture.tree, score::SubstitutionMatrix::UnitDna(),
                     query, 2);
  }
}

// A database of single-symbol sequences: every suffix is a root child leaf.
TEST(OasisEquivalenceSpecial, SingleSymbolSequences) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"A", "C", "G", "T", "A"});
  PackedFixture fixture(db);
  auto query = testing::Encode(seq::Alphabet::Dna(), "AC");
  CheckEquivalence(db, *fixture.tree, score::SubstitutionMatrix::UnitDna(),
                   query, 1);
}

}  // namespace
}  // namespace oasis
