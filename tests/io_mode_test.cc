// The storage layer's two I/O paths: MappedFile / PageSource units, and
// the parity suite proving that a mapped tree and a pooled tree over the
// same packed index are indistinguishable to a search (same results, same
// statistics where statistics are defined — i.e. in pooled mode). The
// IoModeParity suite also runs under the TSan CI job: mapped reads must be
// race-free with zero synchronization.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "storage/mapped_file.h"
#include "storage/page_source.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

constexpr uint32_t kBlock = 256;

storage::BlockFile MakeBlockFile(const std::string& path, uint32_t n) {
  auto file = storage::BlockFile::Create(path, kBlock);
  EXPECT_TRUE(file.ok());
  std::vector<uint8_t> buf(kBlock);
  for (uint32_t b = 0; b < n; ++b) {
    for (uint32_t i = 0; i < kBlock; ++i) {
      buf[i] = static_cast<uint8_t>((b * 37 + i) & 0xFF);
    }
    EXPECT_TRUE(file->AppendBlock(buf.data()).ok());
  }
  OASIS_EXPECT_OK(file->Flush());
  file->Close();
  auto reopened = storage::BlockFile::Open(path, kBlock);
  EXPECT_TRUE(reopened.ok());
  return std::move(reopened).value();
}

// --- MappedFile -------------------------------------------------------------

TEST(MappedFile, ContentsMatchBlockFileReads) {
  util::TempDir dir("mmap");
  storage::BlockFile file = MakeBlockFile(dir.File("a.blk"), 8);
  auto mapped = storage::MappedFile::Open(dir.File("a.blk"), kBlock);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_blocks(), 8u);
  EXPECT_EQ(mapped->size_bytes(), 8u * kBlock);

  std::vector<uint8_t> buf(kBlock);
  for (uint32_t b = 0; b < 8; ++b) {
    OASIS_ASSERT_OK(file.ReadBlock(b, buf.data()));
    EXPECT_EQ(std::memcmp(mapped->block(b), buf.data(), kBlock), 0)
        << "block " << b;
  }
}

TEST(MappedFile, EmptyFileMapsToZeroBlocks) {
  util::TempDir dir("mmap");
  MakeBlockFile(dir.File("empty.blk"), 0);
  auto mapped = storage::MappedFile::Open(dir.File("empty.blk"), kBlock);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_blocks(), 0u);
  EXPECT_TRUE(mapped->is_open());
  EXPECT_FALSE(storage::MappedFile().is_open())
      << "a never-opened instance must not claim to be open";
}

TEST(MappedFile, RejectsPartialBlocksAndMissingFiles) {
  util::TempDir dir("mmap");
  {
    std::FILE* f = std::fopen(dir.File("bad.blk").c_str(), "wb");
    std::fputs("short", f);
    std::fclose(f);
  }
  EXPECT_FALSE(storage::MappedFile::Open(dir.File("bad.blk"), kBlock).ok());
  EXPECT_FALSE(storage::MappedFile::Open(dir.File("absent.blk"), kBlock).ok());
  EXPECT_FALSE(storage::MappedFile::Open(dir.File("bad.blk"), 0).ok());
}

TEST(MappedFile, MoveTransfersTheMapping) {
  util::TempDir dir("mmap");
  MakeBlockFile(dir.File("a.blk"), 2);
  auto opened = storage::MappedFile::Open(dir.File("a.blk"), kBlock);
  ASSERT_TRUE(opened.ok());
  const uint8_t* data = opened->data();
  storage::MappedFile moved = std::move(opened).value();
  EXPECT_EQ(moved.data(), data);
  EXPECT_EQ(moved.num_blocks(), 2u);
}

// --- PageSource -------------------------------------------------------------

TEST(PageSource, MappedFetchIsZeroCopyAndBoundsChecked) {
  util::TempDir dir("psrc");
  MakeBlockFile(dir.File("a.blk"), 4);
  auto mapped = storage::MappedFile::Open(dir.File("a.blk"), kBlock);
  ASSERT_TRUE(mapped.ok());

  storage::PageSource source = storage::PageSource::Mapped();
  EXPECT_TRUE(source.mapped());
  EXPECT_EQ(source.pool(), nullptr);
  auto seg = source.AddSegment("a", &*mapped);
  ASSERT_TRUE(seg.ok());

  auto page = source.Fetch(*seg, 2);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  // Zero-copy: the ref points straight into the mapping.
  EXPECT_EQ(page->data(), mapped->block(2));

  EXPECT_FALSE(source.Fetch(*seg, 4).ok()) << "past-the-end block";
  EXPECT_FALSE(source.Fetch(*seg + 1, 0).ok()) << "unknown segment";
}

TEST(PageSource, RejectsMismatchedSegmentKinds) {
  util::TempDir dir("psrc");
  storage::BlockFile file = MakeBlockFile(dir.File("a.blk"), 2);
  auto mapped = storage::MappedFile::Open(dir.File("a.blk"), kBlock);
  ASSERT_TRUE(mapped.ok());
  storage::BufferPool pool(4 * kBlock, kBlock);

  storage::PageSource pooled = storage::PageSource::Pooled(&pool);
  EXPECT_FALSE(pooled.mapped());
  EXPECT_FALSE(pooled.AddSegment("m", &*mapped).ok());
  ASSERT_TRUE(pooled.AddSegment("a", &file).ok());

  storage::PageSource mapped_source = storage::PageSource::Mapped();
  EXPECT_FALSE(mapped_source.AddSegment("a", &file).ok());
}

TEST(PageSource, PooledFetchPinsThroughThePool) {
  util::TempDir dir("psrc");
  storage::BlockFile file = MakeBlockFile(dir.File("a.blk"), 4);
  storage::BufferPool pool(4 * kBlock, kBlock);
  storage::PageSource source = storage::PageSource::Pooled(&pool);
  auto seg = source.AddSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  {
    auto page = source.Fetch(*seg, 1);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(pool.num_pinned(), 1u);
    std::vector<uint8_t> expect(kBlock);
    OASIS_ASSERT_OK(file.ReadBlock(1, expect.data()));
    EXPECT_EQ(std::memcmp(page->data(), expect.data(), kBlock), 0);
  }
  EXPECT_EQ(pool.num_pinned(), 0u) << "dropping the ref must unpin";
  EXPECT_EQ(pool.stats(*seg).requests, 1u);
}

// --- Mapped vs pooled parity ------------------------------------------------

struct ParityFixture {
  util::TempDir dir{"parity"};
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<suffix::PackedSuffixTree> pooled;
  std::unique_ptr<suffix::PackedSuffixTree> mapped;

  explicit ParityFixture(uint64_t residues = 20000) {
    workload::ProteinDatabaseOptions db_options;
    db_options.target_residues = residues;
    db_options.seed = 13;
    auto db = workload::GenerateProteinDatabase(db_options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    pool = std::make_unique<storage::BufferPool>(64 << 20);
    auto built = suffix::BuildAndOpenPacked(*db, dir.path(), pool.get(),
                                            suffix::PackOptions());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    pooled = std::move(built).value();
    auto remapped = suffix::PackedSuffixTree::OpenMapped(dir.path());
    EXPECT_TRUE(remapped.ok()) << remapped.status().ToString();
    mapped = std::move(remapped).value();
  }
};

TEST(IoModeParity, TreesAgreeOnMetadataAndRawReads) {
  ParityFixture fx;
  EXPECT_FALSE(fx.pooled->mapped());
  EXPECT_TRUE(fx.mapped->mapped());
  EXPECT_EQ(fx.mapped->pool(), nullptr);
  EXPECT_EQ(fx.pooled->num_internal(), fx.mapped->num_internal());
  EXPECT_EQ(fx.pooled->total_length(), fx.mapped->total_length());
  EXPECT_EQ(fx.pooled->num_sequences(), fx.mapped->num_sequences());
  EXPECT_EQ(fx.pooled->index_bytes(), fx.mapped->index_bytes());

  for (uint32_t idx = 0; idx < fx.pooled->num_internal(); idx += 7) {
    auto a = fx.pooled->ReadInternal(idx);
    auto b = fx.mapped->ReadInternal(idx);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->depth_and_flag, b->depth_and_flag);
    EXPECT_EQ(a->sym_offset, b->sym_offset);
    EXPECT_EQ(a->first_internal, b->first_internal);
    EXPECT_EQ(a->first_leaf, b->first_leaf);
  }
  std::vector<uint8_t> a_sym, b_sym;
  OASIS_ASSERT_OK(fx.pooled->ReadSymbols(0, 512, &a_sym));
  OASIS_ASSERT_OK(fx.mapped->ReadSymbols(0, 512, &b_sym));
  EXPECT_EQ(a_sym, b_sym);
  // Both modes reject out-of-range accesses the same way.
  EXPECT_FALSE(fx.mapped
                   ->ReadInternal(static_cast<uint32_t>(
                       fx.mapped->num_internal()))
                   .ok());
  EXPECT_FALSE(fx.mapped->ReadSymbols(fx.mapped->total_length(), 1, &b_sym).ok());
}

TEST(IoModeParity, SearchResultsIdenticalAcrossModes) {
  ParityFixture fx;
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Pam30();
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 8;
  q_options.seed = 13;

  // Pull a query workload out of the symbols the index itself stores.
  core::OasisSearch pooled_search(fx.pooled.get(), &matrix);
  core::OasisSearch mapped_search(fx.mapped.get(), &matrix);
  std::vector<uint8_t> sym;
  for (uint32_t q = 0; q < q_options.num_queries; ++q) {
    OASIS_ASSERT_OK(fx.pooled->ReadSymbols(100 + q * 901, 12, &sym));
    std::vector<seq::Symbol> query;
    for (uint8_t s : sym) {
      if (s != suffix::kTerminatorByte) query.push_back(s);
    }
    if (query.empty()) continue;
    core::OasisOptions options;
    options.min_score = 30;
    core::OasisStats pooled_stats, mapped_stats;
    auto a = pooled_search.SearchAll(query, options, &pooled_stats);
    auto b = mapped_search.SearchAll(query, options, &mapped_stats);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->size(), b->size()) << "query " << q;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].sequence_id, (*b)[i].sequence_id);
      EXPECT_EQ((*a)[i].score, (*b)[i].score);
      EXPECT_EQ((*a)[i].db_end_pos, (*b)[i].db_end_pos);
      EXPECT_EQ((*a)[i].query_end, (*b)[i].query_end);
    }
    // The search visits the same nodes in both modes (the I/O path cannot
    // change A* order), so the core counters agree exactly.
    EXPECT_EQ(pooled_stats.nodes_expanded, mapped_stats.nodes_expanded);
    EXPECT_EQ(pooled_stats.columns_expanded, mapped_stats.columns_expanded);
  }
  // "Hit counts where defined": only the pooled tree keeps statistics, and
  // the mapped run must not have touched them.
  const storage::SegmentStats stats = fx.pool->TotalStats();
  EXPECT_GT(stats.requests, 0u);
}

TEST(IoModeParity, ConcurrentMappedSearchesAreRaceFree) {
  // Mapped-mode reads share nothing mutable at all; run parallel searches
  // under TSan to prove it.
  ParityFixture fx;
  const score::SubstitutionMatrix& matrix = score::SubstitutionMatrix::Pam30();
  core::OasisSearch search(fx.mapped.get(), &matrix);
  std::vector<uint8_t> sym;
  OASIS_ASSERT_OK(fx.mapped->ReadSymbols(500, 10, &sym));
  std::vector<seq::Symbol> query;
  for (uint8_t s : sym) {
    if (s != suffix::kTerminatorByte) query.push_back(s);
  }
  ASSERT_FALSE(query.empty());

  core::OasisOptions options;
  options.min_score = 25;
  std::vector<std::vector<core::OasisResult>> outputs(4);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < outputs.size(); ++t) {
    workers.emplace_back([&, t]() {
      auto out = search.SearchAll(query, options);
      if (out.ok()) outputs[t] = std::move(out).value();
    });
  }
  for (auto& w : workers) w.join();
  for (size_t t = 1; t < outputs.size(); ++t) {
    ASSERT_EQ(outputs[t].size(), outputs[0].size());
    for (size_t i = 0; i < outputs[t].size(); ++i) {
      EXPECT_EQ(outputs[t][i].sequence_id, outputs[0][i].sequence_id);
      EXPECT_EQ(outputs[t][i].score, outputs[0][i].score);
    }
  }
}

// --- Engine-level mode selection ---------------------------------------------

struct EngineModeFixture {
  util::TempDir dir{"iomode"};

  explicit EngineModeFixture() {
    workload::ProteinDatabaseOptions db_options;
    db_options.target_residues = 5000;
    db_options.seed = 29;
    auto db = workload::GenerateProteinDatabase(db_options);
    EXPECT_TRUE(db.ok());
    auto built =
        Engine::BuildFromDatabase(std::move(db).value(), dir.path(),
                                  EngineOptions());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
  }
};

TEST(IoModeParity, AutoSelectsByRamBudget) {
  EngineModeFixture fx;

  // A tiny index fits the default budget: kAuto resolves to mmap.
  auto auto_engine = Engine::Open(fx.dir.path());
  ASSERT_TRUE(auto_engine.ok()) << auto_engine.status().ToString();
  EXPECT_EQ((*auto_engine)->io_mode(), IoMode::kMmap);
  EXPECT_FALSE((*auto_engine)->uses_pool());

  // Budget 0 = never map: kAuto falls back to the pool.
  EngineOptions no_budget;
  no_budget.mmap_budget_bytes = 0;
  auto pooled_engine = Engine::Open(fx.dir.path(), no_budget);
  ASSERT_TRUE(pooled_engine.ok());
  EXPECT_EQ((*pooled_engine)->io_mode(), IoMode::kPooled);
  EXPECT_TRUE((*pooled_engine)->uses_pool());

  // Explicit modes win regardless of budget.
  EngineOptions forced;
  forced.io_mode = IoMode::kPooled;
  auto forced_pooled = Engine::Open(fx.dir.path(), forced);
  ASSERT_TRUE(forced_pooled.ok());
  EXPECT_EQ((*forced_pooled)->io_mode(), IoMode::kPooled);
  forced.io_mode = IoMode::kMmap;
  forced.mmap_budget_bytes = 0;
  auto forced_mapped = Engine::Open(fx.dir.path(), forced);
  ASSERT_TRUE(forced_mapped.ok());
  EXPECT_EQ((*forced_mapped)->io_mode(), IoMode::kMmap);
}

TEST(IoModeParity, EngineSearchAgreesAcrossModes) {
  EngineModeFixture fx;
  EngineOptions pooled_options;
  pooled_options.io_mode = IoMode::kPooled;
  auto pooled = Engine::Open(fx.dir.path(), pooled_options);
  ASSERT_TRUE(pooled.ok());
  EngineOptions mapped_options;
  mapped_options.io_mode = IoMode::kMmap;
  auto mapped = Engine::Open(fx.dir.path(), mapped_options);
  ASSERT_TRUE(mapped.ok());

  // The resident database materializes identically through both paths
  // (ResidentDatabase is also the scan-admission code path).
  auto pooled_db = (*pooled)->ResidentDatabase();
  auto mapped_db = (*mapped)->ResidentDatabase();
  ASSERT_TRUE(pooled_db.ok() && mapped_db.ok());
  ASSERT_EQ((*pooled_db)->num_sequences(), (*mapped_db)->num_sequences());
  for (size_t s = 0; s < (*pooled_db)->num_sequences(); ++s) {
    EXPECT_EQ((*pooled_db)->sequence(s).symbols(),
              (*mapped_db)->sequence(s).symbols());
  }

  auto request =
      SearchRequest::FromText((*pooled)->alphabet(), "DKDGDGCITT");
  ASSERT_TRUE(request.ok());
  request->EValue(10000.0);
  auto a = (*pooled)->SearchAll(*request);
  auto b = (*mapped)->SearchAll(*request);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_EQ(a->results[i].sequence_id, b->results[i].sequence_id);
    EXPECT_EQ(a->results[i].score, b->results[i].score);
  }
}

}  // namespace
}  // namespace oasis
