// The oasisd subsystem: wire protocol codecs, the result cache, admission
// control, daemon flag parsing, and the Server itself driven end-to-end
// over real sockets by DaemonClient.
//
// The integration tests pin the PR's acceptance criteria:
//   - streaming parity: a daemon query's hit lines are byte-identical to
//     the same request run locally against the same engine;
//   - N concurrent clients share one engine (one tree, one pool) and all
//     see the identical stream;
//   - shutdown under load leaks nothing: after Shutdown() returns, the
//     shared pool has zero pinned frames and no session is live.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/report.h"
#include "server/client.h"
#include "server/flags.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "server/wire.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace server {
namespace {

// --- Wire: frames ------------------------------------------------------------

TEST(Wire, FrameRoundTrip) {
  const std::string encoded = EncodeFrame(FrameType::kQuery, "q=PEPTIDE\n");
  Frame frame;
  auto consumed = DecodeFrame(encoded, &frame);
  OASIS_ASSERT_OK(consumed.status());
  EXPECT_EQ(*consumed, encoded.size());
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.payload, "q=PEPTIDE\n");
}

TEST(Wire, FrameEmptyPayload) {
  const std::string encoded = EncodeFrame(FrameType::kPing, "");
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes);
  Frame frame;
  auto consumed = DecodeFrame(encoded, &frame);
  OASIS_ASSERT_OK(consumed.status());
  EXPECT_EQ(*consumed, kFrameHeaderBytes);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, FrameNeedsMoreBytes) {
  const std::string encoded = EncodeFrame(FrameType::kHit, "hello");
  Frame frame;
  // Every strict prefix decodes to "0 consumed, read more".
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto consumed = DecodeFrame(std::string_view(encoded).substr(0, len),
                                &frame);
    OASIS_ASSERT_OK(consumed.status());
    EXPECT_EQ(*consumed, 0u) << "prefix length " << len;
  }
}

TEST(Wire, FrameDecodesSequentiallyFromOneBuffer) {
  std::string buf = EncodeFrame(FrameType::kHit, "first") +
                    EncodeFrame(FrameType::kDone, "hits=1 cached=0");
  Frame frame;
  auto consumed = DecodeFrame(buf, &frame);
  OASIS_ASSERT_OK(consumed.status());
  EXPECT_EQ(frame.type, FrameType::kHit);
  EXPECT_EQ(frame.payload, "first");
  buf.erase(0, *consumed);
  consumed = DecodeFrame(buf, &frame);
  OASIS_ASSERT_OK(consumed.status());
  EXPECT_EQ(frame.type, FrameType::kDone);
  EXPECT_EQ(frame.payload, "hits=1 cached=0");
  buf.erase(0, *consumed);
  consumed = DecodeFrame(buf, &frame);
  OASIS_ASSERT_OK(consumed.status());
  EXPECT_EQ(*consumed, 0u);
}

TEST(Wire, FrameOversizedPayloadIsCorruption) {
  // Hand-craft a header announcing kMaxFramePayload + 1 bytes.
  const uint32_t len = kMaxFramePayload + 1;
  std::string buf;
  buf.push_back(static_cast<char>(len & 0xff));
  buf.push_back(static_cast<char>((len >> 8) & 0xff));
  buf.push_back(static_cast<char>((len >> 16) & 0xff));
  buf.push_back(static_cast<char>((len >> 24) & 0xff));
  buf.push_back(static_cast<char>(FrameType::kHit));
  Frame frame;
  auto consumed = DecodeFrame(buf, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_TRUE(consumed.status().IsCorruption()) << consumed.status().ToString();
}

TEST(Wire, FrameUnknownTypeTagIsCorruption) {
  std::string buf(4, '\0');  // zero-length payload
  buf.push_back(static_cast<char>(99));
  Frame frame;
  auto consumed = DecodeFrame(buf, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_TRUE(consumed.status().IsCorruption()) << consumed.status().ToString();
}

// --- Wire: request payloads --------------------------------------------------

TEST(Wire, RequestRoundTripAllFields) {
  WireRequest req;
  req.index = "swissprot";
  req.query = "MKVLAT";
  req.min_score = 25;
  req.top_k = 10;
  req.by_evalue = true;
  req.deadline_ms = 1500;
  req.no_cache = true;
  auto parsed = WireRequest::Parse(req.Encode());
  OASIS_ASSERT_OK(parsed.status());
  EXPECT_EQ(parsed->index, "swissprot");
  EXPECT_EQ(parsed->query, "MKVLAT");
  EXPECT_EQ(parsed->min_score, 25);
  EXPECT_EQ(parsed->top_k, 10u);
  EXPECT_TRUE(parsed->by_evalue);
  EXPECT_EQ(parsed->deadline_ms, 1500u);
  EXPECT_TRUE(parsed->no_cache);
}

TEST(Wire, RequestEvalueRoundTripsExactly) {
  WireRequest req;
  req.query = "MKVLAT";
  req.evalue = 0.001;
  auto parsed = WireRequest::Parse(req.Encode());
  OASIS_ASSERT_OK(parsed.status());
  EXPECT_EQ(parsed->evalue, 0.001);  // %.17g round-trips doubles exactly
}

TEST(Wire, RequestDefaultsAreOmitted) {
  WireRequest req;
  req.query = "PEPTIDE";
  EXPECT_EQ(req.Encode(), "q=PEPTIDE\n");
}

TEST(Wire, RequestRejectsUnknownKey) {
  auto parsed = WireRequest::Parse("q=PEPTIDE\nshiny_new_knob=1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
  EXPECT_NE(parsed.status().ToString().find("shiny_new_knob"),
            std::string::npos);
}

TEST(Wire, RequestRejectsMissingQuery) {
  auto parsed = WireRequest::Parse("ix=main\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(Wire, RequestRejectsMalformedLine) {
  auto parsed = WireRequest::Parse("q=PEPTIDE\nnot a key value line\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(Wire, RequestRangeChecks) {
  EXPECT_FALSE(WireRequest::Parse("q=A\ntop=0\n").ok());
  EXPECT_FALSE(WireRequest::Parse("q=A\ndl=0\n").ok());
  EXPECT_FALSE(WireRequest::Parse("q=A\nms=0\n").ok());
  EXPECT_FALSE(WireRequest::Parse("q=A\nbye=2\n").ok());
  EXPECT_FALSE(WireRequest::Parse("q=A\nnc=yes\n").ok());
  EXPECT_FALSE(WireRequest::Parse("q=A\nev=0\n").ok());
}

TEST(Wire, CacheKeyIgnoresDeadlineAndNoCache) {
  WireRequest plain;
  plain.query = "MKVLAT";
  plain.top_k = 5;
  WireRequest deadlined = plain;
  deadlined.deadline_ms = 250;
  deadlined.no_cache = true;
  // Different wire bytes, same cache identity: a deadline changes when a
  // search gets cut off, never what its results are.
  EXPECT_NE(plain.Encode(), deadlined.Encode());
  EXPECT_EQ(plain.CacheKey(), deadlined.CacheKey());
}

TEST(Wire, CacheKeyDistinguishesSearchKnobs) {
  WireRequest a;
  a.query = "MKVLAT";
  WireRequest b = a;
  b.top_k = 3;
  WireRequest c = a;
  c.by_evalue = true;
  WireRequest d = a;
  d.index = "other";
  EXPECT_NE(a.CacheKey(), b.CacheKey());
  EXPECT_NE(a.CacheKey(), c.CacheKey());
  EXPECT_NE(a.CacheKey(), d.CacheKey());
}

TEST(Wire, DoneRoundTrip) {
  auto done = ParseDone(EncodeDone({42, true}));
  OASIS_ASSERT_OK(done.status());
  EXPECT_EQ(done->hits, 42u);
  EXPECT_TRUE(done->cached);
  EXPECT_FALSE(ParseDone("hits=x cached=0").ok());
  EXPECT_FALSE(ParseDone("").ok());
}

TEST(Wire, DecodeErrorMapsStatusCodes) {
  EXPECT_TRUE(DecodeError(util::Status::DeadlineExceeded("late").ToString())
                  .IsDeadlineExceeded());
  EXPECT_TRUE(
      DecodeError(util::Status::Cancelled("bye").ToString()).IsCancelled());
  EXPECT_TRUE(DecodeError(util::Status::Unavailable("full").ToString())
                  .IsUnavailable());
  EXPECT_TRUE(DecodeError(util::Status::NotFound("nope").ToString())
                  .IsNotFound());
  EXPECT_TRUE(DecodeError(util::Status::InvalidArgument("bad").ToString())
                  .IsInvalidArgument());
  // The message survives the round trip.
  EXPECT_EQ(DecodeError("Cancelled: cancelled by client").message(),
            "cancelled by client");
  // An unknown code is preserved verbatim under Internal, never dropped.
  const util::Status unknown = DecodeError("SomeFutureCode: details");
  EXPECT_TRUE(unknown.IsInternal());
  EXPECT_NE(unknown.ToString().find("SomeFutureCode: details"),
            std::string::npos);
}

// --- ResultCache -------------------------------------------------------------

CachedResult Lines(std::vector<std::string> lines) {
  return std::make_shared<const std::vector<std::string>>(std::move(lines));
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  cache.Insert("k", Lines({"line one", "line two"}));
  CachedResult hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0], "line one");
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 1 + 8 + 8);  // key + both lines
}

TEST(ResultCacheTest, LruEvictionDropsLeastRecentlyUsed) {
  // Each entry is 1-byte key + 100-byte line = 101 bytes; capacity holds
  // two.
  ResultCache cache(250);
  cache.Insert("a", Lines({std::string(100, 'a')}));
  cache.Insert("b", Lines({std::string(100, 'b')}));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh: b is now LRU
  cache.Insert("c", Lines({std::string(100, 'c')}));
  EXPECT_EQ(cache.Lookup("b"), nullptr);  // evicted
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 250u);
}

TEST(ResultCacheTest, EntryLargerThanCapacityIsNotStored) {
  ResultCache cache(50);
  cache.Insert("k", Lines({std::string(100, 'x')}));
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert("k", Lines({"line"}));
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ResultCacheTest, ReinsertReplacesValue) {
  ResultCache cache(1 << 20);
  cache.Insert("k", Lines({"old"}));
  cache.Insert("k", Lines({"new", "newer"}));
  CachedResult hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0], "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- SessionRegistry ---------------------------------------------------------

TEST(SessionRegistryTest, AdmitsUpToMaxInflight) {
  SessionRegistry::Options options;
  options.max_inflight = 2;
  SessionRegistry registry(options);

  auto a = registry.Admit();
  auto b = registry.Admit();
  OASIS_ASSERT_OK(a.status());
  OASIS_ASSERT_OK(b.status());
  auto c = registry.Admit();
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsUnavailable()) << c.status().ToString();
  EXPECT_NE(c.status().ToString().find("in-flight"), std::string::npos);
  EXPECT_EQ(registry.stats().active, 2u);
}

TEST(SessionRegistryTest, ReleaseFreesSlot) {
  SessionRegistry::Options options;
  options.max_inflight = 1;
  SessionRegistry registry(options);
  {
    auto ticket = registry.Admit();
    OASIS_ASSERT_OK(ticket.status());
    EXPECT_FALSE(registry.Admit().ok());
    EXPECT_EQ(registry.stats().active, 1u);
  }
  EXPECT_EQ(registry.stats().active, 0u);
  OASIS_EXPECT_OK(registry.Admit().status());
  const SessionRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected_inflight, 1u);
}

TEST(SessionRegistryTest, DrainingRejectsEverything) {
  SessionRegistry registry(SessionRegistry::Options{});
  EXPECT_FALSE(registry.draining());
  registry.BeginDrain();
  EXPECT_TRUE(registry.draining());
  auto ticket = registry.Admit();
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsUnavailable());
  EXPECT_NE(ticket.status().ToString().find("shutting down"),
            std::string::npos);
  EXPECT_EQ(registry.stats().rejected_draining, 1u);
}

TEST(SessionRegistryTest, PoolPressureRejects) {
  double pressure = 1.0;
  SessionRegistry::Options options;
  options.max_pinned_fraction = 0.95;
  options.pinned_fraction = [&pressure]() { return pressure; };
  SessionRegistry registry(options);

  auto rejected = registry.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable());
  EXPECT_NE(rejected.status().ToString().find("pressure"), std::string::npos);
  EXPECT_EQ(registry.stats().rejected_pressure, 1u);

  pressure = 0.5;
  OASIS_EXPECT_OK(registry.Admit().status());
}

TEST(SessionRegistryTest, WaitIdleBlocksUntilLastRelease) {
  SessionRegistry registry(SessionRegistry::Options{});
  auto admitted = registry.Admit();
  OASIS_ASSERT_OK(admitted.status());
  std::optional<SessionRegistry::Ticket> ticket(std::move(admitted).value());

  // Live ticket: a short wait times out.
  EXPECT_FALSE(registry.WaitIdle(std::chrono::milliseconds(10)));

  std::thread releaser([&ticket]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ticket.reset();  // releases the slot
  });
  EXPECT_TRUE(registry.WaitIdle(std::chrono::milliseconds(2000)));
  releaser.join();
  EXPECT_EQ(registry.stats().active, 0u);
}

TEST(SessionRegistryTest, CancelAllFlagsEveryLiveTicket) {
  SessionRegistry registry(SessionRegistry::Options{});
  auto a = registry.Admit();
  auto b = registry.Admit();
  OASIS_ASSERT_OK(a.status());
  OASIS_ASSERT_OK(b.status());
  EXPECT_FALSE(a->cancel_flag()->load());
  EXPECT_FALSE(b->cancel_flag()->load());
  registry.CancelAll();
  EXPECT_TRUE(a->cancel_flag()->load());
  EXPECT_TRUE(b->cancel_flag()->load());
}

// --- Daemon flags ------------------------------------------------------------

TEST(DaemonFlags, ParsesFullCommandLine) {
  auto config = ParseDaemonArgs(
      {"--index", "prot=/data/prot", "--index", "dna=/data/dna",
       "--host", "0.0.0.0", "--port", "7711", "--max-inflight", "8",
       "--result-cache-mb", "32", "--deadline-ms", "2500",
       "--max-pinned-fraction", "0.8", "--drain-timeout-ms", "1000",
       "--pool-mb", "128", "--io-mode", "pooled", "--readahead", "auto"});
  OASIS_ASSERT_OK(config.status());
  ASSERT_EQ(config->indexes.size(), 2u);
  EXPECT_EQ(config->indexes[0].first, "prot");
  EXPECT_EQ(config->indexes[0].second, "/data/prot");
  EXPECT_EQ(config->server.host, "0.0.0.0");
  EXPECT_EQ(config->server.port, 7711);
  EXPECT_EQ(config->server.max_inflight, 8u);
  EXPECT_EQ(config->server.result_cache_bytes, 32ull << 20);
  EXPECT_EQ(config->server.max_deadline_ms, 2500u);
  EXPECT_DOUBLE_EQ(config->server.max_pinned_fraction, 0.8);
  EXPECT_EQ(config->server.drain_timeout, std::chrono::milliseconds(1000));
  EXPECT_EQ(config->engine.pool_bytes, 128ull << 20);
  EXPECT_EQ(config->engine.io_mode, api::IoMode::kPooled);
  EXPECT_TRUE(config->engine.readahead_adaptive);
  EXPECT_GT(config->engine.readahead_blocks, 0u);
}

TEST(DaemonFlags, IndexNameDefaultsToBasename) {
  auto config = ParseDaemonArgs({"--index", "/data/indexes/swissprot"});
  OASIS_ASSERT_OK(config.status());
  EXPECT_EQ(config->indexes[0].first, "swissprot");
  EXPECT_EQ(config->indexes[0].second, "/data/indexes/swissprot");

  config = ParseDaemonArgs({"--index", "/data/indexes/swissprot/"});
  OASIS_ASSERT_OK(config.status());
  EXPECT_EQ(config->indexes[0].first, "swissprot");
}

TEST(DaemonFlags, DefaultsToPooledIo) {
  auto config = ParseDaemonArgs({"--index", "idx"});
  OASIS_ASSERT_OK(config.status());
  EXPECT_EQ(config->engine.io_mode, api::IoMode::kPooled);
}

TEST(DaemonFlags, RejectsDuplicateIndexNames) {
  auto config =
      ParseDaemonArgs({"--index", "a=/x", "--index", "a=/y"});
  ASSERT_FALSE(config.ok());
  EXPECT_TRUE(config.status().IsInvalidArgument());
  // Same basename through different paths collides too.
  config = ParseDaemonArgs({"--index", "/x/idx", "--index", "/y/idx"});
  EXPECT_FALSE(config.ok());
}

TEST(DaemonFlags, RejectsEmptyAndUnknown) {
  EXPECT_FALSE(ParseDaemonArgs({}).ok());
  EXPECT_FALSE(ParseDaemonArgs({"--index"}).ok());
  EXPECT_FALSE(ParseDaemonArgs({"--index", "idx", "--frobnicate", "1"}).ok());
  EXPECT_FALSE(ParseDaemonArgs({"--index", "idx", "--port"}).ok());
}

TEST(DaemonFlags, RangeChecksNameTheFlag) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"--port", "65536"},
      {"--max-inflight", "0"},
      {"--max-inflight", "4097"},
      {"--result-cache-mb", "4097"},
      {"--deadline-ms", "0"},
      {"--max-pinned-fraction", "0.05"},
      {"--max-pinned-fraction", "1.5"},
      {"--drain-timeout-ms", "600001"},
      {"--pool-mb", "0"},
      {"--io-mode", "warp"},
      {"--readahead", "boundless"},
  };
  for (const auto& [flag, value] : bad) {
    auto config = ParseDaemonArgs({"--index", "idx", flag, value});
    ASSERT_FALSE(config.ok()) << flag << " " << value;
    EXPECT_TRUE(config.status().IsInvalidArgument());
    EXPECT_NE(config.status().ToString().find(flag), std::string::npos)
        << "rejection must name the flag: " << config.status().ToString();
  }
}

// --- Server integration ------------------------------------------------------

// Two engines over small generated databases, shared by every Server test.
// Building them once keeps the suite fast; the servers themselves are
// cheap to start per-test.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    main_dir_ = new util::TempDir("server-main");
    alt_dir_ = new util::TempDir("server-alt");

    api::EngineOptions options;
    options.io_mode = api::IoMode::kPooled;

    workload::ProteinDatabaseOptions db_options;
    db_options.target_residues = 20000;
    db_options.seed = 7;
    auto db = workload::GenerateProteinDatabase(db_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto built = api::Engine::BuildFromDatabase(std::move(db).value(),
                                                main_dir_->path(), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    main_engine_ = built->release();

    db_options.target_residues = 6000;
    db_options.seed = 99;
    db = workload::GenerateProteinDatabase(db_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    built = api::Engine::BuildFromDatabase(std::move(db).value(),
                                           alt_dir_->path(), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    alt_engine_ = built->release();

    // A query planted from the main database so strong hits exist.
    auto resident = main_engine_->ResidentDatabase();
    ASSERT_TRUE(resident.ok());
    const seq::Sequence& src = (*resident)->sequence(3);
    std::vector<seq::Symbol> symbols(
        src.symbols().begin(),
        src.symbols().begin() + std::min<size_t>(13, src.size()));
    query_text_ = new std::string(main_engine_->alphabet().Decode(symbols));
  }

  static void TearDownTestSuite() {
    delete main_engine_;
    main_engine_ = nullptr;
    delete alt_engine_;
    alt_engine_ = nullptr;
    delete query_text_;
    query_text_ = nullptr;
    delete main_dir_;
    main_dir_ = nullptr;
    delete alt_dir_;
    alt_dir_ = nullptr;
  }

  // Starts a two-index server ("main" is the default) on an ephemeral port.
  std::unique_ptr<Server> StartServer(ServerOptions options = ServerOptions()) {
    auto server = Server::Start(
        {{"main", main_engine_}, {"alt", alt_engine_}}, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).value() : nullptr;
  }

  DaemonClient ConnectTo(const Server& server) {
    auto client = DaemonClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // A moderate request: enough hits to stream, small enough to be quick.
  static WireRequest ModerateRequest() {
    WireRequest req;
    req.query = *query_text_;
    req.min_score = 15;
    return req;
  }

  // The exact lines the daemon streams for `wire`, computed locally
  // against the same engine — the parity oracle.
  static std::vector<std::string> LocalLines(const api::Engine& engine,
                                             const WireRequest& wire) {
    auto parsed = api::SearchRequest::FromText(engine.alphabet(), wire.query);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    api::SearchRequest request = std::move(parsed).value();
    if (wire.min_score > 0) {
      request.MinScore(wire.min_score);
    } else {
      request.EValue(wire.evalue);
    }
    request.TopK(wire.top_k).OrderByEValue(wire.by_evalue);
    auto batch = engine.SearchAll(request);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    std::vector<std::string> lines;
    for (const core::OasisResult& result : batch->results) {
      lines.push_back(core::FormatResult(
          result, engine.catalog().name(result.sequence_id), result.evalue));
    }
    return lines;
  }

  // Streams `wire` through `client`, collecting hit lines.
  static util::StatusOr<DaemonClient::QueryOutcome> Stream(
      DaemonClient& client, const WireRequest& wire,
      std::vector<std::string>* lines) {
    return client.Query(wire, [lines](std::string_view line) {
      lines->push_back(std::string(line));
      return true;
    });
  }

  static util::TempDir* main_dir_;
  static util::TempDir* alt_dir_;
  static api::Engine* main_engine_;
  static api::Engine* alt_engine_;
  static std::string* query_text_;
};

util::TempDir* ServerTest::main_dir_ = nullptr;
util::TempDir* ServerTest::alt_dir_ = nullptr;
api::Engine* ServerTest::main_engine_ = nullptr;
api::Engine* ServerTest::alt_engine_ = nullptr;
std::string* ServerTest::query_text_ = nullptr;

TEST_F(ServerTest, PingPong) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  DaemonClient client = ConnectTo(*server);
  OASIS_EXPECT_OK(client.Ping());
  OASIS_EXPECT_OK(client.Ping());  // the connection stays usable
}

TEST_F(ServerTest, StreamingParityIsByteIdentical) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const WireRequest wire = ModerateRequest();
  const std::vector<std::string> expected = LocalLines(*main_engine_, wire);
  ASSERT_FALSE(expected.empty()) << "parity test needs a non-empty stream";

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> got;
  auto outcome = Stream(client, wire, &got);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached);
  EXPECT_EQ(outcome->hits, expected.size());
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "hit #" << i;
  }
}

TEST_F(ServerTest, CachedReplayIsByteIdenticalAndFlagged) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const WireRequest wire = ModerateRequest();

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> first;
  auto outcome = Stream(client, wire, &first);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached);

  std::vector<std::string> second;
  outcome = Stream(client, wire, &second);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_TRUE(outcome->cached);
  EXPECT_EQ(second, first);

  const ResultCache::Stats stats = server->cache_stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.lookups, 2u);
}

TEST_F(ServerTest, NoCacheBypassesTheCache) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  WireRequest wire = ModerateRequest();
  wire.no_cache = true;

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  for (int round = 0; round < 2; ++round) {
    lines.clear();
    auto outcome = Stream(client, wire, &lines);
    OASIS_ASSERT_OK(outcome.status());
    EXPECT_FALSE(outcome->cached) << "round " << round;
  }
  const ResultCache::Stats stats = server->cache_stats();
  EXPECT_EQ(stats.lookups, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST_F(ServerTest, CacheDisabledServerStillStreams) {
  ServerOptions options;
  options.result_cache_bytes = 0;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  const WireRequest wire = ModerateRequest();

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> first, second;
  auto outcome = Stream(client, wire, &first);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached);
  outcome = Stream(client, wire, &second);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached);  // never served from cache
  EXPECT_EQ(second, first);
}

TEST_F(ServerTest, UnknownIndexIsNotFound) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  WireRequest wire = ModerateRequest();
  wire.index = "nosuch";
  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  auto outcome = Stream(client, wire, &lines);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotFound()) << outcome.status().ToString();
  EXPECT_TRUE(lines.empty());
  // The error terminated one query, not the connection.
  OASIS_EXPECT_OK(client.Ping());
}

TEST_F(ServerTest, MultiIndexRoutingAndDefault) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  DaemonClient client = ConnectTo(*server);

  // ix=alt answers from the alt engine.
  WireRequest wire = ModerateRequest();
  wire.index = "alt";
  const std::vector<std::string> alt_expected = LocalLines(*alt_engine_, wire);
  std::vector<std::string> alt_got;
  auto outcome = Stream(client, wire, &alt_got);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_EQ(alt_got, alt_expected);

  // No ix routes to the first served index ("main").
  wire.index.clear();
  std::vector<std::string> default_got;
  outcome = Stream(client, wire, &default_got);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_EQ(default_got, LocalLines(*main_engine_, wire));
}

TEST_F(ServerTest, InvalidQueryTextIsRejectedPerQuery) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  WireRequest wire;
  wire.query = "123!!";
  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  auto outcome = Stream(client, wire, &lines);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsInvalidArgument())
      << outcome.status().ToString();
  OASIS_EXPECT_OK(client.Ping());
}

TEST_F(ServerTest, ClientCancelMidStreamKeepsConnectionUsable) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // A heavier request so the stream is long enough to cancel into.
  WireRequest wire = ModerateRequest();
  wire.min_score = 12;
  wire.no_cache = true;

  DaemonClient client = ConnectTo(*server);
  size_t delivered = 0;
  auto outcome = client.Query(wire, [&delivered](std::string_view) {
    ++delivered;
    return delivered < 2;  // cancel after the second hit
  });
  // Either the cancel landed mid-search (kCancelled) or it raced stream
  // completion (kDone); both are legal per the protocol.
  if (!outcome.ok()) {
    EXPECT_TRUE(outcome.status().IsCancelled()) << outcome.status().ToString();
  }
  EXPECT_GE(delivered, 1u);
  // The connection survives a cancelled query.
  OASIS_EXPECT_OK(client.Ping());
  std::vector<std::string> lines;
  auto after = Stream(client, ModerateRequest(), &lines);
  OASIS_EXPECT_OK(after.status());
}

TEST_F(ServerTest, WireDeadlineYieldsPartialStreamAndDeadlineExceeded) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // A low threshold makes the search orders of magnitude longer than the
  // 1 ms deadline, so the abort lands mid-search deterministically.
  WireRequest wire = ModerateRequest();
  wire.min_score = 8;
  wire.deadline_ms = 1;
  wire.no_cache = true;

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  auto outcome = Stream(client, wire, &lines);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded())
      << outcome.status().ToString();
  // Hits streamed before the deadline stand as the partial result; the
  // aborted prefix must never enter the cache.
  EXPECT_EQ(server->cache_stats().insertions, 0u);
  EXPECT_EQ(main_engine_->pool().num_pinned(), 0u);
  OASIS_EXPECT_OK(client.Ping());
}

TEST_F(ServerTest, ServerSideDeadlineCapAppliesToUncappedRequests) {
  ServerOptions options;
  options.max_deadline_ms = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  WireRequest wire = ModerateRequest();
  wire.min_score = 8;  // long search; the server's 1 ms cap cuts it off

  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  auto outcome = Stream(client, wire, &lines);
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded())
      << outcome.status().ToString();
}

TEST_F(ServerTest, StatsDocumentCoversServerAndIndexes) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  DaemonClient client = ConnectTo(*server);
  std::vector<std::string> lines;
  OASIS_ASSERT_OK(Stream(client, ModerateRequest(), &lines).status());

  auto stats = client.Stats();
  OASIS_ASSERT_OK(stats.status());
  EXPECT_NE(stats->find("\"server\":{\"draining\":false"), std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("\"admitted\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"main\":{\"epoch\":"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"alt\":{\"epoch\":"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"io_mode\":\"pooled\""), std::string::npos) << *stats;
  // The document matches the direct accessor.
  EXPECT_EQ(*stats, server->StatsJson());
}

TEST_F(ServerTest, ConcurrentClientsShareOneEngineAndAgree) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const WireRequest wire = ModerateRequest();
  const std::vector<std::string> expected = LocalLines(*main_engine_, wire);
  ASSERT_FALSE(expected.empty());

  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> got(kClients);
  std::vector<util::Status> statuses(kClients, util::Status::OK());
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      auto client = DaemonClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        statuses[i] = client.status();
        return;
      }
      auto outcome = client->Query(wire, [&got, i](std::string_view line) {
        got[i].push_back(std::string(line));
        return true;
      });
      statuses[i] = outcome.status();
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    OASIS_EXPECT_OK(statuses[i]);
    EXPECT_EQ(got[i], expected) << "client #" << i;
  }
  EXPECT_GE(server->session_stats().admitted, 1u);
  EXPECT_EQ(server->session_stats().active, 0u);
  EXPECT_EQ(main_engine_->pool().num_pinned(), 0u);
}

TEST_F(ServerTest, ShutdownUnderLoadLeaksNoPins) {
  ServerOptions options;
  options.drain_timeout = std::chrono::milliseconds(100);
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // Long-running queries (low threshold, cache bypassed) across several
  // clients, then shut down while they stream.
  WireRequest wire = ModerateRequest();
  wire.min_score = 8;
  wire.no_cache = true;

  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  std::vector<util::Status> statuses(kClients, util::Status::OK());
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i]() {
      auto client = DaemonClient::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        statuses[i] = client.status();
        return;
      }
      auto outcome = client->Query(wire, [](std::string_view) { return true; });
      statuses[i] = outcome.status();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->Shutdown();
  for (std::thread& t : threads) t.join();

  // Whatever each client saw (a completed stream, a cancellation, an
  // unavailable rejection, or a closed connection), the server side must
  // end clean: no live sessions, no pinned frames.
  EXPECT_EQ(server->session_stats().active, 0u);
  EXPECT_EQ(main_engine_->pool().num_pinned(), 0u);
  EXPECT_EQ(alt_engine_->pool().num_pinned(), 0u);
}

TEST_F(ServerTest, ShutdownClosesTheListener) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const uint16_t port = server->port();
  server->Shutdown();
  auto client = DaemonClient::Connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
  // Shutdown is idempotent.
  server->Shutdown();
}

TEST_F(ServerTest, StartRejectsBadConfigurations) {
  EXPECT_FALSE(Server::Start({}, ServerOptions()).ok());
  EXPECT_FALSE(
      Server::Start({{"a", main_engine_}, {"a", alt_engine_}}, ServerOptions())
          .ok());
  EXPECT_FALSE(Server::Start({{"a", nullptr}}, ServerOptions()).ok());
  ServerOptions options;
  options.host = "not-an-address";
  EXPECT_FALSE(Server::Start({{"a", main_engine_}}, options).ok());
}

}  // namespace
}  // namespace server
}  // namespace oasis
