// Shared helpers for the OASIS test suite.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oasis.h"
#include "seq/database.h"
#include "storage/buffer_pool.h"
#include "suffix/packed_builder.h"
#include "util/env.h"

namespace oasis {
namespace testing {

/// Asserts that a Status is OK, printing it otherwise.
#define OASIS_ASSERT_OK(expr)                                 \
  do {                                                        \
    const ::oasis::util::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define OASIS_EXPECT_OK(expr)                                 \
  do {                                                        \
    const ::oasis::util::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

/// Builds a database from residue strings (ids auto-assigned "s0", "s1"...).
inline seq::SequenceDatabase MakeDatabase(const seq::Alphabet& alphabet,
                                          const std::vector<std::string>& texts) {
  std::vector<seq::Sequence> sequences;
  for (size_t i = 0; i < texts.size(); ++i) {
    auto s = seq::Sequence::FromString(alphabet, "s" + std::to_string(i),
                                       texts[i]);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    sequences.push_back(std::move(s).value());
  }
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(sequences));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Encodes one residue string.
inline std::vector<seq::Symbol> Encode(const seq::Alphabet& alphabet,
                                       const std::string& text) {
  auto encoded = alphabet.Encode(text);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return std::move(encoded).value();
}

/// A packed suffix tree in a temp directory plus its buffer pool; keeps
/// everything alive together for the duration of a test.
struct PackedFixture {
  util::TempDir dir;
  std::unique_ptr<storage::BufferPool> pool;
  std::unique_ptr<suffix::PackedSuffixTree> tree;

  explicit PackedFixture(const seq::SequenceDatabase& db,
                         uint64_t pool_bytes = 64 << 20,
                         uint32_t block_size = storage::kDefaultBlockSize)
      : dir("packed") {
    pool = std::make_unique<storage::BufferPool>(pool_bytes, block_size);
    suffix::PackOptions options;
    options.block_size = block_size;
    auto opened =
        suffix::BuildAndOpenPacked(db, dir.path(), pool.get(), options);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    tree = std::move(opened).value();
  }
};

/// Runs OASIS and returns all results (empty on error, with test failure).
inline std::vector<core::OasisResult> RunOasis(
    const suffix::PackedSuffixTree& tree,
    const score::SubstitutionMatrix& matrix,
    const std::vector<seq::Symbol>& query, const core::OasisOptions& options,
    core::OasisStats* stats = nullptr) {
  core::OasisSearch search(&tree, &matrix);
  auto results = search.SearchAll(query, options, stats);
  EXPECT_TRUE(results.ok()) << results.status().ToString();
  return results.ok() ? std::move(results).value()
                      : std::vector<core::OasisResult>{};
}

}  // namespace testing
}  // namespace oasis
