// Deadline / cancellation semantics at cursor suspension points.
//
// The contract under test (core/oasis.h OasisOptions::poll,
// api/engine.h SearchRequest::{Deadline,CancelWith,PollWith}):
//
//   - the poll runs at every queue pop, so an abort lands mid-search with
//     the results proven so far standing as a partial stream;
//   - the abort status is a sticky terminal — every later Next() repeats it;
//   - an aborted cursor holds zero buffer-pool pins (the daemon's graceful
//     shutdown leans on this: CancelAll + one suspension point = all pins
//     released);
//   - a search with no deadline/cancel hook streams exactly the same
//     results as one with hooks that never fire.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "api/engine.h"
#include "core/oasis.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::PackedFixture;

// --- Core layer: OasisOptions::poll ------------------------------------------

class CursorDeadlineCoreTest : public ::testing::Test {
 protected:
  CursorDeadlineCoreTest() {
    workload::ProteinDatabaseOptions options;
    options.target_residues = 6000;
    options.log_mean = 4.0;
    options.seed = 77;
    auto db = workload::GenerateProteinDatabase(options);
    EXPECT_TRUE(db.ok());
    db_ = std::make_unique<seq::SequenceDatabase>(std::move(db).value());
    fixture_ = std::make_unique<PackedFixture>(*db_);

    const seq::Sequence& src = db_->sequence(3);
    query_.assign(src.symbols().begin(), src.symbols().begin() +
                                             std::min<size_t>(13, src.size()));
  }

  core::OasisOptions BaseOptions() const {
    core::OasisOptions options;
    options.min_score = 15;
    return options;
  }

  std::unique_ptr<seq::SequenceDatabase> db_;
  std::unique_ptr<PackedFixture> fixture_;
  std::vector<seq::Symbol> query_;
};

TEST_F(CursorDeadlineCoreTest, PollAbortMidSearchYieldsPartialPrefix) {
  const auto all = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_,
      BaseOptions());
  ASSERT_GT(all.size(), 3u);

  // Inject a failure after a fixed number of suspension points: the abort
  // lands somewhere mid-search, after some (possibly zero) results.
  core::OasisOptions options = BaseOptions();
  uint64_t polls = 0;
  options.poll = [&polls]() -> util::Status {
    if (++polls > 40) return util::Status::Unavailable("injected poll failure");
    return util::Status::OK();
  };
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  auto cursor = search.Cursor(query_, options);
  OASIS_ASSERT_OK(cursor.status());

  std::vector<core::OasisResult> partial;
  util::Status abort = util::Status::OK();
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) {
      abort = next.status();
      break;
    }
    ASSERT_TRUE(next->has_value()) << "stream completed before the poll "
                                      "fired; raise the search size";
    partial.push_back(std::move(**next));
  }
  EXPECT_TRUE(abort.IsUnavailable()) << abort.ToString();
  EXPECT_LT(partial.size(), all.size());

  // The partial stream is a prefix of the full one — aborting never
  // reorders or invents results.
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].sequence_id, all[i].sequence_id);
    EXPECT_EQ(partial[i].score, all[i].score);
  }

  // Sticky terminal: the same status, every time.
  for (int i = 0; i < 3; ++i) {
    auto again = cursor->Next();
    ASSERT_FALSE(again.ok());
    EXPECT_TRUE(again.status().IsUnavailable()) << again.status().ToString();
  }
  EXPECT_TRUE(cursor->done());
  // Stats survive the abort.
  EXPECT_GT(cursor->stats().nodes_expanded, 0u);

  // Nothing stays pinned after an abort.
  EXPECT_EQ(fixture_->pool->num_pinned(), 0u);
}

TEST_F(CursorDeadlineCoreTest, PollFailingImmediatelyYieldsEmptyStream) {
  core::OasisOptions options = BaseOptions();
  options.poll = []() { return util::Status::Cancelled("cancelled up front"); };
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  auto cursor = search.Cursor(query_, options);
  OASIS_ASSERT_OK(cursor.status());
  auto next = cursor->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCancelled()) << next.status().ToString();
  EXPECT_EQ(fixture_->pool->num_pinned(), 0u);
}

TEST_F(CursorDeadlineCoreTest, NeverFiringPollLeavesStreamIdentical) {
  const auto all = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_,
      BaseOptions());

  core::OasisOptions options = BaseOptions();
  options.poll = []() { return util::Status::OK(); };
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  auto cursor = search.Cursor(query_, options);
  OASIS_ASSERT_OK(cursor.status());
  std::vector<core::OasisResult> polled;
  while (true) {
    auto next = cursor->Next();
    OASIS_ASSERT_OK(next.status());
    if (!next->has_value()) break;
    polled.push_back(std::move(**next));
  }
  ASSERT_EQ(polled.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(polled[i].sequence_id, all[i].sequence_id);
    EXPECT_EQ(polled[i].score, all[i].score);
    EXPECT_EQ(polled[i].db_end_pos, all[i].db_end_pos);
  }
}

// --- API layer: SearchRequest::{Deadline,CancelWith} -------------------------

class CursorDeadlineApiTest : public ::testing::Test {
 protected:
  CursorDeadlineApiTest() : dir_("deadline-api") {
    workload::ProteinDatabaseOptions db_options;
    db_options.target_residues = 20000;
    db_options.seed = 7;
    auto db = workload::GenerateProteinDatabase(db_options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();

    api::EngineOptions options;
    options.io_mode = api::IoMode::kPooled;
    auto built = api::Engine::BuildFromDatabase(std::move(db).value(),
                                                dir_.path(), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    engine_ = std::move(built).value();

    auto resident = engine_->ResidentDatabase();
    EXPECT_TRUE(resident.ok());
    const seq::Sequence& src = (*resident)->sequence(3);
    query_.assign(src.symbols().begin(), src.symbols().begin() +
                                             std::min<size_t>(13, src.size()));
  }

  api::SearchRequest Request() const {
    return api::SearchRequest(query_).MinScore(15);
  }

  util::TempDir dir_;
  std::unique_ptr<api::Engine> engine_;
  std::vector<seq::Symbol> query_;
};

TEST_F(CursorDeadlineApiTest, PastDeadlineAbortsBeforeFirstResult) {
  api::SearchRequest request = Request();
  request.Deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  auto cursor = engine_->Search(request);
  OASIS_ASSERT_OK(cursor.status());
  auto next = cursor->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsDeadlineExceeded()) << next.status().ToString();
  // Sticky, and done() reflects the terminal state.
  auto again = cursor->Next();
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsDeadlineExceeded());
  EXPECT_TRUE(cursor->done());
  EXPECT_EQ(engine_->pool().num_pinned(), 0u);
}

TEST_F(CursorDeadlineApiTest, FarDeadlineLeavesStreamIdentical) {
  auto baseline = engine_->SearchAll(Request());
  OASIS_ASSERT_OK(baseline.status());
  ASSERT_FALSE(baseline->results.empty());

  api::SearchRequest request = Request();
  request.Deadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  auto deadlined = engine_->SearchAll(request);
  OASIS_ASSERT_OK(deadlined.status());

  ASSERT_EQ(deadlined->results.size(), baseline->results.size());
  for (size_t i = 0; i < baseline->results.size(); ++i) {
    EXPECT_EQ(deadlined->results[i].sequence_id,
              baseline->results[i].sequence_id);
    EXPECT_EQ(deadlined->results[i].score, baseline->results[i].score);
    EXPECT_EQ(deadlined->results[i].db_end_pos,
              baseline->results[i].db_end_pos);
  }
}

TEST_F(CursorDeadlineApiTest, CancelFlagAbortsAtNextSuspensionPoint) {
  std::atomic<bool> cancel{false};
  api::SearchRequest request = Request();
  request.CancelWith(&cancel);
  auto cursor = engine_->Search(request);
  OASIS_ASSERT_OK(cursor.status());

  // Pull one real result, then cancel: the next pull must abort.
  auto first = cursor->Next();
  OASIS_ASSERT_OK(first.status());
  ASSERT_TRUE(first->has_value());

  cancel.store(true);
  auto next = cursor->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCancelled()) << next.status().ToString();
  auto again = cursor->Next();
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsCancelled());
  EXPECT_EQ(engine_->pool().num_pinned(), 0u);
}

TEST_F(CursorDeadlineApiTest, CancellationWinsOverExpiredDeadline) {
  // Both hooks fire on the same suspension point; the composed poll checks
  // cancellation first, so a disconnecting client reads kCancelled even
  // when its deadline also lapsed.
  std::atomic<bool> cancel{true};
  api::SearchRequest request = Request();
  request.CancelWith(&cancel);
  request.Deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  auto cursor = engine_->Search(request);
  OASIS_ASSERT_OK(cursor.status());
  auto next = cursor->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsCancelled()) << next.status().ToString();
}

TEST_F(CursorDeadlineApiTest, CustomPollComposesAfterBuiltinChecks) {
  uint64_t polls = 0;
  api::SearchRequest request = Request();
  request.PollWith([&polls]() -> util::Status {
    if (++polls > 20) return util::Status::IOError("socket gone");
    return util::Status::OK();
  });
  auto cursor = engine_->Search(request);
  OASIS_ASSERT_OK(cursor.status());
  util::Status abort = util::Status::OK();
  size_t hits = 0;
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) {
      abort = next.status();
      break;
    }
    if (!next->has_value()) break;
    ++hits;
  }
  EXPECT_TRUE(abort.IsIOError()) << abort.ToString();
  EXPECT_GT(polls, 20u);
  EXPECT_EQ(engine_->pool().num_pinned(), 0u);
}

}  // namespace
}  // namespace oasis
