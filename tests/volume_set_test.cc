// VolumeSetManifest in isolation: the single home of index-dir layout
// knowledge. Round-trips must be lossless, the legacy fallback must
// synthesize a one-volume set, and every corruption a hostile or torn
// manifest could exhibit — missing header, count mismatch, path-escaping
// names, unknown keys — must be rejected loudly, never half-loaded.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/volume_set.h"
#include "suffix/packed_tree.h"
#include "test_util.h"
#include "util/env.h"

namespace oasis {
namespace {

using api::VolumeInfo;
using api::VolumeSetManifest;

/// Writes raw bytes to `dir/name` (for hand-crafted manifest corpses).
void WriteFile(const std::string& dir, const std::string& name,
               const std::string& contents) {
  std::ofstream out(dir + "/" + name, std::ios::trunc | std::ios::binary);
  ASSERT_TRUE(out) << "cannot write " << dir << "/" << name;
  out << contents;
}

VolumeInfo MakeVolume(const std::string& name, uint64_t sequences,
                      uint64_t residues, uint32_t partitions, uint32_t passes,
                      uint64_t max_suffixes) {
  VolumeInfo volume;
  volume.name = name;
  volume.num_sequences = sequences;
  volume.num_residues = residues;
  volume.build_stats.num_partitions = partitions;
  volume.build_stats.num_passes = passes;
  volume.build_stats.max_partition_suffixes = max_suffixes;
  return volume;
}

TEST(VolumeSetManifest, NextVolumeNameIsMonotoneAndNeverReused) {
  VolumeSetManifest manifest;
  EXPECT_EQ(manifest.NextVolumeName(), "vol_0000");
  EXPECT_EQ(manifest.NextVolumeName(), "vol_0001");
  EXPECT_EQ(manifest.next_volume(), 2u);

  // Compaction replaces every volume; the counter must not rewind — a
  // reader holding the old set may still have vol_0001 open.
  manifest.ReplaceVolumes({MakeVolume("vol_0002", 1, 10, 1, 1, 10)});
  EXPECT_EQ(manifest.NextVolumeName(), "vol_0002");
  EXPECT_EQ(manifest.NextVolumeName(), "vol_0003");
}

TEST(VolumeSetManifest, SaveLoadRoundTripIsLossless) {
  util::TempDir dir("volset");
  VolumeSetManifest manifest;
  manifest.AddVolume(MakeVolume(manifest.NextVolumeName(), 12, 4096, 3, 2,
                                1777));
  manifest.AddVolume(MakeVolume(manifest.NextVolumeName(), 5, 512, 1, 1, 513));
  manifest.BumpGeneration();
  manifest.BumpGeneration();
  OASIS_ASSERT_OK(manifest.Save(dir.path()));

  EXPECT_TRUE(VolumeSetManifest::Exists(dir.path()));
  auto loaded = VolumeSetManifest::Load(dir.path());
  OASIS_ASSERT_OK(loaded.status());
  EXPECT_FALSE(loaded->legacy());
  EXPECT_EQ(loaded->generation(), 3u);
  EXPECT_EQ(loaded->next_volume(), 2u);
  ASSERT_EQ(loaded->num_volumes(), 2u);
  EXPECT_EQ(loaded->volumes()[0].name, "vol_0000");
  EXPECT_EQ(loaded->volumes()[0].num_sequences, 12u);
  EXPECT_EQ(loaded->volumes()[0].num_residues, 4096u);
  EXPECT_EQ(loaded->volumes()[0].build_stats.num_partitions, 3u);
  EXPECT_EQ(loaded->volumes()[0].build_stats.num_passes, 2u);
  EXPECT_EQ(loaded->volumes()[0].build_stats.max_partition_suffixes, 1777u);
  EXPECT_EQ(loaded->volumes()[1].name, "vol_0001");
  EXPECT_EQ(loaded->num_sequences(), 17u);
  EXPECT_EQ(loaded->num_residues(), 4608u);

  // The atomic publish must not leave its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(
      dir.path() + "/" + std::string(VolumeSetManifest::kFileName) + ".tmp"));
}

TEST(VolumeSetManifest, SaveOverwritesAtomically) {
  util::TempDir dir("volset");
  VolumeSetManifest manifest;
  manifest.AddVolume(MakeVolume(manifest.NextVolumeName(), 1, 10, 1, 1, 11));
  OASIS_ASSERT_OK(manifest.Save(dir.path()));

  manifest.AddVolume(MakeVolume(manifest.NextVolumeName(), 2, 20, 1, 1, 21));
  manifest.BumpGeneration();
  OASIS_ASSERT_OK(manifest.Save(dir.path()));

  auto loaded = VolumeSetManifest::Load(dir.path());
  OASIS_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->generation(), 2u);
  EXPECT_EQ(loaded->num_volumes(), 2u);
}

TEST(VolumeSetManifest, SaveRefusesEmptyVolumeList) {
  util::TempDir dir("volset");
  VolumeSetManifest manifest;
  const util::Status status = manifest.Save(dir.path());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(VolumeSetManifest, LegacyDirectorySynthesizesOneVolumeSet) {
  util::TempDir dir("volset");
  // A packed tree at the root, no manifest file: the pre-volume layout.
  WriteFile(dir.path(), suffix::PackedTreeFiles::kMeta, "placeholder\n");

  EXPECT_FALSE(VolumeSetManifest::Exists(dir.path()));
  auto loaded = VolumeSetManifest::Load(dir.path());
  OASIS_ASSERT_OK(loaded.status());
  EXPECT_TRUE(loaded->legacy());
  ASSERT_EQ(loaded->num_volumes(), 1u);
  EXPECT_EQ(loaded->volumes()[0].name, VolumeSetManifest::kLegacyVolumeName);
  // Counts are zero: the engine reads the real numbers from the tree.
  EXPECT_EQ(loaded->volumes()[0].num_sequences, 0u);
  EXPECT_EQ(loaded->volumes()[0].num_residues, 0u);
}

TEST(VolumeSetManifest, EmptyDirectoryIsNotFound) {
  util::TempDir dir("volset");
  const auto loaded = VolumeSetManifest::Load(dir.path());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status().ToString();
}

TEST(VolumeSetManifest, VolumeDirJoinsNamesAndKeepsLegacyRoot) {
  EXPECT_EQ(VolumeSetManifest::VolumeDir("/idx", "vol_0003"), "/idx/vol_0003");
  EXPECT_EQ(VolumeSetManifest::VolumeDir(
                "/idx", VolumeSetManifest::kLegacyVolumeName),
            "/idx");
}

TEST(VolumeSetManifest, FindVolumeByName) {
  VolumeSetManifest manifest;
  manifest.AddVolume(MakeVolume("vol_0000", 1, 10, 1, 1, 11));
  manifest.AddVolume(MakeVolume("vol_0002", 1, 10, 1, 1, 11));
  EXPECT_EQ(manifest.FindVolume("vol_0000"), 0);
  EXPECT_EQ(manifest.FindVolume("vol_0002"), 1);
  EXPECT_EQ(manifest.FindVolume("vol_0001"), -1);
}

// --- Corruption rejection ---------------------------------------------------

/// Loads a hand-written manifest and expects Corruption mentioning `what`.
void ExpectCorrupt(const std::string& contents, const std::string& what) {
  util::TempDir dir("volset");
  WriteFile(dir.path(), VolumeSetManifest::kFileName, contents);
  const auto loaded = VolumeSetManifest::Load(dir.path());
  ASSERT_TRUE(loaded.status().IsCorruption())
      << "contents:\n" << contents << "\ngot: " << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find(what), std::string::npos)
      << "expected '" << what << "' in: " << loaded.status().ToString();
}

TEST(VolumeSetManifest, RejectsMissingHeader) {
  ExpectCorrupt(
      "generation 1\nnext_volume 1\nnum_volumes 1\n"
      "volume vol_0000 1 10 1 1 11\n",
      "missing its format header");
}

TEST(VolumeSetManifest, RejectsUnsupportedVersion) {
  ExpectCorrupt("oasis_volume_set 2\nnum_volumes 0\n",
                "unsupported format version");
}

TEST(VolumeSetManifest, RejectsVolumeCountMismatch) {
  ExpectCorrupt(
      "oasis_volume_set 1\ngeneration 1\nnext_volume 2\nnum_volumes 2\n"
      "volume vol_0000 1 10 1 1 11\n",
      "declares 2 volumes but lists 1");
}

TEST(VolumeSetManifest, RejectsEmptyVolumeList) {
  ExpectCorrupt(
      "oasis_volume_set 1\ngeneration 1\nnext_volume 0\nnum_volumes 0\n",
      "lists no volumes");
}

TEST(VolumeSetManifest, RejectsPathEscapingVolumeNames) {
  // A manifest must never direct its reader outside the index directory.
  ExpectCorrupt(
      "oasis_volume_set 1\ngeneration 1\nnext_volume 1\nnum_volumes 1\n"
      "volume ../evil 1 10 1 1 11\n",
      "escapes the index directory");
  ExpectCorrupt(
      "oasis_volume_set 1\ngeneration 1\nnext_volume 1\nnum_volumes 1\n"
      "volume a/b 1 10 1 1 11\n",
      "escapes the index directory");
}

TEST(VolumeSetManifest, RejectsUnknownKeys) {
  ExpectCorrupt(
      "oasis_volume_set 1\nshiny_new_knob 7\nnum_volumes 0\n",
      "unknown key");
}

TEST(VolumeSetManifest, RejectsTruncatedVolumeRecord) {
  ExpectCorrupt(
      "oasis_volume_set 1\ngeneration 1\nnext_volume 1\nnum_volumes 1\n"
      "volume vol_0000 1 10\n",
      "malformed volume record");
}

TEST(VolumeSetManifest, ToleratesCrlfAndBlankLines) {
  util::TempDir dir("volset");
  WriteFile(dir.path(), VolumeSetManifest::kFileName,
            "oasis_volume_set 1\r\n\r\ngeneration 4\r\nnext_volume 1\r\n"
            "num_volumes 1\r\nvolume vol_0000 2 64 1 1 65\r\n");
  auto loaded = VolumeSetManifest::Load(dir.path());
  OASIS_ASSERT_OK(loaded.status());
  EXPECT_EQ(loaded->generation(), 4u);
  EXPECT_EQ(loaded->volumes()[0].num_residues, 64u);
}

}  // namespace
}  // namespace oasis
