// Suffix-tree invariants (DESIGN.md invariant #4): every suffix is a
// root-to-leaf path, every substring is a path prefix, the tree is compact,
// and both construction algorithms agree.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "suffix/partitioned_builder.h"
#include "suffix/suffix_tree.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

std::string RandomDnaString(util::Random& rng, size_t len) {
  std::string out;
  for (size_t i = 0; i < len; ++i) out.push_back("ACGT"[rng.Uniform(4)]);
  return out;
}

TEST(SuffixTree, PaperFigure2Example) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  OASIS_EXPECT_OK(tree->Validate());
  // 12 suffixes (including the lone-terminator suffix) -> 12 leaves.
  EXPECT_EQ(tree->num_leaves(), 12u);

  // §2.3.1: query TACG is present, found at position 2.
  EXPECT_TRUE(tree->ContainsSubstring(Encode(seq::Alphabet::Dna(), "TACG")));
  auto occ = tree->FindOccurrences(Encode(seq::Alphabet::Dna(), "TACG"));
  EXPECT_EQ(occ, std::vector<uint64_t>{2});

  // Absent strings.
  EXPECT_FALSE(tree->ContainsSubstring(Encode(seq::Alphabet::Dna(), "TACT")));
  EXPECT_FALSE(tree->ContainsSubstring(Encode(seq::Alphabet::Dna(), "GG")));
}

TEST(SuffixTree, EverySuffixIsAPath) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGTACGT", "GATTACA", "TT"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok());
  for (seq::SequenceId s = 0; s < db.num_sequences(); ++s) {
    const auto& symbols = db.sequence(s).symbols();
    for (size_t off = 0; off < symbols.size(); ++off) {
      std::vector<seq::Symbol> suffix(symbols.begin() + off, symbols.end());
      EXPECT_TRUE(tree->ContainsSubstring(suffix))
          << "sequence " << s << " offset " << off;
      auto occ = tree->FindOccurrences(suffix);
      uint64_t global = db.SequenceStart(s) + off;
      EXPECT_TRUE(std::find(occ.begin(), occ.end(), global) != occ.end());
    }
  }
}

// Property test: occurrences reported by the tree equal brute-force string
// search, for random databases and random patterns (present and absent).
TEST(SuffixTree, OccurrencesMatchBruteForce) {
  util::Random rng(2024);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::string> texts;
    size_t num_seqs = 1 + rng.Uniform(4);
    for (size_t i = 0; i < num_seqs; ++i) {
      texts.push_back(RandomDnaString(rng, 1 + rng.Uniform(64)));
    }
    auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
    auto tree = suffix::SuffixTree::BuildUkkonen(db);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    OASIS_ASSERT_OK(tree->Validate());

    for (int q = 0; q < 20; ++q) {
      std::string pattern = RandomDnaString(rng, 1 + rng.Uniform(6));
      auto encoded = Encode(seq::Alphabet::Dna(), pattern);

      // Brute force over the concatenation (skip matches crossing
      // terminators; encoded patterns contain no terminator codes, so a
      // window match cannot contain one anyway).
      std::set<uint64_t> expected;
      const auto& text = db.symbols();
      for (size_t pos = 0; pos + encoded.size() <= text.size(); ++pos) {
        bool match = true;
        for (size_t k = 0; k < encoded.size(); ++k) {
          if (text[pos + k] != encoded[k]) {
            match = false;
            break;
          }
        }
        if (match) expected.insert(pos);
      }

      auto occ = tree->FindOccurrences(encoded);
      std::set<uint64_t> actual(occ.begin(), occ.end());
      EXPECT_EQ(actual, expected) << "pattern " << pattern;
      EXPECT_EQ(occ.size(), actual.size()) << "duplicate occurrences";
    }
  }
}

TEST(SuffixTree, DepthAndParentAreConsistent) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"GATTACAGATTACA"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok());
  for (suffix::NodeId id = 0; id < tree->num_nodes(); ++id) {
    if (id == tree->root()) continue;
    uint32_t d = tree->depth(id);
    uint32_t parent_d = tree->depth(tree->parent(id));
    EXPECT_EQ(d, parent_d + tree->edge_length(id));
  }
}

TEST(SuffixTree, SingleSymbolDatabase) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"A"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 2u);  // "A$" and "$"
  EXPECT_TRUE(tree->ContainsSubstring(Encode(seq::Alphabet::Dna(), "A")));
  EXPECT_FALSE(tree->ContainsSubstring(Encode(seq::Alphabet::Dna(), "C")));
}

TEST(SuffixTree, RunsOfOneSymbol) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AAAAAAAA"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok());
  OASIS_EXPECT_OK(tree->Validate());
  auto occ = tree->FindOccurrences(Encode(seq::Alphabet::Dna(), "AAA"));
  EXPECT_EQ(occ.size(), 6u);
}

// Identical sequences: terminators must keep their suffixes distinct.
TEST(SuffixTree, DuplicateSequences) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGT", "ACGT", "ACGT"});
  auto tree = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(tree.ok());
  OASIS_EXPECT_OK(tree->Validate());
  EXPECT_EQ(tree->num_leaves(), 15u);  // 3 * (4 + 1)
  auto occ = tree->FindOccurrences(Encode(seq::Alphabet::Dna(), "ACGT"));
  EXPECT_EQ(occ.size(), 3u);
}

// --- Partitioned builder =? Ukkonen ---------------------------------------

struct PartitionCase {
  uint32_t prefix_length;
  uint64_t budget;
  uint64_t seed;
};

class PartitionedBuilderEquivalence
    : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionedBuilderEquivalence, SameTreeAsUkkonen) {
  const PartitionCase& c = GetParam();
  util::Random rng(c.seed);
  std::vector<std::string> texts;
  size_t num_seqs = 1 + rng.Uniform(5);
  for (size_t i = 0; i < num_seqs; ++i) {
    texts.push_back(RandomDnaString(rng, 1 + rng.Uniform(80)));
  }
  auto db = MakeDatabase(seq::Alphabet::Dna(), texts);

  auto ukkonen = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(ukkonen.ok()) << ukkonen.status().ToString();

  suffix::PartitionedBuildOptions options;
  options.prefix_length = c.prefix_length;
  options.max_suffixes_per_pass = c.budget;
  suffix::PartitionedBuildStats stats;
  auto partitioned = suffix::BuildPartitioned(db, options, &stats);
  ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
  OASIS_EXPECT_OK(partitioned->Validate());

  EXPECT_TRUE(suffix::SuffixTree::Equal(*ukkonen, *partitioned));
  EXPECT_GE(stats.num_partitions, 1u);
  if (c.budget < 16) {
    // A small budget must produce multiple passes on any non-trivial input.
    EXPECT_GT(stats.num_partitions, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionedBuilderEquivalence,
    ::testing::Values(PartitionCase{1, 8, 21}, PartitionCase{1, 1u << 20, 22},
                      PartitionCase{2, 10, 23}, PartitionCase{2, 100, 24},
                      PartitionCase{3, 5, 25}, PartitionCase{3, 1u << 20, 26},
                      PartitionCase{4, 64, 27}));

TEST(PartitionedBuilder, RejectsBadOptions) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGT"});
  suffix::PartitionedBuildOptions options;
  options.prefix_length = 0;
  EXPECT_FALSE(suffix::BuildPartitioned(db, options).ok());
  options.prefix_length = 9;
  EXPECT_FALSE(suffix::BuildPartitioned(db, options).ok());
  options.prefix_length = 2;
  options.max_suffixes_per_pass = 0;
  EXPECT_FALSE(suffix::BuildPartitioned(db, options).ok());
}

}  // namespace
}  // namespace oasis
