// Tests for the extension features beyond the paper's core algorithm:
// affine-gap (Gotoh) baseline, E-value-ordered online emission, pruning
// ablation switches, and the scattered-layout pack option.

#include <algorithm>

#include <gtest/gtest.h>

#include "align/affine.h"
#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "suffix/packed_builder.h"
#include "suffix/tree_cursor.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;
using testing::PackedFixture;

// --- Affine gaps (Gotoh) ---------------------------------------------------

TEST(AffineGaps, ExactMatchIgnoresGapModel) {
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  align::AffineGapModel gaps{-5, -2};
  EXPECT_EQ(align::AffineAlignScore(q, q, score::SubstitutionMatrix::UnitDna(),
                                    gaps),
            8);
}

TEST(AffineGaps, LongGapCheaperThanLinear) {
  // Query = target with a 4-symbol block deleted. Under affine (-2 open,
  // -1 extend) the gap costs -6; under the equivalent linear model with
  // per-symbol -2 it costs -8.
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGTACGTACGT");
  auto t = Encode(seq::Alphabet::Dna(), "ACGTACGTACGT");  // last 4 deleted?
  // Build target with a middle deletion instead (unique alignment):
  auto target = Encode(seq::Alphabet::Dna(), "ACGTACACGT");  // GT..GT removed
  align::AffineGapModel affine{-2, -1};
  auto linear = score::SubstitutionMatrix::UnitDna().WithGapPenalty(-2);
  ASSERT_TRUE(linear.ok());

  auto q2 = Encode(seq::Alphabet::Dna(), "ACGTACGTAC");  // 10 symbols
  auto t2 = Encode(seq::Alphabet::Dna(), "ACGTAC");      // 4-suffix deleted
  score::ScoreT affine_score = align::AffineAlignScore(
      q2, t2, score::SubstitutionMatrix::UnitDna(), affine);
  align::SequenceHit linear_hit = align::AlignPair(q2, t2, *linear);
  // Both should find at least the 6-symbol identity; the affine model must
  // never lose to the linear one with matching open+extend >= linear costs.
  EXPECT_GE(affine_score, 6);
  EXPECT_GE(linear_hit.score, 6);
  (void)q;
  (void)t;
}

TEST(AffineGaps, SingleGapRunScoredAsOpenPlusExtends) {
  // q: AAAA CCCC, t: AAAA GG CCCC. Candidate alignments under unit residue
  // scores with gaps (open -1, extend -1):
  //   * bridge GG with a 2-symbol gap: 8 matches - (1 + 2*1) = 5;
  //   * two mismatches are impossible (only one C can pair with a G
  //     in-register); the best mismatch path scores 4 + 3 - 1 - gap... < 5.
  auto q = Encode(seq::Alphabet::Dna(), "AAAACCCC");
  auto t = Encode(seq::Alphabet::Dna(), "AAAAGGCCCC");
  align::AffineGapModel gaps{-1, -1};
  score::ScoreT s = align::AffineAlignScore(
      q, t, score::SubstitutionMatrix::UnitDna(), gaps);
  EXPECT_EQ(s, 5);

  // With a prohibitive opening cost the gap is no longer worth bridging:
  // best is one clean block of 4 matches (score 4).
  align::AffineGapModel expensive{-10, -1};
  EXPECT_EQ(align::AffineAlignScore(q, t, score::SubstitutionMatrix::UnitDna(),
                                    expensive),
            4);
}

TEST(AffineGaps, MatchesLinearWhenOpenIsZero) {
  // gap_open = 0 reduces the affine model to the linear model.
  util::Random rng(77);
  auto linear = score::SubstitutionMatrix::UnitDna().WithGapPenalty(-1);
  ASSERT_TRUE(linear.ok());
  align::AffineGapModel gaps{0, -1};
  for (int i = 0; i < 25; ++i) {
    std::vector<seq::Symbol> q(1 + rng.Uniform(15)), t(1 + rng.Uniform(20));
    for (auto& s : q) s = static_cast<seq::Symbol>(rng.Uniform(4));
    for (auto& s : t) s = static_cast<seq::Symbol>(rng.Uniform(4));
    score::ScoreT affine = align::AffineAlignScore(q, t, *linear, gaps);
    align::SequenceHit hit = align::AlignPair(q, t, *linear);
    EXPECT_EQ(affine, hit.score) << "trial " << i;
  }
}

TEST(AffineGaps, ScanFiltersAndSorts) {
  auto db = MakeDatabase(seq::Alphabet::Dna(),
                         {"TTTT", "ACGTACGT", "ACGT", "CCCC"});
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  align::AffineGapModel gaps{-3, -1};
  auto hits = align::AffineScanDatabase(
      q, db, score::SubstitutionMatrix::UnitDna(), gaps, 4);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].sequence_id, 1u);
  EXPECT_EQ(hits[0].score, 8);
  EXPECT_EQ(hits[1].sequence_id, 2u);
  EXPECT_EQ(hits[1].score, 4);
}

// --- E-value-ordered emission ----------------------------------------------

class EValueOrderTest : public ::testing::Test {
 protected:
  EValueOrderTest() {
    workload::ProteinDatabaseOptions options;
    options.target_residues = 8000;
    options.log_mean = 4.0;
    options.seed = 123;
    auto db = workload::GenerateProteinDatabase(options);
    EXPECT_TRUE(db.ok());
    db_ = std::make_unique<seq::SequenceDatabase>(std::move(db).value());
    fixture_ = std::make_unique<PackedFixture>(*db_);
    const seq::Sequence& src = db_->sequence(1);
    query_.assign(src.symbols().begin(), src.symbols().begin() + 12);
    auto karlin = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
    EXPECT_TRUE(karlin.ok());
    karlin_ = *karlin;
  }

  std::unique_ptr<seq::SequenceDatabase> db_;
  std::unique_ptr<PackedFixture> fixture_;
  std::vector<seq::Symbol> query_;
  score::KarlinParams karlin_;
};

TEST_F(EValueOrderTest, EmitsInNonDecreasingEValueOrder) {
  core::OasisOptions options;
  options.min_score = 15;
  options.order_by_evalue = true;
  options.karlin = karlin_;
  auto results = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);
  ASSERT_GT(results.size(), 3u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].evalue, results[i - 1].evalue) << "rank " << i;
  }
}

TEST_F(EValueOrderTest, SameResultSetAsScoreOrder) {
  core::OasisOptions options;
  options.min_score = 15;
  auto by_score = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);

  options.order_by_evalue = true;
  options.karlin = karlin_;
  auto by_evalue = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);

  ASSERT_EQ(by_score.size(), by_evalue.size());
  std::map<uint32_t, score::ScoreT> a, b;
  for (const auto& r : by_score) a[r.sequence_id] = r.score;
  for (const auto& r : by_evalue) b[r.sequence_id] = r.score;
  EXPECT_EQ(a, b);
}

TEST_F(EValueOrderTest, EValuesMatchPerSequenceFormula) {
  core::OasisOptions options;
  options.min_score = 15;
  options.order_by_evalue = true;
  options.karlin = karlin_;
  auto results = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);
  for (const auto& r : results) {
    double expect = score::EValueForScore(
        karlin_, r.score, query_.size(), db_->sequence(r.sequence_id).size());
    EXPECT_DOUBLE_EQ(r.evalue, expect);
  }
}

TEST_F(EValueOrderTest, RequiresKarlinParams) {
  core::OasisOptions options;
  options.min_score = 15;
  options.order_by_evalue = true;  // karlin left defaulted (invalid)
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  EXPECT_FALSE(search.SearchAll(query_, options).ok());
}

// --- Pruning ablation switches ----------------------------------------------

TEST_F(EValueOrderTest, AblationPreservesResultsAndNeverPrunesLess) {
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  core::OasisOptions base;
  base.min_score = 20;
  core::OasisStats base_stats;
  auto base_results = search.SearchAll(query_, base, &base_stats);
  ASSERT_TRUE(base_results.ok());

  for (int variant = 1; variant < 4; ++variant) {
    core::OasisOptions options = base;
    options.disable_rule2_pruning = (variant & 1) != 0;
    options.disable_rule3_pruning = (variant & 2) != 0;
    core::OasisStats stats;
    auto results = search.SearchAll(query_, options, &stats);
    ASSERT_TRUE(results.ok());
    // Identical per-sequence scores.
    ASSERT_EQ(results->size(), base_results->size()) << "variant " << variant;
    std::map<uint32_t, score::ScoreT> a, b;
    for (const auto& r : *base_results) a[r.sequence_id] = r.score;
    for (const auto& r : *results) b[r.sequence_id] = r.score;
    EXPECT_EQ(a, b) << "variant " << variant;
    // Never fewer columns than the fully-pruned baseline.
    EXPECT_GE(stats.columns_expanded, base_stats.columns_expanded);
  }
}

// --- Scattered layout still a valid tree ------------------------------------

TEST(ScatterLayout, TreeRemainsTraversable) {
  util::Random rng(9);
  std::vector<std::string> texts;
  for (int i = 0; i < 4; ++i) {
    std::string s;
    for (int k = 0; k < 60; ++k) s.push_back("ACGT"[rng.Uniform(4)]);
    texts.push_back(s);
  }
  auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
  auto mem = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(mem.ok());

  util::TempDir dir("scat");
  suffix::PackOptions options;
  options.scatter_internal_nodes = true;
  options.scatter_seed = 42;
  OASIS_ASSERT_OK(suffix::PackSuffixTree(*mem, dir.path(), options));
  storage::BufferPool pool(16 << 20);
  auto packed = suffix::PackedSuffixTree::Open(dir.path(), &pool);
  ASSERT_TRUE(packed.ok());
  suffix::TreeCursor cursor(packed->get());

  // Exact-match behaviour must be identical to the in-memory tree.
  for (int q = 0; q < 40; ++q) {
    std::string pattern;
    for (uint64_t k = 0; k < 1 + rng.Uniform(6); ++k) {
      pattern.push_back("ACGT"[rng.Uniform(4)]);
    }
    auto encoded = Encode(seq::Alphabet::Dna(), pattern);
    std::vector<uint8_t> bytes(encoded.begin(), encoded.end());
    auto got = cursor.ContainsSubstring(bytes);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, mem->ContainsSubstring(encoded)) << pattern;
  }

  // And OASIS over the scattered tree must equal S-W.
  core::OasisSearch search(packed->get(), &score::SubstitutionMatrix::UnitDna());
  auto query = Encode(seq::Alphabet::Dna(), "ACGTAC");
  core::OasisOptions search_options;
  search_options.min_score = 4;
  auto results = search.SearchAll(query, search_options);
  ASSERT_TRUE(results.ok());
  auto sw = align::ScanDatabase(query, db, score::SubstitutionMatrix::UnitDna(), 4);
  EXPECT_EQ(results->size(), sw.size());
}

}  // namespace
}  // namespace oasis
