// Online behaviour (paper §3, §4.6): results stream in non-increasing score
// order, top-k abort works, the callback contract holds, and the
// all-alignments extension mode reports additional locations.

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::MakeDatabase;
using testing::PackedFixture;

class OasisOnlineTest : public ::testing::Test {
 protected:
  OasisOnlineTest() {
    workload::ProteinDatabaseOptions options;
    options.target_residues = 6000;
    options.log_mean = 4.0;  // shorter sequences, more of them
    options.seed = 77;
    auto db = workload::GenerateProteinDatabase(options);
    EXPECT_TRUE(db.ok());
    db_ = std::make_unique<seq::SequenceDatabase>(std::move(db).value());
    fixture_ = std::make_unique<PackedFixture>(*db_);

    // A query planted from the database so several strong hits exist.
    const seq::Sequence& src = db_->sequence(3);
    query_.assign(src.symbols().begin(), src.symbols().begin() +
                                             std::min<size_t>(13, src.size()));
  }

  std::unique_ptr<seq::SequenceDatabase> db_;
  std::unique_ptr<PackedFixture> fixture_;
  std::vector<seq::Symbol> query_;
};

TEST_F(OasisOnlineTest, ScoresAreNonIncreasing) {
  core::OasisOptions options;
  options.min_score = 15;
  auto results = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);
  ASSERT_FALSE(results.empty());
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score);
  }
}

TEST_F(OasisOnlineTest, MaxResultsReturnsTrueTopK) {
  core::OasisOptions options;
  options.min_score = 15;
  auto all = testing::RunOasis(*fixture_->tree,
                               score::SubstitutionMatrix::Pam30(), query_,
                               options);
  ASSERT_GT(all.size(), 3u);

  options.max_results = 3;
  auto top3 = testing::RunOasis(*fixture_->tree,
                                score::SubstitutionMatrix::Pam30(), query_,
                                options);
  ASSERT_EQ(top3.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top3[i].score, all[i].score) << "rank " << i;
    EXPECT_EQ(top3[i].sequence_id, all[i].sequence_id) << "rank " << i;
  }
}

TEST_F(OasisOnlineTest, CallbackAbortStopsSearch) {
  core::OasisOptions options;
  options.min_score = 15;
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  int seen = 0;
  auto stats = search.Search(query_, options, [&](const core::OasisResult&) {
    ++seen;
    return seen < 2;  // abort after the second result
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(stats->results_emitted, 2u);
}

TEST_F(OasisOnlineTest, TopResultMatchesSmithWatermanGlobalBest) {
  core::OasisOptions options;
  options.min_score = 10;
  options.max_results = 1;
  auto top = testing::RunOasis(*fixture_->tree,
                               score::SubstitutionMatrix::Pam30(), query_,
                               options);
  ASSERT_EQ(top.size(), 1u);

  auto sw = align::ScanDatabase(query_, *db_,
                                score::SubstitutionMatrix::Pam30(), 10);
  ASSERT_FALSE(sw.empty());
  EXPECT_EQ(top[0].score, sw[0].score);
}

TEST_F(OasisOnlineTest, AllAlignmentsModeReportsAtLeastPerSequence) {
  core::OasisOptions options;
  options.min_score = 15;
  auto per_seq = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);
  options.all_alignments = true;
  auto all = testing::RunOasis(*fixture_->tree,
                               score::SubstitutionMatrix::Pam30(), query_,
                               options);
  EXPECT_GE(all.size(), per_seq.size());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i].score, all[i - 1].score);
  }
}

TEST_F(OasisOnlineTest, ReconstructedAlignmentsAreConsistent) {
  core::OasisOptions options;
  options.min_score = 15;
  options.reconstruct_alignments = true;
  auto results = testing::RunOasis(
      *fixture_->tree, score::SubstitutionMatrix::Pam30(), query_, options);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    ASSERT_TRUE(r.alignment.has_value());
    const align::Alignment& aln = *r.alignment;
    EXPECT_EQ(aln.score, r.score);
    // Recomputing the op-list score against the actual sequences must agree.
    const seq::Sequence& target = db_->sequence(r.sequence_id);
    EXPECT_EQ(aln.RecomputeScore(score::SubstitutionMatrix::Pam30(), query_,
                                 target.symbols()),
              r.score);
    EXPECT_LE(aln.target_end, target.size() - 1);
    EXPECT_LE(aln.query_start, aln.query_end);
  }
}

TEST_F(OasisOnlineTest, InvalidInputsRejected) {
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  core::OasisOptions options;
  auto empty = search.SearchAll({}, options);
  EXPECT_FALSE(empty.ok());

  options.min_score = 0;
  auto zero = search.SearchAll(query_, options);
  EXPECT_FALSE(zero.ok());

  options.min_score = 1;
  std::vector<seq::Symbol> bad_query{999};
  auto bad = search.SearchAll(bad_query, options);
  EXPECT_FALSE(bad.ok());
}

TEST_F(OasisOnlineTest, EValueThresholdConversion) {
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  auto karlin = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
  ASSERT_TRUE(karlin.ok());
  score::ScoreT strict = search.MinScoreForEValue(*karlin, 1.0, query_.size());
  score::ScoreT loose =
      search.MinScoreForEValue(*karlin, 20000.0, query_.size());
  EXPECT_GT(strict, loose);
  EXPECT_GE(loose, 1);
}

// Higher minScore must never slow the search down (monotone pruning).
TEST_F(OasisOnlineTest, HigherThresholdExpandsFewerColumns) {
  core::OasisSearch search(fixture_->tree.get(),
                           &score::SubstitutionMatrix::Pam30());
  core::OasisOptions options;
  uint64_t cols[2];
  int i = 0;
  for (score::ScoreT min_score : {12, 40}) {
    options.min_score = min_score;
    core::OasisStats stats;
    auto results = search.SearchAll(query_, options, &stats);
    ASSERT_TRUE(results.ok());
    cols[i++] = stats.columns_expanded;
  }
  EXPECT_LE(cols[1], cols[0]);
}

}  // namespace
}  // namespace oasis
