// Alphabet / Sequence / FASTA / SequenceDatabase unit tests.

#include <sstream>

#include <gtest/gtest.h>

#include "seq/database.h"
#include "seq/fasta.h"
#include "test_util.h"

namespace oasis {
namespace {

using testing::MakeDatabase;

TEST(Alphabet, DnaRoundTrip) {
  const seq::Alphabet& a = seq::Alphabet::Dna();
  EXPECT_EQ(a.size(), 4u);
  for (char c : std::string("ACGT")) {
    EXPECT_TRUE(a.IsValidChar(c));
    EXPECT_EQ(a.CodeToChar(a.CharToCode(c)), c);
  }
  EXPECT_FALSE(a.IsValidChar('N'));
  EXPECT_FALSE(a.IsValidChar('$'));
  EXPECT_FALSE(a.IsValidChar(' '));
}

TEST(Alphabet, ProteinHas23Codes) {
  const seq::Alphabet& a = seq::Alphabet::Protein();
  EXPECT_EQ(a.size(), 23u);
  for (char c : std::string("ARNDCQEGHILKMFPSTWYVBZX")) {
    EXPECT_TRUE(a.IsValidChar(c)) << c;
  }
  EXPECT_FALSE(a.IsValidChar('J'));
  EXPECT_FALSE(a.IsValidChar('O'));
  EXPECT_FALSE(a.IsValidChar('U'));
}

TEST(Alphabet, LowercaseAccepted) {
  const seq::Alphabet& a = seq::Alphabet::Dna();
  auto encoded = a.Encode("acgt");
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(a.Decode(*encoded), "ACGT");
}

TEST(Alphabet, EncodeRejectsInvalidWithPosition) {
  auto bad = seq::Alphabet::Dna().Encode("ACGXN");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("position 3"), std::string::npos);
}

TEST(Sequence, FromString) {
  auto s = seq::Sequence::FromString(seq::Alphabet::Protein(), "p1", "MKT");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->id(), "p1");
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->ToString(seq::Alphabet::Protein()), "MKT");
}

TEST(Fasta, ParseMultiRecord) {
  std::istringstream in(
      ">seq1 first protein\nMKT\nLLV\n\n>seq2\nACDEF\n");
  auto records = seq::ReadFasta(in, seq::Alphabet::Protein());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id(), "seq1");
  EXPECT_EQ((*records)[0].description(), "first protein");
  EXPECT_EQ((*records)[0].ToString(seq::Alphabet::Protein()), "MKTLLV");
  EXPECT_EQ((*records)[1].id(), "seq2");
  EXPECT_EQ((*records)[1].description(), "");
}

TEST(Fasta, WindowsLineEndings) {
  std::istringstream in(">a\r\nACGT\r\n");
  auto records = seq::ReadFasta(in, seq::Alphabet::Dna());
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].ToString(seq::Alphabet::Dna()), "ACGT");
}

TEST(Fasta, LowercaseResidues) {
  // Lowercase residues are soft-masked: encoded like their uppercase
  // forms, remembered in the per-sequence mask, and restored as
  // lowercase on the way out (the round-trip preserves case).
  std::istringstream in(">a\nacgt\n>b mixed CASE\nAcGtaC\n");
  auto records = seq::ReadFasta(in, seq::Alphabet::Dna());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].ToString(seq::Alphabet::Dna()), "acgt");
  EXPECT_TRUE((*records)[0].has_mask());
  EXPECT_EQ((*records)[0].mask(), (std::vector<uint8_t>{1, 1, 1, 1}));
  EXPECT_EQ((*records)[1].ToString(seq::Alphabet::Dna()), "AcGtaC");
  EXPECT_EQ((*records)[1].mask(), (std::vector<uint8_t>{0, 1, 0, 1, 1, 0}));
  // The symbols themselves are case-insensitive.
  EXPECT_EQ((*records)[1].symbols(),
            (std::vector<seq::Symbol>{0, 1, 2, 3, 0, 1}));
}

TEST(Fasta, CrlfAndLowercaseTogether) {
  std::istringstream in(">a desc here\r\nacGT\r\n\r\n>b\r\ntttt\r\n");
  auto records = seq::ReadFasta(in, seq::Alphabet::Dna());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].description(), "desc here");
  EXPECT_EQ((*records)[0].ToString(seq::Alphabet::Dna()), "acGT");
  EXPECT_EQ((*records)[1].ToString(seq::Alphabet::Dna()), "tttt");
}

TEST(Fasta, EmptySequenceIsError) {
  // A header followed immediately by another header (or EOF) is a record
  // with no residues: a clear error, not a silent skip.
  {
    std::istringstream in(">empty\n>b\nACGT\n");
    auto result = seq::ReadFasta(in, seq::Alphabet::Dna());
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
    EXPECT_NE(result.status().message().find("empty"), std::string::npos);
  }
  {
    std::istringstream in(">a\nACGT\n>trailing\n");
    auto result = seq::ReadFasta(in, seq::Alphabet::Dna());
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
  }
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>a\nACGT\n");
  EXPECT_FALSE(seq::ReadFasta(in, seq::Alphabet::Dna()).ok());
}

TEST(Fasta, RejectsInvalidResidues) {
  std::istringstream in(">a\nACGN\n");
  auto result = seq::ReadFasta(in, seq::Alphabet::Dna());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("'a'"), std::string::npos);
}

TEST(Fasta, WriteReadRoundTrip) {
  util::TempDir dir("fasta");
  std::vector<seq::Sequence> records;
  records.push_back(
      *seq::Sequence::FromString(seq::Alphabet::Protein(), "p1", "MKTAYIAKQR"));
  records.push_back(
      *seq::Sequence::FromString(seq::Alphabet::Protein(), "p2", "QFSLW"));
  std::string path = dir.File("t.fasta");
  OASIS_ASSERT_OK(seq::WriteFastaFile(path, seq::Alphabet::Protein(), records,
                                      /*width=*/4));
  auto reread = seq::ReadFastaFile(path, seq::Alphabet::Protein());
  ASSERT_TRUE(reread.ok());
  ASSERT_EQ(reread->size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*reread)[i].id(), records[i].id());
    EXPECT_EQ((*reread)[i].symbols(), records[i].symbols());
  }
}

TEST(Fasta, MissingFileFails) {
  EXPECT_FALSE(
      seq::ReadFastaFile("/nonexistent/x.fasta", seq::Alphabet::Dna()).ok());
}

TEST(SequenceDatabase, ConcatenationLayout) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACG", "TT"});
  EXPECT_EQ(db.num_sequences(), 2u);
  EXPECT_EQ(db.num_residues(), 5u);
  EXPECT_EQ(db.total_length(), 7u);  // +2 terminators
  EXPECT_EQ(db.SequenceStart(0), 0u);
  EXPECT_EQ(db.SequenceEnd(0), 3u);  // terminator position
  EXPECT_EQ(db.SequenceStart(1), 4u);
  EXPECT_EQ(db.SequenceEnd(1), 6u);
  // Terminators are unique per sequence.
  EXPECT_EQ(db.symbols()[3], db.TerminatorOf(0));
  EXPECT_EQ(db.symbols()[6], db.TerminatorOf(1));
  EXPECT_NE(db.TerminatorOf(0), db.TerminatorOf(1));
  EXPECT_TRUE(db.IsTerminator(db.symbols()[3]));
  EXPECT_FALSE(db.IsTerminator(db.symbols()[0]));
}

TEST(SequenceDatabase, LocateEveryPosition) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACG", "TT", "A"});
  struct Expected {
    seq::SequenceId sid;
    uint64_t off;
  };
  const Expected expected[] = {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0},
                               {1, 1}, {1, 2}, {2, 0}, {2, 1}};
  for (uint64_t pos = 0; pos < db.total_length(); ++pos) {
    seq::SequenceCoord c = db.Locate(pos);
    EXPECT_EQ(c.sequence_id, expected[pos].sid) << "pos " << pos;
    EXPECT_EQ(c.offset, expected[pos].off) << "pos " << pos;
  }
}

TEST(SequenceDatabase, RejectsEmptyInputs) {
  EXPECT_FALSE(
      seq::SequenceDatabase::Build(seq::Alphabet::Dna(), {}).ok());
  std::vector<seq::Sequence> with_empty;
  with_empty.emplace_back("e", std::vector<seq::Symbol>{});
  EXPECT_FALSE(
      seq::SequenceDatabase::Build(seq::Alphabet::Dna(), std::move(with_empty))
          .ok());
}

TEST(SubstitutionMatrix, BuiltInsAreSymmetricWithPositiveDiagonal) {
  for (const score::SubstitutionMatrix* m :
       {&score::SubstitutionMatrix::UnitDna(),
        &score::SubstitutionMatrix::Blastn(),
        &score::SubstitutionMatrix::Pam30(),
        &score::SubstitutionMatrix::Blosum62()}) {
    EXPECT_TRUE(m->IsSymmetric()) << m->name();
    EXPECT_LT(m->gap_penalty(), 0) << m->name();
    // Positive diagonal over the standard residues.
    uint32_t standard = m->alphabet().kind() == seq::AlphabetKind::kDna ? 4 : 20;
    for (uint32_t a = 0; a < standard; ++a) {
      EXPECT_GT(m->Score(a, a), 0) << m->name() << " residue " << a;
    }
  }
}

TEST(SubstitutionMatrix, RowMaxMatchesBruteForce) {
  const score::SubstitutionMatrix& m = score::SubstitutionMatrix::Pam30();
  for (uint32_t a = 0; a < m.size(); ++a) {
    score::ScoreT expect = score::kNegInf;
    for (uint32_t b = 0; b < m.size(); ++b) {
      expect = std::max(expect, m.Score(a, b));
    }
    EXPECT_EQ(m.MaxScoreForResidue(a), expect);
  }
}

TEST(SubstitutionMatrix, TerminatorScoresNegInf) {
  const score::SubstitutionMatrix& m = score::SubstitutionMatrix::UnitDna();
  EXPECT_EQ(m.ScoreOrNegInf(0, 7), score::kNegInf);
  EXPECT_EQ(m.ScoreOrNegInf(9, 0), score::kNegInf);
  EXPECT_EQ(m.ScoreOrNegInf(0, 0), 1);
}

TEST(SubstitutionMatrix, CreateValidation) {
  const seq::Alphabet& a = seq::Alphabet::Dna();
  EXPECT_FALSE(score::SubstitutionMatrix::Create(a, "short",
                                                 std::vector<score::ScoreT>(15),
                                                 -1)
                   .ok());
  EXPECT_FALSE(score::SubstitutionMatrix::Create(a, "posgap",
                                                 std::vector<score::ScoreT>(16),
                                                 0)
                   .ok());
  auto with_gap = score::SubstitutionMatrix::UnitDna().WithGapPenalty(-3);
  ASSERT_TRUE(with_gap.ok());
  EXPECT_EQ(with_gap->gap_penalty(), -3);
  EXPECT_FALSE(score::SubstitutionMatrix::UnitDna().WithGapPenalty(1).ok());
}

}  // namespace
}  // namespace oasis
