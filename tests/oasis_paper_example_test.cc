// Reproduces the paper's §3.3 worked example: OASIS searching for TACG in
// the suffix tree of AGTACGCCTAG with the unit matrix and minScore = 1,
// plus the §3.1 heuristic-vector example.

#include <gtest/gtest.h>

#include "core/heuristic.h"
#include "core/oasis.h"
#include "suffix/suffix_tree.h"
#include "test_util.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;
using testing::PackedFixture;
using testing::RunOasis;

class OasisPaperExample : public ::testing::Test {
 protected:
  OasisPaperExample()
      : db_(MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"})),
        fixture_(db_),
        query_(Encode(seq::Alphabet::Dna(), "TACG")) {}

  seq::SequenceDatabase db_;
  PackedFixture fixture_;
  std::vector<seq::Symbol> query_;
};

// §3.1 / §3.3: the heuristic vector for TACG under the unit matrix is
// h = [4, 3, 2, 1, 0].
TEST_F(OasisPaperExample, HeuristicVector) {
  core::HeuristicVector h(query_, score::SubstitutionMatrix::UnitDna());
  ASSERT_EQ(h.size(), 5u);
  for (size_t i = 0; i <= 4; ++i) {
    EXPECT_EQ(h[i], static_cast<score::ScoreT>(4 - i)) << "h[" << i << "]";
  }
  EXPECT_EQ(h.max_possible(), 4);
}

// §2.3: the suffix tree of AGTACGCCTAG has 12 leaves (11 symbols + the
// terminator suffix) and contains every substring.
TEST_F(OasisPaperExample, SuffixTreeShape) {
  auto tree = suffix::SuffixTree::BuildUkkonen(db_);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->num_leaves(), 12u);
  OASIS_EXPECT_OK(tree->Validate());

  // §2.3.1's example: TACG occurs at position 2.
  auto occurrences = tree->FindOccurrences(Encode(seq::Alphabet::Dna(), "TACG"));
  ASSERT_EQ(occurrences.size(), 1u);
  EXPECT_EQ(occurrences[0], 2u);
}

// §3.3: with minScore=1, the top result is the exact TACG match, score 4,
// ending at target position 5 (0-based), query position 3.
TEST_F(OasisPaperExample, TopResultIsScore4) {
  core::OasisOptions options;
  options.min_score = 1;
  options.reconstruct_alignments = true;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  ASSERT_EQ(results.size(), 1u);  // one sequence -> one (best) result
  EXPECT_EQ(results[0].score, 4);
  EXPECT_EQ(results[0].sequence_id, 0u);
  EXPECT_EQ(results[0].target_end, 5u);
  EXPECT_EQ(results[0].query_end, 3u);
  ASSERT_TRUE(results[0].alignment.has_value());
  EXPECT_EQ(results[0].alignment->Cigar(), "4=");
  EXPECT_EQ(results[0].alignment->target_start, 2u);
}

// The search must terminate having found the alignment without touching
// most of the tree: the paper's example accepts 3N early and expands only
// a handful of nodes.
TEST_F(OasisPaperExample, SearchIsSelective) {
  core::OasisOptions options;
  options.min_score = 1;
  core::OasisStats stats;
  core::OasisSearch search(&*fixture_.tree,
                           &score::SubstitutionMatrix::UnitDna());
  auto results = search.SearchAll(query_, options, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.nodes_expanded, 0u);
  EXPECT_GT(stats.columns_expanded, 0u);
  // S-W would expand 11 columns; OASIS stops early on pruned paths but
  // explores several tree arcs. Sanity bound only.
  EXPECT_LT(stats.columns_expanded, 200u);
}

// minScore above the best score: no results at all (threshold pruning).
TEST_F(OasisPaperExample, MinScoreAboveBestPrunesEverything) {
  core::OasisOptions options;
  options.min_score = 5;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  EXPECT_TRUE(results.empty());
}

// minScore equal to the best score: exactly the one alignment.
TEST_F(OasisPaperExample, MinScoreEqualToBest) {
  core::OasisOptions options;
  options.min_score = 4;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].score, 4);
}

}  // namespace
}  // namespace oasis
