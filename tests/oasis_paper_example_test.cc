// Reproduces the paper's §3.3 worked example: OASIS searching for TACG in
// the suffix tree of AGTACGCCTAG with the unit matrix and minScore = 1,
// plus the §3.1 heuristic-vector example.

#include <gtest/gtest.h>

#include "core/heuristic.h"
#include "core/oasis.h"
#include "suffix/suffix_tree.h"
#include "test_util.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;
using testing::PackedFixture;
using testing::RunOasis;

class OasisPaperExample : public ::testing::Test {
 protected:
  OasisPaperExample()
      : db_(MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"})),
        fixture_(db_),
        query_(Encode(seq::Alphabet::Dna(), "TACG")) {}

  seq::SequenceDatabase db_;
  PackedFixture fixture_;
  std::vector<seq::Symbol> query_;
};

// §3.1 / §3.3: the heuristic vector for TACG under the unit matrix is
// h = [4, 3, 2, 1, 0].
TEST_F(OasisPaperExample, HeuristicVector) {
  core::HeuristicVector h(query_, score::SubstitutionMatrix::UnitDna());
  ASSERT_EQ(h.size(), 5u);
  for (size_t i = 0; i <= 4; ++i) {
    EXPECT_EQ(h[i], static_cast<score::ScoreT>(4 - i)) << "h[" << i << "]";
  }
  EXPECT_EQ(h.max_possible(), 4);
}

// §2.3: the suffix tree of AGTACGCCTAG has 12 leaves (11 symbols + the
// terminator suffix) and contains every substring.
TEST_F(OasisPaperExample, SuffixTreeShape) {
  auto tree = suffix::SuffixTree::BuildUkkonen(db_);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->num_leaves(), 12u);
  OASIS_EXPECT_OK(tree->Validate());

  // §2.3.1's example: TACG occurs at position 2.
  auto occurrences = tree->FindOccurrences(Encode(seq::Alphabet::Dna(), "TACG"));
  ASSERT_EQ(occurrences.size(), 1u);
  EXPECT_EQ(occurrences[0], 2u);
}

// §3.3: with minScore=1, the top result is the exact TACG match, score 4,
// ending at target position 5 (0-based), query position 3.
TEST_F(OasisPaperExample, TopResultIsScore4) {
  core::OasisOptions options;
  options.min_score = 1;
  options.reconstruct_alignments = true;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  ASSERT_EQ(results.size(), 1u);  // one sequence -> one (best) result
  EXPECT_EQ(results[0].score, 4);
  EXPECT_EQ(results[0].sequence_id, 0u);
  EXPECT_EQ(results[0].target_end, 5u);
  EXPECT_EQ(results[0].query_end, 3u);
  ASSERT_TRUE(results[0].alignment.has_value());
  EXPECT_EQ(results[0].alignment->Cigar(), "4=");
  EXPECT_EQ(results[0].alignment->target_start, 2u);
}

// The pull cursor on the paper's worked example emits the identical stream
// (field by field, alignments included) to the callback path.
TEST_F(OasisPaperExample, CursorMatchesCallbackOnPaperExample) {
  core::OasisOptions options;
  options.min_score = 1;
  options.reconstruct_alignments = true;
  options.all_alignments = true;  // every accepted location, not just best
  core::OasisSearch search(&*fixture_.tree,
                           &score::SubstitutionMatrix::UnitDna());

  std::vector<core::OasisResult> pushed;
  auto stats = search.Search(query_, options, [&](const core::OasisResult& r) {
    pushed.push_back(r);
    return true;
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_FALSE(pushed.empty());

  auto cursor = search.Cursor(query_, options);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  size_t i = 0;
  while (true) {
    auto next = cursor->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ASSERT_LT(i, pushed.size());
    EXPECT_EQ((*next)->sequence_id, pushed[i].sequence_id);
    EXPECT_EQ((*next)->score, pushed[i].score);
    EXPECT_EQ((*next)->db_end_pos, pushed[i].db_end_pos);
    EXPECT_EQ((*next)->target_end, pushed[i].target_end);
    EXPECT_EQ((*next)->query_end, pushed[i].query_end);
    ASSERT_EQ((*next)->alignment.has_value(), pushed[i].alignment.has_value());
    if ((*next)->alignment.has_value()) {
      EXPECT_EQ((*next)->alignment->ops, pushed[i].alignment->ops);
      EXPECT_EQ((*next)->alignment->Cigar(), pushed[i].alignment->Cigar());
    }
    ++i;
  }
  EXPECT_EQ(i, pushed.size());
  EXPECT_EQ(cursor->stats().results_emitted, stats->results_emitted);
}

// The search must terminate having found the alignment without touching
// most of the tree: the paper's example accepts 3N early and expands only
// a handful of nodes.
TEST_F(OasisPaperExample, SearchIsSelective) {
  core::OasisOptions options;
  options.min_score = 1;
  core::OasisStats stats;
  core::OasisSearch search(&*fixture_.tree,
                           &score::SubstitutionMatrix::UnitDna());
  auto results = search.SearchAll(query_, options, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(stats.nodes_expanded, 0u);
  EXPECT_GT(stats.columns_expanded, 0u);
  // S-W would expand 11 columns; OASIS stops early on pruned paths but
  // explores several tree arcs. Sanity bound only.
  EXPECT_LT(stats.columns_expanded, 200u);
}

// minScore above the best score: no results at all (threshold pruning).
TEST_F(OasisPaperExample, MinScoreAboveBestPrunesEverything) {
  core::OasisOptions options;
  options.min_score = 5;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  EXPECT_TRUE(results.empty());
}

// minScore equal to the best score: exactly the one alignment.
TEST_F(OasisPaperExample, MinScoreEqualToBest) {
  core::OasisOptions options;
  options.min_score = 4;
  auto results = RunOasis(*fixture_.tree, score::SubstitutionMatrix::UnitDna(),
                          query_, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].score, 4);
}

}  // namespace
}  // namespace oasis
