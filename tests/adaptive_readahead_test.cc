// The adaptive readahead window controller in isolation: deterministic
// outcome sequences must produce the exact window trajectory the control
// law promises — additive increase on accurate speculation, multiplicative
// decrease on waste, hysteresis against flapping, bound clamping, probe
// recovery from a collapsed window, and fully independent per-segment
// state. Plus the integration seams: Readahead consulting the controller
// per scheduled run, the pool feeding outcomes through, and the engine's
// option surface. The AdaptiveReadahead* suites run under the TSan CI job.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "storage/adaptive_readahead.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/readahead.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using storage::AdaptiveReadahead;

/// Options with hysteresis and smoothing mostly disabled, so one sample
/// equals one decision and trajectories are easy to state exactly.
AdaptiveReadahead::Options PlainOptions() {
  AdaptiveReadahead::Options options;
  options.min_blocks = 0;
  options.max_blocks = 16;
  options.initial_blocks = 4;
  options.sample_outcomes = 4;
  options.ewma_alpha = 1.0;  // EWMA == the latest sample
  options.grow_threshold = 0.60;
  options.shrink_threshold = 0.30;
  options.grow_step = 2;
  options.grow_hysteresis = 1;
  options.shrink_hysteresis = 1;
  options.probe_interval = 4;
  options.probe_blocks = 1;
  return options;
}

/// Feeds `n` complete samples of all-used / all-wasted outcomes.
void FeedSamples(AdaptiveReadahead& ctl, storage::SegmentId seg, int n,
                 bool used, uint32_t sample_outcomes = 4) {
  for (int s = 0; s < n; ++s) {
    for (uint32_t i = 0; i < sample_outcomes; ++i) ctl.RecordOutcome(seg, used);
  }
}

TEST(AdaptiveReadahead, AdditiveIncreaseOnAccurateSpeculation) {
  AdaptiveReadahead ctl(1, PlainOptions());
  EXPECT_EQ(ctl.window(0), 4u);
  FeedSamples(ctl, 0, 1, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 6u) << "one accurate sample grows by grow_step";
  FeedSamples(ctl, 0, 2, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 10u);
  // Clamped at max_blocks no matter how long the streak runs.
  FeedSamples(ctl, 0, 10, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 16u);
  const AdaptiveReadahead::SegmentSnapshot snap = ctl.snapshot(0);
  EXPECT_EQ(snap.samples, 13u);
  EXPECT_DOUBLE_EQ(snap.ewma, 1.0);
  EXPECT_EQ(snap.shrinks, 0u);
}

TEST(AdaptiveReadahead, MultiplicativeDecreaseOnWaste) {
  AdaptiveReadahead ctl(1, PlainOptions());
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 2u) << "one wasted sample halves the window";
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 1u);
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 0u) << "halving from 1 collapses speculation";
  const AdaptiveReadahead::SegmentSnapshot snap = ctl.snapshot(0);
  EXPECT_EQ(snap.shrinks, 3u);
  EXPECT_EQ(snap.grows, 0u);
}

TEST(AdaptiveReadahead, MinBlocksFloorsTheCollapse) {
  AdaptiveReadahead::Options options = PlainOptions();
  options.min_blocks = 2;
  AdaptiveReadahead ctl(1, options);
  FeedSamples(ctl, 0, 8, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 2u) << "window never drops below min_blocks";
  EXPECT_EQ(ctl.WindowForSchedule(0), 2u) << "and never needs a probe";
}

TEST(AdaptiveReadahead, NeutralBandHoldsTheWindow) {
  AdaptiveReadahead ctl(1, PlainOptions());
  // 2 used / 2 wasted = 0.5, strictly between the thresholds: no move,
  // however many samples arrive.
  for (int s = 0; s < 6; ++s) {
    ctl.RecordOutcome(0, true);
    ctl.RecordOutcome(0, true);
    ctl.RecordOutcome(0, false);
    ctl.RecordOutcome(0, false);
  }
  EXPECT_EQ(ctl.window(0), 4u);
  const AdaptiveReadahead::SegmentSnapshot snap = ctl.snapshot(0);
  EXPECT_EQ(snap.grows + snap.shrinks, 0u);
  EXPECT_EQ(snap.samples, 6u);
}

TEST(AdaptiveReadahead, ShrinkHysteresisAbsorbsOneBadSample) {
  AdaptiveReadahead::Options options = PlainOptions();
  options.shrink_hysteresis = 2;
  AdaptiveReadahead ctl(1, options);
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 4u) << "first bad sample only arms the streak";
  // A good sample in between resets the streak (via the grow branch)...
  FeedSamples(ctl, 0, 1, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 6u);
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 6u) << "streak restarted, still absorbed";
  // ...and only two *consecutive* bad samples shrink.
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 3u);
}

TEST(AdaptiveReadahead, NeutralSampleResetsBothStreaks) {
  AdaptiveReadahead::Options options = PlainOptions();
  options.shrink_hysteresis = 2;
  options.grow_hysteresis = 2;
  AdaptiveReadahead ctl(1, options);
  auto neutral = [&] {
    ctl.RecordOutcome(0, true);
    ctl.RecordOutcome(0, true);
    ctl.RecordOutcome(0, false);
    ctl.RecordOutcome(0, false);
  };
  // bad, neutral, bad, neutral, ... never two consecutive: no shrink.
  for (int i = 0; i < 4; ++i) {
    FeedSamples(ctl, 0, 1, /*used=*/false);
    neutral();
  }
  EXPECT_EQ(ctl.window(0), 4u);
  // Same for grows.
  for (int i = 0; i < 4; ++i) {
    FeedSamples(ctl, 0, 1, /*used=*/true);
    neutral();
  }
  EXPECT_EQ(ctl.window(0), 4u);
}

TEST(AdaptiveReadahead, EwmaSmoothsRegimeChanges) {
  AdaptiveReadahead::Options options = PlainOptions();
  options.ewma_alpha = 0.4;
  AdaptiveReadahead ctl(1, options);
  // A long accurate phase pins the EWMA at 1.0 and the window at max.
  FeedSamples(ctl, 0, 10, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 16u);
  // One wasted sample moves the EWMA to 0.6 — with alpha 0.4 that is
  // still at the grow threshold, not below the shrink one: no shrink yet.
  FeedSamples(ctl, 0, 1, /*used=*/false);
  EXPECT_EQ(ctl.window(0), 16u);
  EXPECT_NEAR(ctl.snapshot(0).ewma, 0.6, 1e-9);
  // Sustained waste works the EWMA down through the band and shrinks.
  FeedSamples(ctl, 0, 4, /*used=*/false);
  EXPECT_LT(ctl.window(0), 16u);
}

TEST(AdaptiveReadahead, CollapsedWindowProbesAndRecovers) {
  AdaptiveReadahead ctl(1, PlainOptions());
  FeedSamples(ctl, 0, 3, /*used=*/false);
  ASSERT_EQ(ctl.window(0), 0u);

  // Every probe_interval-th schedule issues a probe_blocks probe; the
  // rest are suppressed.
  int probes = 0;
  for (int i = 0; i < 12; ++i) {
    const uint32_t w = ctl.WindowForSchedule(0);
    EXPECT_TRUE(w == 0 || w == 1) << w;
    probes += w != 0;
  }
  EXPECT_EQ(probes, 3) << "one probe per probe_interval=4 schedules";
  EXPECT_EQ(ctl.snapshot(0).probes, 3u);

  // The regime turns sequential: probe outcomes land, the EWMA recovers,
  // and the window re-opens from zero.
  FeedSamples(ctl, 0, 2, /*used=*/true);
  EXPECT_EQ(ctl.window(0), 4u) << "0 -> 2 -> 4 by additive increase";
  EXPECT_EQ(ctl.WindowForSchedule(0), 4u);
}

TEST(AdaptiveReadahead, ProbingDisabledMakesCollapseFinal) {
  AdaptiveReadahead::Options options = PlainOptions();
  options.probe_interval = 0;
  AdaptiveReadahead ctl(1, options);
  FeedSamples(ctl, 0, 3, /*used=*/false);
  ASSERT_EQ(ctl.window(0), 0u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ctl.WindowForSchedule(0), 0u);
  EXPECT_EQ(ctl.snapshot(0).probes, 0u);
}

TEST(AdaptiveReadahead, SegmentsAdaptIndependently) {
  AdaptiveReadahead ctl(3, PlainOptions());
  FeedSamples(ctl, 0, 5, /*used=*/true);   // hot sequential segment
  FeedSamples(ctl, 2, 5, /*used=*/false);  // scattered segment
  EXPECT_EQ(ctl.window(0), 14u);
  EXPECT_EQ(ctl.window(1), 4u) << "untouched segment keeps its initial";
  EXPECT_EQ(ctl.window(2), 0u);
}

TEST(AdaptiveReadahead, OutOfRangeSegmentIsInert) {
  AdaptiveReadahead ctl(1, PlainOptions());
  EXPECT_EQ(ctl.window(7), 0u);
  EXPECT_EQ(ctl.WindowForSchedule(7), 0u);
  ctl.RecordOutcome(7, true);  // must not crash or touch segment 0
  EXPECT_EQ(ctl.window(0), 4u);
  EXPECT_EQ(ctl.snapshot(7).samples, 0u);
}

TEST(AdaptiveReadahead, ConcurrentOutcomesAndSchedulesStaySane) {
  // Hammer one controller from several threads; the window must stay
  // inside its bounds and the counters coherent. (TSan coverage for the
  // controller surface.)
  AdaptiveReadahead::Options options = PlainOptions();
  options.max_blocks = 8;
  AdaptiveReadahead ctl(2, options);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&ctl, t] {
      for (int i = 0; i < 2000; ++i) {
        const storage::SegmentId seg = (t + i) % 2;
        ctl.RecordOutcome(seg, (i & 3) != 0);
        const uint32_t w = ctl.WindowForSchedule(seg);
        EXPECT_LE(w, 8u);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(ctl.window(0), 8u);
  EXPECT_LE(ctl.window(1), 8u);
  EXPECT_GE(ctl.snapshot(0).samples + ctl.snapshot(1).samples, 1u);
}

// --- Through the Readahead + pool -------------------------------------------

constexpr uint32_t kBlock = 256;

storage::BlockFile MakeBlockFile(const std::string& path, uint32_t n) {
  auto file = storage::BlockFile::Create(path, kBlock);
  EXPECT_TRUE(file.ok());
  std::vector<uint8_t> buf(kBlock);
  for (uint32_t b = 0; b < n; ++b) {
    for (uint32_t i = 0; i < kBlock; ++i) {
      buf[i] = static_cast<uint8_t>((b * 31 + i) & 0xFF);
    }
    EXPECT_TRUE(file->AppendBlock(buf.data()).ok());
  }
  OASIS_EXPECT_OK(file->Flush());
  file->Close();
  auto reopened = storage::BlockFile::Open(path, kBlock);
  EXPECT_TRUE(reopened.ok());
  return std::move(reopened).value();
}

TEST(AdaptiveReadaheadPool, SequentialScanGrowsScatterCollapses) {
  util::TempDir dir("ada-pool");
  constexpr uint32_t kBlocks = 512;
  storage::BlockFile file = MakeBlockFile(dir.File("a.blk"), kBlocks);
  storage::BufferPool pool(64 * kBlock, kBlock, 1);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  storage::Readahead::Options options;
  options.blocks = 4;
  options.adaptive = true;
  options.adaptive_options.max_blocks = 16;
  options.adaptive_options.sample_outcomes = 8;
  storage::Readahead readahead(&pool, options);
  ASSERT_TRUE(readahead.adaptive());
  EXPECT_EQ(readahead.window(*seg), 4u);

  // A full sequential sweep: speculation keeps landing, the window must
  // have grown past its initial by the end. Draining after every fetch
  // removes the race between the demand thread and the background worker
  // (on a warm OS cache demand misses are near-free, so an undrained
  // sweep can outrun its own speculation) — the controller sees the
  // outcome stream a disk-bound scan would produce.
  for (uint32_t b = 0; b < kBlocks; ++b) {
    ASSERT_TRUE(pool.Fetch(*seg, b).ok());
    readahead.Drain();
  }
  EXPECT_GT(readahead.window(*seg), 4u);
  const storage::ReadaheadStats seq_stats = readahead.stats();
  EXPECT_GT(seq_stats.used, 0u);

  // Scattered traffic in short 2-block hops: almost everything the
  // (initially wide) window speculates is wasted, so the controller must
  // walk the window down to zero.
  util::Random rng(17);
  for (int i = 0; i < 4000; ++i) {
    const uint32_t start = static_cast<uint32_t>(rng.Uniform(kBlocks - 2));
    ASSERT_TRUE(pool.Fetch(*seg, start).ok());
    ASSERT_TRUE(pool.Fetch(*seg, start + 1).ok());
    readahead.Drain();
  }
  EXPECT_EQ(readahead.window(*seg), 0u)
      << "scattered phase must collapse the window";
  EXPECT_GT(readahead.controller()->snapshot(*seg).shrinks, 0u);
}

TEST(AdaptiveReadaheadPool, FixedModeKeepsPr4Behaviour) {
  util::TempDir dir("ada-fixed");
  storage::BlockFile file = MakeBlockFile(dir.File("a.blk"), 64);
  storage::BufferPool pool(32 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  storage::Readahead::Options options;
  options.blocks = 4;  // adaptive stays false
  storage::Readahead readahead(&pool, options);
  EXPECT_FALSE(readahead.adaptive());
  EXPECT_EQ(readahead.controller(), nullptr);
  EXPECT_EQ(readahead.window(*seg), 4u);
  ASSERT_TRUE(pool.Fetch(*seg, 10).ok());
  ASSERT_TRUE(pool.Fetch(*seg, 11).ok());
  readahead.Drain();
  EXPECT_EQ(readahead.stats().issued, 4u) << "exactly the fixed window";
  EXPECT_EQ(readahead.window(*seg), 4u);
}

// --- Engine option surface --------------------------------------------------

TEST(AdaptiveReadaheadEngine, OptionValidationAndExposure) {
  util::TempDir dir("ada-engine");
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(api::Engine::BuildFromDatabase(std::move(db).value(),
                                             dir.File("idx"), {})
                  .ok());

  // Adaptive is the default for an enabled readahead.
  api::EngineOptions adaptive;
  adaptive.io_mode = api::IoMode::kPooled;
  adaptive.readahead_blocks = 8;
  auto engine = api::Engine::Open(dir.File("idx"), adaptive);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->readahead_adaptive());
  EXPECT_EQ((*engine)->readahead_blocks(), 8u);
  ASSERT_NE((*engine)->readahead().controller(), nullptr);
  EXPECT_EQ((*engine)->readahead().controller()->options().max_blocks, 64u);
  for (storage::SegmentId seg = 0; seg < 3; ++seg) {
    EXPECT_EQ((*engine)->readahead().window(seg), 8u);
  }

  // Fixed mode on request.
  api::EngineOptions fixed;
  fixed.io_mode = api::IoMode::kPooled;
  fixed.readahead_blocks = 8;
  fixed.readahead_adaptive = false;
  auto fixed_engine = api::Engine::Open(dir.File("idx"), fixed);
  ASSERT_TRUE(fixed_engine.ok());
  EXPECT_FALSE((*fixed_engine)->readahead_adaptive());

  // Disabled readahead never reports adaptive.
  api::EngineOptions off;
  off.io_mode = api::IoMode::kPooled;
  auto off_engine = api::Engine::Open(dir.File("idx"), off);
  ASSERT_TRUE(off_engine.ok());
  EXPECT_FALSE((*off_engine)->readahead_adaptive());

  // The default max (0 = auto) floors at the configured initial window,
  // so a deep fixed-style window stays valid under the adaptive default.
  api::EngineOptions deep = adaptive;
  deep.readahead_blocks = 128;
  auto deep_engine = api::Engine::Open(dir.File("idx"), deep);
  ASSERT_TRUE(deep_engine.ok()) << deep_engine.status().ToString();
  EXPECT_EQ((*deep_engine)->readahead().controller()->options().max_blocks,
            128u);

  // Bound validation: max out of range, min > max, initial outside.
  api::EngineOptions bad = adaptive;
  bad.readahead_max_blocks = api::kMaxReadaheadBlocks + 1;
  EXPECT_TRUE(api::Engine::Open(dir.File("idx"), bad)
                  .status().IsInvalidArgument());
  bad = adaptive;
  bad.readahead_min_blocks = 65;
  bad.readahead_max_blocks = 64;
  EXPECT_TRUE(api::Engine::Open(dir.File("idx"), bad)
                  .status().IsInvalidArgument());
  bad = adaptive;
  bad.readahead_blocks = 100;
  bad.readahead_max_blocks = 64;
  EXPECT_TRUE(api::Engine::Open(dir.File("idx"), bad)
                  .status().IsInvalidArgument());
  // The same out-of-bounds initial is fine when adaptivity is off (it is
  // the plain fixed window then).
  bad.readahead_adaptive = false;
  EXPECT_TRUE(api::Engine::Open(dir.File("idx"), bad).ok());
}

}  // namespace
}  // namespace oasis
