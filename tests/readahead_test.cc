// Speculative readahead + per-thread fetch memo edge cases: prefetch of a
// resident block declines, a demand fetch racing a prefetch shares one
// read through the in-flight table, scan-admission semantics make unused
// speculation the first eviction victim, readahead disabled is
// byte-for-byte identical to readahead enabled, pools smaller than the
// speculation window degrade gracefully, and the memo releases pins
// before they can wedge a tiny pool. The Readahead* and FetchMemo suites
// also run under the TSan CI job.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "storage/page_source.h"
#include "storage/readahead.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

constexpr uint32_t kBlock = 256;

/// Writes `n` blocks whose bytes are a function of the block id.
storage::BlockFile MakeFile(const std::string& path, uint32_t n) {
  auto file = storage::BlockFile::Create(path, kBlock);
  EXPECT_TRUE(file.ok());
  std::vector<uint8_t> buf(kBlock);
  for (uint32_t b = 0; b < n; ++b) {
    for (uint32_t i = 0; i < kBlock; ++i) {
      buf[i] = static_cast<uint8_t>((b * 57 + i) & 0xFF);
    }
    EXPECT_TRUE(file->AppendBlock(buf.data()).ok());
  }
  OASIS_EXPECT_OK(file->Flush());
  file->Close();
  auto reopened = storage::BlockFile::Open(path, kBlock);
  EXPECT_TRUE(reopened.ok());
  return std::move(reopened).value();
}

bool BlockIsCorrect(const uint8_t* data, uint32_t b) {
  for (uint32_t i = 0; i < kBlock; ++i) {
    if (data[i] != static_cast<uint8_t>((b * 57 + i) & 0xFF)) return false;
  }
  return true;
}

TEST(Readahead, PrefetchedBlockServesDemandFetchAsHit) {
  util::TempDir dir("ra");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 16);
  storage::BufferPool pool(8 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  EXPECT_TRUE(pool.Prefetch(*seg, 3));
  storage::ReadaheadStats ra = pool.readahead_stats();
  EXPECT_EQ(ra.issued, 1u);
  EXPECT_EQ(ra.used, 0u);
  // Prefetches are not demand traffic: the paper's counters stay silent.
  EXPECT_EQ(pool.stats(*seg).requests, 0u);

  auto page = pool.Fetch(*seg, 3);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(BlockIsCorrect(page->data(), 3));
  ra = pool.readahead_stats();
  EXPECT_EQ(ra.used, 1u);
  EXPECT_EQ(ra.wasted, 0u);
  // The demand fetch is a hit — no second disk read happened.
  EXPECT_EQ(pool.stats(*seg).requests, 1u);
  EXPECT_EQ(pool.stats(*seg).hits, 1u);
}

TEST(Readahead, PrefetchOfResidentOrOutOfRangeBlockDeclines) {
  util::TempDir dir("ra-res");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 8);
  storage::BufferPool pool(8 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  ASSERT_TRUE(pool.Fetch(*seg, 2).ok());
  EXPECT_FALSE(pool.Prefetch(*seg, 2));    // already resident
  EXPECT_FALSE(pool.Prefetch(*seg, 8));    // beyond the segment's end
  EXPECT_FALSE(pool.Prefetch(*seg + 1, 0));  // unknown segment
  EXPECT_EQ(pool.readahead_stats().issued, 0u);
}

TEST(Readahead, PrefetchRunCoalescesClipsAndSkipsResident) {
  util::TempDir dir("ra-run");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 12);
  storage::BufferPool pool(16 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  ASSERT_TRUE(pool.Fetch(*seg, 10).ok());  // a resident hole in the run
  // [8, 108) clips to [8, 12) and skips resident block 10: 3 issued.
  EXPECT_EQ(pool.PrefetchRun(*seg, 8, 100), 3u);
  EXPECT_EQ(pool.readahead_stats().issued, 3u);
  for (uint32_t b = 8; b < 12; ++b) {
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect(page->data(), b)) << "block " << b;
  }
  // All twelve demand requests so far were served without a demand miss
  // for the prefetched blocks: 1 initial miss, then hits.
  EXPECT_EQ(pool.stats(*seg).misses(), 1u);
  EXPECT_EQ(pool.readahead_stats().used, 3u);
}

TEST(Readahead, UnusedSpeculationIsFirstEvictionVictim) {
  util::TempDir dir("ra-evict");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 8);
  storage::BufferPool pool(2 * kBlock, kBlock, 1);  // one 2-frame shard
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  ASSERT_TRUE(pool.Fetch(*seg, 0).ok());  // referenced by demand
  EXPECT_TRUE(pool.Prefetch(*seg, 1));    // scan admission: unreferenced
  // The next miss must claim the unreferenced prefetched frame, not the
  // demand-referenced one.
  ASSERT_TRUE(pool.Fetch(*seg, 2).ok());
  storage::ReadaheadStats ra = pool.readahead_stats();
  EXPECT_EQ(ra.wasted, 1u);
  EXPECT_EQ(ra.used, 0u);
  auto hot = pool.Fetch(*seg, 0);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(BlockIsCorrect(hot->data(), 0));
  EXPECT_EQ(pool.stats(*seg).hits, 1u) << "block 0 must still be resident";
}

TEST(Readahead, DemandFetchRacingPrefetchSharesOneRead) {
  // A demand Fetch and a Prefetch chase the same cold block from two
  // threads, one round per block. Whoever claims the block first registers
  // it in the shard's in-flight table; the other must ride that read
  // instead of issuing its own. The accounting proves it: each round's
  // demand fetch either performed the read itself (a miss; the prefetch
  // declined) or rode the speculative one (a hit counted as `used`), so
  // after all rounds misses + used must equal the round count exactly —
  // a duplicated read would break the sum.
  util::TempDir dir("ra-race");
  constexpr uint32_t kBlocks = 64;
  storage::BlockFile file = MakeFile(dir.File("a.blk"), kBlocks);
  storage::BufferPool pool(kBlocks * kBlock, kBlock, 4);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  std::atomic<int> corrupt{0};
  for (uint32_t b = 0; b < kBlocks; ++b) {
    std::thread speculator([&]() { pool.Prefetch(*seg, b); });
    std::thread demander([&]() {
      auto page = pool.Fetch(*seg, b);
      if (!page.ok() || !BlockIsCorrect(page->data(), b)) {
        corrupt.fetch_add(1);
      }
    });
    speculator.join();
    demander.join();
  }
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.num_pinned(), 0u);
  const storage::SegmentStats stats = pool.stats(*seg);
  const storage::ReadaheadStats ra = pool.readahead_stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kBlocks));
  // Every demand fetch either performed the read (miss) or used the
  // prefetched/loading frame (hit + used). Nothing was read twice.
  EXPECT_EQ(stats.misses() + ra.used, static_cast<uint64_t>(kBlocks));
  EXPECT_LE(ra.used, ra.issued);
}

TEST(Readahead, SequentialMissesTriggerWorkerScatteredDoNot) {
  util::TempDir dir("ra-seq");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 64);
  storage::BufferPool pool(32 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  storage::Readahead::Options options;
  options.blocks = 4;
  storage::Readahead readahead(&pool, options);

  // Scattered, non-adjacent misses: the run detector must stay silent.
  for (uint32_t b : {3u, 9u, 27u, 14u}) {
    ASSERT_TRUE(pool.Fetch(*seg, b).ok());
  }
  readahead.Drain();
  EXPECT_EQ(readahead.stats().issued, 0u);

  // A sequential pair arms the detector; the worker prefetches the next
  // window, which the continuing scan then consumes as hits.
  ASSERT_TRUE(pool.Fetch(*seg, 40).ok());
  ASSERT_TRUE(pool.Fetch(*seg, 41).ok());  // 40 -> 41: run detected
  readahead.Drain();
  const storage::ReadaheadStats ra = readahead.stats();
  EXPECT_EQ(ra.issued, 4u) << "one window after the sequential miss";
  for (uint32_t b = 42; b < 46; ++b) {
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect(page->data(), b));
  }
  readahead.Drain();
  EXPECT_EQ(readahead.stats().used, 4u);
}

TEST(Readahead, PoolSmallerThanWindowDegradesGracefully) {
  // A 2-frame pool with an 8-block window: speculation finds victims for
  // at most a frame or two and silently skips the rest — demand traffic
  // keeps absolute priority and every read stays correct.
  util::TempDir dir("ra-tiny");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 32);
  storage::BufferPool pool(2 * kBlock, kBlock, 1);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  storage::Readahead::Options options;
  options.blocks = 8;
  storage::Readahead readahead(&pool, options);

  for (int round = 0; round < 3; ++round) {
    for (uint32_t b = 0; b < 32; ++b) {
      auto page = pool.Fetch(*seg, b);
      ASSERT_TRUE(page.ok()) << page.status().ToString();
      EXPECT_TRUE(BlockIsCorrect(page->data(), b));
    }
  }
  readahead.Drain();
  EXPECT_EQ(pool.num_pinned(), 0u);
  const storage::ReadaheadStats ra = pool.readahead_stats();
  EXPECT_LE(ra.used + ra.wasted, ra.issued);
}

TEST(Readahead, ConcurrentDemandAndSpeculationStress) {
  // Demand threads walk sibling runs while the readahead worker
  // speculates into the same shards; contents must stay correct and the
  // pool fully unpinned afterwards. (TSan coverage for the whole
  // schedule/prefetch/fetch surface.)
  util::TempDir dir("ra-stress");
  constexpr uint32_t kBlocks = 96;
  storage::BlockFile file = MakeFile(dir.File("a.blk"), kBlocks);
  storage::BufferPool pool(32 * kBlock, kBlock, 4);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  storage::Readahead::Options options;
  options.blocks = 8;
  options.threads = 2;
  storage::Readahead readahead(&pool, options);

  constexpr int kThreads = 4;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      util::Random rng(91 + t);
      for (int i = 0; i < 500; ++i) {
        // Mostly short sequential stretches (sibling runs), sometimes a
        // random jump — both detector outcomes race real traffic.
        uint32_t start = static_cast<uint32_t>(rng.Uniform(kBlocks - 8));
        for (uint32_t b = start; b < start + 6; ++b) {
          auto page = pool.Fetch(*seg, b);
          if (!page.ok() || !BlockIsCorrect(page->data(), b)) {
            corrupt.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  readahead.Drain();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.num_pinned(), 0u);
}

// --- FetchMemo --------------------------------------------------------------

TEST(FetchMemo, SameBlockReadsSkipThePool) {
  util::TempDir dir("memo");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 8);
  storage::BufferPool pool(8 * kBlock, kBlock);
  storage::PageSource source = storage::PageSource::Pooled(&pool);
  auto seg = source.AddSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  storage::FetchMemo memo;
  for (int i = 0; i < 5; ++i) {
    auto page = memo.Get(source, *seg, 2);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect((*page)->data(), 2));
  }
  EXPECT_EQ(memo.hits(), 4u);
  EXPECT_EQ(memo.misses(), 1u);
  // The pool saw exactly one request — the rest never left the memo.
  EXPECT_EQ(pool.stats(0).requests, 1u);
}

TEST(FetchMemo, ReplacementReleasesThePinFirst) {
  // One frame total: caching block 0 pins the only frame, so fetching
  // block 1 can only succeed if the memo releases its pin before asking
  // the pool for the replacement.
  util::TempDir dir("memo-1f");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 4);
  storage::BufferPool pool(1 * kBlock, kBlock);
  ASSERT_EQ(pool.num_frames(), 1u);
  storage::PageSource source = storage::PageSource::Pooled(&pool);
  auto seg = source.AddSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  storage::FetchMemo memo;
  for (uint32_t b : {0u, 1u, 2u, 1u, 0u}) {
    auto page = memo.Get(source, *seg, b);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_TRUE(BlockIsCorrect((*page)->data(), b));
  }
  memo.Clear();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(FetchMemo, CrossSegmentPinsClearAndRetryOnTinyPool) {
  // Two segments but a single frame: the memo's pin on segment a's block
  // is exactly what exhausts the pool for segment b's fetch. The memo
  // must drop its pins and retry rather than surface the exhaustion.
  util::TempDir dir("memo-xseg");
  storage::BlockFile file_a = MakeFile(dir.File("a.blk"), 2);
  storage::BlockFile file_b = MakeFile(dir.File("b.blk"), 2);
  storage::BufferPool pool(1 * kBlock, kBlock);
  storage::PageSource source = storage::PageSource::Pooled(&pool);
  auto seg_a = source.AddSegment("a", &file_a);
  auto seg_b = source.AddSegment("b", &file_b);
  ASSERT_TRUE(seg_a.ok());
  ASSERT_TRUE(seg_b.ok());

  storage::FetchMemo memo;
  for (int round = 0; round < 3; ++round) {
    auto a = memo.Get(source, *seg_a, 1);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_TRUE(BlockIsCorrect((*a)->data(), 1));
    auto b = memo.Get(source, *seg_b, 0);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_TRUE(BlockIsCorrect((*b)->data(), 0));
  }
  memo.Clear();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(FetchMemo, MappedModeIsAPassThrough) {
  util::TempDir dir("memo-map");
  MakeFile(dir.File("a.blk"), 4).Close();
  auto mapped = storage::MappedFile::Open(dir.File("a.blk"), kBlock);
  ASSERT_TRUE(mapped.ok());
  storage::PageSource source = storage::PageSource::Mapped();
  auto seg = source.AddSegment("a", &*mapped);
  ASSERT_TRUE(seg.ok());

  storage::FetchMemo memo;
  for (int i = 0; i < 3; ++i) {
    auto page = memo.Get(source, *seg, 1);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect((*page)->data(), 1));
  }
  // No memoization happened — mapped fetches are already pointer reads.
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(memo.misses(), 0u);
}

// --- Engine-level parity ----------------------------------------------------

/// Builds a small indexed protein workload and returns the flattened
/// result stream of `options` for a fixed query set.
struct ParityRun {
  std::vector<core::OasisResult> results;
};

ParityRun RunWithOptions(const std::string& index_dir,
                         const std::vector<std::vector<seq::Symbol>>& queries,
                         api::EngineOptions options) {
  options.io_mode = api::IoMode::kPooled;
  options.pool_bytes = 16 * storage::kDefaultBlockSize;  // miss-heavy
  auto engine = api::Engine::Open(index_dir, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  ParityRun run;
  for (const auto& query : queries) {
    auto out = (*engine)->SearchAll(
        api::SearchRequest(query).EValue(1000.0).WithAlignments());
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    for (auto& result : out->results) run.results.push_back(std::move(result));
  }
  return run;
}

TEST(ReadaheadParity, DisabledAndEnabledProduceIdenticalStreams) {
  util::TempDir dir("ra-parity");
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 20000;
  db_options.seed = 7;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  auto built = api::Engine::BuildFromDatabase(std::move(db).value(),
                                              dir.File("idx"), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  workload::MotifQueryOptions q_options;
  q_options.num_queries = 6;
  q_options.seed = 7;
  auto resident = (*built)->ResidentDatabase();
  ASSERT_TRUE(resident.ok());
  auto motifs = workload::GenerateMotifQueries(
      **resident, (*built)->matrix(), q_options);
  ASSERT_TRUE(motifs.ok());
  std::vector<std::vector<seq::Symbol>> queries;
  for (const auto& motif : *motifs) queries.push_back(motif.symbols);
  built->reset();  // reopen below with explicit per-config options

  // The shipping default (memo on, readahead off), everything off,
  // fixed-window readahead, and adaptive-window readahead must emit
  // byte-for-byte identical result streams.
  api::EngineOptions plain;
  plain.fetch_memo = false;
  api::EngineOptions fixed;
  fixed.fetch_memo = true;
  fixed.readahead_blocks = 8;
  fixed.readahead_adaptive = false;
  api::EngineOptions adaptive;
  adaptive.fetch_memo = true;
  adaptive.readahead_blocks = 8;
  adaptive.readahead_adaptive = true;  // the default, spelled out
  ParityRun base = RunWithOptions(dir.File("idx"), queries, {});
  ParityRun off = RunWithOptions(dir.File("idx"), queries, plain);
  ParityRun on = RunWithOptions(dir.File("idx"), queries, fixed);
  ParityRun ada = RunWithOptions(dir.File("idx"), queries, adaptive);

  ASSERT_EQ(base.results.size(), off.results.size());
  ASSERT_EQ(base.results.size(), on.results.size());
  ASSERT_EQ(base.results.size(), ada.results.size());
  for (size_t i = 0; i < base.results.size(); ++i) {
    for (const ParityRun* other : {&off, &on, &ada}) {
      const core::OasisResult& a = base.results[i];
      const core::OasisResult& b = other->results[i];
      EXPECT_EQ(a.sequence_id, b.sequence_id) << "result " << i;
      EXPECT_EQ(a.score, b.score) << "result " << i;
      EXPECT_EQ(a.db_end_pos, b.db_end_pos) << "result " << i;
      EXPECT_EQ(a.target_end, b.target_end) << "result " << i;
      EXPECT_EQ(a.query_end, b.query_end) << "result " << i;
      ASSERT_EQ(a.alignment.has_value(), b.alignment.has_value());
      if (a.alignment.has_value()) {
        EXPECT_EQ(a.alignment->score, b.alignment->score);
        EXPECT_EQ(a.alignment->ops, b.alignment->ops);
        EXPECT_EQ(a.alignment->target_start, b.alignment->target_start);
      }
    }
  }
}

TEST(ReadaheadParity, EngineExposesReadaheadStatsOnlyWhenEnabled) {
  util::TempDir dir("ra-eng");
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(api::Engine::BuildFromDatabase(std::move(db).value(),
                                             dir.File("idx"), {})
                  .ok());

  api::EngineOptions pooled;
  pooled.io_mode = api::IoMode::kPooled;
  pooled.readahead_blocks = 4;
  auto with = api::Engine::Open(dir.File("idx"), pooled);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE((*with)->uses_readahead());
  EXPECT_EQ((*with)->readahead_blocks(), 4u);
  (void)(*with)->readahead_stats();  // accessible, initially all zero
  EXPECT_EQ((*with)->readahead_stats().issued, 0u);

  pooled.readahead_blocks = 0;
  auto without = api::Engine::Open(dir.File("idx"), pooled);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE((*without)->uses_readahead());
  EXPECT_EQ((*without)->readahead_blocks(), 0u);

  api::EngineOptions mapped;
  mapped.io_mode = api::IoMode::kMmap;
  mapped.readahead_blocks = 8;  // ignored: no pool to speculate into
  auto mm = api::Engine::Open(dir.File("idx"), mapped);
  ASSERT_TRUE(mm.ok());
  EXPECT_FALSE((*mm)->uses_readahead());
  EXPECT_EQ((*mm)->readahead_blocks(), 0u);

  // Validation: an absurd window and zero worker threads are rejected up
  // front, not clamped or deferred to a surprise at speculation time.
  api::EngineOptions absurd;
  absurd.io_mode = api::IoMode::kPooled;
  absurd.readahead_blocks = api::kMaxReadaheadBlocks + 1;
  auto too_big = api::Engine::Open(dir.File("idx"), absurd);
  EXPECT_FALSE(too_big.ok());
  EXPECT_TRUE(too_big.status().IsInvalidArgument());

  api::EngineOptions no_workers;
  no_workers.io_mode = api::IoMode::kPooled;
  no_workers.readahead_blocks = 4;
  no_workers.readahead_threads = 0;
  auto zero_threads = api::Engine::Open(dir.File("idx"), no_workers);
  EXPECT_FALSE(zero_threads.ok());
  EXPECT_TRUE(zero_threads.status().IsInvalidArgument());
}

}  // namespace
}  // namespace oasis
