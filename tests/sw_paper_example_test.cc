// Reproduces the paper's §2.2 worked example: the Smith-Waterman matrix for
// query TACG against target AGTACGCCTAG under the unit edit-distance matrix
// (Table 1 / Table 2).

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "align/traceback.h"
#include "test_util.h"

namespace oasis {
namespace {

using testing::Encode;

TEST(SwPaperExample, UnitMatrixIsTable1) {
  const score::SubstitutionMatrix& m = score::SubstitutionMatrix::UnitDna();
  const seq::Alphabet& a = seq::Alphabet::Dna();
  for (char x : std::string("ACGT")) {
    for (char y : std::string("ACGT")) {
      score::ScoreT s = m.Score(a.CharToCode(x), a.CharToCode(y));
      EXPECT_EQ(s, x == y ? 1 : -1) << x << " vs " << y;
    }
  }
  EXPECT_EQ(m.gap_penalty(), -1);
}

TEST(SwPaperExample, MatrixMatchesTable2) {
  const seq::Alphabet& a = seq::Alphabet::Dna();
  auto query = Encode(a, "TACG");
  auto target = Encode(a, "AGTACGCCTAG");
  auto h = align::FullMatrix(query, target,
                             score::SubstitutionMatrix::UnitDna());

  // Paper Table 2 (rows T, A, C, G; columns A G T A C G C C T A G).
  const score::ScoreT kExpected[4][11] = {
      {0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0},   // T
      {1, 0, 0, 2, 1, 0, 0, 0, 0, 2, 1},   // A
      {0, 0, 0, 1, 3, 2, 1, 1, 0, 1, 1},   // C
      {0, 1, 0, 0, 2, 4, 3, 2, 1, 0, 2},   // G
  };
  for (size_t i = 1; i <= 4; ++i) {
    for (size_t j = 1; j <= 11; ++j) {
      EXPECT_EQ(h[i][j], kExpected[i - 1][j - 1])
          << "cell (" << i << ", " << j << ")";
    }
  }
}

TEST(SwPaperExample, BestAlignmentIsTacgExact) {
  const seq::Alphabet& a = seq::Alphabet::Dna();
  auto query = Encode(a, "TACG");
  auto target = Encode(a, "AGTACGCCTAG");

  align::AlignStats stats;
  align::SequenceHit hit = align::AlignPair(
      query, target, score::SubstitutionMatrix::UnitDna(), &stats);
  EXPECT_EQ(hit.score, 4);
  EXPECT_EQ(hit.query_end, 3u);   // last query symbol
  EXPECT_EQ(hit.target_end, 5u);  // the G at target position 5 (0-based)
  EXPECT_EQ(stats.columns_expanded, 11u);

  align::Alignment aln = align::TracebackLocal(
      query, target, score::SubstitutionMatrix::UnitDna());
  EXPECT_EQ(aln.score, 4);
  EXPECT_EQ(aln.Cigar(), "4=");  // TACG aligned to TACG, all matches
  EXPECT_EQ(aln.target_start, 2u);
  EXPECT_EQ(aln.target_end, 5u);
  EXPECT_EQ(aln.RecomputeScore(score::SubstitutionMatrix::UnitDna(), query,
                               target),
            4);
}

}  // namespace
}  // namespace oasis
