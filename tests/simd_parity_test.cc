// The SIMD alignment layer's one invariant, fuzzed from every angle:
// vector kernels are *byte-identical* to the scalar baseline — same
// SequenceHit (score AND tie-broken end coordinates), same AlignStats,
// same ungapped extensions — at every dispatch level this machine can
// run, across all four built-in matrices, both alphabets, and the
// stripe-boundary / overflow-ladder edge cases (see
// src/align/README.md for why each case is sharp).
//
// Suites are named Simd* so the sanitizer CI legs can select them all
// with one filter.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "align/pair_aligner.h"
#include "align/simd/dispatch.h"
#include "align/simd/ungapped.h"
#include "align/smith_waterman.h"
#include "blast/extend.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;
namespace simd = align::simd;

std::vector<seq::Symbol> RandomSeq(util::Random& rng, uint32_t sigma,
                                   size_t len) {
  std::vector<seq::Symbol> out(len);
  for (auto& s : out) s = static_cast<seq::Symbol>(rng.Uniform(sigma));
  return out;
}

/// Every dispatch level this build + CPU can actually run (kScalar first).
std::vector<simd::SimdLevel> SupportedLevels() {
  std::vector<simd::SimdLevel> levels = {simd::SimdLevel::kScalar};
  if (simd::LevelSupported(simd::SimdLevel::kSse4)) {
    levels.push_back(simd::SimdLevel::kSse4);
  }
  if (simd::LevelSupported(simd::SimdLevel::kAvx2)) {
    levels.push_back(simd::SimdLevel::kAvx2);
  }
  return levels;
}

/// Mode that forces exactly `level` (ResolveLevel is the identity on
/// supported levels).
simd::SimdMode ForceMode(simd::SimdLevel level) {
  switch (level) {
    case simd::SimdLevel::kScalar: return simd::SimdMode::kOff;
    case simd::SimdLevel::kSse4: return simd::SimdMode::kSse4;
    case simd::SimdLevel::kAvx2: return simd::SimdMode::kAvx2;
  }
  return simd::SimdMode::kOff;
}

/// Asserts one query/target pair aligns identically through PairAligner
/// at `level` and through the scalar AlignPair — hit and stats both.
void ExpectPairParity(std::span<const seq::Symbol> q,
                      std::span<const seq::Symbol> t,
                      const score::SubstitutionMatrix& matrix,
                      simd::SimdLevel level) {
  align::AlignStats scalar_stats, simd_stats;
  align::SequenceHit expect = align::AlignPair(q, t, matrix, &scalar_stats);
  align::PairAligner aligner(q, matrix, ForceMode(level));
  align::SequenceHit got = aligner.Align(t, &simd_stats);
  ASSERT_EQ(got.score, expect.score)
      << matrix.name() << " level=" << simd::SimdLevelName(level)
      << " m=" << q.size() << " n=" << t.size();
  ASSERT_EQ(got.query_end, expect.query_end)
      << matrix.name() << " level=" << simd::SimdLevelName(level);
  ASSERT_EQ(got.target_end, expect.target_end)
      << matrix.name() << " level=" << simd::SimdLevelName(level);
  ASSERT_EQ(simd_stats.columns_expanded, scalar_stats.columns_expanded);
  ASSERT_EQ(simd_stats.cells_computed, scalar_stats.cells_computed);
}

// ---------------------------------------------------------------------------
// SimdDispatch: mode parsing and resolution rules.
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ParseAcceptsTheFourSpellings) {
  auto a = simd::ParseSimdMode("auto");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), simd::SimdMode::kAuto);
  auto v = simd::ParseSimdMode("avx2");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), simd::SimdMode::kAvx2);
  auto s = simd::ParseSimdMode("sse4");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), simd::SimdMode::kSse4);
  auto o = simd::ParseSimdMode("off");
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o.value(), simd::SimdMode::kOff);
}

TEST(SimdDispatch, ParseRejectsEverythingElse) {
  // Exact, case-sensitive: the flag discipline of util/flag_parse.
  for (const char* bad : {"", "AVX2", "Auto", "sse", "sse4.1", "avx512",
                          "scalar", "on", " auto", "auto "}) {
    auto parsed = simd::ParseSimdMode(bad);
    EXPECT_FALSE(parsed.ok()) << "'" << bad << "' should not parse";
  }
}

TEST(SimdDispatch, NamesRoundTrip) {
  for (simd::SimdMode mode :
       {simd::SimdMode::kAuto, simd::SimdMode::kAvx2, simd::SimdMode::kSse4,
        simd::SimdMode::kOff}) {
    auto parsed = simd::ParseSimdMode(simd::SimdModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), mode);
  }
}

TEST(SimdDispatch, OffAlwaysResolvesScalar) {
  EXPECT_EQ(simd::ResolveLevel(simd::SimdMode::kOff),
            simd::SimdLevel::kScalar);
  EXPECT_TRUE(simd::LevelSupported(simd::SimdLevel::kScalar));
}

TEST(SimdDispatch, AutoResolvesToDetectedLevel) {
  EXPECT_EQ(simd::ResolveLevel(simd::SimdMode::kAuto), simd::DetectLevel());
}

TEST(SimdDispatch, ForcedModesResolveToThemselvesWhenSupported) {
  for (simd::SimdLevel level : SupportedLevels()) {
    EXPECT_EQ(simd::ResolveLevel(ForceMode(level)), level);
  }
}

TEST(SimdDispatch, CheckSupportedMatchesLevelSupport) {
  // kAuto and kOff always pass; a forced ISA passes iff runnable here.
  OASIS_EXPECT_OK(simd::CheckSupported(simd::SimdMode::kAuto));
  OASIS_EXPECT_OK(simd::CheckSupported(simd::SimdMode::kOff));
  EXPECT_EQ(simd::CheckSupported(simd::SimdMode::kAvx2).ok(),
            simd::LevelSupported(simd::SimdLevel::kAvx2));
  EXPECT_EQ(simd::CheckSupported(simd::SimdMode::kSse4).ok(),
            simd::LevelSupported(simd::SimdLevel::kSse4));
}

// ---------------------------------------------------------------------------
// SimdParity: the striped kernel vs the scalar DP.
// ---------------------------------------------------------------------------

const score::SubstitutionMatrix& MatrixByIndex(size_t i) {
  switch (i % 4) {
    case 0: return score::SubstitutionMatrix::UnitDna();
    case 1: return score::SubstitutionMatrix::Blastn();
    case 2: return score::SubstitutionMatrix::Pam30();
    default: return score::SubstitutionMatrix::Blosum62();
  }
}

TEST(SimdParity, StripeBoundaryLengthsAllMatricesAllLevels) {
  // Query lengths straddling every u8/u16 lane-count boundary of both
  // ISAs (SSE u16 = 8 lanes ... AVX2 u8 = 32 lanes), plus 0/1/odd.
  const size_t kLengths[] = {0,  1,  2,  3,  7,  8,  9,  15, 16, 17,
                             31, 32, 33, 63, 64, 65, 100};
  util::Random rng(71);
  for (size_t mi = 0; mi < 4; ++mi) {
    const auto& matrix = MatrixByIndex(mi);
    const uint32_t sigma = matrix.alphabet().size();
    for (size_t m : kLengths) {
      auto q = RandomSeq(rng, sigma, m);
      for (size_t n : {size_t{0}, size_t{1}, size_t{17}, size_t{64}}) {
        auto t = RandomSeq(rng, sigma, n);
        for (simd::SimdLevel level : SupportedLevels()) {
          ExpectPairParity(q, t, matrix, level);
        }
      }
    }
  }
}

TEST(SimdParity, RandomizedFuzzAllMatrices) {
  util::Random rng(72);
  for (int iter = 0; iter < 120; ++iter) {
    const auto& matrix = MatrixByIndex(iter);
    const uint32_t sigma = matrix.alphabet().size();
    auto q = RandomSeq(rng, sigma, rng.Uniform(90));
    auto t = RandomSeq(rng, sigma, rng.Uniform(140));
    for (simd::SimdLevel level : SupportedLevels()) {
      ExpectPairParity(q, t, matrix, level);
    }
  }
}

TEST(SimdParity, TieBreakMatchesScalarFirstColumnOrder) {
  // A periodic target reaches the same best score in many cells; the
  // scalar rule keeps the first one in column order (smallest target
  // end, then smallest query end). Planted repeats make any vector
  // tie-break slip visible deterministically.
  const auto& matrix = score::SubstitutionMatrix::UnitDna();
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  auto t = Encode(seq::Alphabet::Dna(), "ACGTACGTACGTACGTACGT");
  for (simd::SimdLevel level : SupportedLevels()) {
    ExpectPairParity(q, t, matrix, level);
  }
  // And fuzz low-entropy pairs, where ties are everywhere.
  util::Random rng(73);
  for (int iter = 0; iter < 60; ++iter) {
    auto q2 = RandomSeq(rng, 2, 1 + rng.Uniform(40));
    auto t2 = RandomSeq(rng, 2, 1 + rng.Uniform(60));
    for (simd::SimdLevel level : SupportedLevels()) {
      ExpectPairParity(q2, t2, matrix, level);
    }
  }
}

TEST(SimdParity, PairAlignerReusesAcrossVaryingTargetLengths) {
  // One aligner, many targets of jumping lengths: the reused scratch must
  // resize/clear correctly between pairs (stale H from a longer target
  // must never leak into a shorter one).
  util::Random rng(74);
  const auto& matrix = score::SubstitutionMatrix::Blosum62();
  auto q = RandomSeq(rng, matrix.alphabet().size(), 37);
  for (simd::SimdLevel level : SupportedLevels()) {
    align::PairAligner aligner(q, matrix, ForceMode(level));
    for (size_t n : {size_t{120}, size_t{3}, size_t{77}, size_t{0},
                     size_t{55}, size_t{1}, size_t{200}}) {
      auto t = RandomSeq(rng, matrix.alphabet().size(), n);
      align::SequenceHit expect = align::AlignPair(q, t, matrix);
      align::SequenceHit got = aligner.Align(t);
      ASSERT_EQ(got.score, expect.score) << "n=" << n;
      ASSERT_EQ(got.query_end, expect.query_end) << "n=" << n;
      ASSERT_EQ(got.target_end, expect.target_end) << "n=" << n;
    }
  }
}

TEST(SimdParity, ScanDatabaseIdenticalAcrossModes) {
  util::Random rng(75);
  std::vector<std::string> texts;
  const char* residues = "ACGT";
  for (int i = 0; i < 40; ++i) {
    std::string s;
    for (size_t j = 0; j < 5 + rng.Uniform(60); ++j) {
      s.push_back(residues[rng.Uniform(4)]);
    }
    texts.push_back(s);
  }
  auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
  auto q = Encode(seq::Alphabet::Dna(), "ACGTTGCAACGT");
  const auto& matrix = score::SubstitutionMatrix::Blastn();

  align::AlignStats off_stats;
  auto off_hits = align::ScanDatabase(q, db, matrix, 10, &off_stats,
                                      simd::SimdMode::kOff);
  for (simd::SimdLevel level : SupportedLevels()) {
    align::AlignStats stats;
    auto hits =
        align::ScanDatabase(q, db, matrix, 10, &stats, ForceMode(level));
    ASSERT_EQ(hits.size(), off_hits.size());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].sequence_id, off_hits[i].sequence_id) << i;
      EXPECT_EQ(hits[i].score, off_hits[i].score) << i;
      EXPECT_EQ(hits[i].query_end, off_hits[i].query_end) << i;
      EXPECT_EQ(hits[i].target_end, off_hits[i].target_end) << i;
    }
    EXPECT_EQ(stats.columns_expanded, off_stats.columns_expanded);
    EXPECT_EQ(stats.cells_computed, off_stats.cells_computed);
  }
  // kAuto is one of the above levels, so it too must agree.
  auto auto_hits = align::ScanDatabase(q, db, matrix, 10, nullptr,
                                       simd::SimdMode::kAuto);
  ASSERT_EQ(auto_hits.size(), off_hits.size());
  for (size_t i = 0; i < auto_hits.size(); ++i) {
    EXPECT_EQ(auto_hits[i].score, off_hits[i].score) << i;
  }
}

TEST(SimdParity, ConcurrentScansAreRaceFreeAndIdentical) {
  // Each worker owns its PairAligner (via ScanDatabase); the shared
  // inputs (db, matrix, query) are read-only. Run under TSan in CI.
  util::Random rng(76);
  std::vector<std::string> texts;
  const char* residues = "ACGT";
  for (int i = 0; i < 24; ++i) {
    std::string s;
    for (size_t j = 0; j < 10 + rng.Uniform(40); ++j) {
      s.push_back(residues[rng.Uniform(4)]);
    }
    texts.push_back(s);
  }
  auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGTAC");
  const auto& matrix = score::SubstitutionMatrix::UnitDna();
  auto expect = align::ScanDatabase(q, db, matrix, 5, nullptr,
                                    simd::SimdMode::kOff);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int rep = 0; rep < 8; ++rep) {
        auto hits = align::ScanDatabase(q, db, matrix, 5, nullptr,
                                        simd::SimdMode::kAuto);
        if (hits.size() != expect.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < hits.size(); ++i) {
          if (hits[i].score != expect[i].score ||
              hits[i].sequence_id != expect[i].sequence_id) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---------------------------------------------------------------------------
// SimdOverflow: the u8 -> u16 -> scalar saturation ladder.
// ---------------------------------------------------------------------------

TEST(SimdOverflow, U8SaturationRerunsInU16) {
  // Blastn: bias 6, so the u8 rung saturates at best >= 255 - 6 = 249.
  // A 60-residue identical pair scores 300 — past the detector — and the
  // u16 re-run must still report the exact score.
  const auto& matrix = score::SubstitutionMatrix::Blastn();
  util::Random rng(77);
  auto q = RandomSeq(rng, 4, 60);
  for (simd::SimdLevel level : SupportedLevels()) {
    align::PairAligner aligner(q, matrix, ForceMode(level));
    align::SequenceHit hit = aligner.Align(q);
    EXPECT_EQ(hit.score, 300);
    EXPECT_EQ(hit.query_end, 59u);
    EXPECT_EQ(hit.target_end, 59u);
  }
  // And a near-threshold sweep: lengths whose self-score brackets 249.
  for (size_t m : {size_t{48}, size_t{49}, size_t{50}, size_t{51},
                   size_t{52}}) {
    auto s = RandomSeq(rng, 4, m);
    for (simd::SimdLevel level : SupportedLevels()) {
      ExpectPairParity(s, s, matrix, level);
    }
  }
}

TEST(SimdOverflow, U16SaturationFallsBackToScalar) {
  // Scores of +-3000 make the u8 width non-viable (bias 3000 > 255) and
  // push a 30-residue identical pair to 90000 > 65535 - 3000: the u16
  // rung saturates too, and AlignStriped must re-run the scalar DP.
  const auto& alphabet = seq::Alphabet::Dna();
  const uint32_t n = alphabet.size();
  std::vector<score::ScoreT> table(n * n, -3000);
  for (uint32_t i = 0; i < n; ++i) table[i * n + i] = 3000;
  auto big = score::SubstitutionMatrix::Create(alphabet, "big", table, -3000);
  ASSERT_TRUE(big.ok()) << big.status().ToString();

  util::Random rng(78);
  auto q = RandomSeq(rng, n, 30);
  for (simd::SimdLevel level : SupportedLevels()) {
    ExpectPairParity(q, q, big.value(), level);
    align::PairAligner aligner(q, big.value(), ForceMode(level));
    EXPECT_EQ(aligner.Align(q).score, 90000);
  }
}

TEST(SimdOverflow, U8NonViableMatrixUsesU16Directly) {
  // +-300 fits u16 (bias 300) but not u8: the ladder starts at the u16
  // rung and, absent saturation, never touches the scalar fallback.
  const auto& alphabet = seq::Alphabet::Dna();
  const uint32_t n = alphabet.size();
  std::vector<score::ScoreT> table(n * n, -300);
  for (uint32_t i = 0; i < n; ++i) table[i * n + i] = 300;
  auto mid = score::SubstitutionMatrix::Create(alphabet, "mid", table, -300);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();

  util::Random rng(79);
  for (int iter = 0; iter < 30; ++iter) {
    auto q = RandomSeq(rng, n, 1 + rng.Uniform(50));
    auto t = RandomSeq(rng, n, 1 + rng.Uniform(70));
    for (simd::SimdLevel level : SupportedLevels()) {
      ExpectPairParity(q, t, mid.value(), level);
    }
  }
}

TEST(SimdOverflow, StatsIdenticalThroughEveryRung) {
  // Whether a pair resolves on the u8 rung, the u16 re-run, or the scalar
  // fallback, the accounting is one column per target symbol and m cells
  // per column — exactly the scalar counters.
  const auto& matrix = score::SubstitutionMatrix::Blastn();
  util::Random rng(80);
  auto q = RandomSeq(rng, 4, 60);
  auto t = RandomSeq(rng, 4, 90);
  for (simd::SimdLevel level : SupportedLevels()) {
    align::AlignStats stats;
    align::PairAligner aligner(q, matrix, ForceMode(level));
    aligner.Align(q, &stats);   // overflows u8 (score 300)
    aligner.Align(t, &stats);   // random pair, typically u8-resolved
    EXPECT_EQ(stats.columns_expanded, q.size() + t.size());
    EXPECT_EQ(stats.cells_computed, (q.size() + t.size()) * q.size());
  }
}

// ---------------------------------------------------------------------------
// SimdUngapped: the vectorized X-drop diagonal scorer.
// ---------------------------------------------------------------------------

TEST(SimdUngapped, DiagonalFuzzMatchesScalar) {
  util::Random rng(81);
  const score::SubstitutionMatrix* matrices[] = {
      &score::SubstitutionMatrix::Blastn(),
      &score::SubstitutionMatrix::Blosum62()};
  for (int iter = 0; iter < 200; ++iter) {
    const auto& matrix = *matrices[iter % 2];
    const uint32_t sigma = matrix.alphabet().size();
    auto q = RandomSeq(rng, sigma, 1 + rng.Uniform(120));
    auto t = RandomSeq(rng, sigma, 1 + rng.Uniform(120));
    // Half the iterations plant a shared run so the walk goes deep
    // instead of X-dropping immediately.
    if (iter % 2 == 0) {
      size_t run = std::min({q.size(), t.size(), size_t(40)});
      for (size_t k = 0; k < run; ++k) t[k] = q[k];
    }
    const int dir = (iter % 4 < 2) ? 1 : -1;
    uint64_t q0, t0, max_steps;
    if (dir > 0) {
      q0 = rng.Uniform(q.size());
      t0 = rng.Uniform(t.size());
      max_steps = rng.Uniform(std::min(q.size() - q0, t.size() - t0) + 1);
    } else {
      q0 = rng.Uniform(q.size());
      t0 = rng.Uniform(t.size());
      max_steps = rng.Uniform(std::min(q0, t0) + 2);
      if (max_steps > std::min(q0, t0) + 1) max_steps = std::min(q0, t0) + 1;
    }
    const score::ScoreT xdrop = 1 + static_cast<score::ScoreT>(rng.Uniform(30));
    simd::DiagExtension expect = simd::ExtendDiagonal(
        q, t, q0, t0, dir, max_steps, matrix, xdrop, simd::SimdLevel::kScalar);
    for (simd::SimdLevel level : SupportedLevels()) {
      simd::DiagExtension got = simd::ExtendDiagonal(q, t, q0, t0, dir,
                                                     max_steps, matrix, xdrop,
                                                     level);
      ASSERT_EQ(got.best, expect.best)
          << "iter=" << iter << " level=" << simd::SimdLevelName(level)
          << " dir=" << dir << " steps=" << max_steps;
      ASSERT_EQ(got.steps, expect.steps)
          << "iter=" << iter << " level=" << simd::SimdLevelName(level)
          << " dir=" << dir << " steps=" << max_steps;
    }
  }
}

TEST(SimdUngapped, ZeroAndTinyStepCounts) {
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  auto t = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  const auto& matrix = score::SubstitutionMatrix::Blastn();
  for (simd::SimdLevel level : SupportedLevels()) {
    for (uint64_t steps : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                           uint64_t{8}}) {
      simd::DiagExtension expect = simd::ExtendDiagonal(
          q, t, 0, 0, 1, steps, matrix, 20, simd::SimdLevel::kScalar);
      simd::DiagExtension got =
          simd::ExtendDiagonal(q, t, 0, 0, 1, steps, matrix, 20, level);
      EXPECT_EQ(got.best, expect.best) << "steps=" << steps;
      EXPECT_EQ(got.steps, expect.steps) << "steps=" << steps;
    }
  }
}

TEST(SimdUngapped, ExtendUngappedLevelParity) {
  // Full blast::ExtendUngapped with a planted word match: every level
  // must return the identical Extension (score and all four bounds).
  util::Random rng(82);
  const uint32_t w = 4;
  for (int iter = 0; iter < 100; ++iter) {
    const auto& matrix = (iter % 2 == 0)
                             ? score::SubstitutionMatrix::Blastn()
                             : score::SubstitutionMatrix::Blosum62();
    const uint32_t sigma = matrix.alphabet().size();
    auto q = RandomSeq(rng, sigma, w + rng.Uniform(80));
    auto t = RandomSeq(rng, sigma, w + rng.Uniform(80));
    const uint64_t q_pos = rng.Uniform(q.size() - w + 1);
    const uint64_t t_pos = rng.Uniform(t.size() - w + 1);
    for (uint32_t k = 0; k < w; ++k) t[t_pos + k] = q[q_pos + k];
    const score::ScoreT xdrop = 1 + static_cast<score::ScoreT>(rng.Uniform(25));
    blast::Extension expect =
        blast::ExtendUngapped(q, t, q_pos, t_pos, w, matrix, xdrop,
                              simd::SimdLevel::kScalar);
    for (simd::SimdLevel level : SupportedLevels()) {
      blast::Extension got =
          blast::ExtendUngapped(q, t, q_pos, t_pos, w, matrix, xdrop, level);
      ASSERT_EQ(got.score, expect.score) << "iter=" << iter;
      ASSERT_EQ(got.query_start, expect.query_start) << "iter=" << iter;
      ASSERT_EQ(got.query_end, expect.query_end) << "iter=" << iter;
      ASSERT_EQ(got.target_start, expect.target_start) << "iter=" << iter;
      ASSERT_EQ(got.target_end, expect.target_end) << "iter=" << iter;
    }
  }
}

}  // namespace
}  // namespace oasis
