// util: Status/StatusOr, Random, env helpers, heuristic vector.

#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "core/heuristic.h"
#include "test_util.h"
#include "util/random.h"
#include "util/status.h"

namespace oasis {
namespace {

TEST(Status, OkByDefault) {
  util::Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  util::Status s = util::Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
  EXPECT_TRUE(util::Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(util::Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(util::Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(util::Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(util::Status::NotSupported("x").IsNotSupported());
}

util::StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return util::Status::InvalidArgument("not positive");
  return x;
}

util::StatusOr<int> Doubled(int x) {
  OASIS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOr, ValueAndError) {
  auto good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(StatusOr, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(Random, DeterministicPerSeed) {
  util::Random a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  bool differs = false;
  util::Random a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Random, UniformStaysInRange) {
  util::Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, UniformCoversAllValues) {
  util::Random rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, BernoulliExtremes) {
  util::Random rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Random, CategoricalRespectsWeights) {
  util::Random rng(8);
  std::vector<double> weights{0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
  // Roughly proportional sampling.
  std::vector<double> w2{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical(w2) == 1) ++ones;
  }
  EXPECT_GT(ones, 6800);
  EXPECT_LT(ones, 8200);
}

TEST(Random, GaussianMomentsRoughlyStandard) {
  util::Random rng(9);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(TempDir, CreatesAndRemoves) {
  std::string path;
  {
    util::TempDir dir("ut");
    path = dir.path();
    EXPECT_TRUE(std::filesystem::exists(path));
    std::ofstream(dir.File("x.txt")) << "hello";
    EXPECT_TRUE(std::filesystem::exists(dir.File("x.txt")));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(EnvHelpers, ParseAndDefault) {
  ::setenv("OASIS_TEST_INT", "42", 1);
  EXPECT_EQ(util::EnvInt64("OASIS_TEST_INT", 7), 42);
  EXPECT_EQ(util::EnvInt64("OASIS_TEST_MISSING", 7), 7);
  ::setenv("OASIS_TEST_BAD", "4x2", 1);
  EXPECT_EQ(util::EnvInt64("OASIS_TEST_BAD", 7), 7);
  ::setenv("OASIS_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(util::EnvDouble("OASIS_TEST_DBL", 1.0), 2.5);
  EXPECT_EQ(util::EnvString("OASIS_TEST_MISSING", "dflt"), "dflt");
}

// --- Heuristic vector (paper §3.1) ----------------------------------------

TEST(HeuristicVector, MonotoneNonIncreasing) {
  auto q = testing::Encode(seq::Alphabet::Protein(), "MKTAYIAKQRW");
  core::HeuristicVector h(q, score::SubstitutionMatrix::Pam30());
  for (size_t i = 1; i < h.size(); ++i) {
    EXPECT_GE(h[i - 1], h[i]);
  }
  EXPECT_EQ(h[q.size()], 0);
}

TEST(HeuristicVector, IsAdmissibleUpperBound) {
  // h[i] must dominate the S-W score of the query suffix against any
  // target; check against targets drawn from the query itself (which
  // maximize the score).
  auto q = testing::Encode(seq::Alphabet::Protein(), "MKTAYIAKQRW");
  const auto& m = score::SubstitutionMatrix::Pam30();
  core::HeuristicVector h(q, m);
  for (size_t i = 0; i < q.size(); ++i) {
    std::vector<seq::Symbol> suffix(q.begin() + i, q.end());
    align::SequenceHit hit = align::AlignPair(suffix, suffix, m);
    EXPECT_GE(h[i], hit.score) << "suffix at " << i;
  }
}

TEST(HeuristicVector, ClampsNegativeBestScores) {
  // A matrix where one residue has an all-negative row: the clamp keeps h
  // non-negative (DESIGN.md: admissibility with "stop early" completions).
  const seq::Alphabet& a = seq::Alphabet::Dna();
  std::vector<score::ScoreT> table(16, -2);
  table[0 * 4 + 0] = 3;  // only A matches positively
  auto m = score::SubstitutionMatrix::Create(a, "hostile", std::move(table), -1);
  ASSERT_TRUE(m.ok());
  auto q = testing::Encode(a, "CA");
  core::HeuristicVector h(q, *m);
  // h[2] = 0; h[1] = max(0, 0+3) = 3 (A); h[0] = max(0, 3 + (-2)) = 1 (C).
  EXPECT_EQ(h[2], 0);
  EXPECT_EQ(h[1], 3);
  EXPECT_EQ(h[0], 1);
}

}  // namespace
}  // namespace oasis
