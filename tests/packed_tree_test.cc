// Packed on-disk tree (paper §3.4): pack/open round trip, structural
// equivalence with the in-memory tree, cursor traversal, and the
// terminator-byte / leaf-index conventions.

#include <set>

#include <gtest/gtest.h>

#include "suffix/packed_builder.h"
#include "suffix/suffix_tree.h"
#include "suffix/tree_cursor.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

std::string RandomDnaString(util::Random& rng, size_t len) {
  std::string out;
  for (size_t i = 0; i < len; ++i) out.push_back("ACGT"[rng.Uniform(4)]);
  return out;
}

/// Recursively verifies that the packed node matches the in-memory node:
/// same child arcs (labels and kinds), same leaf positions, same depths.
void CompareSubtree(const suffix::SuffixTree& mem, suffix::NodeId mem_node,
                    uint32_t mem_depth, const suffix::TreeCursor& cursor,
                    suffix::PackedNodeRef packed_node) {
  ASSERT_FALSE(mem.is_leaf(mem_node));
  const seq::SequenceDatabase& db = mem.database();

  struct PackedChild {
    suffix::ChildArc arc;
    std::vector<uint8_t> label;
  };
  std::vector<PackedChild> packed_children;
  util::Status status = cursor.ForEachChild(
      packed_node, mem_depth, [&](const suffix::ChildArc& arc) {
        PackedChild child;
        child.arc = arc;
        if (arc.arc_len > 0) {
          EXPECT_TRUE(
              cursor.ReadArcSymbols(arc.arc_start, arc.arc_len, &child.label)
                  .ok());
        }
        packed_children.push_back(std::move(child));
        return true;
      });
  OASIS_ASSERT_OK(status);

  const auto& mem_children = mem.children(mem_node);
  ASSERT_EQ(packed_children.size(), mem_children.size())
      << "child count mismatch at depth " << mem_depth;

  // The packed iteration interleaves internal-run then leaf-chain; compare
  // as sets keyed by the (kind, label) pair, then recurse pairwise.
  // Build lookup from first label byte -> packed child.
  for (const auto& [symbol, mem_child] : mem_children) {
    // Locate the matching packed child.
    const PackedChild* match = nullptr;
    for (const PackedChild& pc : packed_children) {
      bool mem_is_leaf = mem.is_leaf(mem_child);
      if (pc.arc.node.is_leaf != mem_is_leaf) continue;
      if (mem_is_leaf) {
        if (pc.arc.node.index == mem.suffix_start(mem_child)) {
          match = &pc;
          break;
        }
      } else {
        if (!pc.label.empty() &&
            pc.label[0] == static_cast<uint8_t>(symbol)) {
          match = &pc;
          break;
        }
      }
    }
    ASSERT_NE(match, nullptr) << "no packed child for symbol " << symbol;

    // Arc label must match the in-memory edge label (residues; for leaves
    // the in-memory edge includes the terminator, the packed arc excludes
    // it).
    uint64_t mem_start = mem.edge_start(mem_child);
    uint32_t mem_len = mem.edge_length(mem_child);
    uint32_t residue_len = mem.is_leaf(mem_child) ? mem_len - 1 : mem_len;
    ASSERT_EQ(match->arc.arc_len, residue_len);
    for (uint32_t k = 0; k < residue_len; ++k) {
      EXPECT_EQ(match->label[k],
                static_cast<uint8_t>(db.symbols()[mem_start + k]));
    }
    if (!mem.is_leaf(mem_child)) {
      EXPECT_EQ(match->arc.depth, mem_depth + mem_len);
      CompareSubtree(mem, mem_child, mem_depth + mem_len, cursor,
                     match->arc.node);
    }
  }
}

class PackedTreeTest : public ::testing::Test {};

TEST_F(PackedTreeTest, PaperExampleRoundTrip) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AGTACGCCTAG"});
  auto mem = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(mem.ok());
  testing::PackedFixture fixture(db);

  EXPECT_EQ(fixture.tree->num_internal(), mem->num_internal());
  EXPECT_EQ(fixture.tree->num_leaves(), mem->num_leaves());
  EXPECT_EQ(fixture.tree->alphabet_size(), 4u);
  EXPECT_EQ(fixture.tree->num_sequences(), 1u);

  suffix::TreeCursor cursor(fixture.tree.get());
  CompareSubtree(*mem, mem->root(), 0, cursor, cursor.Root());
}

TEST_F(PackedTreeTest, RandomDatabasesStructurallyEqual) {
  util::Random rng(555);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::string> texts;
    size_t n = 1 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      texts.push_back(RandomDnaString(rng, 1 + rng.Uniform(100)));
    }
    auto db = MakeDatabase(seq::Alphabet::Dna(), texts);
    auto mem = suffix::SuffixTree::BuildUkkonen(db);
    ASSERT_TRUE(mem.ok());
    testing::PackedFixture fixture(db);
    suffix::TreeCursor cursor(fixture.tree.get());
    CompareSubtree(*mem, mem->root(), 0, cursor, cursor.Root());
  }
}

TEST_F(PackedTreeTest, ContainsSubstringMatchesInMemory) {
  util::Random rng(556);
  auto db = MakeDatabase(seq::Alphabet::Dna(),
                         {RandomDnaString(rng, 200), RandomDnaString(rng, 80)});
  auto mem = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(mem.ok());
  testing::PackedFixture fixture(db);
  suffix::TreeCursor cursor(fixture.tree.get());

  for (int q = 0; q < 50; ++q) {
    std::string pattern = RandomDnaString(rng, 1 + rng.Uniform(8));
    auto encoded = Encode(seq::Alphabet::Dna(), pattern);
    std::vector<uint8_t> bytes(encoded.begin(), encoded.end());
    auto packed_result = cursor.ContainsSubstring(bytes);
    ASSERT_TRUE(packed_result.ok());
    EXPECT_EQ(*packed_result, mem->ContainsSubstring(encoded))
        << "pattern " << pattern;
  }
}

TEST_F(PackedTreeTest, CollectLeafPositionsEqualsOccurrences) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"GATTACAGATTACA"});
  auto mem = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(mem.ok());
  testing::PackedFixture fixture(db);
  suffix::TreeCursor cursor(fixture.tree.get());

  // Root subtree must contain every suffix position exactly once.
  std::vector<uint64_t> leaves;
  OASIS_ASSERT_OK(cursor.CollectLeafPositions(cursor.Root(), &leaves));
  std::set<uint64_t> unique(leaves.begin(), leaves.end());
  EXPECT_EQ(unique.size(), db.total_length());
  EXPECT_EQ(leaves.size(), db.total_length());
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), db.total_length() - 1);
}

TEST_F(PackedTreeTest, CollectLeafPositionsRespectsLimit) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"GATTACAGATTACA"});
  testing::PackedFixture fixture(db);
  suffix::TreeCursor cursor(fixture.tree.get());
  std::vector<uint64_t> leaves;
  OASIS_ASSERT_OK(cursor.CollectLeafPositions(cursor.Root(), &leaves, 3));
  EXPECT_EQ(leaves.size(), 3u);
}

TEST_F(PackedTreeTest, SymbolsFileUsesTerminatorByte) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"AC", "G"});
  testing::PackedFixture fixture(db);
  std::vector<uint8_t> bytes;
  OASIS_ASSERT_OK(fixture.tree->ReadSymbols(0, 5, &bytes));
  EXPECT_EQ(bytes[0], 0);                        // A
  EXPECT_EQ(bytes[1], 1);                        // C
  EXPECT_EQ(bytes[2], suffix::kTerminatorByte);  // $0
  EXPECT_EQ(bytes[3], 2);                        // G
  EXPECT_EQ(bytes[4], suffix::kTerminatorByte);  // $1
}

TEST_F(PackedTreeTest, SequenceMetadataAccessors) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACG", "TT"});
  testing::PackedFixture fixture(db);
  EXPECT_EQ(fixture.tree->SequenceStart(0), 0u);
  EXPECT_EQ(fixture.tree->TerminatorPos(0), 3u);
  EXPECT_EQ(fixture.tree->SequenceStart(1), 4u);
  EXPECT_EQ(fixture.tree->TerminatorPos(1), 6u);
  EXPECT_EQ(fixture.tree->SequenceOf(0), 0u);
  EXPECT_EQ(fixture.tree->SequenceOf(3), 0u);
  EXPECT_EQ(fixture.tree->SequenceOf(4), 1u);
  EXPECT_EQ(fixture.tree->SequenceOf(6), 1u);
}

TEST_F(PackedTreeTest, IndexBytesReported) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGTACGTACGT"});
  testing::PackedFixture fixture(db);
  // Three files, each at least one block.
  EXPECT_GE(fixture.tree->index_bytes(), 3u * storage::kDefaultBlockSize);
}

TEST_F(PackedTreeTest, OpenFailsOnMissingDirectory) {
  storage::BufferPool pool(1 << 20);
  EXPECT_FALSE(suffix::PackedSuffixTree::Open("/nonexistent/dir", &pool).ok());
}

TEST_F(PackedTreeTest, OpenFailsOnBlockSizeMismatch) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGT"});
  util::TempDir dir("pt");
  auto mem = suffix::SuffixTree::BuildUkkonen(db);
  ASSERT_TRUE(mem.ok());
  suffix::PackOptions options;
  options.block_size = 1024;
  OASIS_ASSERT_OK(suffix::PackSuffixTree(*mem, dir.path(), options));
  storage::BufferPool pool(1 << 20, 2048);  // different block size
  EXPECT_FALSE(suffix::PackedSuffixTree::Open(dir.path(), &pool).ok());
}

TEST_F(PackedTreeTest, OutOfRangeReadsFail) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGT"});
  testing::PackedFixture fixture(db);
  EXPECT_FALSE(fixture.tree
                   ->ReadInternal(static_cast<uint32_t>(
                       fixture.tree->num_internal()))
                   .ok());
  EXPECT_FALSE(fixture.tree
                   ->ReadLeafNext(static_cast<uint32_t>(
                       fixture.tree->num_leaves()))
                   .ok());
  std::vector<uint8_t> buf;
  EXPECT_FALSE(fixture.tree->ReadSymbols(3, 10, &buf).ok());
}

}  // namespace
}  // namespace oasis
