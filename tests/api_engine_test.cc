// Tests for the oasis::Engine facade: index lifecycle, the pull-based
// ResultCursor (vs the legacy callback stream), batched concurrent queries,
// the BLAST adapter and the persisted sequence catalog.

#include "api/engine.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "blast/blast.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

// Field-by-field equality of two results, including the reconstructed
// alignment when present.
void ExpectResultEq(const core::OasisResult& a, const core::OasisResult& b,
                    size_t index) {
  SCOPED_TRACE("result #" + std::to_string(index));
  EXPECT_EQ(a.sequence_id, b.sequence_id);
  EXPECT_EQ(a.score, b.score);
  EXPECT_DOUBLE_EQ(a.evalue, b.evalue);
  EXPECT_EQ(a.db_end_pos, b.db_end_pos);
  EXPECT_EQ(a.target_end, b.target_end);
  EXPECT_EQ(a.query_end, b.query_end);
  ASSERT_EQ(a.alignment.has_value(), b.alignment.has_value());
  if (a.alignment.has_value()) {
    EXPECT_EQ(a.alignment->score, b.alignment->score);
    EXPECT_EQ(a.alignment->query_start, b.alignment->query_start);
    EXPECT_EQ(a.alignment->query_end, b.alignment->query_end);
    EXPECT_EQ(a.alignment->target_start, b.alignment->target_start);
    EXPECT_EQ(a.alignment->target_end, b.alignment->target_end);
    EXPECT_EQ(a.alignment->ops, b.alignment->ops);
  }
}

void ExpectStreamsEq(const std::vector<core::OasisResult>& a,
                     const std::vector<core::OasisResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectResultEq(a[i], b[i], i);
}

// Drains a cursor into a vector, asserting OK at each pull.
std::vector<core::OasisResult> Drain(ResultCursor& cursor) {
  std::vector<core::OasisResult> out;
  while (true) {
    auto next = cursor.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

// A small deterministic protein database + engine in a temp index dir.
struct EngineFixture {
  util::TempDir dir;
  std::unique_ptr<Engine> engine;

  explicit EngineFixture(uint64_t residues = 20000,
                         EngineOptions options = EngineOptions())
      : dir("api") {
    workload::ProteinDatabaseOptions db_options;
    db_options.target_residues = residues;
    db_options.seed = 7;
    auto db = workload::GenerateProteinDatabase(db_options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    auto built =
        Engine::BuildFromDatabase(std::move(db).value(), dir.path(), options);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    engine = std::move(built).value();
  }
};

std::vector<SearchRequest> MotifRequests(const Engine& engine, uint32_t count,
                                         double evalue) {
  workload::MotifQueryOptions q_options;
  q_options.num_queries = count;
  q_options.seed = 11;
  auto db = const_cast<Engine&>(engine).ResidentDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  auto queries =
      workload::GenerateMotifQueries(**db, engine.matrix(), q_options);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();
  std::vector<SearchRequest> requests;
  for (auto& q : *queries) {
    requests.push_back(SearchRequest(std::move(q.symbols)).EValue(evalue));
  }
  return requests;
}

// --- Cursor vs callback equivalence ----------------------------------------

TEST(ResultCursor, MatchesCallbackStream) {
  EngineFixture fx;
  for (SearchRequest base : MotifRequests(*fx.engine, 6, 1000.0)) {
    for (bool alignments : {false, true}) {
      for (bool evalue_order : {false, true}) {
        SCOPED_TRACE("alignments=" + std::to_string(alignments) +
                     " evalue_order=" + std::to_string(evalue_order));
        SearchRequest request = base;
        request.WithAlignments(alignments).OrderByEValue(evalue_order);

        // Legacy push path: core::OasisSearch::Search with a callback.
        auto options = fx.engine->ResolveOptions(request);
        ASSERT_TRUE(options.ok()) << options.status().ToString();
        core::OasisSearch search(&fx.engine->tree(), &fx.engine->matrix());
        std::vector<core::OasisResult> pushed;
        auto stats = search.Search(request.query(), *options,
                                   [&](const core::OasisResult& r) {
                                     pushed.push_back(r);
                                     return true;
                                   });
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();

        // Pull path through the facade.
        auto cursor = fx.engine->Search(request);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        std::vector<core::OasisResult> pulled = Drain(*cursor);

        ExpectStreamsEq(pulled, pushed);
        EXPECT_EQ(cursor->stats().results_emitted, stats->results_emitted);
        EXPECT_EQ(cursor->stats().nodes_expanded, stats->nodes_expanded);
        EXPECT_EQ(cursor->stats().columns_expanded, stats->columns_expanded);
      }
    }
  }
}

TEST(ResultCursor, StreamIsScoreOrdered) {
  EngineFixture fx;
  for (SearchRequest& request : MotifRequests(*fx.engine, 4, 1000.0)) {
    auto cursor = fx.engine->Search(request);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<core::OasisResult> results = Drain(*cursor);
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_LE(results[i].score, results[i - 1].score)
          << "online ordering violated at result " << i;
    }
    EXPECT_TRUE(cursor->done());
  }
}

// --- Early termination ------------------------------------------------------

TEST(ResultCursor, EarlyCloseMatchesTopK) {
  EngineFixture fx;
  for (SearchRequest& base : MotifRequests(*fx.engine, 4, 5000.0)) {
    // Reference: how many results exist in total?
    auto full = fx.engine->SearchAll(base);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    if (full->results.size() < 3) continue;
    const uint64_t k = full->results.size() / 2 + 1;

    // TopK(k) through the request.
    SearchRequest topk = base;
    topk.TopK(k);
    auto capped = fx.engine->SearchAll(topk);
    ASSERT_TRUE(capped.ok()) << capped.status().ToString();

    // Pull k results, then Close().
    auto cursor = fx.engine->Search(base);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::vector<core::OasisResult> closed;
    for (uint64_t i = 0; i < k; ++i) {
      auto next = cursor->Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ASSERT_TRUE(next->has_value());
      closed.push_back(std::move(**next));
    }
    cursor->Close();
    auto after_close = cursor->Next();
    ASSERT_TRUE(after_close.ok());
    EXPECT_FALSE(after_close->has_value());
    EXPECT_TRUE(cursor->done());

    ExpectStreamsEq(closed, capped->results);
  }
}

TEST(ResultCursor, LazyAdvance) {
  // Pulling one result must not run the search to completion: the cursor
  // advances only far enough to prove the head of the stream.
  EngineFixture fx;
  SearchRequest request = MotifRequests(*fx.engine, 1, 5000.0)[0];
  auto full = fx.engine->SearchAll(request);
  ASSERT_TRUE(full.ok());
  if (full->results.size() < 2) GTEST_SKIP() << "workload too selective";

  auto cursor = fx.engine->Search(request);
  ASSERT_TRUE(cursor.ok());
  auto first = cursor->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_LT(cursor->stats().nodes_expanded, full->stats.nodes_expanded)
      << "first Next() should not exhaust the search";
}

// --- Batched concurrent queries ---------------------------------------------

TEST(SearchBatch, FourThreadsMatchSequential) {
  EngineFixture fx(40000);
  std::vector<SearchRequest> requests = MotifRequests(*fx.engine, 8, 1000.0);
  // Mix in per-request option diversity.
  requests[1].WithAlignments();
  requests[2].TopK(3);
  requests[3].OrderByEValue();

  BatchOptions batch;
  batch.threads = 4;
  auto parallel = fx.engine->SearchBatch(requests, batch);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(parallel->size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("request #" + std::to_string(i));
    auto sequential = fx.engine->SearchAll(requests[i]);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    ExpectStreamsEq((*parallel)[i].results, sequential->results);
    EXPECT_EQ((*parallel)[i].stats.results_emitted,
              sequential->stats.results_emitted);
  }
}

TEST(SearchBatch, MoreThreadsThanRequests) {
  EngineFixture fx;
  std::vector<SearchRequest> requests = MotifRequests(*fx.engine, 2, 1000.0);
  BatchOptions batch;
  batch.threads = 8;
  auto out = fx.engine->SearchBatch(requests, batch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 2u);
}

TEST(SearchBatch, EmptyBatch) {
  EngineFixture fx;
  auto out = fx.engine->SearchBatch(std::span<const SearchRequest>{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(SearchBatch, RejectsZeroThreads) {
  EngineFixture fx(2000);
  std::vector<SearchRequest> requests = MotifRequests(*fx.engine, 1, 1000.0);
  BatchOptions batch;
  batch.threads = 0;
  auto out = fx.engine->SearchBatch(requests, batch);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(SearchBatch, WorkersShareTheEnginePool) {
  // The refactored batch path must read through the engine's own buffer
  // pool (no per-worker replicas): its stats advance during the batch, and
  // a repeat batch benefits from the warmth the first one left behind.
  // Pool behaviour is the point, so pin the pooled I/O path (kAuto would
  // mmap an index this small).
  EngineOptions options;
  options.io_mode = IoMode::kPooled;
  EngineFixture fx(20000, options);
  ASSERT_TRUE(fx.engine->uses_pool());
  std::vector<SearchRequest> requests = MotifRequests(*fx.engine, 4, 1000.0);
  // Start cold: fixture setup (index build, database materialization) has
  // already warmed the pool, and the whole index fits in it.
  fx.engine->pool().Clear();
  fx.engine->pool().ResetStats();

  BatchOptions batch;
  batch.threads = 4;
  auto first = fx.engine->SearchBatch(requests, batch);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const storage::SegmentStats after_first = fx.engine->pool().TotalStats();
  EXPECT_GT(after_first.requests, 0u)
      << "batch workers bypassed the shared pool";

  fx.engine->pool().ResetStats();
  auto second = fx.engine->SearchBatch(requests, batch);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  const storage::SegmentStats after_second = fx.engine->pool().TotalStats();
  EXPECT_GT(after_second.hit_ratio(), after_first.hit_ratio())
      << "a repeat batch over the shared pool must be warmer";
  EXPECT_EQ(after_second.requests, after_first.requests)
      << "identical batches must issue identical block requests";
}

// --- Engine lifecycle -------------------------------------------------------

TEST(Engine, OpenFromDiskMatchesBuild) {
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();
  seq::SequenceDatabase db = MakeDatabase(
      alphabet, {"AGTACGCCTAG", "TACGTACGTACG", "GGGGCCCCGGGG"});
  util::TempDir dir("engine-open");
  EngineOptions options;
  options.matrix = &score::SubstitutionMatrix::UnitDna();

  auto built = Engine::BuildFromDatabase(std::move(db), dir.path(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto opened = Engine::Open(dir.path(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  EXPECT_EQ((*opened)->num_sequences(), 3u);
  EXPECT_EQ((*opened)->alphabet().kind(), seq::AlphabetKind::kDna);
  EXPECT_EQ((*opened)->catalog().name(1), "s1");

  auto request = SearchRequest::FromText(alphabet, "tacg");  // lowercase OK
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  request->MinScore(2).WithAlignments();

  auto from_build = (*built)->SearchAll(*request);
  auto from_open = (*opened)->SearchAll(*request);
  ASSERT_TRUE(from_build.ok()) << from_build.status().ToString();
  ASSERT_TRUE(from_open.ok()) << from_open.status().ToString();
  EXPECT_FALSE(from_build->results.empty());
  ExpectStreamsEq(from_open->results, from_build->results);
}

TEST(Engine, BuildFromFastaFile) {
  util::TempDir dir("engine-fasta");
  const std::string fasta = dir.File("db.fasta");
  {
    std::ofstream out(fasta);
    out << ">chr1 toy scaffold\r\nAGTACGCCTAG\r\n>chr2\r\ntacgtacgtacg\r\n";
  }
  EngineOptions options;
  options.alphabet = seq::AlphabetKind::kDna;
  const std::string index_dir = dir.File("index");
  auto engine = Engine::Build(fasta, index_dir, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->num_sequences(), 2u);
  EXPECT_EQ((*engine)->catalog().name(0), "chr1");
  EXPECT_EQ((*engine)->catalog().entry(0).description, "toy scaffold");
  EXPECT_EQ((*engine)->catalog().entry(1).length, 12u);

  // The catalog travels with the index: reopen without the FASTA.
  auto reopened = Engine::Open(index_dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->catalog().name(1), "chr2");
}

TEST(Engine, ResidentDatabaseMaterializesFromIndex) {
  EngineFixture fx(5000);
  const seq::SequenceDatabase* original = fx.engine->database();
  ASSERT_NE(original, nullptr);

  auto opened = Engine::Open(fx.dir.path());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->database(), nullptr) << "must be lazy";
  auto materialized = (*opened)->ResidentDatabase();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

  ASSERT_EQ((*materialized)->num_sequences(), original->num_sequences());
  for (size_t i = 0; i < original->num_sequences(); ++i) {
    const auto id = static_cast<seq::SequenceId>(i);
    EXPECT_EQ((*materialized)->sequence(id).id(), original->sequence(id).id());
    EXPECT_EQ((*materialized)->sequence(id).symbols(),
              original->sequence(id).symbols());
  }
}

TEST(Engine, OpenMissingDirectoryFails) {
  auto engine = Engine::Open("/nonexistent/index-dir");
  EXPECT_FALSE(engine.ok());
}

TEST(Engine, RejectsZeroPoolBytes) {
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();
  seq::SequenceDatabase db = MakeDatabase(alphabet, {"AGTACGCCTAG"});
  util::TempDir dir("engine-validate");
  EngineOptions options;
  options.matrix = &score::SubstitutionMatrix::UnitDna();

  // Build once so Open has something to reject against.
  auto built = Engine::BuildFromDatabase(std::move(db), dir.path(), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  options.pool_bytes = 0;
  auto opened = Engine::Open(dir.path(), options);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsInvalidArgument())
      << opened.status().ToString();

  // An explicit mmap engine never creates a pool, so pool_bytes == 0 is
  // fine there (kAuto above still rejects it — it may resolve to pooled).
  options.io_mode = IoMode::kMmap;
  auto mapped = Engine::Open(dir.path(), options);
  EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
  options.io_mode = IoMode::kAuto;

  seq::SequenceDatabase db2 = MakeDatabase(alphabet, {"AGTACGCCTAG"});
  util::TempDir dir2("engine-validate2");
  auto rebuilt = Engine::BuildFromDatabase(std::move(db2), dir2.path(), options);
  ASSERT_FALSE(rebuilt.ok());
  EXPECT_TRUE(rebuilt.status().IsInvalidArgument());
}

TEST(Engine, RejectsBadBlockSize) {
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();
  util::TempDir dir("engine-blocksize");
  EngineOptions options;
  options.matrix = &score::SubstitutionMatrix::UnitDna();

  options.block_size = 0;
  auto zero = Engine::BuildFromDatabase(
      MakeDatabase(alphabet, {"AGTACGCCTAG"}), dir.File("z"), options);
  ASSERT_FALSE(zero.ok());
  EXPECT_TRUE(zero.status().IsInvalidArgument()) << zero.status().ToString();

  options.block_size = 1000;  // not a multiple of the 16-byte record
  auto odd = Engine::BuildFromDatabase(
      MakeDatabase(alphabet, {"AGTACGCCTAG"}), dir.File("o"), options);
  ASSERT_FALSE(odd.ok());
  EXPECT_TRUE(odd.status().IsInvalidArgument()) << odd.status().ToString();
}

TEST(Engine, RejectsDuplicateSequenceIdsAtBuildTime) {
  // Two FASTA records with the same id would persist a catalog whose
  // name-based lookups are silently ambiguous; the build must refuse and
  // name the offending id.
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();
  std::vector<seq::Sequence> sequences;
  for (const char* text : {"AGTACGCCTAG", "CCGTAGAGATTA"}) {
    auto s = seq::Sequence::FromString(alphabet, "dup1", text);
    ASSERT_TRUE(s.ok());
    sequences.push_back(std::move(s).value());
  }
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(sequences));
  ASSERT_TRUE(db.ok());

  util::TempDir dir("engine-dup-id");
  EngineOptions options;
  options.matrix = &score::SubstitutionMatrix::UnitDna();
  auto built =
      Engine::BuildFromDatabase(std::move(db).value(), dir.path(), options);
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument())
      << built.status().ToString();
  EXPECT_NE(built.status().ToString().find("dup1"), std::string::npos)
      << "error must name the duplicated id: " << built.status().ToString();
  // Nothing half-built: the refusal happens before the index is packed.
  EXPECT_FALSE(std::ifstream(dir.path() + "/catalog.meta").good());

  // The same ids must also be rejected by a direct catalog save.
  api::SequenceCatalog catalog(
      {api::CatalogEntry{"x", "", 4}, api::CatalogEntry{"x", "", 6}});
  auto saved = catalog.Save(dir.path());
  ASSERT_FALSE(saved.ok());
  EXPECT_TRUE(saved.IsInvalidArgument());
}

TEST(Engine, RejectsInvalidQuery) {
  EngineFixture fx(2000);
  auto empty = fx.engine->Search(SearchRequest(std::vector<seq::Symbol>{}));
  EXPECT_FALSE(empty.ok());
  auto bad_code = fx.engine->Search(
      SearchRequest(std::vector<seq::Symbol>{9999}).MinScore(5));
  EXPECT_FALSE(bad_code.ok());
}

// --- BLAST adapter ----------------------------------------------------------

TEST(Engine, BlastAdapterMatchesDirectBlast) {
  EngineFixture fx(30000);
  SearchRequest request = MotifRequests(*fx.engine, 1, 100.0)[0];

  auto cursor = fx.engine->BlastSearch(request);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<core::OasisResult> adapted = Drain(*cursor);

  blast::BlastOptions blast_options;
  blast_options.evalue_cutoff = request.evalue();
  auto prepared = blast::BlastQuery::Prepare(request.query(),
                                             fx.engine->matrix(), blast_options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto db = fx.engine->ResidentDatabase();
  ASSERT_TRUE(db.ok());
  auto hits = blast::Search(*prepared, **db, fx.engine->matrix(),
                            fx.engine->karlin());
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();

  ASSERT_EQ(adapted.size(), hits->size());
  for (size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_EQ(adapted[i].sequence_id, (*hits)[i].sequence_id);
    EXPECT_EQ(adapted[i].score, (*hits)[i].score);
    EXPECT_DOUBLE_EQ(adapted[i].evalue, (*hits)[i].evalue);
    EXPECT_EQ(adapted[i].target_end, (*hits)[i].target_end);
  }
}

TEST(Engine, BlastAdapterHonorsTopK) {
  EngineFixture fx(30000);
  SearchRequest request = MotifRequests(*fx.engine, 1, 1000.0)[0];
  auto full = fx.engine->BlastSearch(request);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  size_t total = Drain(*full).size();
  if (total < 2) GTEST_SKIP() << "not enough BLAST hits";

  request.TopK(total - 1);
  auto capped = fx.engine->BlastSearch(request);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(Drain(*capped).size(), total - 1);
}

// --- Catalog ----------------------------------------------------------------

TEST(SequenceCatalog, SaveLoadRoundTrip) {
  util::TempDir dir("catalog");
  api::SequenceCatalog catalog(std::vector<api::CatalogEntry>{
      {"sp|P1", "first protein, with commas", 120},
      {"sp|P2", "", 44},
  });
  OASIS_ASSERT_OK(catalog.Save(dir.path()));
  auto loaded = api::SequenceCatalog::Load(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->entry(0).id, "sp|P1");
  EXPECT_EQ(loaded->entry(0).description, "first protein, with commas");
  EXPECT_EQ(loaded->entry(0).length, 120u);
  EXPECT_EQ(loaded->entry(1).id, "sp|P2");
  EXPECT_EQ(loaded->entry(1).description, "");
  EXPECT_EQ(loaded->name(5), "s5") << "past-the-end labels are synthesized";
}

TEST(SequenceCatalog, LoadMissingIsNotFound) {
  util::TempDir dir("catalog-missing");
  auto loaded = api::SequenceCatalog::Load(dir.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

}  // namespace
}  // namespace oasis
