// BLAST-style baseline: seeding, neighborhood expansion, extension and
// E-value filtering — plus the heuristic's defining property: it can miss
// matches that OASIS/S-W find (never the reverse for strong exact-word
// hits).

#include <algorithm>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "blast/blast.h"
#include "blast/extend.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/workload.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

score::KarlinParams Params(const score::SubstitutionMatrix& m) {
  auto p = score::ComputeKarlinParams(m);
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(BlastQuery, ExactWordsIndexTheQuery) {
  auto query = Encode(seq::Alphabet::Dna(), "ACGTACG");
  blast::BlastOptions options;
  options.word_size = 4;
  options.exact_words_only = true;
  auto prepared = blast::BlastQuery::Prepare(
      query, score::SubstitutionMatrix::UnitDna(), options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  // 4 query words: ACGT, CGTA, GTAC, TACG.
  EXPECT_EQ(prepared->num_neighbor_entries(), 4u);
  auto positions = prepared->Positions(prepared->EncodeWord(&query[0]));
  ASSERT_EQ(positions.size(), 1u);  // ACGT occurs only at offset 0
  EXPECT_EQ(positions[0], 0u);
  // A word absent from the query has no entries.
  auto absent = testing::Encode(seq::Alphabet::Dna(), "GGGG");
  EXPECT_TRUE(prepared->Positions(prepared->EncodeWord(&absent[0])).empty());
}

TEST(BlastQuery, RepeatedWordsKeepAllPositions) {
  auto query = Encode(seq::Alphabet::Dna(), "ACGACGACG");
  blast::BlastOptions options;
  options.word_size = 3;
  options.exact_words_only = true;
  auto prepared = blast::BlastQuery::Prepare(
      query, score::SubstitutionMatrix::UnitDna(), options);
  ASSERT_TRUE(prepared.ok());
  auto positions = prepared->Positions(prepared->EncodeWord(&query[0]));
  EXPECT_EQ(positions.size(), 3u);  // ACG at 0, 3, 6
}

TEST(BlastQuery, NeighborhoodContainsExactWordAndGrowsWithLowerT) {
  auto query = Encode(seq::Alphabet::Protein(), "MKTAY");
  blast::BlastOptions strict;
  strict.word_size = 3;
  strict.neighbor_threshold = 18;  // very strict: near-exact words only
  auto a = blast::BlastQuery::Prepare(query, score::SubstitutionMatrix::Pam30(),
                                      strict);
  ASSERT_TRUE(a.ok());

  blast::BlastOptions loose = strict;
  loose.neighbor_threshold = 10;
  auto b = blast::BlastQuery::Prepare(query, score::SubstitutionMatrix::Pam30(),
                                      loose);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->num_neighbor_entries(), a->num_neighbor_entries());

  // The exact word always scores >= any threshold below its self-score, so
  // the exact word of each query position is present in the loose table.
  for (size_t pos = 0; pos + 3 <= query.size(); ++pos) {
    auto positions = b->Positions(b->EncodeWord(&query[pos]));
    EXPECT_TRUE(std::find(positions.begin(), positions.end(), pos) !=
                positions.end())
        << "position " << pos;
  }
}

TEST(BlastQuery, RejectsShortQueryAndZeroWord) {
  auto query = Encode(seq::Alphabet::Dna(), "AC");
  blast::BlastOptions options;
  options.word_size = 3;
  EXPECT_FALSE(blast::BlastQuery::Prepare(
                   query, score::SubstitutionMatrix::UnitDna(), options)
                   .ok());
  options.word_size = 0;
  EXPECT_FALSE(blast::BlastQuery::Prepare(
                   query, score::SubstitutionMatrix::UnitDna(), options)
                   .ok());
}

TEST(Extend, UngappedGrowsAroundSeed) {
  // Seed CGT inside a longer perfect match region.
  auto query = Encode(seq::Alphabet::Dna(), "AACGTAA");
  auto target = Encode(seq::Alphabet::Dna(), "TTAACGTAATT");
  blast::Extension ext =
      blast::ExtendUngapped(query, target, 2, 4, 3,
                            score::SubstitutionMatrix::UnitDna(), 5);
  // The full 7-symbol identity should be recovered: score 7.
  EXPECT_EQ(ext.score, 7);
  EXPECT_EQ(ext.query_start, 0u);
  EXPECT_EQ(ext.query_end, 6u);
  EXPECT_EQ(ext.target_start, 2u);
  EXPECT_EQ(ext.target_end, 8u);
}

TEST(Extend, UngappedStopsAtXdrop) {
  // Perfect seed followed by garbage: extension must stop near the seed.
  auto query = Encode(seq::Alphabet::Dna(), "ACGTTTTTTT");
  auto target = Encode(seq::Alphabet::Dna(), "ACGTAAAAAA");
  blast::Extension ext =
      blast::ExtendUngapped(query, target, 0, 0, 4,
                            score::SubstitutionMatrix::UnitDna(), 2);
  EXPECT_EQ(ext.score, 4);
  EXPECT_EQ(ext.query_end, 3u);
}

TEST(Extend, GappedRecoversIndelAlignment) {
  // Query = target with one symbol deleted; gapped extension must bridge it.
  auto query = Encode(seq::Alphabet::Dna(), "ACGTACGTACGT");
  auto target = Encode(seq::Alphabet::Dna(), "ACGTACTACGT");  // G deleted
  blast::Extension ext = blast::ExtendGapped(
      query, target, 2, 2, score::SubstitutionMatrix::UnitDna(), 10);
  // 11 matches + 1 gap = 11 - 1 = 10 under unit scoring.
  EXPECT_EQ(ext.score, 10);
  EXPECT_EQ(ext.query_start, 0u);
  EXPECT_EQ(ext.query_end, 11u);
  EXPECT_EQ(ext.target_end, 10u);
}

TEST(BlastSearch, FindsPlantedExactMatch) {
  util::Random rng(31);
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 4000;
  db_options.seed = 31;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());

  // Query = exact substring of sequence 2.
  const seq::Sequence& src = db->sequence(2);
  ASSERT_GE(src.size(), 12u);
  std::vector<seq::Symbol> query(src.symbols().begin(),
                                 src.symbols().begin() + 12);

  blast::BlastOptions options;
  options.word_size = 3;
  options.neighbor_threshold = 13;
  options.evalue_cutoff = 20000.0;
  auto prepared = blast::BlastQuery::Prepare(
      query, score::SubstitutionMatrix::Pam30(), options);
  ASSERT_TRUE(prepared.ok());

  blast::BlastStats stats;
  auto hits = blast::Search(*prepared, *db, score::SubstitutionMatrix::Pam30(),
                            Params(score::SubstitutionMatrix::Pam30()), &stats);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ((*hits)[0].sequence_id, 2u);
  EXPECT_GT(stats.word_hits, 0u);
  EXPECT_GT(stats.seeds_extended, 0u);

  // The top score must equal the S-W score for that sequence (an exact
  // full-length hit is trivially recovered by the gapped extension).
  auto sw = align::ScanDatabase(query, *db, score::SubstitutionMatrix::Pam30(),
                                1);
  ASSERT_FALSE(sw.empty());
  EXPECT_EQ((*hits)[0].score, sw[0].score);
}

TEST(BlastSearch, NeverExceedsSmithWaterman) {
  // BLAST is a lower bound on S-W per-sequence scores: it may miss, it must
  // not invent.
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 3000;
  db_options.seed = 32;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());

  workload::MotifQueryOptions q_options;
  q_options.num_queries = 5;
  q_options.seed = 32;
  auto queries = workload::GenerateMotifQueries(
      *db, score::SubstitutionMatrix::Pam30(), q_options);
  ASSERT_TRUE(queries.ok());

  for (const auto& q : *queries) {
    if (q.symbols.size() < 3) continue;
    blast::BlastOptions options;
    options.evalue_cutoff = 1e9;
    auto prepared = blast::BlastQuery::Prepare(
        q.symbols, score::SubstitutionMatrix::Pam30(), options);
    ASSERT_TRUE(prepared.ok());
    auto hits = blast::Search(*prepared, *db,
                              score::SubstitutionMatrix::Pam30(),
                              Params(score::SubstitutionMatrix::Pam30()));
    ASSERT_TRUE(hits.ok());

    auto sw =
        align::ScanDatabase(q.symbols, *db, score::SubstitutionMatrix::Pam30(), 1);
    std::map<seq::SequenceId, score::ScoreT> sw_best;
    for (const auto& h : sw) sw_best[h.sequence_id] = h.score;
    for (const auto& h : *hits) {
      ASSERT_TRUE(sw_best.contains(h.sequence_id));
      EXPECT_LE(h.score, sw_best[h.sequence_id]);
    }
  }
}

TEST(BlastSearch, EValueCutoffFilters) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 3000;
  db_options.seed = 33;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  const seq::Sequence& src = db->sequence(0);
  std::vector<seq::Symbol> query(src.symbols().begin(),
                                 src.symbols().begin() + 10);

  blast::BlastOptions loose;
  loose.evalue_cutoff = 1e6;
  blast::BlastOptions strict = loose;
  strict.evalue_cutoff = 1e-3;

  auto p_loose = blast::BlastQuery::Prepare(
      query, score::SubstitutionMatrix::Pam30(), loose);
  auto p_strict = blast::BlastQuery::Prepare(
      query, score::SubstitutionMatrix::Pam30(), strict);
  ASSERT_TRUE(p_loose.ok() && p_strict.ok());
  auto karlin = Params(score::SubstitutionMatrix::Pam30());
  auto h_loose =
      blast::Search(*p_loose, *db, score::SubstitutionMatrix::Pam30(), karlin);
  auto h_strict =
      blast::Search(*p_strict, *db, score::SubstitutionMatrix::Pam30(), karlin);
  ASSERT_TRUE(h_loose.ok() && h_strict.ok());
  EXPECT_GE(h_loose->size(), h_strict->size());
  for (const auto& h : *h_strict) {
    EXPECT_LE(h.evalue, 1e-3);
  }
}

TEST(BlastSearch, TwoHitIsMoreSelectiveThanOneHit) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  db_options.seed = 34;
  auto db = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(db.ok());
  const seq::Sequence& src = db->sequence(1);
  std::vector<seq::Symbol> query(src.symbols().begin(),
                                 src.symbols().begin() + 20);

  blast::BlastOptions one_hit;
  one_hit.evalue_cutoff = 1e9;
  blast::BlastOptions two_hit = one_hit;
  two_hit.two_hit = true;

  auto p1 = blast::BlastQuery::Prepare(query,
                                       score::SubstitutionMatrix::Pam30(),
                                       one_hit);
  auto p2 = blast::BlastQuery::Prepare(query,
                                       score::SubstitutionMatrix::Pam30(),
                                       two_hit);
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto karlin = Params(score::SubstitutionMatrix::Pam30());
  blast::BlastStats s1, s2;
  auto h1 = blast::Search(*p1, *db, score::SubstitutionMatrix::Pam30(), karlin, &s1);
  auto h2 = blast::Search(*p2, *db, score::SubstitutionMatrix::Pam30(), karlin, &s2);
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_LE(s2.seeds_extended, s1.seeds_extended);
  // The planted identity has many two-hit diagonals; it must survive.
  ASSERT_FALSE(h2->empty());
  EXPECT_EQ((*h2)[0].sequence_id, 1u);
}

}  // namespace
}  // namespace oasis
