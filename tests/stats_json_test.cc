// util/stats_json: the one snapshot both stats surfaces render from.
// StatsText is pinned byte-for-byte to the CLI's historical --stats block
// (the formatter replaced inline printf code in oasis_cli; these literals
// are that contract), StatsJson is pinned as a canonical encoding —
// identical snapshots must produce identical bytes, because the daemon's
// /stats responses are diffed across calls.

#include "util/stats_json.h"

#include <gtest/gtest.h>

#include "api/engine.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

// A fully-populated pooled snapshot with easy-to-eyeball numbers.
util::EngineStatsSnapshot PooledSnapshot() {
  util::EngineStatsSnapshot s;
  s.pooled = true;
  s.frames = 1024;
  s.block_size = 2048;
  s.shards = 8;
  s.segments = {{"internal", 1000, 900, 0.9}, {"leaves", 50, 25, 0.5}};
  s.total = {"total", 1050, 925, 0.880952};
  return s;
}

TEST(StatsJson, TextPooledNoReadahead) {
  const util::EngineStatsSnapshot s = PooledSnapshot();
  EXPECT_EQ(util::StatsText(s),
            "\nbuffer pool: 1024 frames x 2048 B in 8 shards\n"
            "segment        requests         hits  hit ratio\n"
            "internal           1000          900      0.900\n"
            "leaves               50           25      0.500\n"
            "total              1050          925      0.881\n"
            "readahead: disabled (--readahead K for a fixed K-block window, "
            "--readahead auto for the adaptive one)\n");
}

TEST(StatsJson, TextSingleShardDropsPlural) {
  util::EngineStatsSnapshot s = PooledSnapshot();
  s.shards = 1;
  const std::string text = util::StatsText(s);
  EXPECT_NE(text.find("in 1 shard\n"), std::string::npos) << text;
}

TEST(StatsJson, TextFixedReadahead) {
  util::EngineStatsSnapshot s = PooledSnapshot();
  s.readahead_enabled = true;
  s.readahead_adaptive = false;
  s.readahead_blocks = 4;
  s.readahead_issued = 200;
  s.readahead_used = 150;
  s.readahead_wasted = 50;
  s.readahead_waste_ratio = 0.25;
  const std::string text = util::StatsText(s);
  EXPECT_NE(text.find("readahead (4 blocks/miss): 200 issued, 150 used, "
                      "50 wasted (waste ratio 0.250)\n"),
            std::string::npos)
      << text;
  // Fixed mode has no per-segment window table.
  EXPECT_EQ(text.find("ewma"), std::string::npos) << text;
}

TEST(StatsJson, TextAdaptiveReadaheadWindowTable) {
  util::EngineStatsSnapshot s = PooledSnapshot();
  s.readahead_enabled = true;
  s.readahead_adaptive = true;
  s.readahead_blocks = 8;
  s.readahead_issued = 200;
  s.readahead_used = 150;
  s.readahead_wasted = 50;
  s.readahead_waste_ratio = 0.25;
  s.windows = {{"internal", 12, 0.875, 40, 9, 2, 1}};
  const std::string text = util::StatsText(s);
  EXPECT_NE(text.find("readahead (adaptive, initial 8 blocks): 200 issued, "
                      "150 used, 50 wasted (waste ratio 0.250)\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "segment      window     ewma samples    grows shrinks   probes\n"
          "internal         12    0.875      40        9       2        1\n"),
      std::string::npos)
      << text;
}

TEST(StatsJson, TextAdaptiveClampsNegativeEwma) {
  // A window with no samples yet reports ewma < 0 (the controller's "no
  // estimate" sentinel); the renderer shows 0.000, not a negative number.
  util::EngineStatsSnapshot s = PooledSnapshot();
  s.readahead_enabled = true;
  s.readahead_adaptive = true;
  s.readahead_blocks = 8;
  s.windows = {{"leaves", 8, -1.0, 0, 0, 0, 0}};
  const std::string text = util::StatsText(s);
  EXPECT_NE(text.find("leaves            8    0.000"), std::string::npos)
      << text;
}

TEST(StatsJson, TextMmapNotices) {
  util::EngineStatsSnapshot s;  // pooled = false
  EXPECT_EQ(util::StatsText(s),
            "\nio mode mmap: zero-copy block access, no buffer-pool "
            "statistics (use --io-mode pooled for Figure 8 numbers)\n"
            "readahead: n/a in mmap mode (speculation targets the "
            "buffer pool; use --io-mode pooled --readahead K)\n");
}

TEST(StatsJson, JsonPooledCanonical) {
  util::EngineStatsSnapshot s = PooledSnapshot();
  EXPECT_EQ(
      util::StatsJson(s),
      "{\"io_mode\":\"pooled\",\"pool\":{\"frames\":1024,"
      "\"block_size\":2048,\"shards\":8,\"segments\":["
      "{\"name\":\"internal\",\"requests\":1000,\"hits\":900,"
      "\"hit_ratio\":0.900000},"
      "{\"name\":\"leaves\",\"requests\":50,\"hits\":25,"
      "\"hit_ratio\":0.500000}],"
      "\"total\":{\"name\":\"total\",\"requests\":1050,\"hits\":925,"
      "\"hit_ratio\":0.880952}},"
      "\"readahead\":{\"enabled\":false}}");
}

TEST(StatsJson, JsonMmapIsExplicitNulls) {
  util::EngineStatsSnapshot s;
  EXPECT_EQ(util::StatsJson(s),
            "{\"io_mode\":\"mmap\",\"pool\":null,\"readahead\":null}");
}

TEST(StatsJson, JsonAdaptiveReadahead) {
  util::EngineStatsSnapshot s = PooledSnapshot();
  s.readahead_enabled = true;
  s.readahead_adaptive = true;
  s.readahead_blocks = 8;
  s.readahead_issued = 200;
  s.readahead_used = 150;
  s.readahead_wasted = 50;
  s.readahead_waste_ratio = 0.25;
  s.windows = {{"internal", 12, 0.875, 40, 9, 2, 1}};
  const std::string json = util::StatsJson(s);
  EXPECT_NE(json.find("\"readahead\":{\"enabled\":true,\"adaptive\":true,"
                      "\"blocks\":8,\"issued\":200,\"used\":150,"
                      "\"wasted\":50,\"waste_ratio\":0.250000,"
                      "\"windows\":[{\"name\":\"internal\",\"window\":12,"
                      "\"ewma\":0.875000,\"samples\":40,\"grows\":9,"
                      "\"shrinks\":2,\"probes\":1}]}"),
            std::string::npos)
      << json;
}

TEST(StatsJson, JsonDeterministicForIdenticalSnapshots) {
  const util::EngineStatsSnapshot s = PooledSnapshot();
  EXPECT_EQ(util::StatsJson(s), util::StatsJson(s));
  EXPECT_EQ(util::StatsText(s), util::StatsText(s));
}

TEST(StatsJson, JsonEscape) {
  EXPECT_EQ(util::JsonEscape("plain"), "plain");
  EXPECT_EQ(util::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::JsonEscape("x\n\r\t"), "x\\n\\r\\t");
  EXPECT_EQ(util::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Engine::CollectStats feeds the renderers --------------------------------

TEST(StatsJson, CollectStatsFromPooledEngine) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  db_options.seed = 7;
  auto db = workload::GenerateProteinDatabase(db_options);
  OASIS_ASSERT_OK(db.status());

  util::TempDir dir("stats-json");
  api::EngineOptions options;
  options.io_mode = api::IoMode::kPooled;
  auto engine =
      api::Engine::BuildFromDatabase(std::move(db).value(), dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  // Run one search so the counters are non-trivial.
  auto resident = (*engine)->ResidentDatabase();
  OASIS_ASSERT_OK(resident.status());
  const seq::Sequence& seq0 = (*resident)->sequence(0);
  std::vector<seq::Symbol> query(
      seq0.symbols().begin(),
      seq0.symbols().begin() + std::min<size_t>(10, seq0.size()));
  auto results = (*engine)->SearchAll(api::SearchRequest(query).EValue(10.0));
  OASIS_ASSERT_OK(results.status());

  const util::EngineStatsSnapshot snapshot = (*engine)->CollectStats();
  EXPECT_TRUE(snapshot.pooled);
  EXPECT_GT(snapshot.frames, 0u);
  EXPECT_GT(snapshot.total.requests, 0u);
  // Both renderers accept a live snapshot, and the JSON one is canonical.
  EXPECT_FALSE(util::StatsText(snapshot).empty());
  EXPECT_EQ(util::StatsJson(snapshot), util::StatsJson(snapshot));
}

TEST(StatsJson, CollectStatsFromMmapEngine) {
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 5000;
  db_options.seed = 7;
  auto db = workload::GenerateProteinDatabase(db_options);
  OASIS_ASSERT_OK(db.status());

  util::TempDir dir("stats-json-mmap");
  api::EngineOptions options;
  options.io_mode = api::IoMode::kMmap;
  auto engine =
      api::Engine::BuildFromDatabase(std::move(db).value(), dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  const util::EngineStatsSnapshot snapshot = (*engine)->CollectStats();
  EXPECT_FALSE(snapshot.pooled);
  EXPECT_EQ(util::StatsJson(snapshot),
            "{\"io_mode\":\"mmap\",\"pool\":null,\"readahead\":null}");
}

}  // namespace
}  // namespace oasis
