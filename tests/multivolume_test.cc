// Multi-volume indexes end to end: the volume-set build must be an
// implementation detail of the SAME search. A database built as one
// monolithic volume and as N parallel-built volumes must return identical
// hits, scores, E-values and alignments — for streaming search, batch,
// and the BLAST adapter — because E-values are resolved against the
// *total* set length and the k-way merge preserves each volume's proven
// order. On top of parity: append-then-search equals rebuild, compaction
// preserves results while epoch/generation advance, in-flight cursors
// survive mutations on their pinned snapshot, and the daemon's
// epoch-keyed result cache invalidates when the index grows under
// traffic. The MultiVolume* and MultiVolumeDaemon* suites run under the
// TSan/ASan CI legs.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"
#include "util/stats_json.h"
#include "workload/workload.h"

namespace oasis {
namespace {

/// Deterministic protein database used throughout: ~40k residues, enough
/// sequences that a ~10k-residue volume target yields 4 volumes.
seq::SequenceDatabase TestDatabase(uint64_t target_residues = 40000,
                                   uint64_t seed = 7) {
  workload::ProteinDatabaseOptions options;
  options.target_residues = target_residues;
  options.seed = seed;
  auto db = workload::GenerateProteinDatabase(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

/// Options for a 4-ish-volume build of TestDatabase().
EngineOptions MultiVolumeOptions() {
  EngineOptions options;
  options.volume_size_bytes = 10000;
  options.build_threads = 4;
  return options;
}

/// Motif queries sampled from `engine`'s resident database.
std::vector<SearchRequest> MotifRequests(Engine& engine, uint32_t count,
                                         double evalue) {
  workload::MotifQueryOptions q_options;
  q_options.num_queries = count;
  q_options.seed = 11;
  auto db = engine.ResidentDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  auto queries =
      workload::GenerateMotifQueries(**db, engine.matrix(), q_options);
  EXPECT_TRUE(queries.ok()) << queries.status().ToString();
  std::vector<SearchRequest> requests;
  for (auto& q : *queries) {
    requests.push_back(SearchRequest(std::move(q.symbols)).EValue(evalue));
  }
  return requests;
}

std::vector<core::OasisResult> Drain(ResultCursor& cursor) {
  std::vector<core::OasisResult> out;
  while (true) {
    auto next = cursor.Next();
    EXPECT_TRUE(next.ok()) << next.status().ToString();
    if (!next.ok() || !next->has_value()) break;
    out.push_back(std::move(**next));
  }
  return out;
}

std::vector<core::OasisResult> DrainSearch(const Engine& engine,
                                           const SearchRequest& request) {
  auto cursor = engine.Search(request);
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  if (!cursor.ok()) return {};
  return Drain(*cursor);
}

/// Field equality. `positions = false` compares only the result identity
/// (sequence, score, E-value): a sequence can reach its best score at
/// several locations, and which one a best-per-sequence stream reports
/// depends on tree exploration order, which legitimately differs between
/// a monolithic tree and a per-volume tree. The AllAlignments parity test
/// covers locations exhaustively instead.
void ExpectResultEq(const core::OasisResult& a, const core::OasisResult& b,
                    size_t index, bool positions = true) {
  SCOPED_TRACE("result #" + std::to_string(index));
  EXPECT_EQ(a.sequence_id, b.sequence_id);
  EXPECT_EQ(a.score, b.score);
  EXPECT_DOUBLE_EQ(a.evalue, b.evalue);
  if (!positions) return;
  EXPECT_EQ(a.db_end_pos, b.db_end_pos);
  EXPECT_EQ(a.target_end, b.target_end);
  EXPECT_EQ(a.query_end, b.query_end);
  ASSERT_EQ(a.alignment.has_value(), b.alignment.has_value());
  if (a.alignment.has_value()) {
    EXPECT_EQ(a.alignment->score, b.alignment->score);
    EXPECT_EQ(a.alignment->query_start, b.alignment->query_start);
    EXPECT_EQ(a.alignment->query_end, b.alignment->query_end);
    EXPECT_EQ(a.alignment->target_start, b.alignment->target_start);
    EXPECT_EQ(a.alignment->target_end, b.alignment->target_end);
    EXPECT_EQ(a.alignment->ops, b.alignment->ops);
  }
}

/// Canonical form for comparing two streams that may order equal-keyed
/// results differently: a single volume emits score ties in tree order,
/// the k-way merge orders them by (key, global id). Sorting tie groups by
/// (sequence id, end position) on BOTH sides makes the comparison exact
/// without weakening it — the sort key sequence itself is also asserted
/// equal, so ordering parity modulo ties is still proven.
std::vector<core::OasisResult> Canonicalize(std::vector<core::OasisResult> v,
                                            bool by_evalue) {
  std::stable_sort(v.begin(), v.end(),
                   [by_evalue](const core::OasisResult& a,
                               const core::OasisResult& b) {
                     if (by_evalue) {
                       if (a.evalue != b.evalue) return a.evalue < b.evalue;
                     } else {
                       if (a.score != b.score) return a.score > b.score;
                     }
                     if (a.sequence_id != b.sequence_id) {
                       return a.sequence_id < b.sequence_id;
                     }
                     if (a.db_end_pos != b.db_end_pos) {
                       return a.db_end_pos < b.db_end_pos;
                     }
                     return a.query_end < b.query_end;
                   });
  return v;
}

void ExpectStreamParity(std::vector<core::OasisResult> mono,
                        std::vector<core::OasisResult> multi,
                        bool by_evalue, bool positions = false) {
  ASSERT_EQ(mono.size(), multi.size());
  // The emission-order key sequences must match exactly: both streams are
  // non-increasing in score (non-decreasing in E-value) and rank every
  // distinct key identically.
  for (size_t i = 0; i < mono.size(); ++i) {
    if (by_evalue) {
      EXPECT_DOUBLE_EQ(mono[i].evalue, multi[i].evalue) << "rank " << i;
    } else {
      EXPECT_EQ(mono[i].score, multi[i].score) << "rank " << i;
    }
  }
  mono = Canonicalize(std::move(mono), by_evalue);
  multi = Canonicalize(std::move(multi), by_evalue);
  for (size_t i = 0; i < mono.size(); ++i) {
    ExpectResultEq(mono[i], multi[i], i, positions);
  }
}

/// A monolithic and a 4-volume engine over the same database.
struct ParityFixture {
  util::TempDir mono_dir{"mv_mono"};
  util::TempDir multi_dir{"mv_multi"};
  std::unique_ptr<Engine> mono;
  std::unique_ptr<Engine> multi;

  ParityFixture() {
    auto mono_built = Engine::CreateFromDatabase(TestDatabase(), mono_dir.path(),
                                                 EngineOptions());
    EXPECT_TRUE(mono_built.ok()) << mono_built.status().ToString();
    mono = std::move(mono_built).value();
    auto multi_built = Engine::CreateFromDatabase(
        TestDatabase(), multi_dir.path(), MultiVolumeOptions());
    EXPECT_TRUE(multi_built.ok()) << multi_built.status().ToString();
    multi = std::move(multi_built).value();
    EXPECT_GE(multi->num_volumes(), 3u)
        << "fixture must actually exercise the fan-out";
  }
};

// --- Layout and accessors ---------------------------------------------------

TEST(MultiVolume, CreateSlicesIntoParallelBuiltVolumes) {
  ParityFixture fx;
  EXPECT_EQ(fx.mono->num_volumes(), 1u);
  EXPECT_EQ(fx.mono->volume_names(),
            std::vector<std::string>{VolumeSetManifest::kLegacyVolumeName});
  EXPECT_FALSE(VolumeSetManifest::Exists(fx.mono_dir.path()));

  EXPECT_TRUE(VolumeSetManifest::Exists(fx.multi_dir.path()));
  EXPECT_EQ(fx.multi->generation(), 1u);
  const std::vector<std::string> names = fx.multi->volume_names();
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i].rfind(VolumeSetManifest::kVolumePrefix, 0), 0u)
        << names[i];
    ASSERT_TRUE(
        std::filesystem::is_directory(fx.multi_dir.path() + "/" + names[i]));
  }
  // Same database, same global totals.
  EXPECT_EQ(fx.mono->num_sequences(), fx.multi->num_sequences());
  EXPECT_EQ(fx.mono->num_residues(), fx.multi->num_residues());
}

TEST(MultiVolume, ReopenedSetMatchesFreshBuild) {
  ParityFixture fx;
  auto reopened = Engine::Open(fx.multi_dir.path());
  OASIS_ASSERT_OK(reopened.status());
  EXPECT_EQ((*reopened)->num_volumes(), fx.multi->num_volumes());
  EXPECT_EQ((*reopened)->num_sequences(), fx.multi->num_sequences());
  EXPECT_EQ((*reopened)->num_residues(), fx.multi->num_residues());
  for (SearchRequest& request : MotifRequests(*fx.multi, 2, 100.0)) {
    request.OrderByEValue(true);
    ExpectStreamParity(DrainSearch(*fx.multi, request),
                       DrainSearch(**reopened, request), /*by_evalue=*/true);
  }
}

TEST(MultiVolume, ResidentDatabaseRoundTripsThroughVolumes) {
  ParityFixture fx;
  auto mono_db = fx.mono->ResidentDatabase();
  auto multi_db = fx.multi->ResidentDatabase();
  OASIS_ASSERT_OK(mono_db.status());
  OASIS_ASSERT_OK(multi_db.status());
  ASSERT_EQ((*mono_db)->num_sequences(), (*multi_db)->num_sequences());
  for (uint32_t i = 0; i < (*mono_db)->num_sequences(); ++i) {
    const seq::Sequence& a = (*mono_db)->sequence(i);
    const seq::Sequence& b = (*multi_db)->sequence(i);
    EXPECT_EQ(a.id(), b.id()) << "sequence " << i;
    ASSERT_TRUE(std::equal(a.symbols().begin(), a.symbols().end(),
                           b.symbols().begin(), b.symbols().end()))
        << "sequence " << i;
    EXPECT_EQ(fx.mono->SequenceName(i), fx.multi->SequenceName(i));
  }
}

// --- Search parity ----------------------------------------------------------

TEST(MultiVolume, StreamingSearchParity) {
  ParityFixture fx;
  for (SearchRequest& base : MotifRequests(*fx.multi, 6, 1000.0)) {
    for (bool by_evalue : {false, true}) {
      for (bool alignments : {false, true}) {
        SCOPED_TRACE("by_evalue=" + std::to_string(by_evalue) +
                     " alignments=" + std::to_string(alignments));
        SearchRequest request = base;
        request.OrderByEValue(by_evalue).WithAlignments(alignments);
        ExpectStreamParity(DrainSearch(*fx.mono, request),
                           DrainSearch(*fx.multi, request), by_evalue);
      }
    }
  }
}

TEST(MultiVolume, AllAlignmentsLocationParity) {
  // With AllAlignments every accepted location is reported, so discovery
  // order cannot hide behind best-per-sequence selection: the full
  // location sets — coordinates, reconstructed operations and all — must
  // be identical between the layouts.
  ParityFixture fx;
  for (SearchRequest& base : MotifRequests(*fx.multi, 4, 100.0)) {
    SearchRequest request = base;
    request.AllAlignments(true).WithAlignments(true);
    auto mono = Canonicalize(DrainSearch(*fx.mono, request), false);
    auto multi = Canonicalize(DrainSearch(*fx.multi, request), false);
    ASSERT_EQ(mono.size(), multi.size());
    for (size_t i = 0; i < mono.size(); ++i) {
      ExpectResultEq(mono[i], multi[i], i, /*positions=*/true);
    }
  }
}

TEST(MultiVolume, TopKReturnsTheTrueTopK) {
  ParityFixture fx;
  for (SearchRequest& base : MotifRequests(*fx.multi, 3, 1000.0)) {
    SearchRequest full = base;
    full.OrderByEValue(true);
    const auto all = DrainSearch(*fx.mono, full);
    SearchRequest capped = base;
    capped.OrderByEValue(true).TopK(5);
    const auto top = DrainSearch(*fx.multi, capped);
    ASSERT_EQ(top.size(), std::min<size_t>(5, all.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_DOUBLE_EQ(top[i].evalue, all[i].evalue) << "rank " << i;
    }
  }
}

TEST(MultiVolume, BatchSearchParity) {
  ParityFixture fx;
  std::vector<SearchRequest> requests = MotifRequests(*fx.multi, 8, 100.0);
  for (SearchRequest& request : requests) request.OrderByEValue(true);
  BatchOptions batch;
  batch.threads = 4;
  auto mono_results = fx.mono->SearchBatch(requests, batch);
  auto multi_results = fx.multi->SearchBatch(requests, batch);
  OASIS_ASSERT_OK(mono_results.status());
  OASIS_ASSERT_OK(multi_results.status());
  ASSERT_EQ(mono_results->size(), multi_results->size());
  for (size_t i = 0; i < mono_results->size(); ++i) {
    SCOPED_TRACE("query #" + std::to_string(i));
    ExpectStreamParity((*mono_results)[i].results,
                       (*multi_results)[i].results, /*by_evalue=*/true);
  }
}

TEST(MultiVolume, BlastSearchParity) {
  ParityFixture fx;
  for (SearchRequest& request : MotifRequests(*fx.multi, 3, 100.0)) {
    auto mono_cursor = fx.mono->BlastSearch(request);
    auto multi_cursor = fx.multi->BlastSearch(request);
    OASIS_ASSERT_OK(mono_cursor.status());
    OASIS_ASSERT_OK(multi_cursor.status());
    // BLAST scans the resident database, which materializes identically
    // from either layout — the replayed streams are byte-identical.
    auto mono_hits = Drain(*mono_cursor);
    auto multi_hits = Drain(*multi_cursor);
    ASSERT_EQ(mono_hits.size(), multi_hits.size());
    for (size_t i = 0; i < mono_hits.size(); ++i) {
      ExpectResultEq(mono_hits[i], multi_hits[i], i);
    }
  }
}

TEST(MultiVolume, ResolveMinScoreComposesOverTotalLength) {
  ParityFixture fx;
  for (SearchRequest& request : MotifRequests(*fx.multi, 4, 5.0)) {
    auto mono_score = fx.mono->ResolveMinScore(request);
    auto multi_score = fx.multi->ResolveMinScore(request);
    OASIS_ASSERT_OK(mono_score.status());
    OASIS_ASSERT_OK(multi_score.status());
    EXPECT_EQ(*mono_score, *multi_score)
        << "E-value selectivity must be a property of the whole set";
  }
}

// --- Volume scoping ---------------------------------------------------------

TEST(MultiVolume, VolumeFilterScopesTheSearch) {
  ParityFixture fx;
  const std::vector<std::string> names = fx.multi->volume_names();
  ASSERT_GE(names.size(), 2u);
  SearchRequest base = std::move(MotifRequests(*fx.multi, 1, 1000.0)[0]);

  SearchRequest first_only = base;
  first_only.VolumeFilter({names[0]});
  SearchRequest capped = base;
  capped.MaxVolumes(1);
  const auto filtered = DrainSearch(*fx.multi, first_only);
  const auto truncated = DrainSearch(*fx.multi, capped);
  // MaxVolumes(1) == VolumeFilter({first volume}).
  ASSERT_EQ(filtered.size(), truncated.size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    ExpectResultEq(filtered[i], truncated[i], i);
  }
  // A scoped search returns a subset of the full search's hits.
  const auto all = DrainSearch(*fx.multi, base);
  EXPECT_LE(filtered.size(), all.size());

  SearchRequest unknown = base;
  unknown.VolumeFilter({"vol_9999"});
  auto cursor = fx.multi->Search(unknown);
  ASSERT_FALSE(cursor.ok());
  EXPECT_TRUE(cursor.status().IsInvalidArgument())
      << cursor.status().ToString();
}

// --- Append / compact lifecycle ---------------------------------------------

/// Splits the test database into a base and a tail for append tests.
void SplitDatabase(std::vector<seq::Sequence>* base,
                   std::vector<seq::Sequence>* tail) {
  seq::SequenceDatabase db = TestDatabase();
  const size_t cut = db.num_sequences() - db.num_sequences() / 4;
  for (uint32_t i = 0; i < db.num_sequences(); ++i) {
    const seq::Sequence& s = db.sequence(i);
    std::vector<seq::Symbol> symbols(s.symbols().begin(), s.symbols().end());
    seq::Sequence copy(s.id(), s.description(), std::move(symbols));
    (i < cut ? base : tail)->push_back(std::move(copy));
  }
}

TEST(MultiVolume, AppendThenSearchEqualsRebuild) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir grown_dir("mv_grown");
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  auto grown = Engine::CreateFromDatabase(std::move(base_db).value(),
                                          grown_dir.path(),
                                          MultiVolumeOptions());
  OASIS_ASSERT_OK(grown.status());
  const uint64_t epoch_before = (*grown)->epoch();
  const uint64_t generation_before = (*grown)->generation();
  const size_t volumes_before = (*grown)->num_volumes();
  OASIS_ASSERT_OK((*grown)->AppendSequences(std::move(tail)));
  (*grown)->WaitForCompaction();

  EXPECT_NE((*grown)->epoch(), epoch_before)
      << "Append must bump the epoch so caches invalidate";
  EXPECT_GT((*grown)->generation(), generation_before);
  EXPECT_GT((*grown)->num_volumes(), volumes_before);

  util::TempDir rebuilt_dir("mv_rebuilt");
  auto rebuilt = Engine::CreateFromDatabase(TestDatabase(), rebuilt_dir.path(),
                                            MultiVolumeOptions());
  OASIS_ASSERT_OK(rebuilt.status());

  EXPECT_EQ((*grown)->num_sequences(), (*rebuilt)->num_sequences());
  EXPECT_EQ((*grown)->num_residues(), (*rebuilt)->num_residues());
  for (SearchRequest& request : MotifRequests(**rebuilt, 4, 100.0)) {
    request.OrderByEValue(true);
    ExpectStreamParity(DrainSearch(**rebuilt, request),
                       DrainSearch(**grown, request), /*by_evalue=*/true);
  }
}

TEST(MultiVolume, AppendRejectsDuplicateSequenceIds) {
  ParityFixture fx;
  auto db = fx.multi->ResidentDatabase();
  OASIS_ASSERT_OK(db.status());
  const seq::Sequence& existing = (*db)->sequence(0);
  std::vector<seq::Symbol> symbols(existing.symbols().begin(),
                                   existing.symbols().end());
  std::vector<seq::Sequence> dupes;
  dupes.emplace_back(existing.id(), std::move(symbols));
  const uint64_t epoch_before = fx.multi->epoch();
  const util::Status status = fx.multi->AppendSequences(std::move(dupes));
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_EQ(fx.multi->epoch(), epoch_before) << "failed append must not swap";
}

TEST(MultiVolume, DuplicateAppendErrorNamesTheOwningVolume) {
  // Regression: the collision error used to say only "duplicate id",
  // leaving the operator to hunt through volumes by hand. It must name
  // the id AND the volume that already holds it.
  ParityFixture fx;
  auto db = fx.multi->ResidentDatabase();
  OASIS_ASSERT_OK(db.status());
  const std::vector<std::string> names = fx.multi->volume_names();
  ASSERT_GE(names.size(), 2u);
  // The last sequence lives in the last volume — a collision there proves
  // the error localizes the owner instead of defaulting to volume 0.
  const seq::Sequence& existing =
      (*db)->sequence((*db)->num_sequences() - 1);
  std::vector<seq::Symbol> symbols(existing.symbols().begin(),
                                   existing.symbols().end());
  std::vector<seq::Sequence> dupes;
  dupes.emplace_back(existing.id(), std::move(symbols));
  const util::Status status = fx.multi->AppendSequences(std::move(dupes));
  ASSERT_TRUE(status.IsInvalidArgument()) << status.ToString();
  EXPECT_NE(status.message().find("'" + existing.id() + "'"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("volume '" + names.back() + "'"),
            std::string::npos)
      << status.ToString();

  // A within-batch repeat is a different mistake with a different message.
  std::vector<seq::Sequence> twice;
  twice.push_back(*seq::Sequence::FromString(seq::Alphabet::Protein(),
                                             "FRESH", "MKTAYIAKQR"));
  twice.push_back(*seq::Sequence::FromString(seq::Alphabet::Protein(),
                                             "FRESH", "QFSLWKRPVG"));
  const util::Status batch_status =
      fx.multi->AppendSequences(std::move(twice));
  ASSERT_TRUE(batch_status.IsInvalidArgument()) << batch_status.ToString();
  EXPECT_NE(batch_status.message().find("batch repeats sequence id 'FRESH'"),
            std::string::npos)
      << batch_status.ToString();
}

TEST(MultiVolume, AppendToLegacyIndexUpgradesItInPlace) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir dir("mv_legacy");
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  // volume_size_bytes = 0: the legacy single-directory layout.
  auto engine = Engine::CreateFromDatabase(std::move(base_db).value(),
                                           dir.path(), EngineOptions());
  OASIS_ASSERT_OK(engine.status());
  EXPECT_FALSE(VolumeSetManifest::Exists(dir.path()));

  OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(tail)));
  (*engine)->WaitForCompaction();
  EXPECT_TRUE(VolumeSetManifest::Exists(dir.path()))
      << "append upgrades a legacy directory to a volume set";
  EXPECT_GE((*engine)->num_volumes(), 2u);
  EXPECT_EQ((*engine)->volume_names()[0],
            std::string(VolumeSetManifest::kLegacyVolumeName));

  // The upgraded set must search exactly like a rebuild — and reopen.
  util::TempDir rebuilt_dir("mv_legacy_rebuilt");
  auto rebuilt = Engine::CreateFromDatabase(TestDatabase(), rebuilt_dir.path(),
                                            EngineOptions());
  OASIS_ASSERT_OK(rebuilt.status());
  auto reopened = Engine::Open(dir.path());
  OASIS_ASSERT_OK(reopened.status());
  for (SearchRequest& request : MotifRequests(**rebuilt, 3, 100.0)) {
    request.OrderByEValue(true);
    const auto expected = DrainSearch(**rebuilt, request);
    ExpectStreamParity(expected, DrainSearch(**engine, request),
                       /*by_evalue=*/true);
    ExpectStreamParity(expected, DrainSearch(**reopened, request),
                       /*by_evalue=*/true);
  }
}

TEST(MultiVolume, CompactMergesSmallVolumesAndPreservesResults) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir dir("mv_compact");
  EngineOptions options = MultiVolumeOptions();
  options.compact_trigger_volumes = 0;  // explicit Compact() only
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  auto engine = Engine::CreateFromDatabase(std::move(base_db).value(),
                                           dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  // Append the tail one sequence at a time: a pile of tiny volumes.
  for (seq::Sequence& s : tail) {
    std::vector<seq::Sequence> one;
    one.push_back(std::move(s));
    OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(one)));
  }
  const size_t volumes_before = (*engine)->num_volumes();
  ASSERT_GT(volumes_before, 4u);

  std::vector<SearchRequest> requests = MotifRequests(**engine, 3, 100.0);
  for (SearchRequest& request : requests) request.OrderByEValue(true);
  std::vector<std::vector<core::OasisResult>> before;
  for (const SearchRequest& request : requests) {
    before.push_back(DrainSearch(**engine, request));
  }

  const uint64_t epoch_before = (*engine)->epoch();
  OASIS_ASSERT_OK((*engine)->Compact());
  EXPECT_LT((*engine)->num_volumes(), volumes_before);
  EXPECT_NE((*engine)->epoch(), epoch_before);

  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("query #" + std::to_string(i));
    ExpectStreamParity(before[i], DrainSearch(**engine, requests[i]),
                       /*by_evalue=*/true);
  }

  // The replaced volumes' subdirectories are gone from disk; the ones the
  // manifest still names are present.
  size_t live_dirs = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path())) {
    if (entry.is_directory()) ++live_dirs;
  }
  EXPECT_EQ(live_dirs, (*engine)->num_volumes());
}

TEST(MultiVolume, InFlightCursorSurvivesAppendAndCompact) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir dir("mv_snapshot");
  EngineOptions options = MultiVolumeOptions();
  options.compact_trigger_volumes = 0;
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  auto engine = Engine::CreateFromDatabase(std::move(base_db).value(),
                                           dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  SearchRequest request = std::move(MotifRequests(**engine, 1, 1000.0)[0]);
  request.OrderByEValue(true);
  const auto expected = DrainSearch(**engine, request);
  ASSERT_GT(expected.size(), 1u) << "needs a stream to interrupt";

  auto cursor = (*engine)->Search(request);
  OASIS_ASSERT_OK(cursor.status());
  auto first = cursor->Next();
  OASIS_ASSERT_OK(first.status());
  ASSERT_TRUE(first->has_value());
  ExpectResultEq(**first, expected[0], 0);

  // Mutate the live set under the open cursor: append, then compact —
  // compaction DELETES the files the cursor is still streaming from
  // (unlink-while-open), so the pinned snapshot must keep them readable.
  OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(tail)));
  OASIS_ASSERT_OK((*engine)->Compact());

  std::vector<core::OasisResult> rest = Drain(*cursor);
  ASSERT_EQ(rest.size(), expected.size() - 1);
  for (size_t i = 0; i < rest.size(); ++i) {
    ExpectResultEq(rest[i], expected[i + 1], i + 1);
  }
}

TEST(MultiVolume, ConcurrentSearchesDuringAppendAndCompact) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir dir("mv_traffic");
  EngineOptions options = MultiVolumeOptions();
  options.compact_trigger_volumes = 3;  // appends schedule background work
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  auto engine = Engine::CreateFromDatabase(std::move(base_db).value(),
                                           dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  std::vector<SearchRequest> requests = MotifRequests(**engine, 4, 100.0);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> searches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto cursor = (*engine)->Search(requests[t % requests.size()]);
        ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
        Drain(*cursor);
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Grow the set sequence by sequence while the readers hammer it; the
  // trigger fires background compactions along the way.
  for (seq::Sequence& s : tail) {
    std::vector<seq::Sequence> one;
    one.push_back(std::move(s));
    OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(one)));
  }
  (*engine)->WaitForCompaction();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(searches.load(), 0u);
}

// --- Stats plumbing (PartitionedBuildStats through CollectStats) ------------

TEST(MultiVolume, CollectStatsSurfacesPartitionedBuildStats) {
  ParityFixture fx;
  const util::EngineStatsSnapshot snapshot = fx.multi->CollectStats();
  ASSERT_EQ(snapshot.volumes.size(), fx.multi->num_volumes());
  uint64_t total_sequences = 0;
  for (const util::VolumeStatsRow& row : snapshot.volumes) {
    SCOPED_TRACE(row.name);
    EXPECT_GT(row.sequences, 0u);
    EXPECT_GT(row.residues, 0u);
    EXPECT_GT(row.partitions, 0u);
    EXPECT_GT(row.passes, 0u);
    // Every partition holds at least one suffix; none holds more than the
    // volume's whole suffix population (residues + terminators).
    EXPECT_GT(row.max_partition_suffixes, 0u);
    EXPECT_LE(row.max_partition_suffixes, row.residues + row.sequences);
    total_sequences += row.sequences;
  }
  EXPECT_EQ(total_sequences, fx.multi->num_sequences());

  // Both rendered surfaces carry the rows.
  const std::string text = util::StatsText(snapshot);
  EXPECT_NE(text.find("volumes:"), std::string::npos) << text;
  EXPECT_NE(text.find("max suffixes"), std::string::npos) << text;
  const std::string json = util::StatsJson(snapshot);
  EXPECT_NE(json.find("\"max_partition_suffixes\""), std::string::npos)
      << json;

  // A legacy single-volume engine predates the persisted stats: no rows,
  // and the rendered output keeps its historical shape.
  const util::EngineStatsSnapshot legacy = fx.mono->CollectStats();
  EXPECT_TRUE(legacy.volumes.empty());
  EXPECT_EQ(util::StatsText(legacy).find("volumes:"), std::string::npos);
}

// --- The daemon over a growing volume set -----------------------------------

TEST(MultiVolumeDaemon, AppendInvalidatesResultCacheViaEpoch) {
  util::TempDir dir("mvd_cache");
  auto engine = Engine::CreateFromDatabase(TestDatabase(), dir.path(),
                                           MultiVolumeOptions());
  OASIS_ASSERT_OK(engine.status());

  auto server = server::Server::Start(
      std::vector<server::ServedIndex>{{"main", engine->get()}},
      server::ServerOptions());
  OASIS_ASSERT_OK(server.status());
  auto client =
      server::DaemonClient::Connect("127.0.0.1", (*server)->port());
  OASIS_ASSERT_OK(client.status());

  // A query with a planted perfect-match target we append later.
  auto db = (*engine)->ResidentDatabase();
  OASIS_ASSERT_OK(db.status());
  const seq::Sequence& src = (*db)->sequence(1);
  const size_t qlen = std::min<size_t>(24, src.size());
  std::vector<seq::Symbol> qsyms(src.symbols().begin(),
                                 src.symbols().begin() + qlen);
  server::WireRequest wire;
  wire.query = (*engine)->alphabet().Decode(qsyms);
  wire.min_score = 20;

  auto stream = [&](std::vector<std::string>* lines) {
    return (*client).Query(wire, [lines](std::string_view line) {
      lines->push_back(std::string(line));
      return true;
    });
  };

  std::vector<std::string> first, second, after;
  auto outcome = stream(&first);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached);
  outcome = stream(&second);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_TRUE(outcome->cached) << "same epoch, same request: a cache hit";
  EXPECT_EQ(first, second);

  // Append a sequence the query matches perfectly; the epoch bump must
  // force a fresh search that finds it.
  std::vector<seq::Sequence> extra;
  extra.emplace_back("APPENDED", std::vector<seq::Symbol>(qsyms));
  OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(extra)));
  (*engine)->WaitForCompaction();

  outcome = stream(&after);
  OASIS_ASSERT_OK(outcome.status());
  EXPECT_FALSE(outcome->cached)
      << "the epoch bump must invalidate the cached stream";
  EXPECT_GT(after.size(), first.size());
  bool found = false;
  for (const std::string& line : after) {
    if (line.find("APPENDED") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "the appended sequence must be searchable";
  (*server)->Shutdown();
}

TEST(MultiVolumeDaemon, ServesQueriesWhileTheIndexGrows) {
  std::vector<seq::Sequence> base, tail;
  SplitDatabase(&base, &tail);

  util::TempDir dir("mvd_traffic");
  EngineOptions options = MultiVolumeOptions();
  options.compact_trigger_volumes = 3;
  auto base_db = seq::SequenceDatabase::Build(
      seq::Alphabet::Protein(), std::vector<seq::Sequence>(base));
  OASIS_ASSERT_OK(base_db.status());
  auto engine = Engine::CreateFromDatabase(std::move(base_db).value(),
                                           dir.path(), options);
  OASIS_ASSERT_OK(engine.status());

  auto server = server::Server::Start(
      std::vector<server::ServedIndex>{{"main", engine->get()}},
      server::ServerOptions());
  OASIS_ASSERT_OK(server.status());

  auto db = (*engine)->ResidentDatabase();
  OASIS_ASSERT_OK(db.status());
  const seq::Sequence& src = (*db)->sequence(2);
  std::vector<seq::Symbol> qsyms(
      src.symbols().begin(),
      src.symbols().begin() + std::min<size_t>(16, src.size()));
  server::WireRequest wire;
  wire.query = (*engine)->alphabet().Decode(qsyms);
  wire.min_score = 15;
  wire.no_cache = true;  // every query runs a real search

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&] {
      auto client =
          server::DaemonClient::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::string> lines;
        auto outcome = client->Query(wire, [&lines](std::string_view line) {
          lines.push_back(std::string(line));
          return true;
        });
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        ASSERT_EQ(outcome->hits, lines.size());
      }
    });
  }

  for (seq::Sequence& s : tail) {
    std::vector<seq::Sequence> one;
    one.push_back(std::move(s));
    OASIS_ASSERT_OK((*engine)->AppendSequences(std::move(one)));
  }
  (*engine)->WaitForCompaction();
  stop.store(true);
  for (std::thread& t : clients) t.join();
  (*server)->Shutdown();
}

}  // namespace
}  // namespace oasis
