// Buffer pool invariants (DESIGN.md invariant #6): contents match direct
// file reads under arbitrary traces, statistics add up, pinned pages
// survive, CLOCK evicts unpinned pages under pressure, failed reads never
// leave a frame claiming a stale identity, and concurrent fetches through
// the sharded pool stay correct (the BufferPoolConcurrency suite also runs
// under the TSan CI job).

#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/block_file.h"
#include "storage/buffer_pool.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

constexpr uint32_t kBlock = 256;  // small blocks make eviction easy to force

/// Writes `n` blocks whose bytes are a function of the block id.
storage::BlockFile MakeFile(const std::string& path, uint32_t n) {
  auto file = storage::BlockFile::Create(path, kBlock);
  EXPECT_TRUE(file.ok());
  std::vector<uint8_t> buf(kBlock);
  for (uint32_t b = 0; b < n; ++b) {
    for (uint32_t i = 0; i < kBlock; ++i) {
      buf[i] = static_cast<uint8_t>((b * 131 + i) & 0xFF);
    }
    auto id = file->AppendBlock(buf.data());
    EXPECT_TRUE(id.ok());
    EXPECT_EQ(*id, b);
  }
  OASIS_EXPECT_OK(file->Flush());
  file->Close();
  auto reopened = storage::BlockFile::Open(path, kBlock);
  EXPECT_TRUE(reopened.ok());
  return std::move(reopened).value();
}

bool BlockIsCorrect(const uint8_t* data, uint32_t b) {
  for (uint32_t i = 0; i < kBlock; ++i) {
    if (data[i] != static_cast<uint8_t>((b * 131 + i) & 0xFF)) return false;
  }
  return true;
}

class BufferPoolTest : public ::testing::Test {
 protected:
  util::TempDir dir_{"bp"};
};

TEST_F(BufferPoolTest, FetchReturnsFileContents) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 16);
  storage::BufferPool pool(8 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  for (uint32_t b = 0; b < 16; ++b) {
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    EXPECT_TRUE(BlockIsCorrect(page->data(), b)) << "block " << b;
  }
}

TEST_F(BufferPoolTest, HitAndMissAccounting) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(8 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  for (uint32_t b = 0; b < 4; ++b) (void)pool.Fetch(*seg, b);
  EXPECT_EQ(pool.stats(*seg).requests, 4u);
  EXPECT_EQ(pool.stats(*seg).hits, 0u);

  for (uint32_t b = 0; b < 4; ++b) (void)pool.Fetch(*seg, b);
  EXPECT_EQ(pool.stats(*seg).requests, 8u);
  EXPECT_EQ(pool.stats(*seg).hits, 4u);
  EXPECT_EQ(pool.stats(*seg).misses(), 4u);
  EXPECT_DOUBLE_EQ(pool.stats(*seg).hit_ratio(), 0.5);
}

TEST_F(BufferPoolTest, EvictionUnderPressureStillCorrect) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 64);
  storage::BufferPool pool(4 * kBlock, kBlock);  // 4 frames, 64 blocks
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  util::Random rng(99);
  for (int i = 0; i < 2000; ++i) {
    uint32_t b = static_cast<uint32_t>(rng.Uniform(64));
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok());
    ASSERT_TRUE(BlockIsCorrect(page->data(), b)) << "iteration " << i;
  }
  // With 4 frames over 64 hot blocks the hit ratio must be far below 1.
  EXPECT_LT(pool.stats(*seg).hit_ratio(), 0.5);
}

TEST_F(BufferPoolTest, LargerPoolGivesHigherHitRatio) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 64);
  double ratios[2];
  for (int variant = 0; variant < 2; ++variant) {
    storage::BufferPool pool((variant == 0 ? 4u : 32u) * kBlock, kBlock);
    auto seg = pool.RegisterSegment("a", &file);
    ASSERT_TRUE(seg.ok());
    util::Random rng(7);
    for (int i = 0; i < 3000; ++i) {
      (void)pool.Fetch(*seg, static_cast<uint32_t>(rng.Uniform(64)));
    }
    ratios[variant] = pool.stats(*seg).hit_ratio();
  }
  EXPECT_GT(ratios[1], ratios[0]);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 16);
  storage::BufferPool pool(2 * kBlock, kBlock);  // 2 frames
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  auto pinned = pool.Fetch(*seg, 0);
  ASSERT_TRUE(pinned.ok());
  const uint8_t* pinned_data = pinned->data();

  // Churn through every other block with the second frame.
  for (uint32_t b = 1; b < 16; ++b) {
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok());
  }
  // The pinned page's memory must still hold block 0.
  EXPECT_TRUE(BlockIsCorrect(pinned_data, 0));
  EXPECT_EQ(pool.num_pinned(), 1u);
}

TEST_F(BufferPoolTest, AllFramesPinnedFails) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(2 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  auto p0 = pool.Fetch(*seg, 0);
  auto p1 = pool.Fetch(*seg, 1);
  ASSERT_TRUE(p0.ok() && p1.ok());
  auto p2 = pool.Fetch(*seg, 2);
  EXPECT_FALSE(p2.ok());
}

TEST_F(BufferPoolTest, MultipleSegmentsShareFramesButNotStats) {
  storage::BlockFile a = MakeFile(dir_.File("a.blk"), 8);
  storage::BlockFile b = MakeFile(dir_.File("b.blk"), 8);
  storage::BufferPool pool(16 * kBlock, kBlock);
  auto sa = pool.RegisterSegment("a", &a);
  auto sb = pool.RegisterSegment("b", &b);
  ASSERT_TRUE(sa.ok() && sb.ok());

  for (uint32_t blk = 0; blk < 8; ++blk) {
    (void)pool.Fetch(*sa, blk);
  }
  (void)pool.Fetch(*sb, 0);
  EXPECT_EQ(pool.stats(*sa).requests, 8u);
  EXPECT_EQ(pool.stats(*sb).requests, 1u);
  EXPECT_EQ(pool.TotalStats().requests, 9u);
  EXPECT_EQ(pool.segment_name(*sa), "a");
  EXPECT_EQ(pool.segment_name(*sb), "b");
}

TEST_F(BufferPoolTest, SamePageTwiceIsPinnedTwice) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(4 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  {
    auto p1 = pool.Fetch(*seg, 0);
    auto p2 = pool.Fetch(*seg, 0);
    ASSERT_TRUE(p1.ok() && p2.ok());
    EXPECT_EQ(p1->data(), p2->data());
    EXPECT_EQ(pool.num_pinned(), 1u);  // one frame, pin count 2
  }
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST_F(BufferPoolTest, ResetStatsKeepsResidency) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(4 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  (void)pool.Fetch(*seg, 0);
  pool.ResetStats();
  EXPECT_EQ(pool.stats(*seg).requests, 0u);
  (void)pool.Fetch(*seg, 0);
  EXPECT_EQ(pool.stats(*seg).hits, 1u);  // still resident
}

TEST_F(BufferPoolTest, ClearDropsResidency) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(4 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());
  (void)pool.Fetch(*seg, 0);
  pool.Clear();
  pool.ResetStats();
  (void)pool.Fetch(*seg, 0);
  EXPECT_EQ(pool.stats(*seg).hits, 0u);
}

TEST_F(BufferPoolTest, SingleFrameCapacity) {
  // capacity_bytes below one block still allocates exactly one frame, and
  // the pool stays correct while thrashing it.
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(1, kBlock);
  EXPECT_EQ(pool.num_frames(), 1u);
  EXPECT_EQ(pool.num_shards(), 1u);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  for (int round = 0; round < 3; ++round) {
    for (uint32_t b = 0; b < 4; ++b) {
      auto page = pool.Fetch(*seg, b);
      ASSERT_TRUE(page.ok());
      EXPECT_TRUE(BlockIsCorrect(page->data(), b));
    }
  }
  EXPECT_EQ(pool.stats(*seg).hits, 0u) << "every fetch must evict";

  // Same block twice in a row IS a hit even with one frame.
  (void)pool.Fetch(*seg, 0);
  auto again = pool.Fetch(*seg, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats(*seg).hits, 1u);
}

TEST_F(BufferPoolTest, ExplicitShardCountIsHonored) {
  storage::BufferPool pool(64 * kBlock, kBlock, 4);
  EXPECT_EQ(pool.num_shards(), 4u);
  EXPECT_EQ(pool.num_frames(), 64u);
  // Shard count rounds down to a power of two and never exceeds the frames.
  storage::BufferPool rounded(64 * kBlock, kBlock, 6);
  EXPECT_EQ(rounded.num_shards(), 4u);
  storage::BufferPool tiny(2 * kBlock, kBlock, 16);
  EXPECT_EQ(tiny.num_shards(), 2u);
}

TEST_F(BufferPoolTest, FailedReadInvalidatesVictimFrame) {
  // Regression: when ReadBlock fails after a victim was chosen, the victim
  // used to keep its old (segment, block) identity and stay occupied even
  // though its page-table entry was erased — and the fetch memo would then
  // serve the (possibly partially overwritten) frame as a hit. The victim
  // must instead be invalidated, so the old block is re-read from disk.
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 2);
  storage::BufferPool pool(1 * kBlock, kBlock);  // one frame: forced victim
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  {
    auto page = pool.Fetch(*seg, 0);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect(page->data(), 0));
  }
  // Out-of-range block: victim already selected, read fails.
  auto bad = pool.Fetch(*seg, 99);
  EXPECT_FALSE(bad.ok());

  // Re-fetching block 0 must be a MISS served from disk, not a stale "hit"
  // on the invalidated frame.
  auto page = pool.Fetch(*seg, 0);
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(BlockIsCorrect(page->data(), 0));
  EXPECT_EQ(pool.stats(*seg).requests, 3u);
  EXPECT_EQ(pool.stats(*seg).hits, 0u)
      << "stale frame served as a hit after a failed read";
}

TEST_F(BufferPoolTest, PoolRemainsUsableAfterIOError) {
  // A read error from the backing file (closed fd) must not poison the
  // pool: resident pages keep hitting and new blocks load normally after
  // the failure.
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(4 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  {
    auto page = pool.Fetch(*seg, 0);
    ASSERT_TRUE(page.ok());
  }
  file.Close();
  EXPECT_FALSE(pool.Fetch(*seg, 1).ok()) << "closed file must fail the read";
  auto resident = pool.Fetch(*seg, 0);  // still cached: no file IO
  ASSERT_TRUE(resident.ok());
  EXPECT_TRUE(BlockIsCorrect(resident->data(), 0));

  auto reopened = storage::BlockFile::Open(dir_.File("a.blk"), kBlock);
  ASSERT_TRUE(reopened.ok());
  file = std::move(reopened).value();
  auto fresh = pool.Fetch(*seg, 1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(BlockIsCorrect(fresh->data(), 1));
}

TEST_F(BufferPoolTest, ScanAdmissionDoesNotSetReferenceBit) {
  // Two frames, one shard (deterministic CLOCK). A page fetched with the
  // kScan hint must be the eviction victim ahead of a normally-fetched
  // page, so one-pass scans cannot push the hot working set out.
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 8);
  storage::BufferPool pool(2 * kBlock, kBlock);
  ASSERT_EQ(pool.num_shards(), 1u);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  (void)pool.Fetch(*seg, 0);                            // frame 0, referenced
  (void)pool.Fetch(*seg, 1, storage::Admission::kScan); // frame 1, no-touch
  (void)pool.Fetch(*seg, 2);  // sweep clears b0's bit, evicts the scan page

  auto resident = pool.Fetch(*seg, 0);
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(pool.stats(*seg).hits, 1u)
      << "the normally-admitted page must have survived the scan";
  EXPECT_TRUE(BlockIsCorrect(resident->data(), 0));
}

TEST_F(BufferPoolTest, ScanHitLeavesReferenceBitAlone) {
  // Control for the hint on the HIT path: without the hint, re-touching
  // block 0 would save it from the next sweep; with kScan it must not.
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 8);
  storage::BufferPool pool(2 * kBlock, kBlock);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  (void)pool.Fetch(*seg, 0);
  (void)pool.Fetch(*seg, 1);
  (void)pool.Fetch(*seg, 2);  // clears both bits, evicts b0 (frame 0)
  (void)pool.Fetch(*seg, 1, storage::Admission::kScan);  // hit; bit stays 0
  (void)pool.Fetch(*seg, 3);  // must evict b1 despite the recent scan touch

  auto b1 = pool.Fetch(*seg, 1);
  ASSERT_TRUE(b1.ok());
  EXPECT_TRUE(BlockIsCorrect(b1->data(), 1));
  // requests: 6 fetches; hits: only the kScan touch of b1.
  EXPECT_EQ(pool.stats(*seg).requests, 6u);
  EXPECT_EQ(pool.stats(*seg).hits, 1u);
}

TEST_F(BufferPoolTest, MismatchedBlockSizeRejected) {
  storage::BlockFile file = MakeFile(dir_.File("a.blk"), 4);
  storage::BufferPool pool(4 * 512, 512);
  EXPECT_FALSE(pool.RegisterSegment("a", &file).ok());
}

// --- Concurrent fetches through the shared sharded pool --------------------
// (these also run under the TSan CI job; keep the suite name stable)

TEST(BufferPoolConcurrency, ConcurrentFetchStressIsCorrect) {
  util::TempDir dir("bp-conc");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 64);
  // 32 frames over 64 hot blocks across multiple shards: constant eviction
  // races between the worker threads. 8 frames per shard keeps the trace
  // failure-free: the 7 other threads pin at most 7 distinct blocks at any
  // moment, so no shard can ever be fully pinned when a victim is needed.
  storage::BufferPool pool(32 * kBlock, kBlock, 4);
  ASSERT_EQ(pool.num_shards(), 4u);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> corrupt{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      util::Random rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        uint32_t b = static_cast<uint32_t>(rng.Uniform(64));
        auto page = pool.Fetch(*seg, b);
        if (!page.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!BlockIsCorrect(page->data(), b)) corrupt.fetch_add(1);
        // Occasionally hold a second overlapping pin to exercise pin
        // stacking across threads.
        if (i % 7 == 0) {
          auto second = pool.Fetch(*seg, b);
          if (second.ok() && !BlockIsCorrect(second->data(), b)) {
            corrupt.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(corrupt.load(), 0) << "a fetch observed wrong block contents";
  EXPECT_EQ(failures.load(), 0) << "no fetch should fail in this trace";
  EXPECT_EQ(pool.num_pinned(), 0u);
  // Relaxed counters still add up exactly once the threads are joined.
  const storage::SegmentStats total = pool.TotalStats();
  uint64_t expected = 0;
  // kIters fetches plus one extra for every i % 7 == 0 iteration, per thread.
  expected = static_cast<uint64_t>(kThreads) *
             (kIters + (kIters + 6) / 7);
  EXPECT_EQ(total.requests, expected);
  EXPECT_GT(total.hits, 0u);
}

TEST(BufferPoolConcurrency, PinnedPagesSurviveConcurrentChurn) {
  util::TempDir dir("bp-pin");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 64);
  storage::BufferPool pool(32 * kBlock, kBlock, 2);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  // Each thread pins one block for its whole lifetime while every thread
  // churns the rest of the pool; the pinned data must never change.
  constexpr int kThreads = 4;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      uint32_t mine = static_cast<uint32_t>(t);
      auto pinned = pool.Fetch(*seg, mine);
      if (!pinned.ok()) {
        corrupt.fetch_add(1);
        return;
      }
      util::Random rng(77 + t);
      for (int i = 0; i < 1500; ++i) {
        uint32_t b = static_cast<uint32_t>(rng.Uniform(64));
        auto page = pool.Fetch(*seg, b);
        if (page.ok() && !BlockIsCorrect(page->data(), b)) corrupt.fetch_add(1);
        if (!BlockIsCorrect(pinned->data(), mine)) corrupt.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(BufferPoolConcurrency, MultiSegmentStatsStayPerSegment) {
  util::TempDir dir("bp-seg");
  storage::BlockFile a = MakeFile(dir.File("a.blk"), 16);
  storage::BlockFile b = MakeFile(dir.File("b.blk"), 16);
  storage::BufferPool pool(8 * kBlock, kBlock, 2);
  auto sa = pool.RegisterSegment("a", &a);
  auto sb = pool.RegisterSegment("b", &b);
  ASSERT_TRUE(sa.ok() && sb.ok());

  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      util::Random rng(5 + t);
      for (int i = 0; i < kIters; ++i) {
        storage::SegmentId seg = (t % 2 == 0) ? *sa : *sb;
        (void)pool.Fetch(seg, static_cast<uint32_t>(rng.Uniform(16)));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.stats(*sa).requests,
            static_cast<uint64_t>(kThreads / 2) * kIters);
  EXPECT_EQ(pool.stats(*sb).requests,
            static_cast<uint64_t>(kThreads / 2) * kIters);
}

TEST(BufferPoolConcurrency, SameBlockMissStormReadsOnce) {
  // Many threads request the same cold block at once. The in-flight table
  // must route all but one of them onto the loading frame's condvar: the
  // block is read from disk exactly once and everyone else resolves as a
  // hit on the published page.
  util::TempDir dir("bp-storm");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 64);
  storage::BufferPool pool(32 * kBlock, kBlock, 4);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  constexpr int kThreads = 8;
  for (uint32_t round = 0; round < 16; ++round) {
    const uint32_t target = round;  // cold every round (first touch)
    std::atomic<int> corrupt{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&]() {
        auto page = pool.Fetch(*seg, target);
        if (!page.ok() || !BlockIsCorrect(page->data(), target)) {
          corrupt.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(corrupt.load(), 0) << "round " << round;
  }
  const storage::SegmentStats stats = pool.stats(*seg);
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(16 * kThreads));
  // One miss per round: whoever wins the shard lock loads; the in-flight
  // table turns every concurrent duplicate into a waiter, never a reader.
  EXPECT_EQ(stats.misses(), 16u);
}

TEST(BufferPoolConcurrency, FailedInFlightLoadWakesWaiters) {
  // Concurrent fetches of an unreadable block: the loser threads queued on
  // the in-flight frame must be woken, observe the failure, and either
  // retry (failing themselves) or proceed — nobody deadlocks and the pool
  // stays fully usable afterwards.
  util::TempDir dir("bp-fail");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 8);
  // 8 frames per shard: six threads pin at most six frames at any moment,
  // so a victim sweep can never fail in this trace.
  storage::BufferPool pool(16 * kBlock, kBlock, 2);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  constexpr int kThreads = 6;
  std::atomic<int> wrong{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      util::Random rng(31 + t);
      for (int i = 0; i < 500; ++i) {
        if (i % 3 == 0) {
          // Out of range: the read always fails after a victim is claimed.
          if (pool.Fetch(*seg, 1000).ok()) wrong.fetch_add(1);
        } else {
          uint32_t b = static_cast<uint32_t>(rng.Uniform(8));
          auto page = pool.Fetch(*seg, b);
          if (!page.ok() || !BlockIsCorrect(page->data(), b)) {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(pool.num_pinned(), 0u);

  for (uint32_t b = 0; b < 8; ++b) {
    auto page = pool.Fetch(*seg, b);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(BlockIsCorrect(page->data(), b));
  }
}

TEST(BufferPoolConcurrency, TinyPoolSameBlockChurn) {
  // One-frame shards with every thread hammering two hot blocks: constant
  // eviction with the in-flight hand-off exercised on nearly every fetch.
  // Transient exhaustion (the single frame pinned by a loader) is allowed;
  // corruption is not.
  util::TempDir dir("bp-churn");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 4);
  storage::BufferPool pool(2 * kBlock, kBlock, 2);
  auto seg = pool.RegisterSegment("a", &file);
  ASSERT_TRUE(seg.ok());

  constexpr int kThreads = 4;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      util::Random rng(7 + t);
      for (int i = 0; i < 2000; ++i) {
        uint32_t b = static_cast<uint32_t>(rng.Uniform(4));
        auto page = pool.Fetch(*seg, b);
        if (page.ok() && !BlockIsCorrect(page->data(), b)) {
          corrupt.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(BlockFileTest, OutOfRangeReadFails) {
  util::TempDir dir("bf");
  storage::BlockFile file = MakeFile(dir.File("a.blk"), 2);
  std::vector<uint8_t> buf(kBlock);
  EXPECT_TRUE(file.ReadBlock(1, buf.data()).ok());
  EXPECT_FALSE(file.ReadBlock(2, buf.data()).ok());
}

TEST(BlockFileTest, OpenRejectsPartialBlocks) {
  util::TempDir dir("bf");
  std::string path = dir.File("bad.blk");
  {
    std::ofstream out(path, std::ios::binary);
    out << "short";
  }
  EXPECT_FALSE(storage::BlockFile::Open(path, kBlock).ok());
}

TEST(RecordBlockWriterTest, RecordsRoundTrip) {
  util::TempDir dir("rw");
  std::string path = dir.File("rec.blk");
  {
    auto file = storage::BlockFile::Create(path, kBlock);
    ASSERT_TRUE(file.ok());
    auto writer = storage::RecordBlockWriter::Create(&*file, 8);
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer->records_per_block(), kBlock / 8);
    for (uint64_t r = 0; r < 100; ++r) {
      OASIS_ASSERT_OK(writer->Append(&r));
    }
    OASIS_ASSERT_OK(writer->Finish());
    EXPECT_EQ(writer->num_records(), 100u);
  }
  auto file = storage::BlockFile::Open(path, kBlock);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> buf(kBlock);
  for (uint64_t r = 0; r < 100; ++r) {
    uint64_t block = r / (kBlock / 8);
    OASIS_ASSERT_OK(file->ReadBlock(block, buf.data()));
    uint64_t value;
    std::memcpy(&value, buf.data() + (r % (kBlock / 8)) * 8, 8);
    EXPECT_EQ(value, r);
  }
}

TEST(RecordBlockWriterTest, RejectsNonDividingRecordSize) {
  util::TempDir dir("rw");
  auto file = storage::BlockFile::Create(dir.File("rec.blk"), kBlock);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(storage::RecordBlockWriter::Create(&*file, 7).ok());
  EXPECT_FALSE(storage::RecordBlockWriter::Create(&*file, 0).ok());
  EXPECT_FALSE(storage::RecordBlockWriter::Create(&*file, kBlock + 1).ok());
}

}  // namespace
}  // namespace oasis
