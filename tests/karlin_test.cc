// Karlin-Altschul statistics (DESIGN.md invariant #7): lambda solves the
// characteristic equation, E-values are monotone, Eq. 2 <-> Eq. 3 round-trip.

#include <cmath>

#include <gtest/gtest.h>

#include "score/karlin.h"
#include "test_util.h"

namespace oasis {
namespace {

double Phi(const score::SubstitutionMatrix& m, const std::vector<double>& bg,
           double lambda) {
  double sum = 0.0;
  for (uint32_t a = 0; a < m.size(); ++a) {
    for (uint32_t b = 0; b < m.size(); ++b) {
      if (bg[a] <= 0 || bg[b] <= 0) continue;
      sum += bg[a] * bg[b] * std::exp(lambda * m.Score(a, b));
    }
  }
  return sum;
}

class KarlinMatrixTest
    : public ::testing::TestWithParam<const score::SubstitutionMatrix*> {};

TEST_P(KarlinMatrixTest, LambdaSolvesCharacteristicEquation) {
  const score::SubstitutionMatrix& m = *GetParam();
  auto params = score::ComputeKarlinParams(m);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  EXPECT_GT(params->lambda, 0.0);

  std::vector<double> bg = score::BackgroundFrequencies(m.alphabet());
  double total = 0.0;
  for (double p : bg) total += p;
  for (double& p : bg) p /= total;  // normalize (protein bg sums to ~1)

  EXPECT_NEAR(Phi(m, bg, params->lambda), 1.0, 1e-6) << m.name();
}

TEST_P(KarlinMatrixTest, ParametersArePhysical) {
  auto params = score::ComputeKarlinParams(*GetParam());
  ASSERT_TRUE(params.ok());
  EXPECT_GT(params->K, 0.0);
  EXPECT_LE(params->K, 1.0);  // K <= 1 for all real scoring systems
  EXPECT_GT(params->H, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrices, KarlinMatrixTest,
    ::testing::Values(&score::SubstitutionMatrix::UnitDna(),
                      &score::SubstitutionMatrix::Blastn(),
                      &score::SubstitutionMatrix::Pam30(),
                      &score::SubstitutionMatrix::Blosum62()),
    [](const ::testing::TestParamInfo<const score::SubstitutionMatrix*>& info) {
      return info.param->name() == "unit" ? "unit"
             : info.param->name() == "blastn" ? "blastn"
             : info.param->name() == "PAM30" ? "pam30" : "blosum62";
    });

TEST(KarlinTest, KnownValuesForUnitUniform) {
  // For +1/-1 with uniform p=1/4: phi(lambda) = (1/4)e^l + (3/4)e^-l = 1
  // => e^l = 3 => lambda = ln 3.
  auto params = score::ComputeKarlinParams(score::SubstitutionMatrix::UnitDna());
  ASSERT_TRUE(params.ok());
  EXPECT_NEAR(params->lambda, std::log(3.0), 1e-9);
}

TEST(KarlinTest, EValueMonotoneDecreasingInScore) {
  auto params = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
  ASSERT_TRUE(params.ok());
  double prev = score::EValueForScore(*params, 1, 16, 1 << 20);
  for (int s = 2; s < 120; ++s) {
    double e = score::EValueForScore(*params, s, 16, 1 << 20);
    EXPECT_LT(e, prev) << "score " << s;
    prev = e;
  }
}

TEST(KarlinTest, EValueScalesWithSearchSpace) {
  auto params = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
  ASSERT_TRUE(params.ok());
  double e1 = score::EValueForScore(*params, 40, 16, 1 << 20);
  double e2 = score::EValueForScore(*params, 40, 32, 1 << 20);
  double e3 = score::EValueForScore(*params, 40, 16, 1 << 21);
  EXPECT_DOUBLE_EQ(e2, 2 * e1);
  EXPECT_DOUBLE_EQ(e3, 2 * e1);
}

// Eq. 3 must be the inverse of Eq. 2: the returned score's E-value is <=
// the cutoff, and one score lower would exceed it.
TEST(KarlinTest, MinScoreRoundTripsEValue) {
  auto params = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
  ASSERT_TRUE(params.ok());
  for (double evalue : {0.001, 0.1, 1.0, 100.0, 20000.0}) {
    score::ScoreT s = score::MinScoreForEValue(*params, evalue, 16, 1 << 20);
    EXPECT_LE(score::EValueForScore(*params, s, 16, 1 << 20), evalue + 1e-9)
        << "E=" << evalue;
    if (s > 1) {
      EXPECT_GT(score::EValueForScore(*params, s - 1, 16, 1 << 20), evalue)
          << "E=" << evalue;
    }
  }
}

TEST(KarlinTest, MinScoreMonotoneInEValue) {
  auto params = score::ComputeKarlinParams(score::SubstitutionMatrix::Pam30());
  ASSERT_TRUE(params.ok());
  score::ScoreT s1 = score::MinScoreForEValue(*params, 1.0, 16, 1 << 20);
  score::ScoreT s20000 = score::MinScoreForEValue(*params, 20000.0, 16, 1 << 20);
  // Looser E-value => lower threshold (the paper's Figure 6 contrast).
  EXPECT_LT(s20000, s1);
  EXPECT_GE(s20000, 1);
}

TEST(KarlinTest, RejectsNonNegativeMeanScoringSystem) {
  // A matrix with a positive expected score has no valid statistics.
  const seq::Alphabet& a = seq::Alphabet::Dna();
  std::vector<score::ScoreT> table(16, 1);  // all-positive scores
  auto m = score::SubstitutionMatrix::Create(a, "bad", std::move(table), -1);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(score::ComputeKarlinParams(*m).ok());
}

TEST(KarlinTest, BackgroundFrequenciesSumToOne) {
  for (const seq::Alphabet* a :
       {&seq::Alphabet::Dna(), &seq::Alphabet::Protein()}) {
    std::vector<double> bg = score::BackgroundFrequencies(*a);
    double total = 0.0;
    for (double p : bg) total += p;
    EXPECT_NEAR(total, 1.0, 0.01);
  }
}

TEST(KarlinTest, RejectsMismatchedBackgroundSize) {
  std::vector<double> bg(3, 1.0 / 3);
  EXPECT_FALSE(
      score::ComputeKarlinParams(score::SubstitutionMatrix::UnitDna(), bg).ok());
}

}  // namespace
}  // namespace oasis
