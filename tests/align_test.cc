// Smith-Waterman and traceback properties beyond the paper example:
// score consistency, coordinate sanity, symmetry, and randomized
// cross-checks between the scan and the traceback variants.

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "align/traceback.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

using testing::Encode;
using testing::MakeDatabase;

std::vector<seq::Symbol> RandomSeq(util::Random& rng, uint32_t sigma,
                                   size_t len) {
  std::vector<seq::Symbol> out(len);
  for (auto& s : out) s = static_cast<seq::Symbol>(rng.Uniform(sigma));
  return out;
}

TEST(SmithWaterman, IdenticalSequencesScoreSelfScore) {
  auto q = Encode(seq::Alphabet::Dna(), "GATTACA");
  align::SequenceHit hit =
      align::AlignPair(q, q, score::SubstitutionMatrix::UnitDna());
  EXPECT_EQ(hit.score, 7);
}

TEST(SmithWaterman, DisjointAlphabetsScoreZero) {
  auto q = Encode(seq::Alphabet::Dna(), "AAAA");
  auto t = Encode(seq::Alphabet::Dna(), "CCCC");
  align::SequenceHit hit =
      align::AlignPair(q, t, score::SubstitutionMatrix::UnitDna());
  EXPECT_EQ(hit.score, 0);
}

TEST(SmithWaterman, SymmetricUnderSwap) {
  util::Random rng(11);
  for (int i = 0; i < 20; ++i) {
    auto a = RandomSeq(rng, 4, 1 + rng.Uniform(30));
    auto b = RandomSeq(rng, 4, 1 + rng.Uniform(30));
    align::SequenceHit ab =
        align::AlignPair(a, b, score::SubstitutionMatrix::UnitDna());
    align::SequenceHit ba =
        align::AlignPair(b, a, score::SubstitutionMatrix::UnitDna());
    EXPECT_EQ(ab.score, ba.score);
  }
}

TEST(SmithWaterman, ScoreNeverDecreasesWhenTargetGrows) {
  util::Random rng(12);
  auto q = RandomSeq(rng, 4, 10);
  auto t = RandomSeq(rng, 4, 50);
  score::ScoreT prev = 0;
  for (size_t len = 1; len <= t.size(); ++len) {
    std::span<const seq::Symbol> prefix(t.data(), len);
    align::SequenceHit hit =
        align::AlignPair(q, prefix, score::SubstitutionMatrix::UnitDna());
    EXPECT_GE(hit.score, prev);
    prev = hit.score;
  }
}

TEST(SmithWaterman, ColumnsExpandedEqualsDatabaseResidues) {
  auto db = MakeDatabase(seq::Alphabet::Dna(), {"ACGTT", "GGG", "TATATA"});
  auto q = Encode(seq::Alphabet::Dna(), "ACG");
  align::AlignStats stats;
  align::ScanDatabase(q, db, score::SubstitutionMatrix::UnitDna(), 1, &stats);
  EXPECT_EQ(stats.columns_expanded, db.num_residues());
}

TEST(SmithWaterman, ScanFiltersAndSortsByScore) {
  auto db = MakeDatabase(seq::Alphabet::Dna(),
                         {"TTTT", "ACGT", "AACGTT", "CCCC"});
  auto q = Encode(seq::Alphabet::Dna(), "ACGT");
  auto hits = align::ScanDatabase(q, db, score::SubstitutionMatrix::UnitDna(),
                                  3);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].score, 4);
  EXPECT_EQ(hits[1].score, 4);
  EXPECT_LT(hits[0].sequence_id, hits[1].sequence_id);
}

TEST(Traceback, ScoreMatchesScanOnRandomPairs) {
  util::Random rng(13);
  for (int i = 0; i < 40; ++i) {
    auto q = RandomSeq(rng, 4, 1 + rng.Uniform(25));
    auto t = RandomSeq(rng, 4, 1 + rng.Uniform(40));
    align::SequenceHit hit =
        align::AlignPair(q, t, score::SubstitutionMatrix::UnitDna());
    align::Alignment aln =
        align::TracebackLocal(q, t, score::SubstitutionMatrix::UnitDna());
    EXPECT_EQ(aln.score, hit.score);
    if (aln.score > 0) {
      EXPECT_EQ(aln.RecomputeScore(score::SubstitutionMatrix::UnitDna(), q, t),
                aln.score);
    }
  }
}

TEST(Traceback, CigarRoundTrip) {
  auto q = Encode(seq::Alphabet::Dna(), "ACGTACGT");
  auto t = Encode(seq::Alphabet::Dna(), "ACGACGT");  // T deleted from query view
  align::Alignment aln =
      align::TracebackLocal(q, t, score::SubstitutionMatrix::UnitDna());
  EXPECT_GT(aln.score, 0);
  std::string cigar = aln.Cigar();
  EXPECT_FALSE(cigar.empty());
  // Total consumed query symbols from the CIGAR must match coordinates.
  size_t q_consumed = 0, t_consumed = 0;
  for (align::Op op : aln.ops) {
    if (op != align::Op::kDelete) ++q_consumed;
    if (op != align::Op::kInsert) ++t_consumed;
  }
  EXPECT_EQ(q_consumed, aln.query_end - aln.query_start + 1);
  EXPECT_EQ(t_consumed, aln.target_end - aln.target_start + 1);
}

TEST(Traceback, PrettyRendersAllThreeLines) {
  auto q = Encode(seq::Alphabet::Dna(), "ACGT");
  auto t = Encode(seq::Alphabet::Dna(), "ACGT");
  align::Alignment aln =
      align::TracebackLocal(q, t, score::SubstitutionMatrix::UnitDna());
  std::string pretty = aln.Pretty(seq::Alphabet::Dna(), q, t);
  EXPECT_EQ(pretty, "ACGT\n||||\nACGT\n");
}

TEST(Traceback, PathPinnedConsumesWholeTarget) {
  // Pinned variant must align the target span end to end.
  auto q = Encode(seq::Alphabet::Dna(), "TTACGTT");
  auto t = Encode(seq::Alphabet::Dna(), "ACG");
  align::Alignment aln = align::TracebackPathPinned(
      q, t, score::SubstitutionMatrix::UnitDna());
  EXPECT_EQ(aln.score, 3);
  EXPECT_EQ(aln.target_start, 0u);
  EXPECT_EQ(aln.target_end, 2u);
  EXPECT_EQ(aln.query_start, 2u);
  EXPECT_EQ(aln.query_end, 4u);
}

TEST(Traceback, PathPinnedNeverExceedsLocal) {
  // The pinned DP is a restriction of local alignment: its score is <= the
  // free local score for any pair.
  util::Random rng(14);
  for (int i = 0; i < 30; ++i) {
    auto q = RandomSeq(rng, 4, 1 + rng.Uniform(20));
    auto t = RandomSeq(rng, 4, 1 + rng.Uniform(15));
    align::Alignment pinned = align::TracebackPathPinned(
        q, t, score::SubstitutionMatrix::UnitDna());
    align::Alignment local =
        align::TracebackLocal(q, t, score::SubstitutionMatrix::UnitDna());
    EXPECT_LE(pinned.score, local.score);
  }
}

TEST(Traceback, EmptyAlignmentForHopelessPair) {
  auto q = Encode(seq::Alphabet::Dna(), "A");
  auto t = Encode(seq::Alphabet::Dna(), "C");
  align::Alignment aln =
      align::TracebackLocal(q, t, score::SubstitutionMatrix::UnitDna());
  EXPECT_EQ(aln.score, 0);
  EXPECT_TRUE(aln.ops.empty());
  EXPECT_EQ(aln.Cigar(), "");
}

TEST(FullMatrix, AgreesWithAlignPairBest) {
  util::Random rng(15);
  for (int i = 0; i < 20; ++i) {
    auto q = RandomSeq(rng, 4, 1 + rng.Uniform(12));
    auto t = RandomSeq(rng, 4, 1 + rng.Uniform(18));
    auto h = align::FullMatrix(q, t, score::SubstitutionMatrix::UnitDna());
    score::ScoreT best = 0;
    for (const auto& row : h) {
      for (score::ScoreT v : row) best = std::max(best, v);
    }
    align::SequenceHit hit =
        align::AlignPair(q, t, score::SubstitutionMatrix::UnitDna());
    EXPECT_EQ(hit.score, best);
  }
}

}  // namespace
}  // namespace oasis
