// FASTQ parser suite: the strict four-line grammar, both quality
// encodings, soft-mask/quality round-trips, and an adversarial corpus of
// malformed records. FASTQ's grammar is only unambiguous in its rigid
// form ('@' and '+' are both legal *quality* characters), so the parser
// must never guess — every structural violation fails the whole parse
// with an InvalidArgument naming the record position and line number,
// which this suite pins message by message. The Fastq* suites run under
// the TSan CI leg.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "seq/fastq.h"
#include "test_util.h"
#include "util/random.h"

namespace oasis {
namespace {

const seq::Alphabet& Dna() { return seq::Alphabet::Dna(); }

util::StatusOr<std::vector<seq::Sequence>> Parse(
    const std::string& text, seq::FastqOffset offset = seq::FastqOffset::kSanger) {
  std::istringstream in(text);
  return seq::ReadFastq(in, Dna(), offset);
}

/// Asserts the parse fails with an InvalidArgument whose message contains
/// every fragment (record position, id, line number, cause).
void ExpectParseError(const std::string& text,
                      const std::vector<std::string>& fragments,
                      seq::FastqOffset offset = seq::FastqOffset::kSanger) {
  auto result = Parse(text, offset);
  ASSERT_FALSE(result.ok()) << "parse unexpectedly succeeded";
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();
  for (const std::string& fragment : fragments) {
    EXPECT_NE(result.status().message().find(fragment), std::string::npos)
        << "missing '" << fragment << "' in: " << result.status().ToString();
  }
}

// --- Well-formed input ------------------------------------------------------

TEST(FastqParse, MultiRecordWithQualities) {
  auto records = Parse(
      "@r1 first read\n"
      "ACGT\n"
      "+\n"
      "I!5#\n"
      "@r2\n"
      "TTG\n"
      "+r2\n"
      "III\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].id(), "r1");
  EXPECT_EQ((*records)[0].description(), "first read");
  EXPECT_EQ((*records)[0].ToString(Dna()), "ACGT");
  // Sanger offset 33: 'I' = 40, '!' = 0, '5' = 20, '#' = 2.
  EXPECT_EQ((*records)[0].quals(), (std::vector<uint8_t>{40, 0, 20, 2}));
  EXPECT_EQ((*records)[1].id(), "r2");
  EXPECT_EQ((*records)[1].quals(), (std::vector<uint8_t>{40, 40, 40}));
}

TEST(FastqParse, IlluminaOffsetDecodesAgainst64) {
  // Legacy phred+64: '@' = 0, 'h' = 40.
  auto records = Parse("@r1\nAC\n+\n@h\n", seq::FastqOffset::kIllumina);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ((*records)[0].quals(), (std::vector<uint8_t>{0, 40}));
}

TEST(FastqParse, CrlfLineEndings) {
  auto records = Parse("@r1 desc\r\nACGT\r\n+\r\nIIII\r\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ((*records)[0].description(), "desc");
  EXPECT_EQ((*records)[0].ToString(Dna()), "ACGT");
  EXPECT_EQ((*records)[0].quals().size(), 4u);
}

TEST(FastqParse, LowercaseResiduesSoftMask) {
  // Lowercase residues are soft-masked exactly like FASTA: encoded as
  // their uppercase forms, remembered in the mask, restored lowercase.
  auto records = Parse("@r1\nAcgT\n+\nIIII\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ((*records)[0].mask(), (std::vector<uint8_t>{0, 1, 1, 0}));
  EXPECT_EQ((*records)[0].ToString(Dna()), "AcgT");
  EXPECT_EQ((*records)[0].symbols(), (std::vector<seq::Symbol>{0, 1, 2, 3}));
}

TEST(FastqParse, QualityLineMayStartWithAtOrPlus) {
  // '@' and '+' are legal quality characters; only the rigid four-line
  // structure disambiguates them from headers and separators.
  auto records = Parse("@r1\nACGT\n+\n@+@+\n@r2\nAC\n+\n++\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].quals(),
            (std::vector<uint8_t>{31, 10, 31, 10}));  // '@'=31, '+'=10
  EXPECT_EQ((*records)[1].quals(), (std::vector<uint8_t>{10, 10}));
}

TEST(FastqParse, SeparatorMayRepeatIdOrFullHeader) {
  auto records = Parse(
      "@r1 tissue sample\nAC\n+r1\nII\n"
      "@r2 other\nGT\n+r2 other\nII\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
}

TEST(FastqParse, BlankLinesBetweenRecordsSkipped) {
  auto records = Parse("@r1\nAC\n+\nII\n\n\n@r2\nGT\n+\nII\n");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
}

TEST(FastqParse, EmptyInputYieldsNoRecords) {
  auto records = Parse("");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_TRUE(records->empty());
}

// --- Malformed corpus: every error names the record position ----------------

TEST(FastqMalformed, MissingAtHeader) {
  ExpectParseError("ACGT\n+\nIIII\n", {"record 1", "line 1", "expected '@'"});
}

TEST(FastqMalformed, EmptyIdentifier) {
  ExpectParseError("@\nACGT\n+\nIIII\n",
                   {"record 1", "empty FASTQ identifier"});
  ExpectParseError("@ description only\nACGT\n+\nIIII\n",
                   {"record 1", "empty FASTQ identifier"});
}

TEST(FastqMalformed, TruncatedAfterHeader) {
  ExpectParseError("@r1\n", {"record 1", "('r1')", "missing sequence line"});
}

TEST(FastqMalformed, BlankSequenceLineIsTruncation) {
  // Mid-record a blank line is a truncation, not a skippable separator.
  ExpectParseError("@r1\n\n+\nII\n", {"record 1", "empty sequence line"});
}

TEST(FastqMalformed, TruncatedMissingSeparator) {
  ExpectParseError("@r1\nACGT\n",
                   {"record 1", "('r1')", "missing '+' separator"});
}

TEST(FastqMalformed, SeparatorRepeatsDifferentId) {
  ExpectParseError("@r1\nACGT\n+r2\nIIII\n",
                   {"record 1", "different id", "'r2'"});
  // A tail that merely extends the id (no whitespace) is a different id.
  ExpectParseError("@r1\nACGT\n+r1x\nIIII\n", {"record 1", "different id"});
}

TEST(FastqMalformed, MissingSeparatorLine) {
  ExpectParseError("@r1\nACGT\nIIII\n@r2\nAC\n+\nII\n",
                   {"record 1", "expected '+' separator"});
}

TEST(FastqMalformed, TruncatedMissingQuality) {
  ExpectParseError("@r1\nACGT\n+\n", {"record 1", "missing quality line"});
}

TEST(FastqMalformed, QualityLengthMismatch) {
  ExpectParseError("@r1\nACGT\n+\nIII\n",
                   {"record 1", "quality length 3", "sequence length 4"});
  ExpectParseError("@r1\nACGT\n+\nIIIII\n",
                   {"record 1", "quality length 5", "sequence length 4"});
}

TEST(FastqMalformed, QualityBelowSangerRange) {
  // ' ' (32) is below the sanger base '!' (33); the error names the
  // offending column.
  ExpectParseError("@r1\nACGT\n+\nII I\n",
                   {"record 1", "column 3", "sanger encoding range"});
}

TEST(FastqMalformed, QualityBelowIlluminaRange) {
  // '5' (53) is a fine sanger quality but sits below the illumina base
  // '@' (64) — the strict offset check catches mixed-encoding files.
  ASSERT_TRUE(Parse("@r1\nACGT\n+\n5555\n").ok());
  ExpectParseError("@r1\nACGT\n+\n5555\n",
                   {"record 1", "column 1", "illumina encoding range"},
                   seq::FastqOffset::kIllumina);
}

TEST(FastqMalformed, InvalidResidueNamesSequenceLine) {
  // The residue error points at the sequence line (line 2), not the
  // quality line the parser had reached by then.
  ExpectParseError("@r1\nACGN\n+\nIIII\n", {"record 1", "('r1')", "line 2"});
}

TEST(FastqMalformed, SecondRecordErrorNamesItsPosition) {
  const std::string good = "@r1\nACGT\n+\nIIII\n";
  ExpectParseError(good + "@r2\nAC\n+\n", {"record 2", "('r2')", "line 7"});
  ExpectParseError(good + "@r2\nAC\n+\nIIII\n",
                   {"record 2", "quality length 4", "sequence length 2"});
}

TEST(FastqMalformed, ParseOffsetRejectsUnknownSpelling) {
  auto offset = seq::ParseFastqOffset("solexa");
  ASSERT_FALSE(offset.ok());
  EXPECT_TRUE(offset.status().IsInvalidArgument());
  EXPECT_NE(offset.status().message().find("'solexa'"), std::string::npos);
  ASSERT_TRUE(seq::ParseFastqOffset("sanger").ok());
  ASSERT_TRUE(seq::ParseFastqOffset("illumina").ok());
}

// --- Round trips ------------------------------------------------------------

TEST(FastqRoundTrip, WriterRejectsRecordsWithoutQualities) {
  std::vector<seq::Sequence> records;
  records.push_back(*seq::Sequence::FromString(Dna(), "r1", "ACGT"));
  std::ostringstream out;
  auto status = seq::WriteFastq(out, Dna(), records);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("'r1'"), std::string::npos);
}

TEST(FastqRoundTrip, FileRoundTrip) {
  util::TempDir dir("fastq");
  std::vector<seq::Sequence> records;
  auto r = *seq::Sequence::FromString(Dna(), "r1", "ACgtAC");
  r.set_quals({0, 10, 20, 30, 40, 93});
  records.push_back(std::move(r));
  const std::string path = dir.File("reads.fastq");
  {
    std::ostringstream out;
    OASIS_ASSERT_OK(seq::WriteFastq(out, Dna(), records));
    std::ofstream file(path);
    file << out.str();
  }
  auto reread = seq::ReadFastqFile(path, Dna());
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->size(), 1u);
  EXPECT_EQ((*reread)[0].id(), "r1");
  EXPECT_EQ((*reread)[0].symbols(), records[0].symbols());
  EXPECT_EQ((*reread)[0].quals(), records[0].quals());
  EXPECT_EQ((*reread)[0].mask(), records[0].mask());
}

TEST(FastqRoundTrip, MissingFileFails) {
  EXPECT_FALSE(seq::ReadFastqFile("/nonexistent/reads.fastq", Dna()).ok());
}

TEST(FastqRoundTrip, RandomizedTenThousandRecords) {
  // 10k randomized records through write -> parse: ids, symbols, phred
  // values and soft-masks must all survive byte-for-byte. Deterministic
  // given the seed.
  util::Random rng(20260808);
  std::vector<seq::Sequence> records;
  records.reserve(10000);
  for (uint32_t i = 0; i < 10000; ++i) {
    const size_t length = 1 + rng.Uniform(60);
    std::vector<seq::Symbol> symbols(length);
    std::vector<uint8_t> quals(length);
    std::vector<uint8_t> mask(length);
    for (size_t j = 0; j < length; ++j) {
      symbols[j] = static_cast<seq::Symbol>(rng.Uniform(4));
      // 93 is the highest phred Sanger FASTQ can represent ('~').
      quals[j] = static_cast<uint8_t>(rng.Uniform(94));
      mask[j] = rng.Bernoulli(0.25) ? 1 : 0;
    }
    seq::Sequence record("q" + std::to_string(i),
                         i % 7 == 0 ? "len " + std::to_string(length) : "",
                         std::move(symbols));
    record.set_mask(std::move(mask));
    record.set_quals(std::move(quals));
    records.push_back(std::move(record));
  }

  std::ostringstream out;
  OASIS_ASSERT_OK(seq::WriteFastq(out, Dna(), records));
  std::istringstream in(out.str());
  auto reread = seq::ReadFastq(in, Dna());
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ((*reread)[i].id(), records[i].id()) << "record " << i;
    ASSERT_EQ((*reread)[i].symbols(), records[i].symbols()) << "record " << i;
    ASSERT_EQ((*reread)[i].quals(), records[i].quals()) << "record " << i;
    ASSERT_EQ((*reread)[i].mask(), records[i].mask()) << "record " << i;
  }
}

}  // namespace
}  // namespace oasis
