// End-to-end integration: generate -> FASTA round trip -> index -> search
// with all three algorithms, plus corruption / failure-injection paths for
// the on-disk index.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "align/smith_waterman.h"
#include "blast/blast.h"
#include "core/oasis.h"
#include "seq/fasta.h"
#include "suffix/packed_builder.h"
#include "suffix/partitioned_builder.h"
#include "test_util.h"
#include "workload/workload.h"

namespace oasis {
namespace {

TEST(Integration, FullPipelineProteinWorkload) {
  // 1. Generate a database and persist it as FASTA (the CLI's path).
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = 20000;
  db_options.seed = 2024;
  auto generated = workload::GenerateProteinDatabase(db_options);
  ASSERT_TRUE(generated.ok());

  util::TempDir dir("e2e");
  std::string fasta_path = dir.File("db.fasta");
  OASIS_ASSERT_OK(seq::WriteFastaFile(fasta_path, seq::Alphabet::Protein(),
                                      generated->sequences()));

  // 2. Reload from FASTA and rebuild the database: must be identical.
  auto reloaded = seq::ReadFastaFile(fasta_path, seq::Alphabet::Protein());
  ASSERT_TRUE(reloaded.ok());
  auto db = seq::SequenceDatabase::Build(seq::Alphabet::Protein(),
                                         std::move(reloaded).value());
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->symbols(), generated->symbols());

  // 3. Index through both construction algorithms; the packed trees must
  // behave identically (spot-checked through search results below).
  storage::BufferPool pool(64 << 20);
  auto tree =
      suffix::BuildAndOpenPacked(*db, dir.File("idx"), &pool);
  ASSERT_TRUE(tree.ok());

  // 4. Query with OASIS / S-W / BLAST and cross-check.
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 8;
  q_options.seed = 2024;
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  ASSERT_TRUE(queries.ok());
  auto karlin = score::ComputeKarlinParams(matrix);
  ASSERT_TRUE(karlin.ok());

  core::OasisSearch search(tree->get(), &matrix);
  for (const auto& q : *queries) {
    score::ScoreT min_score = score::MinScoreForEValue(
        *karlin, 50.0, q.symbols.size(), db->num_residues());
    core::OasisOptions options;
    options.min_score = min_score;
    auto oasis_results = search.SearchAll(q.symbols, options);
    ASSERT_TRUE(oasis_results.ok());

    auto sw = align::ScanDatabase(q.symbols, *db, matrix, min_score);
    ASSERT_EQ(oasis_results->size(), sw.size());
    // Same (sequence, score) multiset; the top hit must be the planted
    // source or an equally strong match.
    std::map<seq::SequenceId, score::ScoreT> a, b;
    for (const auto& r : *oasis_results) a[r.sequence_id] = r.score;
    for (const auto& h : sw) b[h.sequence_id] = h.score;
    EXPECT_EQ(a, b);
    if (!oasis_results->empty() && !sw.empty()) {
      EXPECT_EQ((*oasis_results)[0].score, sw[0].score);
    }

    // BLAST is a subset, never a superset, of the exact result set.
    if (q.symbols.size() >= 3) {
      blast::BlastOptions blast_options;
      blast_options.evalue_cutoff = 50.0;
      auto prepared =
          blast::BlastQuery::Prepare(q.symbols, matrix, blast_options);
      ASSERT_TRUE(prepared.ok());
      auto hits = blast::Search(*prepared, *db, matrix, *karlin);
      ASSERT_TRUE(hits.ok());
      for (const auto& h : *hits) {
        auto it = a.find(h.sequence_id);
        ASSERT_TRUE(it != a.end())
            << "BLAST hit absent from the exact result set";
        EXPECT_LE(h.score, it->second);
      }
    }
  }
}

TEST(Integration, DnaPipelineWithPartitionedBuilder) {
  workload::DnaDatabaseOptions db_options;
  db_options.target_residues = 20000;
  db_options.num_sequences = 8;
  db_options.seed = 99;
  auto db = workload::GenerateDnaDatabase(db_options);
  ASSERT_TRUE(db.ok());

  // Index via the Hunt-style partitioned builder.
  suffix::PartitionedBuildOptions build_options;
  build_options.prefix_length = 3;
  build_options.max_suffixes_per_pass = 4096;
  suffix::PartitionedBuildStats build_stats;
  auto tree = suffix::BuildPartitioned(*db, build_options, &build_stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(build_stats.num_partitions, 1u);

  util::TempDir dir("e2edna");
  OASIS_ASSERT_OK(suffix::PackSuffixTree(*tree, dir.path()));
  storage::BufferPool pool(32 << 20);
  auto packed = suffix::PackedSuffixTree::Open(dir.path(), &pool);
  ASSERT_TRUE(packed.ok());

  const auto& matrix = score::SubstitutionMatrix::Blastn();
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 5;
  q_options.min_length = 16;
  q_options.max_length = 24;
  q_options.seed = 99;
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  ASSERT_TRUE(queries.ok());

  core::OasisSearch search(packed->get(), &matrix);
  for (const auto& q : *queries) {
    score::ScoreT min_score = static_cast<score::ScoreT>(q.symbols.size() * 3);
    core::OasisOptions options;
    options.min_score = min_score;
    auto results = search.SearchAll(q.symbols, options);
    ASSERT_TRUE(results.ok());
    auto sw = align::ScanDatabase(q.symbols, *db, matrix, min_score);
    ASSERT_EQ(results->size(), sw.size());
  }
}

// --- failure injection -------------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() : dir_("corrupt") {
    auto db = testing::MakeDatabase(seq::Alphabet::Dna(),
                                    {"ACGTACGTAC", "GATTACA"});
    auto tree = suffix::SuffixTree::BuildUkkonen(db);
    EXPECT_TRUE(tree.ok());
    OASIS_EXPECT_OK(suffix::PackSuffixTree(*tree, dir_.path()));
  }

  util::TempDir dir_;
};

TEST_F(CorruptionTest, MissingMetadataFails) {
  std::remove(dir_.File(suffix::PackedTreeFiles::kMeta).c_str());
  storage::BufferPool pool(1 << 20);
  auto opened = suffix::PackedSuffixTree::Open(dir_.path(), &pool);
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError());
}

TEST_F(CorruptionTest, GarbageMetadataFails) {
  {
    std::ofstream out(dir_.File(suffix::PackedTreeFiles::kMeta));
    out << "mystery_key 42\n";
  }
  storage::BufferPool pool(1 << 20);
  EXPECT_FALSE(suffix::PackedSuffixTree::Open(dir_.path(), &pool).ok());
}

TEST_F(CorruptionTest, IncompleteMetadataFails) {
  {
    std::ofstream out(dir_.File(suffix::PackedTreeFiles::kMeta));
    out << "num_internal 3\n";  // everything else missing
  }
  storage::BufferPool pool(1 << 20);
  auto opened = suffix::PackedSuffixTree::Open(dir_.path(), &pool);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST_F(CorruptionTest, TruncatedBlockFileFails) {
  // Truncate the internal-node file to a non-multiple of the block size.
  std::string path = dir_.File(suffix::PackedTreeFiles::kInternal);
  std::error_code ec;
  std::filesystem::resize_file(path, 100, ec);
  ASSERT_FALSE(ec);
  storage::BufferPool pool(1 << 20);
  auto opened = suffix::PackedSuffixTree::Open(dir_.path(), &pool);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption());
}

TEST_F(CorruptionTest, MissingBlockFileFails) {
  std::remove(dir_.File(suffix::PackedTreeFiles::kLeaves).c_str());
  storage::BufferPool pool(1 << 20);
  EXPECT_FALSE(suffix::PackedSuffixTree::Open(dir_.path(), &pool).ok());
}

}  // namespace
}  // namespace oasis
