// Online top-k search: the paper's "abort after the top few matches" use
// case (§1, §4.6). OASIS streams results in decreasing score order, so the
// first k results are guaranteed to be the true top-k — the search is
// simply aborted once they arrive, long before a full scan would finish.
//
// Usage: online_topk [k] [residues]

#include <cstdio>
#include <cstdlib>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "core/report.h"
#include "suffix/packed_builder.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const uint64_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = residues;
  auto db = workload::GenerateProteinDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  util::TempDir dir("topk");
  storage::BufferPool pool(64 << 20);
  auto tree = suffix::BuildAndOpenPacked(*db, dir.path(), &pool);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  // A 13-residue peptide (the paper's §4.6 query length) planted in the
  // database, with a relaxed threshold so thousands of alignments qualify.
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 1;
  q_options.min_length = 13;
  q_options.max_length = 13;
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  const auto& query = (*queries)[0].symbols;
  auto karlin = score::ComputeKarlinParams(matrix);
  score::ScoreT min_score = score::MinScoreForEValue(
      *karlin, 30000.0, query.size(), db->num_residues());

  std::printf("query %s  (minScore %d over %llu residues)\n\n",
              db->alphabet().Decode(query).c_str(), min_score,
              static_cast<unsigned long long>(db->num_residues()));

  // Online: abort after k results.
  core::OasisSearch search(tree->get(), &matrix);
  core::OasisOptions options;
  options.min_score = min_score;
  options.max_results = k;
  util::Timer timer;
  uint64_t rank = 0;
  auto stats = search.Search(query, options, [&](const core::OasisResult& r) {
    ++rank;
    std::printf("#%-3llu t=%8.5fs  %s\n", static_cast<unsigned long long>(rank),
                timer.ElapsedSeconds(),
                core::FormatResult(r, *db).c_str());
    return true;
  });
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  double topk_s = timer.ElapsedSeconds();

  // Baseline: a full S-W scan cannot return anything until it finishes.
  timer.Restart();
  auto sw_hits = align::ScanDatabase(query, *db, matrix, min_score);
  double sw_s = timer.ElapsedSeconds();

  std::printf("\ntop-%llu via OASIS: %.4fs   full S-W scan (%zu hits): %.4fs  "
              "(%.0fx to first results)\n",
              static_cast<unsigned long long>(k), topk_s, sw_hits.size(), sw_s,
              sw_s / topk_s);
  return 0;
}
