// Online top-k search: the paper's "abort after the top few matches" use
// case (§1, §4.6), through the pull-based ResultCursor. OASIS streams
// results in decreasing score order, so the first k pulled are guaranteed
// to be the true top-k — the consumer simply stops pulling (Close()) once
// satisfied, long before a full scan would finish.
//
// Usage: online_topk [k] [residues]

#include <cstdio>
#include <cstdlib>

#include "align/smith_waterman.h"
#include "api/engine.h"
#include "core/report.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const uint64_t residues =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = residues;
  auto db = workload::GenerateProteinDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // A 13-residue peptide (the paper's §4.6 query length) planted in the
  // database, with a relaxed threshold so thousands of alignments qualify.
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 1;
  q_options.min_length = 13;
  q_options.max_length = 13;
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  std::vector<seq::Symbol> query = (*queries)[0].symbols;

  util::TempDir dir("topk");
  auto engine = Engine::BuildFromDatabase(std::move(db).value(), dir.path());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  auto min_score =
      (*engine)->ResolveMinScore(SearchRequest(query).EValue(30000.0));
  if (!min_score.ok()) {
    std::fprintf(stderr, "%s\n", min_score.status().ToString().c_str());
    return 1;
  }
  std::printf("query %s  (minScore %d over %llu residues)\n\n",
              (*engine)->alphabet().Decode(query).c_str(), *min_score,
              static_cast<unsigned long long>((*engine)->num_residues()));

  // Online: pull exactly k results, then close the cursor. The search does
  // only the work needed to prove each result as it is pulled.
  auto cursor = (*engine)->Search(SearchRequest(query).EValue(30000.0));
  if (!cursor.ok()) {
    std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
    return 1;
  }
  util::Timer timer;
  uint64_t rank = 0;
  while (rank < k) {
    auto next = cursor->Next();
    if (!next.ok()) {
      std::fprintf(stderr, "%s\n", next.status().ToString().c_str());
      return 1;
    }
    if (!next->has_value()) break;
    ++rank;
    std::printf("#%-3llu t=%8.5fs  %s\n", static_cast<unsigned long long>(rank),
                timer.ElapsedSeconds(),
                core::FormatResult(**next, *(*engine)->database()).c_str());
  }
  cursor->Close();
  double topk_s = timer.ElapsedSeconds();

  // Baseline: a full S-W scan cannot return anything until it finishes.
  timer.Restart();
  auto sw_hits = align::ScanDatabase(query, *(*engine)->database(), matrix,
                                     *min_score);
  double sw_s = timer.ElapsedSeconds();

  std::printf("\ntop-%llu via OASIS: %.4fs   full S-W scan (%zu hits): %.4fs  "
              "(%.0fx to first results)\n",
              static_cast<unsigned long long>(k), topk_s, sw_hits.size(), sw_s,
              sw_s / topk_s);
  return 0;
}
