// Quickstart: index a handful of sequences and pull an online OASIS search
// through the oasis::Engine facade.
//
// The minimal end-to-end flow of the public API:
//   1. build a SequenceDatabase from residue strings;
//   2. Engine::CreateFromDatabase — suffix tree, packed index, buffer
//      pool and sequence catalog in one call;
//   3. describe the search with a fluent SearchRequest;
//   4. pull results from the ResultCursor — each arrives as soon as it is
//      *proven* next-best (the paper's online guarantee).

#include <cstdio>

#include "api/engine.h"
#include "core/report.h"
#include "util/env.h"

using namespace oasis;

int main() {
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();

  // 1. A small database (the paper's running example plus friends).
  std::vector<seq::Sequence> records;
  for (auto [id, residues] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"example", "AGTACGCCTAG"},
           {"tandem", "TACGTACGTACG"},
           {"noise", "GGGGCCCCGGGG"}}) {
    auto sequence = seq::Sequence::FromString(alphabet, id, residues);
    if (!sequence.ok()) {
      std::fprintf(stderr, "bad sequence: %s\n",
                   sequence.status().ToString().c_str());
      return 1;
    }
    records.push_back(std::move(sequence).value());
  }
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(records));
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. One call owns the whole index lifecycle.
  util::TempDir dir("quickstart");
  EngineOptions options;
  options.matrix = &score::SubstitutionMatrix::UnitDna();
  auto engine = Engine::CreateFromDatabase(std::move(db).value(), dir.path(),
                                           options);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3 + 4. Search for TACG (the paper's worked example, unit edit scores)
  // and stream the results out.
  auto request = SearchRequest::FromText(alphabet, "TACG");
  if (!request.ok()) {
    std::fprintf(stderr, "%s\n", request.status().ToString().c_str());
    return 1;
  }
  request->MinScore(2).WithAlignments();

  std::printf("query TACG, minScore=2, unit edit scores\n\n");
  auto cursor = (*engine)->Search(*request);
  if (!cursor.ok()) {
    std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
    return 1;
  }
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) {
      std::fprintf(stderr, "%s\n", next.status().ToString().c_str());
      return 1;
    }
    if (!next->has_value()) break;
    std::printf("%s", core::FormatResultVerbose(
                          **next, *(*engine)->database(), request->query())
                          .c_str());
  }
  std::printf("\nexpanded %llu DP columns over %llu search nodes\n",
              static_cast<unsigned long long>(
                  cursor->stats().columns_expanded),
              static_cast<unsigned long long>(cursor->stats().nodes_expanded));
  return 0;
}
