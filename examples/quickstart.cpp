// Quickstart: index a handful of sequences and run an OASIS search.
//
// Demonstrates the minimal end-to-end flow of the public API:
//   1. build a SequenceDatabase from residue strings;
//   2. build + pack the suffix tree and open it through a buffer pool;
//   3. run an online OASIS search and print results as they stream out.

#include <cstdio>

#include "core/oasis.h"
#include "core/report.h"
#include "seq/database.h"
#include "suffix/packed_builder.h"
#include "util/env.h"

using namespace oasis;

int main() {
  const seq::Alphabet& alphabet = seq::Alphabet::Dna();

  // 1. A small database (the paper's running example plus friends).
  std::vector<seq::Sequence> records;
  for (auto [id, residues] :
       std::initializer_list<std::pair<const char*, const char*>>{
           {"example", "AGTACGCCTAG"},
           {"tandem", "TACGTACGTACG"},
           {"noise", "GGGGCCCCGGGG"}}) {
    auto sequence = seq::Sequence::FromString(alphabet, id, residues);
    if (!sequence.ok()) {
      std::fprintf(stderr, "bad sequence: %s\n",
                   sequence.status().ToString().c_str());
      return 1;
    }
    records.push_back(std::move(sequence).value());
  }
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(records));
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Index: suffix tree -> packed on-disk form -> buffer pool.
  util::TempDir dir("quickstart");
  storage::BufferPool pool(16 << 20);
  auto tree = suffix::BuildAndOpenPacked(*db, dir.path(), &pool);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  // 3. Search for TACG (the paper's worked example, unit edit scores).
  auto query = alphabet.Encode("TACG");
  core::OasisSearch search(tree->get(), &score::SubstitutionMatrix::UnitDna());
  core::OasisOptions options;
  options.min_score = 2;
  options.reconstruct_alignments = true;

  std::printf("query TACG, minScore=%d, unit edit scores\n\n", options.min_score);
  auto stats =
      search.Search(*query, options, [&](const core::OasisResult& result) {
        std::printf("%s", core::FormatResultVerbose(result, *db, *query).c_str());
        return true;  // keep streaming
      });
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\nexpanded %llu DP columns over %llu search nodes\n",
              static_cast<unsigned long long>(stats->columns_expanded),
              static_cast<unsigned long long>(stats->nodes_expanded));
  return 0;
}
