// Nucleotide search over a genomic-style database with repeat families
// (the paper's secondary data set was the Drosophila genome, §4.1).
// Searches for a diverged copy of a repeat element and shows how the
// suffix tree shares work across the repeat family — all through the
// Engine facade (Blastn scoring is the engine's DNA default).
//
// Usage: dna_repeats [residues]

#include <cstdio>
#include <cstdlib>

#include "align/smith_waterman.h"
#include "api/engine.h"
#include "core/report.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t residues =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300000;

  workload::DnaDatabaseOptions db_options;
  db_options.target_residues = residues;
  db_options.num_sequences = 16;
  db_options.repeat_fraction = 0.3;
  auto db = workload::GenerateDnaDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // Query: a 24-nt window cut from scaffold 0 and lightly mutated, i.e. a
  // primer-like probe. blastn-style +5/-4 scoring (the DNA default).
  const auto& matrix = score::SubstitutionMatrix::Blastn();
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 3;
  q_options.min_length = 20;
  q_options.max_length = 28;
  q_options.substitution_rate = 0.05;
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  util::TempDir dir("dna");
  auto engine = Engine::BuildFromDatabase(std::move(db).value(), dir.path());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const seq::SequenceDatabase& resident = *(*engine)->database();

  std::printf("genomic database: %llu nt in %llu scaffolds; %s scores\n\n",
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              (*engine)->matrix().name().c_str());

  for (const auto& q : *queries) {
    score::ScoreT min_score =
        static_cast<score::ScoreT>(q.symbols.size()) * 4;  // ~80% identity
    std::printf("probe %s (minScore %d)\n",
                (*engine)->alphabet().Decode(q.symbols).c_str(), min_score);

    SearchRequest request(q.symbols);
    request.MinScore(min_score).WithAlignments();
    util::Timer timer;
    auto outcome = (*engine)->SearchAll(request);
    double oasis_s = timer.ElapsedSeconds();
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }

    timer.Restart();
    auto sw_hits = align::ScanDatabase(q.symbols, resident, matrix, min_score);
    double sw_s = timer.ElapsedSeconds();

    std::printf("  %zu scaffold hits in %.4fs (S-W scan: %.4fs, %.0fx); "
                "%.2f%% of S-W columns expanded\n",
                outcome->results.size(), oasis_s, sw_s, sw_s / oasis_s,
                100.0 * static_cast<double>(outcome->stats.columns_expanded) /
                    static_cast<double>((*engine)->num_residues()));
    for (size_t i = 0; i < outcome->results.size() && i < 3; ++i) {
      std::printf("  %s\n",
                  core::FormatResult(outcome->results[i], resident).c_str());
    }
    if (outcome->results.size() != sw_hits.size()) {
      std::printf("  !! exactness violated\n");
      return 1;
    }
    std::printf("\n");
  }
  return 0;
}
