// Nucleotide search over a genomic-style database with repeat families
// (the paper's secondary data set was the Drosophila genome, §4.1).
// Searches for a diverged copy of a repeat element and shows how the
// suffix tree shares work across the repeat family.
//
// Usage: dna_repeats [residues]

#include <cstdio>
#include <cstdlib>

#include "align/smith_waterman.h"
#include "core/oasis.h"
#include "core/report.h"
#include "suffix/packed_builder.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t residues =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300000;

  workload::DnaDatabaseOptions db_options;
  db_options.target_residues = residues;
  db_options.num_sequences = 16;
  db_options.repeat_fraction = 0.3;
  auto db = workload::GenerateDnaDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  util::TempDir dir("dna");
  storage::BufferPool pool(64 << 20);
  auto tree = suffix::BuildAndOpenPacked(*db, dir.path(), &pool);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  // Query: a 24-nt window cut from scaffold 0 and lightly mutated, i.e. a
  // primer-like probe. blastn-style +5/-4 scoring.
  const auto& matrix = score::SubstitutionMatrix::Blastn();
  workload::MotifQueryOptions q_options;
  q_options.num_queries = 3;
  q_options.min_length = 20;
  q_options.max_length = 28;
  q_options.substitution_rate = 0.05;
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  core::OasisSearch search(tree->get(), &matrix);
  std::printf("genomic database: %llu nt in %zu scaffolds; blastn scores\n\n",
              static_cast<unsigned long long>(db->num_residues()),
              db->num_sequences());

  for (const auto& q : *queries) {
    score::ScoreT min_score =
        static_cast<score::ScoreT>(q.symbols.size()) * 4;  // ~80% identity
    std::printf("probe %s (minScore %d)\n",
                db->alphabet().Decode(q.symbols).c_str(), min_score);

    core::OasisOptions options;
    options.min_score = min_score;
    options.reconstruct_alignments = true;
    core::OasisStats stats;
    util::Timer timer;
    auto results = search.SearchAll(q.symbols, options, &stats);
    double oasis_s = timer.ElapsedSeconds();
    if (!results.ok()) {
      std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
      return 1;
    }

    timer.Restart();
    auto sw_hits = align::ScanDatabase(q.symbols, *db, matrix, min_score);
    double sw_s = timer.ElapsedSeconds();

    std::printf("  %zu scaffold hits in %.4fs (S-W scan: %.4fs, %.0fx); "
                "%.2f%% of S-W columns expanded\n",
                results->size(), oasis_s, sw_s, sw_s / oasis_s,
                100.0 * static_cast<double>(stats.columns_expanded) /
                    static_cast<double>(db->num_residues()));
    for (size_t i = 0; i < results->size() && i < 3; ++i) {
      std::printf("  %s\n", core::FormatResult((*results)[i], *db).c_str());
    }
    if (results->size() != sw_hits.size()) {
      std::printf("  !! exactness violated\n");
      return 1;
    }
    std::printf("\n");
  }
  return 0;
}
