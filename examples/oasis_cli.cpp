// oasis_cli: a small command-line front end over the oasis::Engine facade.
//
//   oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]
//   oasis_cli search <index_dir> <QUERYRESIDUES>
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//              [--alignments] [--by-evalue]
//   oasis_cli batch  <index_dir> <queries.fasta> [--threads N]
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//
// `index` builds the packed suffix tree AND the sequence catalog from a
// FASTA file; `search` and `batch` need only the index directory — result
// labels come from the catalog, so the database FASTA is never reloaded.
// `batch` reads one query per FASTA record and fans them across a thread
// pool via Engine::SearchBatch.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "api/engine.h"
#include "core/report.h"
#include "seq/fasta.h"
#include "util/timer.h"

using namespace oasis;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]\n"
      "  oasis_cli search <index_dir> <QUERY>\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--alignments] [--by-evalue]\n"
      "  oasis_cli batch  <index_dir> <queries.fasta> [--threads N]\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n");
  return 2;
}

struct Args {
  std::string command, fasta, index_dir, query;
  bool dna = false;
  double evalue = 10.0;
  score::ScoreT min_score = 0;  // 0 = derive from evalue
  uint64_t top = 0;
  uint64_t pool_mb = 64;
  uint32_t threads = 4;
  bool alignments = false;
  bool by_evalue = false;
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 4) return false;
  args->command = argv[1];
  if (args->command == "index") {
    args->fasta = argv[2];
    args->index_dir = argv[3];
  } else if (args->command == "search") {
    args->index_dir = argv[2];
    args->query = argv[3];
  } else if (args->command == "batch") {
    args->index_dir = argv[2];
    args->fasta = argv[3];
  } else {
    return false;
  }
  for (int i = 4; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--dna") {
      args->dna = true;
    } else if (flag == "--protein") {
      args->dna = false;
    } else if (flag == "--evalue") {
      const char* v = next();
      if (v == nullptr) return false;
      args->evalue = std::strtod(v, nullptr);
    } else if (flag == "--minscore") {
      const char* v = next();
      if (v == nullptr) return false;
      args->min_score = static_cast<score::ScoreT>(std::strtol(v, nullptr, 10));
    } else if (flag == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      args->top = std::strtoull(v, nullptr, 10);
    } else if (flag == "--pool-mb") {
      const char* v = next();
      if (v == nullptr) return false;
      args->pool_mb = std::strtoull(v, nullptr, 10);
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threads = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--alignments") {
      args->alignments = true;
    } else if (flag == "--by-evalue") {
      args->by_evalue = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Translates the shared selectivity/reporting flags onto a request.
void ApplyFlags(SearchRequest* request, const Args& args) {
  if (args.min_score > 0) {
    request->MinScore(args.min_score);
  } else {
    request->EValue(args.evalue);
  }
  request->TopK(args.top)
      .WithAlignments(args.alignments)
      .OrderByEValue(args.by_evalue);
}

int RunIndex(const Args& args) {
  EngineOptions options;
  options.alphabet =
      args.dna ? seq::AlphabetKind::kDna : seq::AlphabetKind::kProtein;
  util::Timer timer;
  auto engine = Engine::Build(args.fasta, args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("indexed %llu residues (%llu sequences) into %s in %.2fs\n",
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              args.index_dir.c_str(), timer.ElapsedSeconds());
  return 0;
}

int RunSearch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto request = SearchRequest::FromText((*engine)->alphabet(), args.query);
  if (!request.ok()) return Fail(request.status());
  ApplyFlags(&*request, args);

  auto min_score = (*engine)->ResolveMinScore(*request);
  if (!min_score.ok()) return Fail(min_score.status());
  std::printf("searching %zu-residue query, matrix %s, minScore %d\n\n",
              request->query().size(), (*engine)->matrix().name().c_str(),
              *min_score);

  // Verbose alignment printing needs the residues; materialize them from
  // the index (still no FASTA involved).
  const seq::SequenceDatabase* db = nullptr;
  if (args.alignments) {
    auto resident = (*engine)->ResidentDatabase();
    if (!resident.ok()) return Fail(resident.status());
    db = *resident;
  }

  auto cursor = (*engine)->Search(*request);
  if (!cursor.ok()) return Fail(cursor.status());

  util::Timer timer;
  uint64_t count = 0;
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) return Fail(next.status());
    if (!next->has_value()) break;
    const core::OasisResult& result = **next;
    ++count;
    if (args.alignments) {
      std::printf("%s",
                  core::FormatResultVerbose(result, *db, request->query())
                      .c_str());
    } else {
      std::printf("%s\n",
                  core::FormatResult(result,
                                     (*engine)->catalog().name(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%llu results in %.4fs (%llu columns expanded)\n",
              static_cast<unsigned long long>(count), timer.ElapsedSeconds(),
              static_cast<unsigned long long>(
                  cursor->stats().columns_expanded));
  return 0;
}

int RunBatch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto records = seq::ReadFastaFile(args.fasta, (*engine)->alphabet());
  if (!records.ok()) return Fail(records.status());
  std::vector<std::string> labels;
  std::vector<SearchRequest> requests;
  for (seq::Sequence& record : *records) {
    labels.push_back(record.id());
    SearchRequest request(std::vector<seq::Symbol>(record.symbols()));
    ApplyFlags(&request, args);
    requests.push_back(std::move(request));
  }

  BatchOptions batch;
  batch.threads = args.threads;
  // --pool-mb sizes the pools that actually serve the batch: each worker's
  // private tree replica (the engine's own pool is idle during SearchBatch).
  batch.pool_bytes_per_thread = args.pool_mb << 20;
  std::printf("batch: %zu queries, up to %u worker threads\n\n",
              requests.size(), std::max(1u, batch.threads));
  util::Timer timer;
  auto results = (*engine)->SearchBatch(requests, batch);
  if (!results.ok()) return Fail(results.status());
  double elapsed = timer.ElapsedSeconds();

  for (size_t i = 0; i < results->size(); ++i) {
    const BatchResult& item = (*results)[i];
    std::printf("query %s: %zu results\n", labels[i].c_str(),
                item.results.size());
    for (const core::OasisResult& result : item.results) {
      std::printf("  %s\n",
                  core::FormatResult(result,
                                     (*engine)->catalog().name(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%zu queries in %.4fs\n", results->size(), elapsed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  if (args.command == "index") return RunIndex(args);
  if (args.command == "batch") return RunBatch(args);
  return RunSearch(args);
}
