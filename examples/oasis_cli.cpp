// oasis_cli: a small command-line front end over the oasis::Engine facade.
//
//   oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]
//   oasis_cli search <index_dir> <QUERYRESIDUES>
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//              [--io-mode auto|pooled|mmap] [--readahead K|auto]
//              [--no-memo] [--alignments] [--by-evalue] [--stats]
//   oasis_cli batch  <index_dir> <queries.fasta> [--threads N]
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//              [--io-mode auto|pooled|mmap] [--readahead K|auto]
//              [--no-memo] [--stats]
//
// `index` builds the packed suffix tree AND the sequence catalog from a
// FASTA file; `search` and `batch` need only the index directory — result
// labels come from the catalog, so the database FASTA is never reloaded.
// `batch` reads one query per FASTA record and fans them across a thread
// pool via Engine::SearchBatch; all workers share the engine's one sharded
// buffer pool, sized by --pool-mb. `--io-mode` picks the storage path:
// `mmap` maps the index read-only (zero-copy, no pool), `pooled` forces
// the buffer pool, and `auto` (default) maps the index when it fits the
// engine's RAM budget. `--readahead K` turns on speculative sibling-run
// readahead for pooled engines with a fixed K-block window (pays off on
// cold, disk-resident indexes); `--readahead auto` lets the per-segment
// adaptive controller size the window from observed prefetch accuracy
// instead (storage::AdaptiveReadahead — grows on hot sequential
// segments, collapses on scattered ones). `--no-memo` disables the
// per-cursor fetch memo so every block access goes through the pool (the
// paper's raw accounting). `--stats` prints the per-segment buffer-pool
// requests / hits / hit ratios after the search — the same numbers
// Figure 8 of the paper plots — plus the readahead issued/used/wasted
// counters and, in auto mode, each segment's live window and its
// trajectory (EWMA accuracy, grow/shrink/probe counts). Pooled mode
// only; an mmap engine keeps no such statistics and reports them as n/a.
//
// Every numeric flag is parsed strictly (util/flag_parse.h): malformed,
// negative-where-unsigned, or out-of-range values are rejected with a
// message instead of silently wrapping ("--threads -1" used to mean
// 4294967295 worker threads).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "api/engine.h"
#include "core/report.h"
#include "seq/fasta.h"
#include "util/flag_parse.h"
#include "util/timer.h"

using namespace oasis;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]\n"
      "  oasis_cli search <index_dir> <QUERY>\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--io-mode auto|pooled|mmap] [--readahead K|auto]\n"
      "             [--no-memo] [--alignments] [--by-evalue] [--stats]\n"
      "  oasis_cli batch  <index_dir> <queries.fasta> [--threads N]\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--io-mode auto|pooled|mmap] [--readahead K|auto]\n"
      "             [--no-memo] [--stats]\n");
  return 2;
}

// Flag ranges. Wider than any sane use, narrow enough that a typo cannot
// ask for terabytes of pool or billions of threads.
constexpr uint64_t kMaxPoolMb = 1ull << 20;   // 1 TiB of pool
constexpr uint32_t kMaxThreads = 4096;
constexpr uint64_t kMaxTop = 1ull << 40;
constexpr double kMaxEValue = 1e12;
// The default initial window of `--readahead auto` (the controller moves
// it from there; 8 blocks matches the PR-4 fixed-K sweet spot).
constexpr uint32_t kAutoReadaheadInitial = 8;

struct Args {
  std::string command, fasta, index_dir, query;
  bool dna = false;
  double evalue = 10.0;
  score::ScoreT min_score = 0;  // 0 = derive from evalue
  uint64_t top = 0;
  uint64_t pool_mb = 64;
  IoMode io_mode = IoMode::kAuto;
  uint32_t readahead = 0;
  bool readahead_auto = false;  // --readahead auto: adaptive window
  bool no_memo = false;
  uint32_t threads = 4;
  bool alignments = false;
  bool by_evalue = false;
  bool stats = false;
};

/// Reports a bad flag value and fails the parse.
bool BadFlag(const char* flag, const util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", flag, status.ToString().c_str());
  return false;
}

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 4) return false;
  args->command = argv[1];
  if (args->command == "index") {
    args->fasta = argv[2];
    args->index_dir = argv[3];
  } else if (args->command == "search") {
    args->index_dir = argv[2];
    args->query = argv[3];
  } else if (args->command == "batch") {
    args->index_dir = argv[2];
    args->fasta = argv[3];
  } else {
    return false;
  }
  for (int i = 4; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--dna") {
      args->dna = true;
    } else if (flag == "--protein") {
      args->dna = false;
    } else if (flag == "--evalue") {
      const char* v = next();
      if (v == nullptr) return false;
      // Zero would reject everything; negative is meaningless.
      auto parsed = util::ParseDouble(v, 1e-300, kMaxEValue);
      if (!parsed.ok()) return BadFlag("--evalue", parsed.status());
      args->evalue = *parsed;
    } else if (flag == "--minscore") {
      const char* v = next();
      if (v == nullptr) return false;
      // 0 keeps the "derive from --evalue" default; negative thresholds
      // would accept every alignment and are always a typo.
      auto parsed = util::ParseInt64(
          v, 0, std::numeric_limits<score::ScoreT>::max());
      if (!parsed.ok()) return BadFlag("--minscore", parsed.status());
      args->min_score = static_cast<score::ScoreT>(*parsed);
    } else if (flag == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint64(v, 0, kMaxTop);  // 0 = unlimited
      if (!parsed.ok()) return BadFlag("--top", parsed.status());
      args->top = *parsed;
    } else if (flag == "--pool-mb") {
      const char* v = next();
      if (v == nullptr) return false;
      // "abc" used to parse as 0 MiB and then fail engine validation with
      // a message about pool_bytes; reject it here, by name.
      auto parsed = util::ParseUint64(v, 1, kMaxPoolMb);
      if (!parsed.ok()) return BadFlag("--pool-mb", parsed.status());
      args->pool_mb = *parsed;
    } else if (flag == "--io-mode") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "auto") == 0) {
        args->io_mode = IoMode::kAuto;
      } else if (std::strcmp(v, "pooled") == 0) {
        args->io_mode = IoMode::kPooled;
      } else if (std::strcmp(v, "mmap") == 0) {
        args->io_mode = IoMode::kMmap;
      } else {
        std::fprintf(stderr, "unknown --io-mode '%s'\n", v);
        return false;
      }
    } else if (flag == "--readahead") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "auto") == 0) {
        args->readahead_auto = true;
        args->readahead = kAutoReadaheadInitial;
      } else {
        auto parsed = util::ParseUint32(v, 0, api::kMaxReadaheadBlocks);
        if (!parsed.ok()) return BadFlag("--readahead", parsed.status());
        args->readahead_auto = false;
        args->readahead = *parsed;
      }
    } else if (flag == "--no-memo") {
      args->no_memo = true;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      // "-1" used to wrap to 4294967295 via strtoul.
      auto parsed = util::ParseUint32(v, 1, kMaxThreads);
      if (!parsed.ok()) return BadFlag("--threads", parsed.status());
      args->threads = *parsed;
    } else if (flag == "--alignments") {
      args->alignments = true;
    } else if (flag == "--by-evalue") {
      args->by_evalue = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

const char* IoModeName(IoMode mode) {
  return mode == IoMode::kMmap ? "mmap" : "pooled";
}

/// Per-segment buffer-pool requests / hits / hit ratio — the Figure 8
/// numbers, straight from the CLI. An mmap engine never fetches through a
/// pool, so there is nothing to print.
void PrintPoolStats(const Engine& engine) {
  if (!engine.uses_pool()) {
    std::printf("\nio mode mmap: zero-copy block access, no buffer-pool "
                "statistics (use --io-mode pooled for Figure 8 numbers)\n");
    // No pool means nothing to prefetch into either: the counters do not
    // exist in this mode, which is different from "0 prefetches happened".
    std::printf("readahead: n/a in mmap mode (speculation targets the "
                "buffer pool; use --io-mode pooled --readahead K)\n");
    return;
  }
  const storage::BufferPool& pool = engine.pool();
  std::printf("\nbuffer pool: %u frames x %u B in %u shard%s\n",
              pool.num_frames(), pool.block_size(), pool.num_shards(),
              pool.num_shards() == 1 ? "" : "s");
  std::printf("%-10s %12s %12s %10s\n", "segment", "requests", "hits",
              "hit ratio");
  for (storage::SegmentId seg = 0;
       seg < static_cast<storage::SegmentId>(pool.num_segments()); ++seg) {
    const storage::SegmentStats stats = pool.stats(seg);
    std::printf("%-10s %12llu %12llu %10.3f\n",
                pool.segment_name(seg).c_str(),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.hits),
                stats.hit_ratio());
  }
  const storage::SegmentStats total = pool.TotalStats();
  std::printf("%-10s %12llu %12llu %10.3f\n", "total",
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.hits),
              total.hit_ratio());
  if (engine.uses_readahead()) {
    const storage::ReadaheadStats ra = engine.readahead_stats();
    const std::string mode =
        engine.readahead_adaptive()
            ? "adaptive, initial " + std::to_string(engine.readahead_blocks()) +
                  " blocks"
            : std::to_string(engine.readahead_blocks()) + " blocks/miss";
    std::printf("readahead (%s): %llu issued, %llu used, %llu wasted "
                "(waste ratio %.3f)\n",
                mode.c_str(), static_cast<unsigned long long>(ra.issued),
                static_cast<unsigned long long>(ra.used),
                static_cast<unsigned long long>(ra.wasted),
                ra.waste_ratio());
    if (engine.readahead_adaptive()) {
      // The live window per segment plus how it got there: the EWMA of
      // the used-ratio the controller steers by, and its resize/probe
      // decisions so far.
      const storage::AdaptiveReadahead& ctl = *engine.readahead().controller();
      std::printf("%-10s %8s %8s %7s %8s %7s %8s\n", "segment", "window",
                  "ewma", "samples", "grows", "shrinks", "probes");
      for (storage::SegmentId seg = 0;
           seg < static_cast<storage::SegmentId>(pool.num_segments()); ++seg) {
        const storage::AdaptiveReadahead::SegmentSnapshot s =
            ctl.snapshot(seg);
        std::printf("%-10s %8u %8.3f %7llu %8llu %7llu %8llu\n",
                    pool.segment_name(seg).c_str(), s.window,
                    s.ewma < 0 ? 0.0 : s.ewma,
                    static_cast<unsigned long long>(s.samples),
                    static_cast<unsigned long long>(s.grows),
                    static_cast<unsigned long long>(s.shrinks),
                    static_cast<unsigned long long>(s.probes));
      }
    }
  } else {
    std::printf("readahead: disabled (--readahead K for a fixed K-block "
                "window, --readahead auto for the adaptive one)\n");
  }
}

/// Translates the shared selectivity/reporting flags onto a request.
void ApplyFlags(SearchRequest* request, const Args& args) {
  if (args.min_score > 0) {
    request->MinScore(args.min_score);
  } else {
    request->EValue(args.evalue);
  }
  request->TopK(args.top)
      .WithAlignments(args.alignments)
      .OrderByEValue(args.by_evalue);
}

int RunIndex(const Args& args) {
  EngineOptions options;
  options.alphabet =
      args.dna ? seq::AlphabetKind::kDna : seq::AlphabetKind::kProtein;
  util::Timer timer;
  auto engine = Engine::Build(args.fasta, args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());
  std::printf("indexed %llu residues (%llu sequences) into %s in %.2fs\n",
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              args.index_dir.c_str(), timer.ElapsedSeconds());
  return 0;
}

int RunSearch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  options.io_mode = args.io_mode;
  options.readahead_blocks = args.readahead;
  // An explicit `--readahead K` is a request for exactly K; only
  // `--readahead auto` engages the controller.
  options.readahead_adaptive = args.readahead_auto;
  options.fetch_memo = !args.no_memo;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto request = SearchRequest::FromText((*engine)->alphabet(), args.query);
  if (!request.ok()) return Fail(request.status());
  ApplyFlags(&*request, args);

  auto min_score = (*engine)->ResolveMinScore(*request);
  if (!min_score.ok()) return Fail(min_score.status());
  std::printf("searching %zu-residue query, matrix %s, minScore %d, "
              "io mode %s\n\n",
              request->query().size(), (*engine)->matrix().name().c_str(),
              *min_score, IoModeName((*engine)->io_mode()));

  // Verbose alignment printing needs the residues; materialize them from
  // the index (still no FASTA involved).
  const seq::SequenceDatabase* db = nullptr;
  if (args.alignments) {
    auto resident = (*engine)->ResidentDatabase();
    if (!resident.ok()) return Fail(resident.status());
    db = *resident;
  }

  // Database materialization above reads through the pool too; reset so
  // --stats reports the search traffic alone.
  if (args.stats && (*engine)->uses_pool()) (*engine)->pool().ResetStats();

  auto cursor = (*engine)->Search(*request);
  if (!cursor.ok()) return Fail(cursor.status());

  util::Timer timer;
  uint64_t count = 0;
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) return Fail(next.status());
    if (!next->has_value()) break;
    const core::OasisResult& result = **next;
    ++count;
    if (args.alignments) {
      std::printf("%s",
                  core::FormatResultVerbose(result, *db, request->query())
                      .c_str());
    } else {
      std::printf("%s\n",
                  core::FormatResult(result,
                                     (*engine)->catalog().name(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%llu results in %.4fs (%llu columns expanded)\n",
              static_cast<unsigned long long>(count), timer.ElapsedSeconds(),
              static_cast<unsigned long long>(
                  cursor->stats().columns_expanded));
  if (args.stats) PrintPoolStats(**engine);
  return 0;
}

int RunBatch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  options.io_mode = args.io_mode;
  options.readahead_blocks = args.readahead;
  options.readahead_adaptive = args.readahead_auto;
  options.fetch_memo = !args.no_memo;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto records = seq::ReadFastaFile(args.fasta, (*engine)->alphabet());
  if (!records.ok()) return Fail(records.status());
  std::vector<std::string> labels;
  std::vector<SearchRequest> requests;
  for (seq::Sequence& record : *records) {
    labels.push_back(record.id());
    SearchRequest request(std::vector<seq::Symbol>(record.symbols()));
    ApplyFlags(&request, args);
    requests.push_back(std::move(request));
  }

  BatchOptions batch;
  batch.threads = args.threads;
  // --pool-mb sized the engine's pool above; all batch workers share it.
  if (args.stats && (*engine)->uses_pool()) (*engine)->pool().ResetStats();
  if ((*engine)->uses_pool()) {
    std::printf("batch: %zu queries, up to %u worker threads over a shared "
                "%llu MiB pool\n\n",
                requests.size(), batch.threads,
                static_cast<unsigned long long>(args.pool_mb));
  } else {
    std::printf("batch: %zu queries, up to %u worker threads over the "
                "mmapped index\n\n",
                requests.size(), batch.threads);
  }
  util::Timer timer;
  auto results = (*engine)->SearchBatch(requests, batch);
  if (!results.ok()) return Fail(results.status());
  double elapsed = timer.ElapsedSeconds();

  for (size_t i = 0; i < results->size(); ++i) {
    const BatchResult& item = (*results)[i];
    std::printf("query %s: %zu results\n", labels[i].c_str(),
                item.results.size());
    for (const core::OasisResult& result : item.results) {
      std::printf("  %s\n",
                  core::FormatResult(result,
                                     (*engine)->catalog().name(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%zu queries in %.4fs\n", results->size(), elapsed);
  if (args.stats) PrintPoolStats(**engine);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  if (args.command == "index") return RunIndex(args);
  if (args.command == "batch") return RunBatch(args);
  return RunSearch(args);
}
