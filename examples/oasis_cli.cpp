// oasis_cli: a small command-line front end over the oasis::Engine facade.
//
//   oasis_cli build  <db.fasta> <index_dir> [--dna|--protein]
//              [--volume-mb MB] [--build-threads N] [--mask off|soft]
//              [--fastq] [--fastq-offset sanger|illumina]
//   oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]
//   oasis_cli append <index_dir> <more.fasta> [--volume-mb MB]
//              [--mask off|soft] [--fastq] [--fastq-offset sanger|illumina]
//   oasis_cli compact <index_dir> [--volume-mb MB]
//   oasis_cli search <index_dir> <QUERYRESIDUES>
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//              [--io-mode auto|pooled|mmap] [--readahead K|auto]
//              [--no-memo] [--alignments] [--by-evalue] [--stats]
//              [--max-volumes N] [--volumes NAME[,NAME...]]
//   oasis_cli batch  <index_dir> <queries.fasta> [--threads N]
//              [--evalue E | --minscore S] [--top K] [--pool-mb MB]
//              [--io-mode auto|pooled|mmap] [--readahead K|auto]
//              [--no-memo] [--stats]
//   oasis_cli scan   <index_dir> <QUERYRESIDUES>
//              [--evalue E | --minscore S] [--simd auto|avx2|sse4|off]
//              [--stats]
//   oasis_cli query  <QUERYRESIDUES> --connect HOST:PORT [--ix NAME]
//              [--evalue E | --minscore S] [--top K] [--by-evalue]
//              [--max-volumes N] [--volumes NAME[,NAME...]]
//              [--deadline-ms MS] [--cancel-after N] [--no-cache]
//   oasis_cli stats  --connect HOST:PORT
//
// `build` creates the index. With `--volume-mb M` the database is sliced
// into ~M-MiB volumes, each packed by its own worker thread (up to
// `--build-threads N` of them), and the directory becomes a volume set —
// searchable exactly like a monolithic index, appendable and compactable
// without a rebuild. Without `--volume-mb` the layout is the legacy
// single-volume one; `index` is the deprecated spelling of that mode and
// keeps working unchanged. `append` adds a FASTA's sequences as a fresh
// volume (triggering background compaction when small volumes pile up);
// `compact` forces a merge of adjacent small volumes in the foreground.
// `--max-volumes` / `--volumes` restrict which volumes a search fans out
// over — for everything else results are merged across all volumes with
// E-values computed against the whole set, so hits are byte-identical to
// a single-volume build of the same FASTA.
//
// `--mask soft` turns on gentle repeat masking at build/append time:
// tantan-style detection marks low-complexity runs, masked positions are
// excluded from suffix-tree seeding (and BLAST seeds) but stay in the
// stored sequences at full alignment score, and render lowercase in
// output. An index built soft stays soft: appends and compactions
// re-apply the mode whatever flag the later invocation passes. `--fastq`
// reads the input as four-line FASTQ instead of FASTA; per-base phred
// qualities are stored alongside the index and picked up by the
// quality-weighted `scan` path. `--fastq-offset` selects the quality
// encoding (sanger = phred+33, the default; illumina = legacy phred+64).
//
// `query` and `stats` are client modes against a running oasisd: `query`
// streams hits as the daemon proves them (same line format as `search`,
// byte-identical results for the same request), exits 0 on a complete
// stream, 3 when the per-request --deadline-ms cut it short, 4 when the
// stream was cancelled (--cancel-after N sends a mid-stream cancel after
// N hits); `stats` prints the daemon's /stats JSON document — the same
// encoding --stats-json emits locally. `--no-cache` bypasses the daemon's
// result cache for measurement runs.
//
// `index` builds the packed suffix tree AND the sequence catalog from a
// FASTA file; `search` and `batch` need only the index directory — result
// labels come from the catalog, so the database FASTA is never reloaded.
// `scan` runs the paper's "accurate but expensive" Smith-Waterman
// baseline (align::ScanDatabase) over every database sequence — no
// suffix-tree search involved — with `--simd` selecting the alignment
// kernel (auto/avx2/sse4/off; strict: a forced ISA this machine cannot
// run is an error). All modes print byte-identical hits; `--stats` adds
// DP cells and cells/second, the numbers bench_align gates in CI.
// `--simd` also applies to `search` and `batch`, where it steers the
// engine's alignment kernels (e.g. the BLAST extension stage).
//
// `batch` reads one query per FASTA record and fans them across a thread
// pool via Engine::SearchBatch; all workers share the engine's one sharded
// buffer pool, sized by --pool-mb. `--io-mode` picks the storage path:
// `mmap` maps the index read-only (zero-copy, no pool), `pooled` forces
// the buffer pool, and `auto` (default) maps the index when it fits the
// engine's RAM budget. `--readahead K` turns on speculative sibling-run
// readahead for pooled engines with a fixed K-block window (pays off on
// cold, disk-resident indexes); `--readahead auto` lets the per-segment
// adaptive controller size the window from observed prefetch accuracy
// instead (storage::AdaptiveReadahead — grows on hot sequential
// segments, collapses on scattered ones). `--no-memo` disables the
// per-cursor fetch memo so every block access goes through the pool (the
// paper's raw accounting). `--stats` prints the per-segment buffer-pool
// requests / hits / hit ratios after the search — the same numbers
// Figure 8 of the paper plots — plus the readahead issued/used/wasted
// counters and, in auto mode, each segment's live window and its
// trajectory (EWMA accuracy, grow/shrink/probe counts). Pooled mode
// only; an mmap engine keeps no such statistics and reports them as n/a.
//
// Every numeric flag is parsed strictly (util/flag_parse.h): malformed,
// negative-where-unsigned, or out-of-range values are rejected with a
// message instead of silently wrapping ("--threads -1" used to mean
// 4294967295 worker threads).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/report.h"
#include "score/quality.h"
#include "seq/fasta.h"
#include "seq/fastq.h"
#include "server/client.h"
#include "server/flags.h"
#include "util/flag_parse.h"
#include "util/timer.h"

using namespace oasis;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oasis_cli build  <db.fasta> <index_dir> [--dna|--protein]\n"
      "             [--volume-mb MB] [--build-threads N] [--mask off|soft]\n"
      "             [--fastq] [--fastq-offset sanger|illumina]\n"
      "  oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]\n"
      "             (legacy alias of build; single-volume layout)\n"
      "  oasis_cli append <index_dir> <more.fasta> [--volume-mb MB]\n"
      "             [--mask off|soft] [--fastq]\n"
      "             [--fastq-offset sanger|illumina]\n"
      "  oasis_cli compact <index_dir> [--volume-mb MB]\n"
      "  oasis_cli search <index_dir> <QUERY>\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--io-mode auto|pooled|mmap] [--readahead K|auto]\n"
      "             [--simd auto|avx2|sse4|off] [--no-memo]\n"
      "             [--max-volumes N] [--volumes NAME[,NAME...]]\n"
      "             [--alignments] [--by-evalue] [--stats] [--stats-json]\n"
      "  oasis_cli batch  <index_dir> <queries.fasta> [--threads N]\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--io-mode auto|pooled|mmap] [--readahead K|auto]\n"
      "             [--simd auto|avx2|sse4|off] [--no-memo]\n"
      "             [--stats] [--stats-json]\n"
      "  oasis_cli scan   <index_dir> <QUERY>\n"
      "             [--evalue E | --minscore S]\n"
      "             [--simd auto|avx2|sse4|off] [--stats]\n"
      "  oasis_cli query  <QUERY> --connect HOST:PORT [--ix NAME]\n"
      "             [--evalue E | --minscore S] [--top K] [--by-evalue]\n"
      "             [--max-volumes N] [--volumes NAME[,NAME...]]\n"
      "             [--deadline-ms MS] [--cancel-after N] [--no-cache]\n"
      "  oasis_cli stats  --connect HOST:PORT\n"
      "\n"
      "build with --volume-mb M slices the database into parallel-built\n"
      "volumes of ~M MiB each (a volume set); without it the index is the\n"
      "legacy single-volume layout. append adds sequences as a fresh\n"
      "volume (no rebuild); compact merges adjacent small volumes.\n"
      "--mask soft detects low-complexity repeats at build/append time and\n"
      "excludes them from seeding (gentle masking: alignments still pass\n"
      "through them at full score); an index built soft stays soft.\n"
      "--fastq reads the input as FASTQ; the per-base qualities persist\n"
      "with the index and engage quality-weighted scoring in scan.\n"
      "query/stats talk to a running oasisd; query exits 0 on a complete\n"
      "stream, 3 when the deadline cut it short, 4 when it was cancelled\n"
      "(hits streamed before the abort are printed either way).\n");
  return 2;
}

// Flag ranges. Wider than any sane use, narrow enough that a typo cannot
// ask for terabytes of pool or billions of threads.
constexpr uint64_t kMaxPoolMb = 1ull << 20;   // 1 TiB of pool
constexpr uint32_t kMaxThreads = 4096;
constexpr uint64_t kMaxTop = 1ull << 40;
constexpr double kMaxEValue = 1e12;
// The default initial window of `--readahead auto` (the controller moves
// it from there; 8 blocks matches the PR-4 fixed-K sweet spot).
constexpr uint32_t kAutoReadaheadInitial = 8;

struct Args {
  std::string command, fasta, index_dir, query;
  bool dna = false;
  double evalue = 10.0;
  score::ScoreT min_score = 0;  // 0 = derive from evalue
  uint64_t top = 0;
  uint64_t pool_mb = 64;
  IoMode io_mode = IoMode::kAuto;
  uint32_t readahead = 0;
  bool readahead_auto = false;  // --readahead auto: adaptive window
  bool no_memo = false;
  uint32_t threads = 4;
  align::simd::SimdMode simd = align::simd::SimdMode::kAuto;
  bool alignments = false;
  bool by_evalue = false;
  bool stats = false;
  bool stats_json = false;

  // Volume-set knobs (build/append/compact + search-side fan-out limits).
  uint64_t volume_mb = 0;               // 0 = legacy single-volume layout
  uint32_t build_threads = 0;           // 0 = hardware concurrency
  uint32_t max_volumes = 0;             // 0 = search all volumes
  std::vector<std::string> volume_filter;  // empty = all volumes

  // Input handling (build/append).
  api::MaskMode mask = api::MaskMode::kOff;  // --mask soft = repeat masking
  bool fastq = false;                        // input is FASTQ, not FASTA
  seq::FastqOffset fastq_offset = seq::FastqOffset::kSanger;

  // Daemon-client mode (query / stats commands).
  std::string connect_host;
  uint16_t connect_port = 0;
  bool has_connect = false;
  std::string wire_index;     // --ix: which served index answers
  uint64_t deadline_ms = 0;   // 0 = none (or the server's cap)
  uint64_t cancel_after = 0;  // send a cancel after this many hits; 0 = off
  bool no_cache = false;      // bypass the daemon's result cache
};

/// Reports a bad flag value and fails the parse.
bool BadFlag(const char* flag, const util::Status& status) {
  std::fprintf(stderr, "%s: %s\n", flag, status.ToString().c_str());
  return false;
}

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  int flag_start = 4;
  if (args->command == "index" || args->command == "build") {
    if (argc < 4) return false;
    args->fasta = argv[2];
    args->index_dir = argv[3];
  } else if (args->command == "append") {
    if (argc < 4) return false;
    args->index_dir = argv[2];
    args->fasta = argv[3];
  } else if (args->command == "compact") {
    if (argc < 3) return false;
    args->index_dir = argv[2];
    flag_start = 3;
  } else if (args->command == "search") {
    if (argc < 4) return false;
    args->index_dir = argv[2];
    args->query = argv[3];
  } else if (args->command == "batch") {
    if (argc < 4) return false;
    args->index_dir = argv[2];
    args->fasta = argv[3];
  } else if (args->command == "scan") {
    if (argc < 4) return false;
    args->index_dir = argv[2];
    args->query = argv[3];
  } else if (args->command == "query") {
    if (argc < 3) return false;
    args->query = argv[2];
    flag_start = 3;
  } else if (args->command == "stats") {
    flag_start = 2;
  } else {
    return false;
  }
  for (int i = flag_start; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--dna") {
      args->dna = true;
    } else if (flag == "--protein") {
      args->dna = false;
    } else if (flag == "--evalue") {
      const char* v = next();
      if (v == nullptr) return false;
      // Zero would reject everything; negative is meaningless.
      auto parsed = util::ParseDouble(v, 1e-300, kMaxEValue);
      if (!parsed.ok()) return BadFlag("--evalue", parsed.status());
      args->evalue = *parsed;
    } else if (flag == "--minscore") {
      const char* v = next();
      if (v == nullptr) return false;
      // 0 keeps the "derive from --evalue" default; negative thresholds
      // would accept every alignment and are always a typo.
      auto parsed = util::ParseInt64(
          v, 0, std::numeric_limits<score::ScoreT>::max());
      if (!parsed.ok()) return BadFlag("--minscore", parsed.status());
      args->min_score = static_cast<score::ScoreT>(*parsed);
    } else if (flag == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint64(v, 0, kMaxTop);  // 0 = unlimited
      if (!parsed.ok()) return BadFlag("--top", parsed.status());
      args->top = *parsed;
    } else if (flag == "--pool-mb") {
      const char* v = next();
      if (v == nullptr) return false;
      // "abc" used to parse as 0 MiB and then fail engine validation with
      // a message about pool_bytes; reject it here, by name.
      auto parsed = util::ParseUint64(v, 1, kMaxPoolMb);
      if (!parsed.ok()) return BadFlag("--pool-mb", parsed.status());
      args->pool_mb = *parsed;
    } else if (flag == "--io-mode") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "auto") == 0) {
        args->io_mode = IoMode::kAuto;
      } else if (std::strcmp(v, "pooled") == 0) {
        args->io_mode = IoMode::kPooled;
      } else if (std::strcmp(v, "mmap") == 0) {
        args->io_mode = IoMode::kMmap;
      } else {
        std::fprintf(stderr, "unknown --io-mode '%s'\n", v);
        return false;
      }
    } else if (flag == "--readahead") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "auto") == 0) {
        args->readahead_auto = true;
        args->readahead = kAutoReadaheadInitial;
      } else {
        auto parsed = util::ParseUint32(v, 0, api::kMaxReadaheadBlocks);
        if (!parsed.ok()) return BadFlag("--readahead", parsed.status());
        args->readahead_auto = false;
        args->readahead = *parsed;
      }
    } else if (flag == "--simd") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = align::simd::ParseSimdMode(v);
      if (!parsed.ok()) return BadFlag("--simd", parsed.status());
      args->simd = *parsed;
    } else if (flag == "--no-memo") {
      args->no_memo = true;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      // "-1" used to wrap to 4294967295 via strtoul.
      auto parsed = util::ParseUint32(v, 1, kMaxThreads);
      if (!parsed.ok()) return BadFlag("--threads", parsed.status());
      args->threads = *parsed;
    } else if (flag == "--alignments") {
      args->alignments = true;
    } else if (flag == "--by-evalue") {
      args->by_evalue = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--stats-json") {
      args->stats_json = true;
    } else if (flag == "--connect") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string spec = v;
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n", v);
        return false;
      }
      auto port = util::ParseUint32(spec.substr(colon + 1), 1, 65535);
      if (!port.ok()) return BadFlag("--connect", port.status());
      args->connect_host = spec.substr(0, colon);
      args->connect_port = static_cast<uint16_t>(*port);
      args->has_connect = true;
    } else if (flag == "--ix") {
      const char* v = next();
      if (v == nullptr) return false;
      args->wire_index = v;
    } else if (flag == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint64(v, 1, server::kMaxDeadlineMs);
      if (!parsed.ok()) return BadFlag("--deadline-ms", parsed.status());
      args->deadline_ms = *parsed;
    } else if (flag == "--cancel-after") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint64(v, 1, kMaxTop);
      if (!parsed.ok()) return BadFlag("--cancel-after", parsed.status());
      args->cancel_after = *parsed;
    } else if (flag == "--no-cache") {
      args->no_cache = true;
    } else if (flag == "--volume-mb") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint64(v, 1, kMaxPoolMb);
      if (!parsed.ok()) return BadFlag("--volume-mb", parsed.status());
      args->volume_mb = *parsed;
    } else if (flag == "--mask") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = api::ParseMaskMode(v);
      if (!parsed.ok()) return BadFlag("--mask", parsed.status());
      args->mask = *parsed;
    } else if (flag == "--fastq") {
      args->fastq = true;
    } else if (flag == "--fastq-offset") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = seq::ParseFastqOffset(v);
      if (!parsed.ok()) return BadFlag("--fastq-offset", parsed.status());
      args->fastq_offset = *parsed;
    } else if (flag == "--build-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint32(v, 1, kMaxThreads);
      if (!parsed.ok()) return BadFlag("--build-threads", parsed.status());
      args->build_threads = *parsed;
    } else if (flag == "--max-volumes") {
      const char* v = next();
      if (v == nullptr) return false;
      auto parsed = util::ParseUint32(v, 1, kMaxThreads);
      if (!parsed.ok()) return BadFlag("--max-volumes", parsed.status());
      args->max_volumes = *parsed;
    } else if (flag == "--volumes") {
      const char* v = next();
      if (v == nullptr) return false;
      const std::string spec = v;
      size_t item = 0;
      while (item <= spec.size()) {
        size_t comma = spec.find(',', item);
        if (comma == std::string::npos) comma = spec.size();
        const std::string name = spec.substr(item, comma - item);
        if (name.empty()) {
          std::fprintf(stderr, "--volumes holds an empty volume name\n");
          return false;
        }
        args->volume_filter.push_back(name);
        item = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

const char* IoModeName(IoMode mode) {
  return mode == IoMode::kMmap ? "mmap" : "pooled";
}

/// Per-segment buffer-pool requests / hits / hit ratio — the Figure 8
/// numbers, straight from the CLI. Rendered from the same
/// EngineStatsSnapshot the daemon's /stats endpoint serves
/// (util/stats_json.h), so the two surfaces cannot drift: --stats is the
/// historical text block, --stats-json the daemon's JSON encoding.
void PrintPoolStats(const Engine& engine, bool json) {
  const util::EngineStatsSnapshot snapshot = engine.CollectStats();
  if (json) {
    std::printf("%s\n", util::StatsJson(snapshot).c_str());
  } else {
    std::fputs(util::StatsText(snapshot).c_str(), stdout);
  }
}

/// Translates the shared selectivity/reporting flags onto a request.
void ApplyFlags(SearchRequest* request, const Args& args) {
  if (args.min_score > 0) {
    request->MinScore(args.min_score);
  } else {
    request->EValue(args.evalue);
  }
  request->TopK(args.top)
      .WithAlignments(args.alignments)
      .OrderByEValue(args.by_evalue)
      .MaxVolumes(args.max_volumes);
  if (!args.volume_filter.empty()) request->VolumeFilter(args.volume_filter);
}

int RunBuild(const Args& args) {
  EngineOptions options;
  options.alphabet =
      args.dna ? seq::AlphabetKind::kDna : seq::AlphabetKind::kProtein;
  options.volume_size_bytes = args.volume_mb << 20;
  options.build_threads = args.build_threads;
  options.mask_mode = args.mask;
  util::Timer timer;
  util::StatusOr<std::unique_ptr<Engine>> engine = [&] {
    if (!args.fastq) return Engine::Create(args.fasta, args.index_dir, options);
    // FASTQ input: parse the records (qualities included) ourselves, then
    // hand the finished database to the engine.
    const seq::Alphabet alphabet =
        args.dna ? seq::Alphabet::Dna() : seq::Alphabet::Protein();
    auto records =
        seq::ReadFastqFile(args.fasta, alphabet, args.fastq_offset);
    if (!records.ok()) {
      return util::StatusOr<std::unique_ptr<Engine>>(records.status());
    }
    auto db = seq::SequenceDatabase::Build(alphabet, std::move(*records));
    if (!db.ok()) {
      return util::StatusOr<std::unique_ptr<Engine>>(db.status());
    }
    return Engine::CreateFromDatabase(std::move(*db), args.index_dir, options);
  }();
  if (!engine.ok()) return Fail(engine.status());
  std::printf("indexed %llu residues (%llu sequences) into %s "
              "(%zu volume%s) in %.2fs\n",
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              args.index_dir.c_str(), (*engine)->num_volumes(),
              (*engine)->num_volumes() == 1 ? "" : "s",
              timer.ElapsedSeconds());
  return 0;
}

int RunAppend(const Args& args) {
  EngineOptions options;
  // --volume-mb sets the compaction target: volumes smaller than this are
  // candidates for the background merge the append may trigger.
  options.volume_size_bytes = args.volume_mb << 20;
  options.mask_mode = args.mask;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());
  util::Timer timer;
  util::Status status;
  if (args.fastq) {
    auto records = seq::ReadFastqFile(args.fasta, (*engine)->alphabet(),
                                      args.fastq_offset);
    if (!records.ok()) return Fail(records.status());
    status = (*engine)->AppendSequences(std::move(*records));
  } else {
    status = (*engine)->Append(args.fasta);
  }
  if (!status.ok()) return Fail(status);
  (*engine)->WaitForCompaction();
  std::printf("appended %s: now %llu residues (%llu sequences) across "
              "%zu volume%s in %.2fs\n",
              args.fasta.c_str(),
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              (*engine)->num_volumes(),
              (*engine)->num_volumes() == 1 ? "" : "s",
              timer.ElapsedSeconds());
  return 0;
}

int RunCompact(const Args& args) {
  EngineOptions options;
  options.volume_size_bytes = args.volume_mb << 20;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());
  const size_t before = (*engine)->num_volumes();
  util::Timer timer;
  auto status = (*engine)->Compact();
  if (!status.ok()) return Fail(status);
  std::printf("compacted %s: %zu -> %zu volume%s in %.2fs\n",
              args.index_dir.c_str(), before, (*engine)->num_volumes(),
              (*engine)->num_volumes() == 1 ? "" : "s",
              timer.ElapsedSeconds());
  return 0;
}

int RunSearch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  options.io_mode = args.io_mode;
  options.readahead_blocks = args.readahead;
  // An explicit `--readahead K` is a request for exactly K; only
  // `--readahead auto` engages the controller.
  options.readahead_adaptive = args.readahead_auto;
  options.fetch_memo = !args.no_memo;
  options.simd_mode = args.simd;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto request = SearchRequest::FromText((*engine)->alphabet(), args.query);
  if (!request.ok()) return Fail(request.status());
  ApplyFlags(&*request, args);

  auto min_score = (*engine)->ResolveMinScore(*request);
  if (!min_score.ok()) return Fail(min_score.status());
  std::printf("searching %zu-residue query, matrix %s, minScore %d, "
              "io mode %s\n\n",
              request->query().size(), (*engine)->matrix().name().c_str(),
              *min_score, IoModeName((*engine)->io_mode()));

  // Verbose alignment printing needs the residues; materialize them from
  // the index (still no FASTA involved).
  const seq::SequenceDatabase* db = nullptr;
  if (args.alignments) {
    auto resident = (*engine)->ResidentDatabase();
    if (!resident.ok()) return Fail(resident.status());
    db = *resident;
  }

  // Database materialization above reads through the pool too; reset so
  // --stats reports the search traffic alone.
  if ((args.stats || args.stats_json) && (*engine)->uses_pool()) {
    (*engine)->pool().ResetStats();
  }

  auto cursor = (*engine)->Search(*request);
  if (!cursor.ok()) return Fail(cursor.status());

  util::Timer timer;
  uint64_t count = 0;
  while (true) {
    auto next = cursor->Next();
    if (!next.ok()) return Fail(next.status());
    if (!next->has_value()) break;
    const core::OasisResult& result = **next;
    ++count;
    if (args.alignments) {
      std::printf("%s",
                  core::FormatResultVerbose(result, *db, request->query())
                      .c_str());
    } else {
      std::printf("%s\n",
                  core::FormatResult(result,
                                     (*engine)->SequenceName(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%llu results in %.4fs (%llu columns expanded)\n",
              static_cast<unsigned long long>(count), timer.ElapsedSeconds(),
              static_cast<unsigned long long>(
                  cursor->stats().columns_expanded));
  if (args.stats || args.stats_json) {
    PrintPoolStats(**engine, args.stats_json);
  }
  return 0;
}

int RunBatch(const Args& args) {
  EngineOptions options;
  options.pool_bytes = args.pool_mb << 20;
  options.io_mode = args.io_mode;
  options.readahead_blocks = args.readahead;
  options.readahead_adaptive = args.readahead_auto;
  options.fetch_memo = !args.no_memo;
  options.simd_mode = args.simd;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto records = seq::ReadFastaFile(args.fasta, (*engine)->alphabet());
  if (!records.ok()) return Fail(records.status());
  std::vector<std::string> labels;
  std::vector<SearchRequest> requests;
  for (seq::Sequence& record : *records) {
    labels.push_back(record.id());
    SearchRequest request(std::vector<seq::Symbol>(record.symbols()));
    ApplyFlags(&request, args);
    requests.push_back(std::move(request));
  }

  BatchOptions batch;
  batch.threads = args.threads;
  // --pool-mb sized the engine's pool above; all batch workers share it.
  if ((args.stats || args.stats_json) && (*engine)->uses_pool()) {
    (*engine)->pool().ResetStats();
  }
  if ((*engine)->uses_pool()) {
    std::printf("batch: %zu queries, up to %u worker threads over a shared "
                "%llu MiB pool\n\n",
                requests.size(), batch.threads,
                static_cast<unsigned long long>(args.pool_mb));
  } else {
    std::printf("batch: %zu queries, up to %u worker threads over the "
                "mmapped index\n\n",
                requests.size(), batch.threads);
  }
  util::Timer timer;
  auto results = (*engine)->SearchBatch(requests, batch);
  if (!results.ok()) return Fail(results.status());
  double elapsed = timer.ElapsedSeconds();

  for (size_t i = 0; i < results->size(); ++i) {
    const BatchResult& item = (*results)[i];
    std::printf("query %s: %zu results\n", labels[i].c_str(),
                item.results.size());
    for (const core::OasisResult& result : item.results) {
      std::printf("  %s\n",
                  core::FormatResult(result,
                                     (*engine)->SequenceName(
                                         result.sequence_id),
                                     result.evalue)
                      .c_str());
    }
  }
  std::printf("\n%zu queries in %.4fs\n", results->size(), elapsed);
  if (args.stats || args.stats_json) {
    PrintPoolStats(**engine, args.stats_json);
  }
  return 0;
}

int RunScan(const Args& args) {
  EngineOptions options;
  options.simd_mode = args.simd;
  auto engine = Engine::Open(args.index_dir, options);
  if (!engine.ok()) return Fail(engine.status());

  auto request = SearchRequest::FromText((*engine)->alphabet(), args.query);
  if (!request.ok()) return Fail(request.status());
  ApplyFlags(&*request, args);
  auto min_score = (*engine)->ResolveMinScore(*request);
  if (!min_score.ok()) return Fail(min_score.status());
  // ScanDatabase scores full local alignments, whose scores are positive.
  const score::ScoreT threshold = std::max<score::ScoreT>(1, *min_score);

  auto db = (*engine)->ResidentDatabase();
  if (!db.ok()) return Fail(db.status());

  // Quality-weighted scoring engages automatically when any database
  // sequence carries phred qualities (FASTQ input, persisted with the
  // index). Databases without qualities take the exact plain path —
  // byte-identical to the pre-quality scan.
  bool any_quals = false;
  for (uint64_t i = 0; i < (*db)->num_sequences(); ++i) {
    if ((*db)->sequence(static_cast<seq::SequenceId>(i)).has_quals()) {
      any_quals = true;
      break;
    }
  }
  std::optional<score::QualityAdjust> quality;
  if (any_quals) quality.emplace((*engine)->matrix());

  std::printf("scanning %llu sequences with the S-W baseline: "
              "%zu-residue query, matrix %s%s, minScore %d, simd %s\n\n",
              static_cast<unsigned long long>((*db)->num_sequences()),
              request->query().size(), (*engine)->matrix().name().c_str(),
              quality ? " (quality-weighted)" : "", threshold,
              align::simd::SimdLevelName((*engine)->simd_level()));

  align::AlignStats stats;
  util::Timer timer;
  const std::vector<align::SequenceHit> hits =
      align::ScanDatabase(request->query(), **db, (*engine)->matrix(),
                          threshold, &stats, args.simd,
                          quality ? &*quality : nullptr);
  const double elapsed = timer.ElapsedSeconds();

  uint64_t printed = 0;
  for (const align::SequenceHit& hit : hits) {
    if (args.top > 0 && printed == args.top) break;
    ++printed;
    std::printf("%-24s score=%-6d qEnd=%-8llu tEnd=%llu\n",
                (*engine)->SequenceName(hit.sequence_id).c_str(), hit.score,
                static_cast<unsigned long long>(hit.query_end),
                static_cast<unsigned long long>(hit.target_end));
  }
  std::printf("\n%zu hits in %.4fs\n", hits.size(), elapsed);
  if (args.stats) {
    const double cps =
        elapsed > 0 ? static_cast<double>(stats.cells_computed) / elapsed : 0;
    std::printf("%llu DP cells over %llu columns (%.1f Mcells/s, simd %s)\n",
                static_cast<unsigned long long>(stats.cells_computed),
                static_cast<unsigned long long>(stats.columns_expanded),
                cps / 1e6,
                align::simd::SimdLevelName((*engine)->simd_level()));
  }
  return 0;
}

/// Exit code for a daemon-query terminator: the two expected abort modes
/// get their own codes so scripts can assert on them.
int ExitCodeFor(const util::Status& status) {
  if (status.IsDeadlineExceeded()) return 3;
  if (status.IsCancelled()) return 4;
  return 1;
}

int RunQuery(const Args& args) {
  if (!args.has_connect) {
    std::fprintf(stderr, "query mode needs --connect HOST:PORT\n");
    return 2;
  }
  server::WireRequest request;
  request.index = args.wire_index;
  request.query = args.query;
  if (args.min_score > 0) {
    request.min_score = args.min_score;
  } else {
    request.evalue = args.evalue;
  }
  request.top_k = args.top;
  request.by_evalue = args.by_evalue;
  request.max_volumes = args.max_volumes;
  request.volume_filter = args.volume_filter;
  request.deadline_ms = args.deadline_ms;
  request.no_cache = args.no_cache;

  auto client =
      server::DaemonClient::Connect(args.connect_host, args.connect_port);
  if (!client.ok()) return Fail(client.status());

  // Hits print as the frames arrive — the daemon's streaming mirrors the
  // local cursor, so this loop renders results exactly like `search`.
  uint64_t printed = 0;
  auto outcome = client->Query(
      request, [&printed, &args](std::string_view line) {
        std::printf("%.*s\n", static_cast<int>(line.size()), line.data());
        ++printed;
        return args.cancel_after == 0 || printed < args.cancel_after;
      });
  if (!outcome.ok()) {
    // Deadline / cancellation terminators still delivered every hit
    // proven before the abort; report the cause and the partial count.
    std::fprintf(stderr, "stream ended: %s (%llu hits received)\n",
                 outcome.status().ToString().c_str(),
                 static_cast<unsigned long long>(printed));
    return ExitCodeFor(outcome.status());
  }
  std::printf("\n%llu hits%s\n",
              static_cast<unsigned long long>(outcome->hits),
              outcome->cached ? " (served from daemon result cache)" : "");
  return 0;
}

int RunRemoteStats(const Args& args) {
  if (!args.has_connect) {
    std::fprintf(stderr, "stats mode needs --connect HOST:PORT\n");
    return 2;
  }
  auto client =
      server::DaemonClient::Connect(args.connect_host, args.connect_port);
  if (!client.ok()) return Fail(client.status());
  auto stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%s\n", stats->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();
  if (args.command == "index" || args.command == "build") {
    return RunBuild(args);
  }
  if (args.command == "append") return RunAppend(args);
  if (args.command == "compact") return RunCompact(args);
  if (args.command == "batch") return RunBatch(args);
  if (args.command == "scan") return RunScan(args);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "stats") return RunRemoteStats(args);
  return RunSearch(args);
}
