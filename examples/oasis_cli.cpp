// oasis_cli: a small command-line front end over the library.
//
//   oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]
//   oasis_cli search <db.fasta> <index_dir> <QUERYRESIDUES>
//              [--dna|--protein] [--evalue E | --minscore S]
//              [--top K] [--pool-mb MB] [--alignments]
//
// `index` builds the packed suffix tree from a FASTA file; `search` runs an
// online OASIS query against a previously built index. The FASTA file is
// reloaded for search because result reporting needs sequence ids (the
// packed index stores only offsets; a production deployment would keep a
// sequence catalog next to the index).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/oasis.h"
#include "core/report.h"
#include "seq/fasta.h"
#include "suffix/packed_builder.h"
#include "util/timer.h"

using namespace oasis;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oasis_cli index  <db.fasta> <index_dir> [--dna|--protein]\n"
      "  oasis_cli search <db.fasta> <index_dir> <QUERY> [--dna|--protein]\n"
      "             [--evalue E | --minscore S] [--top K] [--pool-mb MB]\n"
      "             [--alignments]\n");
  return 2;
}

struct Args {
  std::string command, fasta, index_dir, query;
  bool dna = false;
  double evalue = 10.0;
  score::ScoreT min_score = 0;  // 0 = derive from evalue
  uint64_t top = 0;
  uint64_t pool_mb = 64;
  bool alignments = false;
};

bool Parse(int argc, char** argv, Args* args) {
  if (argc < 4) return false;
  args->command = argv[1];
  args->fasta = argv[2];
  args->index_dir = argv[3];
  int positional = 4;
  if (args->command == "search") {
    if (argc < 5) return false;
    args->query = argv[4];
    positional = 5;
  } else if (args->command != "index") {
    return false;
  }
  for (int i = positional; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--dna") {
      args->dna = true;
    } else if (flag == "--protein") {
      args->dna = false;
    } else if (flag == "--evalue") {
      const char* v = next();
      if (v == nullptr) return false;
      args->evalue = std::strtod(v, nullptr);
    } else if (flag == "--minscore") {
      const char* v = next();
      if (v == nullptr) return false;
      args->min_score = static_cast<score::ScoreT>(std::strtol(v, nullptr, 10));
    } else if (flag == "--top") {
      const char* v = next();
      if (v == nullptr) return false;
      args->top = std::strtoull(v, nullptr, 10);
    } else if (flag == "--pool-mb") {
      const char* v = next();
      if (v == nullptr) return false;
      args->pool_mb = std::strtoull(v, nullptr, 10);
    } else if (flag == "--alignments") {
      args->alignments = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return Usage();

  const seq::Alphabet& alphabet =
      args.dna ? seq::Alphabet::Dna() : seq::Alphabet::Protein();
  auto records = seq::ReadFastaFile(args.fasta, alphabet);
  if (!records.ok()) return Fail(records.status());
  auto db = seq::SequenceDatabase::Build(alphabet, std::move(records).value());
  if (!db.ok()) return Fail(db.status());

  if (args.command == "index") {
    util::Timer timer;
    auto tree = suffix::SuffixTree::BuildUkkonen(*db);
    if (!tree.ok()) return Fail(tree.status());
    util::Status packed = suffix::PackSuffixTree(*tree, args.index_dir);
    if (!packed.ok()) return Fail(packed);
    std::printf("indexed %llu residues (%zu sequences) into %s in %.2fs\n",
                static_cast<unsigned long long>(db->num_residues()),
                db->num_sequences(), args.index_dir.c_str(),
                timer.ElapsedSeconds());
    return 0;
  }

  // search
  storage::BufferPool pool(args.pool_mb << 20);
  auto tree = suffix::PackedSuffixTree::Open(args.index_dir, &pool);
  if (!tree.ok()) return Fail(tree.status());

  auto query = alphabet.Encode(args.query);
  if (!query.ok()) return Fail(query.status());

  const score::SubstitutionMatrix& matrix =
      args.dna ? score::SubstitutionMatrix::Blastn()
               : score::SubstitutionMatrix::Pam30();
  core::OasisSearch search(tree->get(), &matrix);

  core::OasisOptions options;
  if (args.min_score > 0) {
    options.min_score = args.min_score;
  } else {
    auto karlin = score::ComputeKarlinParams(matrix);
    if (!karlin.ok()) return Fail(karlin.status());
    options.min_score =
        search.MinScoreForEValue(*karlin, args.evalue, query->size());
  }
  options.max_results = args.top;
  options.reconstruct_alignments = args.alignments;

  std::printf("searching %zu-residue query, matrix %s, minScore %d\n\n",
              query->size(), matrix.name().c_str(), options.min_score);
  util::Timer timer;
  uint64_t count = 0;
  auto stats =
      search.Search(*query, options, [&](const core::OasisResult& result) {
        ++count;
        if (args.alignments) {
          std::printf("%s",
                      core::FormatResultVerbose(result, *db, *query).c_str());
        } else {
          std::printf("%s\n", core::FormatResult(result, *db).c_str());
        }
        return true;
      });
  if (!stats.ok()) return Fail(stats.status());
  std::printf("\n%llu results in %.4fs (%llu columns expanded)\n",
              static_cast<unsigned long long>(count), timer.ElapsedSeconds(),
              static_cast<unsigned long long>(stats->columns_expanded));
  return 0;
}
