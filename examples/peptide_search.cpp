// Peptide search: the paper's motivating workload (§1, §4.1) — short
// peptide queries against a protein database, with OASIS, Smith-Waterman
// and the BLAST-style heuristic run side by side so the accuracy gap is
// visible. OASIS and BLAST share one Engine and one SearchRequest shape;
// only the entry point differs (Search vs BlastSearch).
//
// Usage: peptide_search [residues] [num_queries]
//   residues     synthetic database size (default 100000)
//   num_queries  ProClass-shaped motif queries (default 5)

#include <cstdio>
#include <cstdlib>

#include "align/smith_waterman.h"
#include "api/engine.h"
#include "core/report.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t residues = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 100000;
  const uint32_t num_queries =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 5;

  // SWISS-PROT-shaped database + ProClass-shaped peptide queries.
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = residues;
  auto db = workload::GenerateProteinDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  workload::MotifQueryOptions q_options;
  q_options.num_queries = num_queries;
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  util::TempDir dir("peptide");
  auto engine = Engine::BuildFromDatabase(std::move(db).value(), dir.path());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  const seq::SequenceDatabase& resident = *(*engine)->database();

  const double evalue = 100.0;
  std::printf("database: %llu residues in %llu sequences; %s; E=%g\n\n",
              static_cast<unsigned long long>((*engine)->num_residues()),
              static_cast<unsigned long long>((*engine)->num_sequences()),
              (*engine)->matrix().name().c_str(), evalue);

  for (const auto& q : *queries) {
    std::string text = (*engine)->alphabet().Decode(q.symbols);
    SearchRequest request(q.symbols);
    request.EValue(evalue);
    auto min_score = (*engine)->ResolveMinScore(request);
    if (!min_score.ok()) {
      std::fprintf(stderr, "%s\n", min_score.status().ToString().c_str());
      return 1;
    }
    std::printf("peptide %s (len %zu, minScore %d, planted in %s)\n",
                text.c_str(), q.symbols.size(), *min_score,
                resident.sequence(q.source_sequence).id().c_str());

    // OASIS (exact, online).
    util::Timer timer;
    auto oasis_outcome = (*engine)->SearchAll(request);
    double oasis_s = timer.ElapsedSeconds();
    if (!oasis_outcome.ok()) {
      std::fprintf(stderr, "%s\n", oasis_outcome.status().ToString().c_str());
      return 1;
    }
    const auto& oasis_results = oasis_outcome->results;

    // Smith-Waterman (exact, full scan).
    timer.Restart();
    auto sw_hits = align::ScanDatabase(q.symbols, resident, matrix,
                                       *min_score);
    double sw_s = timer.ElapsedSeconds();

    // BLAST-style heuristic at the matching E-value, behind the same
    // request/cursor interface. Timed end-to-end (word-table preparation +
    // scan + result materialization), i.e. the full per-query cost a facade
    // consumer pays — slightly broader than the scan-only timing this
    // example printed before the Engine port.
    size_t blast_count = 0;
    double blast_s = 0;
    timer.Restart();
    auto blast_cursor = (*engine)->BlastSearch(request);
    if (blast_cursor.ok()) {
      while (true) {
        auto next = blast_cursor->Next();
        if (!next.ok() || !next->has_value()) break;
        ++blast_count;
      }
      blast_s = timer.ElapsedSeconds();
    }

    std::printf("  OASIS: %4zu matches in %.4fs | S-W: %4zu in %.4fs | "
                "BLAST-style: %4zu in %.4fs\n",
                oasis_results.size(), oasis_s, sw_hits.size(), sw_s,
                blast_count, blast_s);
    if (!oasis_results.empty()) {
      const auto& top = oasis_results[0];
      double top_evalue = score::EValueForScore(
          (*engine)->karlin(), top.score, q.symbols.size(),
          (*engine)->num_residues());
      std::printf("  top hit: %s\n",
                  core::FormatResult(top, resident, top_evalue).c_str());
    }
    if (oasis_results.size() != sw_hits.size()) {
      std::printf("  !! exactness violated\n");
      return 1;
    }
    if (blast_count < oasis_results.size()) {
      std::printf("  note: heuristic missed %zu qualifying sequence(s)\n",
                  oasis_results.size() - blast_count);
    }
    std::printf("\n");
  }
  return 0;
}
