// Peptide search: the paper's motivating workload (§1, §4.1) — short
// peptide queries against a protein database, with OASIS, Smith-Waterman
// and the BLAST-style heuristic run side by side so the accuracy gap is
// visible.
//
// Usage: peptide_search [residues] [num_queries]
//   residues     synthetic database size (default 100000)
//   num_queries  ProClass-shaped motif queries (default 5)

#include <cstdio>
#include <cstdlib>
#include <set>

#include "align/smith_waterman.h"
#include "blast/blast.h"
#include "core/oasis.h"
#include "core/report.h"
#include "suffix/packed_builder.h"
#include "util/env.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace oasis;

int main(int argc, char** argv) {
  const uint64_t residues = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                     : 100000;
  const uint32_t num_queries =
      argc > 2 ? static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10)) : 5;

  // SWISS-PROT-shaped database + ProClass-shaped peptide queries.
  workload::ProteinDatabaseOptions db_options;
  db_options.target_residues = residues;
  auto db = workload::GenerateProteinDatabase(db_options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  workload::MotifQueryOptions q_options;
  q_options.num_queries = num_queries;
  const auto& matrix = score::SubstitutionMatrix::Pam30();
  auto queries = workload::GenerateMotifQueries(*db, matrix, q_options);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  util::TempDir dir("peptide");
  storage::BufferPool pool(64 << 20);
  auto tree = suffix::BuildAndOpenPacked(*db, dir.path(), &pool);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  auto karlin = score::ComputeKarlinParams(matrix);
  if (!karlin.ok()) {
    std::fprintf(stderr, "%s\n", karlin.status().ToString().c_str());
    return 1;
  }

  core::OasisSearch search(tree->get(), &matrix);
  std::printf("database: %llu residues in %zu sequences; PAM30; E=100\n\n",
              static_cast<unsigned long long>(db->num_residues()),
              db->num_sequences());

  for (const auto& q : *queries) {
    std::string text = db->alphabet().Decode(q.symbols);
    score::ScoreT min_score = score::MinScoreForEValue(
        *karlin, 100.0, q.symbols.size(), db->num_residues());
    std::printf("peptide %s (len %zu, minScore %d, planted in %s)\n",
                text.c_str(), q.symbols.size(), min_score,
                db->sequence(q.source_sequence).id().c_str());

    // OASIS (exact, online).
    core::OasisOptions options;
    options.min_score = min_score;
    util::Timer timer;
    auto oasis_results = search.SearchAll(q.symbols, options);
    double oasis_s = timer.ElapsedSeconds();
    if (!oasis_results.ok()) {
      std::fprintf(stderr, "%s\n", oasis_results.status().ToString().c_str());
      return 1;
    }

    // Smith-Waterman (exact, full scan).
    timer.Restart();
    auto sw_hits = align::ScanDatabase(q.symbols, *db, matrix, min_score);
    double sw_s = timer.ElapsedSeconds();

    // BLAST-style heuristic at the matching E-value.
    blast::BlastOptions blast_options;
    blast_options.evalue_cutoff = 100.0;
    size_t blast_count = 0;
    double blast_s = 0;
    if (q.symbols.size() >= blast_options.word_size) {
      auto prepared = blast::BlastQuery::Prepare(q.symbols, matrix, blast_options);
      if (prepared.ok()) {
        timer.Restart();
        auto hits = blast::Search(*prepared, *db, matrix, *karlin);
        blast_s = timer.ElapsedSeconds();
        if (hits.ok()) blast_count = hits->size();
      }
    }

    std::printf("  OASIS: %4zu matches in %.4fs | S-W: %4zu in %.4fs | "
                "BLAST-style: %4zu in %.4fs\n",
                oasis_results->size(), oasis_s, sw_hits.size(), sw_s,
                blast_count, blast_s);
    if (!oasis_results->empty()) {
      const auto& top = (*oasis_results)[0];
      double evalue = score::EValueForScore(*karlin, top.score,
                                            q.symbols.size(),
                                            db->num_residues());
      std::printf("  top hit: %s\n",
                  core::FormatResult(top, *db, evalue).c_str());
    }
    if (oasis_results->size() != sw_hits.size()) {
      std::printf("  !! exactness violated\n");
      return 1;
    }
    if (blast_count < oasis_results->size()) {
      std::printf("  note: heuristic missed %zu qualifying sequence(s)\n",
                  oasis_results->size() - blast_count);
    }
    std::printf("\n");
  }
  return 0;
}
