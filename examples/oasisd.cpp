// oasisd: the long-running OASIS search daemon.
//
//   oasisd --index [NAME=]DIR [--index [NAME=]DIR ...]
//          [--host HOST] [--port PORT]
//          [--max-inflight N] [--result-cache-mb MB] [--deadline-ms MS]
//          [--max-pinned-fraction F] [--drain-timeout-ms MS]
//          [--pool-mb MB] [--io-mode auto|pooled|mmap] [--readahead K|auto]
//
// Opens every --index directory once and serves concurrent clients over
// the wire protocol in src/server/wire.h (oasis_cli query --connect is
// the stock client). Startup prints exactly one line to stdout —
// "oasisd listening on HOST:PORT" — so scripts can scrape the ephemeral
// port when --port 0 was used.
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, refuse new
// queries, drain in-flight cursors (cancelling stragglers after the drain
// timeout), join every thread, exit 0. The handler only writes one byte
// to a self-pipe — all real work happens on the main thread, so the
// shutdown path is async-signal-safe by construction.

#include <errno.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "server/flags.h"
#include "server/server.h"

using namespace oasis;

namespace {

// Self-pipe carrying shutdown signals from the handler to the main
// thread's blocking read.
int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int) {
  const char byte = 1;
  // A full pipe just means a shutdown is already pending.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "oasisd: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto config =
      server::ParseDaemonArgs(std::vector<std::string>(argv + 1, argv + argc));
  if (!config.ok()) {
    std::fprintf(stderr, "oasisd: %s\n%s",
                 config.status().ToString().c_str(),
                 server::DaemonUsage().c_str());
    return 2;
  }

  // Open every index up front — this is the whole point of the daemon:
  // the open cost (pool allocation, metadata reads) is paid once, not per
  // query.
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<server::ServedIndex> served;
  for (const auto& [name, dir] : config->indexes) {
    auto engine = Engine::Open(dir, config->engine);
    if (!engine.ok()) {
      return Fail(util::Status::IOError("open index '" + dir + "': " +
                                        engine.status().ToString()));
    }
    served.push_back({name, engine->get()});
    engines.push_back(std::move(engine).value());
  }

  if (::pipe(g_signal_pipe) != 0) {
    return Fail(util::Status::IOError("cannot create signal pipe"));
  }
  struct sigaction action{};
  action.sa_handler = OnShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  // A client disconnecting mid-stream must surface as a write error, not
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  auto server = server::Server::Start(std::move(served), config->server);
  if (!server.ok()) return Fail(server.status());

  std::printf("oasisd listening on %s:%u\n", (*server)->host().c_str(),
              (*server)->port());
  std::fflush(stdout);

  // Block until a shutdown signal arrives.
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "oasisd: draining and shutting down\n");
  (*server)->Shutdown();
  return 0;
}
