// Seed-extension primitives for the BLAST-style pipeline.

#pragma once

#include <cstdint>
#include <span>

#include "align/simd/dispatch.h"
#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace blast {

/// Result of extending a seed.
struct Extension {
  score::ScoreT score = 0;
  /// 0-based inclusive bounds of the extended segment.
  uint64_t query_start = 0, query_end = 0;
  uint64_t target_start = 0, target_end = 0;
};

/// Ungapped X-drop extension of the word match
/// query[q_pos, q_pos+word) == target[t_pos, t_pos+word) in both directions:
/// each direction advances while the running score stays within `xdrop` of
/// the best seen. Returns the maximal segment pair. `level` selects the
/// diagonal-scoring kernel (pass a level resolved once per search, not
/// per seed); every level returns the identical extension.
Extension ExtendUngapped(
    std::span<const seq::Symbol> query, std::span<const seq::Symbol> target,
    uint64_t q_pos, uint64_t t_pos, uint32_t word,
    const score::SubstitutionMatrix& matrix, score::ScoreT xdrop,
    align::simd::SimdLevel level = align::simd::SimdLevel::kScalar);

/// Gapped X-drop extension from the anchor cell (q_anchor, t_anchor)
/// (0-based, inclusive: the anchor pair is scored once). Runs a banded-ish
/// dynamic program forward and backward from the anchor, abandoning cells
/// more than `xdrop` below the running best. `columns_out`, when non-null,
/// is incremented by the number of DP columns the extension touched.
Extension ExtendGapped(std::span<const seq::Symbol> query,
                       std::span<const seq::Symbol> target, uint64_t q_anchor,
                       uint64_t t_anchor,
                       const score::SubstitutionMatrix& matrix,
                       score::ScoreT xdrop, uint64_t* columns_out = nullptr);

}  // namespace blast
}  // namespace oasis
