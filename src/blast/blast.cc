// BLAST database scan: seeding, extension, E-value filtering.

#include "blast/blast.h"

#include <algorithm>
#include <unordered_map>

#include "blast/extend.h"
#include "util/logging.h"

namespace oasis {
namespace blast {

using score::ScoreT;

namespace {

/// Per-sequence scan state for two-hit seeding: the last hit's target
/// position per diagonal (diagonal = t_pos - q_pos, shifted to stay
/// non-negative). Matches the NCBI convention: a hit that overlaps the
/// previous hit on its diagonal does not replace it — otherwise a
/// contiguous run of word hits could never produce a non-overlapping pair.
class DiagonalTracker {
 public:
  DiagonalTracker(size_t query_len, size_t target_len, uint32_t word,
                  uint32_t window)
      : shift_(query_len), word_(word), window_(window),
        last_hit_(query_len + target_len + 1, kEmpty) {}

  static constexpr int64_t kEmpty = -1;

  /// Returns true when (q_pos, t_pos) completes a two-hit pair: a prior
  /// non-overlapping hit on the same diagonal within the window.
  bool RecordAndCheck(uint64_t q_pos, uint64_t t_pos) {
    size_t d = static_cast<size_t>(
        static_cast<int64_t>(t_pos) - static_cast<int64_t>(q_pos) +
        static_cast<int64_t>(shift_));
    int64_t prev = last_hit_[d];
    if (prev != kEmpty && t_pos < static_cast<uint64_t>(prev) + word_) {
      return false;  // overlap: keep the older hit as the pairing anchor
    }
    last_hit_[d] = static_cast<int64_t>(t_pos);
    return prev != kEmpty &&
           t_pos - static_cast<uint64_t>(prev) <= window_;
  }

 private:
  size_t shift_;
  uint32_t word_;
  uint32_t window_;
  std::vector<int64_t> last_hit_;
};

}  // namespace

util::StatusOr<std::vector<BlastHit>> Search(const BlastQuery& query,
                                             const seq::SequenceDatabase& db,
                                             const score::SubstitutionMatrix& matrix,
                                             const score::KarlinParams& karlin,
                                             BlastStats* stats) {
  const BlastOptions& opt = query.options();
  const std::vector<seq::Symbol>& q = query.query();
  const uint32_t w = opt.word_size;
  // Resolve SIMD dispatch once for the whole search, not per seed.
  const align::simd::SimdLevel simd_level = align::simd::ResolveLevel(opt.simd);
  BlastStats local_stats;

  std::vector<BlastHit> hits;
  const uint64_t db_residues = db.num_residues();

  for (seq::SequenceId sid = 0; sid < db.num_sequences(); ++sid) {
    const seq::Sequence& target = db.sequence(sid);
    const std::vector<seq::Symbol>& t = target.symbols();
    if (t.size() < w) continue;
    // Gentle masking: a word that touches any soft-masked position never
    // seeds (the count below rolls how many of the window's w positions
    // are masked), but extension stays mask-blind — it runs straight
    // through repeats at full score, so real alignments survive intact.
    const std::vector<uint8_t>* mask =
        opt.mask_seeds && target.has_mask() ? &target.mask() : nullptr;
    uint32_t masked_in_window = 0;
    if (mask != nullptr) {
      for (uint64_t i = 0; i + 1 < w; ++i) masked_in_window += (*mask)[i];
    }

    DiagonalTracker diagonals(q.size(), t.size(), w, opt.two_hit_window);
    // Extension dedup: best gapped score per sequence; skip seeds that fall
    // inside an already-extended region on the same diagonal.
    struct Region {
      uint64_t q_start, q_end, t_start, t_end;
    };
    std::vector<Region> covered;
    ScoreT best_score = 0;
    uint64_t best_qe = 0, best_te = 0;

    // Rolling word scan over the target.
    for (uint64_t tp = 0; tp + w <= t.size(); ++tp) {
      if (mask != nullptr) {
        masked_in_window += (*mask)[tp + w - 1];  // window gains tp+w-1
        const bool skip = masked_in_window > 0;
        if (skip) ++local_stats.masked_words;
        // The window loses tp on the next iteration either way.
        masked_in_window -= (*mask)[tp];
        if (skip) continue;
      }
      uint64_t code = query.EncodeWord(&t[tp]);
      for (uint32_t qp : query.Positions(code)) {
        ++local_stats.word_hits;
        if (opt.two_hit && !diagonals.RecordAndCheck(qp, tp)) continue;
        // Skip if inside an already-extended region (same diagonal band).
        bool redundant = false;
        for (const Region& r : covered) {
          if (qp >= r.q_start && qp + w - 1 <= r.q_end && tp >= r.t_start &&
              tp + w - 1 <= r.t_end) {
            redundant = true;
            break;
          }
        }
        if (redundant) continue;

        ++local_stats.seeds_extended;
        Extension ungapped = ExtendUngapped(q, t, qp, tp, w, matrix,
                                            opt.ungapped_xdrop, simd_level);
        // Each ungapped extension processes ~(segment length) target
        // symbols; count it in column-equivalents.
        local_stats.columns_expanded +=
            ungapped.target_end - ungapped.target_start + 1;
        if (ungapped.score < opt.gapped_trigger) continue;

        ++local_stats.gapped_extensions;
        // Anchor the gapped pass at the middle of the ungapped segment.
        uint64_t qa = (ungapped.query_start + ungapped.query_end) / 2;
        uint64_t ta = (ungapped.target_start + ungapped.target_end) / 2;
        Extension gapped = ExtendGapped(q, t, qa, ta, matrix, opt.gapped_xdrop,
                                        &local_stats.columns_expanded);
        covered.push_back(Region{gapped.query_start, gapped.query_end,
                                 gapped.target_start, gapped.target_end});
        if (gapped.score > best_score) {
          best_score = gapped.score;
          best_qe = gapped.query_end;
          best_te = gapped.target_end;
        }
      }
    }

    if (best_score > 0) {
      double evalue =
          score::EValueForScore(karlin, best_score, q.size(), db_residues);
      if (evalue <= opt.evalue_cutoff) {
        BlastHit hit;
        hit.sequence_id = sid;
        hit.score = best_score;
        hit.evalue = evalue;
        hit.query_end = best_qe;
        hit.target_end = best_te;
        hits.push_back(hit);
      }
    }
  }

  std::stable_sort(hits.begin(), hits.end(),
                   [](const BlastHit& a, const BlastHit& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.sequence_id < b.sequence_id;
                   });
  if (stats != nullptr) *stats = local_stats;
  return hits;
}

}  // namespace blast
}  // namespace oasis
