// BlastQuery::Prepare — query word table with neighborhood expansion.

#include <algorithm>
#include <functional>

#include "blast/blast.h"
#include "util/logging.h"

namespace oasis {
namespace blast {

using score::ScoreT;

namespace {

/// Recursively enumerates all length-w words whose cumulative substitution
/// score against query_word is >= threshold, pruning with the per-position
/// best-possible remainder (branch and bound over sigma^w).
void EnumerateNeighbors(const score::SubstitutionMatrix& matrix,
                        const seq::Symbol* query_word, uint32_t word,
                        ScoreT threshold, const std::vector<ScoreT>& suffix_max,
                        uint32_t depth, uint64_t code_prefix, ScoreT score_prefix,
                        const std::function<void(uint64_t)>& emit) {
  const uint32_t sigma = matrix.size();
  if (depth == word) {
    if (score_prefix >= threshold) emit(code_prefix);
    return;
  }
  for (uint32_t b = 0; b < sigma; ++b) {
    ScoreT s = score_prefix + matrix.Score(query_word[depth], b);
    // suffix_max[depth + 1]: best achievable over remaining positions.
    if (s + suffix_max[depth + 1] < threshold) continue;
    EnumerateNeighbors(matrix, query_word, word, threshold, suffix_max,
                       depth + 1, code_prefix * sigma + b, s, emit);
  }
}

}  // namespace

uint64_t BlastQuery::EncodeWord(const seq::Symbol* word) const {
  uint64_t code = 0;
  for (uint32_t k = 0; k < options_.word_size; ++k) {
    code = code * sigma_ + word[k];
  }
  return code;
}

std::span<const uint32_t> BlastQuery::Positions(uint64_t word_code) const {
  if (word_code + 1 >= offsets_.size()) return {};
  uint32_t begin = offsets_[word_code];
  uint32_t end = offsets_[word_code + 1];
  return std::span<const uint32_t>(positions_.data() + begin, end - begin);
}

util::StatusOr<BlastQuery> BlastQuery::Prepare(
    std::span<const seq::Symbol> query, const score::SubstitutionMatrix& matrix,
    const BlastOptions& options) {
  if (options.word_size == 0) {
    return util::Status::InvalidArgument("word size must be positive");
  }
  if (query.size() < options.word_size) {
    return util::Status::InvalidArgument(
        "query (length " + std::to_string(query.size()) +
        ") shorter than the word size " + std::to_string(options.word_size));
  }
  const uint32_t sigma = matrix.size();
  double table = 1.0;
  for (uint32_t i = 0; i < options.word_size; ++i) table *= sigma;
  if (table > (1u << 28)) {
    return util::Status::InvalidArgument(
        "word table too large (sigma^w overflow); reduce word size");
  }

  BlastQuery out;
  out.query_.assign(query.begin(), query.end());
  out.options_ = options;
  if (matrix.alphabet().kind() == seq::AlphabetKind::kDna) {
    out.options_.exact_words_only = true;  // blastn semantics
  }
  out.sigma_ = sigma;
  out.table_size_ = static_cast<uint64_t>(table);

  // Gather (code, query_pos) pairs.
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  const uint32_t w = options.word_size;
  const uint32_t num_query_words = static_cast<uint32_t>(query.size()) - w + 1;

  if (out.options_.exact_words_only) {
    for (uint32_t pos = 0; pos < num_query_words; ++pos) {
      entries.push_back({out.EncodeWord(&query[pos]), pos});
    }
  } else {
    // Per-position maximum attainable remainder for branch-and-bound.
    for (uint32_t pos = 0; pos < num_query_words; ++pos) {
      std::vector<ScoreT> suffix_max(w + 1, 0);
      for (int d = static_cast<int>(w) - 1; d >= 0; --d) {
        suffix_max[d] =
            suffix_max[d + 1] + matrix.MaxScoreForResidue(query[pos + d]);
      }
      EnumerateNeighbors(matrix, &query[pos], w, options.neighbor_threshold,
                         suffix_max, 0, 0, 0, [&](uint64_t code) {
                           entries.push_back({code, pos});
                         });
    }
  }

  std::sort(entries.begin(), entries.end());
  out.num_entries_ = entries.size();
  out.offsets_.assign(out.table_size_ + 1, 0);
  for (const auto& [code, pos] : entries) ++out.offsets_[code + 1];
  for (size_t i = 1; i < out.offsets_.size(); ++i) {
    out.offsets_[i] += out.offsets_[i - 1];
  }
  out.positions_.reserve(entries.size());
  for (const auto& [code, pos] : entries) out.positions_.push_back(pos);
  return out;
}

}  // namespace blast
}  // namespace oasis
