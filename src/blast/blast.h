// BLAST-style heuristic local-alignment search (the paper's baseline
// comparator, §1 and §4.3).
//
// A from-scratch blastp/blastn-style pipeline:
//   1. the query is decomposed into all length-w words; for protein
//      searches each word is expanded into its *neighborhood* — every
//      length-w word whose aggregate substitution score against the query
//      word is >= threshold T (for DNA, exact words only, as in blastn);
//   2. a lookup table maps every neighborhood word to its query positions;
//   3. the database is scanned once; each word hit seeds an ungapped
//      X-drop extension (one-hit mode), or requires a second recent hit on
//      the same diagonal first (two-hit mode);
//   4. ungapped extensions scoring >= the gapped trigger enter a gapped
//      X-drop extension under the fixed gap penalty model;
//   5. per-sequence best hits with E-value <= the cutoff are reported.
//
// Because seeding requires a length-w exact-ish word hit, matches without
// one are missed — the inaccuracy OASIS eliminates (Figure 5 measures it).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/smith_waterman.h"
#include "score/karlin.h"
#include "score/substitution_matrix.h"
#include "seq/database.h"

namespace oasis {
namespace blast {

struct BlastOptions {
  /// Word size: 3 is the blastp default; DNA searches typically use 11.
  uint32_t word_size = 3;
  /// Neighborhood threshold T (protein only): a word is a neighbor of a
  /// query word when its pairwise score is >= T.
  score::ScoreT neighbor_threshold = 13;
  /// Use exact words only (no neighborhood); forced for DNA.
  bool exact_words_only = false;
  /// Two-hit seeding: require two non-overlapping hits on one diagonal
  /// within `two_hit_window` before extending.
  bool two_hit = false;
  uint32_t two_hit_window = 40;
  /// X-drop for the ungapped extension.
  score::ScoreT ungapped_xdrop = 7;
  /// Ungapped score required to trigger a gapped extension.
  score::ScoreT gapped_trigger = 15;
  /// X-drop for the gapped extension.
  score::ScoreT gapped_xdrop = 25;
  /// E-value cutoff: hits with E > evalue_cutoff are dropped.
  double evalue_cutoff = 10.0;
  /// SIMD dispatch for the extension stage (resolved once per Search;
  /// every mode produces identical hits). Engine::BlastSearch overrides
  /// kAuto with its configured EngineOptions::simd_mode.
  align::simd::SimdMode simd = align::simd::SimdMode::kAuto;
  /// Gentle (LAST-style) masking: skip database words that touch a
  /// soft-masked target position, so low-complexity repeats never *seed*
  /// — but extensions still run straight through masked regions at full
  /// score, so a real alignment crossing a repeat is reported intact.
  /// Sequences without a mask are unaffected. Engine::BlastSearch turns
  /// this on when the index was built with soft masking.
  bool mask_seeds = false;
};

/// One reported database hit.
struct BlastHit {
  seq::SequenceId sequence_id = 0;
  score::ScoreT score = 0;
  double evalue = 0.0;
  uint64_t query_end = 0;   ///< 0-based inclusive coordinates of the best
  uint64_t target_end = 0;  ///< gapped-extension cell
};

struct BlastStats {
  uint64_t masked_words = 0;  ///< database words skipped by mask_seeds
  uint64_t word_hits = 0;
  uint64_t seeds_extended = 0;      ///< ungapped extensions run
  uint64_t gapped_extensions = 0;
  uint64_t columns_expanded = 0;    ///< DP-column-equivalents, for Figure 4
};

/// A prepared query: neighborhood word lookup table. Reusable across
/// databases.
class BlastQuery {
 public:
  /// Builds the word table. Fails when the query is shorter than the word
  /// size or the options are inconsistent.
  static util::StatusOr<BlastQuery> Prepare(std::span<const seq::Symbol> query,
                                            const score::SubstitutionMatrix& matrix,
                                            const BlastOptions& options);

  /// Query positions (offsets of the word's first symbol) seeded by the
  /// database word starting with code `word_code`.
  std::span<const uint32_t> Positions(uint64_t word_code) const;

  uint64_t num_words() const { return table_size_; }
  uint64_t num_neighbor_entries() const { return num_entries_; }
  const std::vector<seq::Symbol>& query() const { return query_; }
  const BlastOptions& options() const { return options_; }

  /// Encodes `word_size` residues as a dense table code.
  uint64_t EncodeWord(const seq::Symbol* word) const;

 private:
  BlastQuery() = default;

  std::vector<seq::Symbol> query_;
  BlastOptions options_;
  uint32_t sigma_ = 0;
  uint64_t table_size_ = 0;
  uint64_t num_entries_ = 0;
  /// CSR layout: offsets_[code] .. offsets_[code+1] index into positions_.
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> positions_;
};

/// Runs the full search. Results: best hit per sequence with
/// E <= options.evalue_cutoff, sorted by descending score. `karlin` supplies
/// the E-value statistics (use score::ComputeKarlinParams).
util::StatusOr<std::vector<BlastHit>> Search(const BlastQuery& query,
                                             const seq::SequenceDatabase& db,
                                             const score::SubstitutionMatrix& matrix,
                                             const score::KarlinParams& karlin,
                                             BlastStats* stats = nullptr);

}  // namespace blast
}  // namespace oasis
