#include "blast/extend.h"

#include <algorithm>
#include <vector>

#include "align/simd/ungapped.h"
#include "util/logging.h"

namespace oasis {
namespace blast {

using score::kNegInf;
using score::ScoreT;

Extension ExtendUngapped(std::span<const seq::Symbol> query,
                         std::span<const seq::Symbol> target, uint64_t q_pos,
                         uint64_t t_pos, uint32_t word,
                         const score::SubstitutionMatrix& matrix, ScoreT xdrop,
                         align::simd::SimdLevel level) {
  // Score of the seed word itself.
  ScoreT seed_score = 0;
  for (uint32_t k = 0; k < word; ++k) {
    seed_score += matrix.Score(query[q_pos + k], target[t_pos + k]);
  }

  Extension ext;
  ext.query_start = q_pos;
  ext.target_start = t_pos;
  ext.query_end = q_pos + word - 1;
  ext.target_end = t_pos + word - 1;

  // Both directions walk one diagonal with the X-drop rule; the kernel
  // (align/simd/ungapped.h) returns best score + step count with the
  // scalar loop's exact semantics, and the step count maps back to the
  // inclusive end coordinates ("best never improved" keeps the seed
  // bounds, exactly as the old in-place loops did).

  // Extend right, starting just past the word.
  const uint64_t r_q0 = q_pos + word, r_t0 = t_pos + word;
  const uint64_t right_steps =
      std::min(query.size() > r_q0 ? query.size() - r_q0 : 0,
               target.size() > r_t0 ? target.size() - r_t0 : 0);
  const align::simd::DiagExtension right = align::simd::ExtendDiagonal(
      query, target, r_q0, r_t0, /*dir=*/+1, right_steps, matrix, xdrop,
      level);
  if (right.steps > 0) {
    ext.query_end = r_q0 + right.steps - 1;
    ext.target_end = r_t0 + right.steps - 1;
  }

  // Extend left, starting just before the word.
  const uint64_t left_steps = std::min(q_pos, t_pos);
  align::simd::DiagExtension left;
  if (left_steps > 0) {
    left = align::simd::ExtendDiagonal(query, target, q_pos - 1, t_pos - 1,
                                       /*dir=*/-1, left_steps, matrix, xdrop,
                                       level);
    if (left.steps > 0) {
      ext.query_start = q_pos - left.steps;
      ext.target_start = t_pos - left.steps;
    }
  }

  ext.score = seed_score + right.best + left.best;
  return ext;
}

namespace {

/// One direction of the gapped X-drop DP. Aligns query[q0, q0+dir, ...] vs
/// target[t0, ...] moving away from the anchor; returns the best score
/// found and its (query, target) offsets *from the anchor* (0 = the cell
/// adjacent to the anchor was not improved upon).
struct HalfExtension {
  ScoreT score = 0;
  uint64_t q_span = 0;  ///< symbols consumed on the query side
  uint64_t t_span = 0;
};

/// Forward == true extends towards larger indices starting just past the
/// anchor; forward == false extends towards smaller indices starting just
/// before it. The DP is the plain fixed-gap recurrence; cells that fall
/// more than `xdrop` below the global best are pruned, and a row stops
/// when all of its live cells are pruned.
HalfExtension GappedHalf(std::span<const seq::Symbol> query,
                         std::span<const seq::Symbol> target, uint64_t q_anchor,
                         uint64_t t_anchor, bool forward,
                         const score::SubstitutionMatrix& matrix, ScoreT xdrop,
                         uint64_t* columns_out) {
  const ScoreT gap = matrix.gap_penalty();
  const uint64_t qn = forward ? query.size() - (q_anchor + 1) : q_anchor;
  const uint64_t tn = forward ? target.size() - (t_anchor + 1) : t_anchor;

  auto q_at = [&](uint64_t i) {  // i in [1, qn]
    return forward ? query[q_anchor + i] : query[q_anchor - i];
  };
  auto t_at = [&](uint64_t j) {
    return forward ? target[t_anchor + j] : target[t_anchor - j];
  };

  HalfExtension best;
  if (tn == 0 || qn == 0) {
    // Degenerate: can still slide along one side, but pure-gap extensions
    // never help (gap < 0), so the empty extension is optimal.
    return best;
  }

  // prev[i] = score of best path consuming i query symbols and j-1 target
  // symbols. Band is implicit via X-drop pruning.
  std::vector<ScoreT> prev(qn + 1, kNegInf), cur(qn + 1, kNegInf);
  prev[0] = 0;
  for (uint64_t i = 1; i <= qn; ++i) {
    prev[i] = prev[i - 1] + gap;
    if (prev[i] < -xdrop) prev[i] = kNegInf;
  }

  for (uint64_t j = 1; j <= tn; ++j) {
    bool any_live = false;
    cur[0] = (static_cast<ScoreT>(j) * gap >= best.score - xdrop)
                 ? static_cast<ScoreT>(j) * gap
                 : kNegInf;
    if (cur[0] != kNegInf) any_live = true;
    for (uint64_t i = 1; i <= qn; ++i) {
      ScoreT rep = prev[i - 1] == kNegInf
                       ? kNegInf
                       : prev[i - 1] + matrix.Score(q_at(i), t_at(j));
      ScoreT ins = prev[i] == kNegInf ? kNegInf : prev[i] + gap;
      ScoreT del = cur[i - 1] == kNegInf ? kNegInf : cur[i - 1] + gap;
      ScoreT v = std::max({rep, ins, del});
      if (v != kNegInf && v < best.score - xdrop) v = kNegInf;
      cur[i] = v;
      if (v == kNegInf) continue;
      any_live = true;
      if (v > best.score) {
        best.score = v;
        best.q_span = i;
        best.t_span = j;
      }
    }
    if (columns_out != nullptr) ++*columns_out;
    if (!any_live) break;
    std::swap(prev, cur);
  }
  return best;
}

}  // namespace

Extension ExtendGapped(std::span<const seq::Symbol> query,
                       std::span<const seq::Symbol> target, uint64_t q_anchor,
                       uint64_t t_anchor,
                       const score::SubstitutionMatrix& matrix, ScoreT xdrop,
                       uint64_t* columns_out) {
  OASIS_DCHECK(q_anchor < query.size());
  OASIS_DCHECK(t_anchor < target.size());

  HalfExtension fwd = GappedHalf(query, target, q_anchor, t_anchor,
                                 /*forward=*/true, matrix, xdrop, columns_out);
  HalfExtension bwd = GappedHalf(query, target, q_anchor, t_anchor,
                                 /*forward=*/false, matrix, xdrop, columns_out);

  Extension ext;
  ext.score = matrix.Score(query[q_anchor], target[t_anchor]) + fwd.score +
              bwd.score;
  ext.query_start = q_anchor - bwd.q_span;
  ext.target_start = t_anchor - bwd.t_span;
  ext.query_end = q_anchor + fwd.q_span;
  ext.target_end = t_anchor + fwd.t_span;
  return ext;
}

}  // namespace blast
}  // namespace oasis
