// Hot-query result cache for oasisd.
//
// The daemon's whole point is that repeat traffic is cheap: the pool keeps
// hot index blocks resident, and this cache goes one step further for
// *identical* queries — the formatted hit lines of a completed stream are
// kept and replayed without touching the search at all. Keys are
// (engine epoch | canonical request), so reopening an index — a new
// Engine, hence a new epoch — implicitly invalidates every entry for it;
// no explicit flush protocol is needed. Values are the exact bytes the
// live stream produced, which makes cached replays trivially
// byte-identical to uncached ones.
//
// Only streams that ran to completion are inserted: a deadline- or
// cancel-aborted stream is a prefix, and serving a prefix as the full
// answer would be silent corruption.
//
// Bounded by total byte size with LRU eviction under one mutex — lookups
// copy a shared_ptr out, so streaming a cached result never holds the
// lock.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace server {

/// The cached value: a completed stream's formatted hit lines, in emission
/// order. Shared so eviction can race a replay harmlessly.
using CachedResult = std::shared_ptr<const std::vector<std::string>>;

/// Thread-safe LRU cache of completed result streams, bounded by bytes.
class ResultCache {
 public:
  /// Monotone counters plus the live footprint.
  struct Stats {
    uint64_t lookups = 0;     ///< Lookup() calls
    uint64_t hits = 0;        ///< lookups that returned an entry
    uint64_t insertions = 0;  ///< completed streams stored
    uint64_t evictions = 0;   ///< entries dropped to fit the budget
    uint64_t entries = 0;     ///< live entries
    uint64_t bytes = 0;       ///< live footprint (keys + lines)
  };

  /// A cache that never holds more than `capacity_bytes` of entries.
  /// 0 disables caching entirely (every Lookup misses, Insert is a no-op).
  explicit ResultCache(uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The entry for `key`, nullptr on miss. A hit refreshes LRU recency.
  CachedResult Lookup(const std::string& key);

  /// Stores a completed stream under `key`, evicting least-recently-used
  /// entries until it fits. An entry larger than the whole capacity is
  /// not stored. Re-inserting an existing key replaces its value.
  void Insert(const std::string& key, CachedResult lines);

  /// Point-in-time counters (for /stats).
  Stats stats() const;
  /// The configured byte budget; 0 means caching is disabled.
  uint64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  /// Footprint of one entry: its key plus every cached line.
  static uint64_t EntryBytes(const std::string& key,
                             const CachedResult& lines);

  struct Entry {
    std::string key;
    CachedResult lines;
    uint64_t bytes = 0;
  };

  const uint64_t capacity_bytes_;
  mutable util::Mutex mu_;
  /// front = most recent
  std::list<Entry> lru_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_) = 0;
  uint64_t lookups_ GUARDED_BY(mu_) = 0;
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t insertions_ GUARDED_BY(mu_) = 0;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace oasis
