#include "server/result_cache.h"

namespace oasis {
namespace server {

uint64_t ResultCache::EntryBytes(const std::string& key,
                                 const CachedResult& lines) {
  uint64_t bytes = key.size();
  if (lines != nullptr) {
    for (const std::string& line : *lines) bytes += line.size();
  }
  return bytes;
}

CachedResult ResultCache::Lookup(const std::string& key) {
  util::MutexLock lock(mu_);
  ++lookups_;
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  ++hits_;
  // Refresh recency: splice the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->lines;
}

void ResultCache::Insert(const std::string& key, CachedResult lines) {
  if (capacity_bytes_ == 0 || lines == nullptr) return;
  const uint64_t entry_bytes = EntryBytes(key, lines);
  if (entry_bytes > capacity_bytes_) return;
  util::MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->lines = std::move(lines);
    it->second->bytes = entry_bytes;
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(lines), entry_bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += entry_bytes;
    ++insertions_;
  }
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mu_);
  Stats stats;
  stats.lookups = lookups_;
  stats.hits = hits_;
  stats.insertions = insertions_;
  stats.evictions = evictions_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace server
}  // namespace oasis
