#include "server/session.h"

#include <string>

#include "util/thread_annotations.h"

namespace oasis {
namespace server {

void SessionRegistry::Ticket::Release() {
  if (registry_ != nullptr) {
    registry_->Release(id_);
    registry_ = nullptr;
  }
}

util::StatusOr<SessionRegistry::Ticket> SessionRegistry::Admit() {
  // The pressure probe reads pool atomics; keep it outside the lock.
  double pinned = 0.0;
  if (options_.pinned_fraction && options_.max_pinned_fraction < 1.0) {
    pinned = options_.pinned_fraction();
  }
  util::MutexLock lock(mu_);
  if (draining_) {
    ++rejected_draining_;
    return util::Status::Unavailable("server is shutting down");
  }
  if (active_.size() >= options_.max_inflight) {
    ++rejected_inflight_;
    return util::Status::Unavailable(
        "server at max in-flight queries (" +
        std::to_string(options_.max_inflight) + "); retry later");
  }
  if (pinned > options_.max_pinned_fraction) {
    ++rejected_pressure_;
    return util::Status::Unavailable(
        "buffer pool under pressure (" + std::to_string(pinned) +
        " of frames pinned); retry later");
  }
  const uint64_t id = next_id_++;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  active_.emplace(id, cancel);
  ++admitted_;
  return Ticket(this, id, std::move(cancel));
}

void SessionRegistry::Release(uint64_t id) {
  util::MutexLock lock(mu_);
  active_.erase(id);
  if (active_.empty()) idle_cv_.NotifyAll();
}

void SessionRegistry::BeginDrain() {
  util::MutexLock lock(mu_);
  draining_ = true;
}

bool SessionRegistry::draining() const {
  util::MutexLock lock(mu_);
  return draining_;
}

bool SessionRegistry::WaitIdle(std::chrono::milliseconds timeout) {
  util::MutexLock lock(mu_);
  // The predicate runs with mu_ held (condvar contract), but the analysis
  // cannot see through the timed-wait template, so it is exempted.
  return idle_cv_.WaitFor(
      mu_, timeout,
      [this]() NO_THREAD_SAFETY_ANALYSIS { return active_.empty(); });
}

void SessionRegistry::CancelAll() {
  util::MutexLock lock(mu_);
  for (auto& [id, cancel] : active_) {
    cancel->store(true, std::memory_order_relaxed);
  }
}

SessionRegistry::Stats SessionRegistry::stats() const {
  util::MutexLock lock(mu_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected_inflight = rejected_inflight_;
  stats.rejected_pressure = rejected_pressure_;
  stats.rejected_draining = rejected_draining_;
  stats.active = static_cast<uint32_t>(active_.size());
  return stats;
}

}  // namespace server
}  // namespace oasis
