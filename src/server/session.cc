#include "server/session.h"

#include <string>

namespace oasis {
namespace server {

void SessionRegistry::Ticket::Release() {
  if (registry_ != nullptr) {
    registry_->Release(id_);
    registry_ = nullptr;
  }
}

util::StatusOr<SessionRegistry::Ticket> SessionRegistry::Admit() {
  // The pressure probe reads pool atomics; keep it outside the lock.
  double pinned = 0.0;
  if (options_.pinned_fraction && options_.max_pinned_fraction < 1.0) {
    pinned = options_.pinned_fraction();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    ++rejected_draining_;
    return util::Status::Unavailable("server is shutting down");
  }
  if (active_.size() >= options_.max_inflight) {
    ++rejected_inflight_;
    return util::Status::Unavailable(
        "server at max in-flight queries (" +
        std::to_string(options_.max_inflight) + "); retry later");
  }
  if (pinned > options_.max_pinned_fraction) {
    ++rejected_pressure_;
    return util::Status::Unavailable(
        "buffer pool under pressure (" + std::to_string(pinned) +
        " of frames pinned); retry later");
  }
  const uint64_t id = next_id_++;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  active_.emplace(id, cancel);
  ++admitted_;
  return Ticket(this, id, std::move(cancel));
}

void SessionRegistry::Release(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(id);
  if (active_.empty()) idle_cv_.notify_all();
}

void SessionRegistry::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

bool SessionRegistry::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

bool SessionRegistry::WaitIdle(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, timeout,
                           [this]() { return active_.empty(); });
}

void SessionRegistry::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, cancel] : active_) {
    cancel->store(true, std::memory_order_relaxed);
  }
}

SessionRegistry::Stats SessionRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.admitted = admitted_;
  stats.rejected_inflight = rejected_inflight_;
  stats.rejected_pressure = rejected_pressure_;
  stats.rejected_draining = rejected_draining_;
  stats.active = static_cast<uint32_t>(active_.size());
  return stats;
}

}  // namespace server
}  // namespace oasis
