// Client side of the oasisd wire protocol.
//
// A thin blocking client over one TCP connection: Query() streams hits to
// a callback as the kHit frames arrive (the daemon's online property ends
// at the consumer, not at a buffering proxy), Stats() fetches the /stats
// JSON document, Ping() probes liveness. oasis_cli's --connect mode is a
// direct wrapper; tests drive it against an in-process Server.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/status.h"

namespace oasis {
namespace server {

/// One blocking connection to an oasisd. Move-only; Close() (or
/// destruction) closes the socket.
class DaemonClient {
 public:
  /// Invoked once per streamed hit line, in arrival (= proof) order.
  /// Return false to cancel: the client sends a kCancel frame and drains
  /// the stream to its terminator.
  using HitCallback = std::function<bool(std::string_view line)>;

  /// How a completed Query() ended.
  struct QueryOutcome {
    uint64_t hits = 0;    ///< hit lines delivered to the callback
    bool cached = false;  ///< served from the daemon's result cache
  };

  /// Connects to `host`:`port` (IPv4 dotted-quad or "localhost").
  static util::StatusOr<DaemonClient> Connect(const std::string& host,
                                              uint16_t port);

  DaemonClient(DaemonClient&& other) noexcept { *this = std::move(other); }
  DaemonClient& operator=(DaemonClient&& other) noexcept {
    Close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
    return *this;
  }
  /// Closes the connection if still open.
  ~DaemonClient() { Close(); }

  /// Runs one query, streaming each hit line to `on_hit` as it arrives.
  /// Returns the outcome on a completed stream; a kError terminator comes
  /// back as the decoded Status (kDeadlineExceeded / kCancelled /
  /// kUnavailable / ...), with every hit line streamed before the abort
  /// already delivered. A callback-initiated cancel that races stream
  /// completion may legitimately end in kDone — callers treat both as
  /// success.
  util::StatusOr<QueryOutcome> Query(const WireRequest& request,
                                     const HitCallback& on_hit);

  /// Fetches the daemon's /stats JSON document.
  util::StatusOr<std::string> Stats();

  /// Round-trips a ping.
  util::Status Ping();

  /// Closes the connection. Idempotent.
  void Close();

 private:
  explicit DaemonClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;  ///< partial-frame receive buffer
};

}  // namespace server
}  // namespace oasis
