#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace oasis {
namespace server {

util::StatusOr<DaemonClient> DaemonClient::Connect(const std::string& host,
                                                   uint16_t port) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("cannot parse host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("connect " + host + ":" +
                                 std::to_string(port) + ": " + err);
  }
  // The protocol is many small frames with strict request/response turns:
  // Nagle + delayed ACK would stall every turn ~40ms, so disable batching.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return DaemonClient(fd);
}

void DaemonClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

util::StatusOr<DaemonClient::QueryOutcome> DaemonClient::Query(
    const WireRequest& request, const HitCallback& on_hit) {
  if (fd_ < 0) return util::Status::IOError("client is closed");
  OASIS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kQuery, request.Encode()));
  QueryOutcome outcome;
  bool cancel_sent = false;
  while (true) {
    Frame frame;
    OASIS_RETURN_NOT_OK(RecvFrame(fd_, &buf_, &frame));
    switch (frame.type) {
      case FrameType::kHit: {
        ++outcome.hits;
        // After a cancel the remaining in-flight hits still arrive (they
        // were proven before the daemon saw the cancel); keep counting
        // but stop delivering.
        const bool keep_going =
            cancel_sent || (on_hit ? on_hit(frame.payload) : true);
        if (!keep_going && !cancel_sent) {
          OASIS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kCancel, ""));
          cancel_sent = true;
        }
        break;
      }
      case FrameType::kDone: {
        OASIS_ASSIGN_OR_RETURN(DoneInfo done, ParseDone(frame.payload));
        outcome.cached = done.cached;
        return outcome;
      }
      case FrameType::kError:
        return DecodeError(frame.payload);
      default:
        return util::Status::Corruption(
            "unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)) +
            " inside a result stream");
    }
  }
}

util::StatusOr<std::string> DaemonClient::Stats() {
  if (fd_ < 0) return util::Status::IOError("client is closed");
  OASIS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kStats, ""));
  Frame frame;
  OASIS_RETURN_NOT_OK(RecvFrame(fd_, &buf_, &frame));
  if (frame.type == FrameType::kError) return DecodeError(frame.payload);
  if (frame.type != FrameType::kStatsJson) {
    return util::Status::Corruption("expected a stats frame, got type " +
                                    std::to_string(
                                        static_cast<int>(frame.type)));
  }
  return std::move(frame.payload);
}

util::Status DaemonClient::Ping() {
  if (fd_ < 0) return util::Status::IOError("client is closed");
  OASIS_RETURN_NOT_OK(SendFrame(fd_, FrameType::kPing, ""));
  Frame frame;
  OASIS_RETURN_NOT_OK(RecvFrame(fd_, &buf_, &frame));
  if (frame.type != FrameType::kPong) {
    return util::Status::Corruption("expected a pong, got frame type " +
                                    std::to_string(
                                        static_cast<int>(frame.type)));
  }
  return util::Status::OK();
}

}  // namespace server
}  // namespace oasis
