// oasisd's command-line surface, parsed apart from main() so every range
// check is unit-testable (tests/server_test.cc) — the same discipline
// util/flag_parse.h brought to oasis_cli: a typo'd flag fails loudly by
// name, it never wraps into a 4-billion-thread request.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "server/server.h"
#include "util/status.h"

namespace oasis {
namespace server {

// Flag ranges. Wide enough for any sane deployment, narrow enough that a
// typo cannot ask for terabytes of cache or a year-long deadline.
inline constexpr uint32_t kMaxInflightLimit = 4096;     ///< --max-inflight cap
inline constexpr uint64_t kMaxResultCacheMb = 4096;     ///< 4 GiB of cache
inline constexpr uint64_t kMaxDeadlineMs = 1ull << 31;  ///< ~24.8 days
inline constexpr uint64_t kMaxPoolMb = 1ull << 20;      ///< 1 TiB of pool
inline constexpr uint64_t kMaxDrainTimeoutMs = 600000;  ///< 10 minutes

/// Everything main() needs to boot a daemon: which indexes to open, how
/// to open them, and the server knobs.
struct DaemonConfig {
  /// (name, index directory) pairs, in flag order; the first is the
  /// default index.
  std::vector<std::pair<std::string, std::string>> indexes;
  /// Engine construction knobs shared by every opened index.
  api::EngineOptions engine;
  /// Listener / admission / cache / deadline knobs.
  ServerOptions server;
};

/// Parses oasisd's arguments (argv[1..]):
///
///   --index [NAME=]DIR     serve this index (repeatable; required at
///                          least once; NAME defaults to DIR's basename)
///   --host HOST            listen address          (default 127.0.0.1)
///   --port PORT            listen port, 0=ephemeral (default 0)
///   --max-inflight N       admission cap            (default 64)
///   --result-cache-mb MB   result cache, 0=off      (default 16)
///   --deadline-ms MS       server-side deadline cap (default none)
///   --max-pinned-fraction F reject above this pool pressure (default 0.95)
///   --drain-timeout-ms MS  shutdown grace window    (default 5000)
///   --pool-mb MB           shared buffer pool size  (default 64)
///   --io-mode auto|pooled|mmap                      (default pooled)
///   --readahead K|auto     speculative readahead    (default off)
///   --simd auto|avx2|sse4|off  alignment kernels    (default auto)
///   --mask off|soft        repeat masking for appends to the served
///                          indexes (an index built soft stays soft
///                          regardless; default off)
///
/// Every numeric value is range-checked via util/flag_parse; the returned
/// status names the offending flag. The daemon defaults to the pooled
/// I/O path (not auto): admission control and /stats are built on the
/// pool's live counters, so silently resolving to mmap would disable
/// both.
util::StatusOr<DaemonConfig> ParseDaemonArgs(
    const std::vector<std::string>& args);

/// One usage string for main() and the tests that pin it.
std::string DaemonUsage();

}  // namespace server
}  // namespace oasis
