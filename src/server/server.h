// oasisd's core: a TCP listener streaming search results off pull cursors.
//
// One Server owns one listening socket, a SessionRegistry (admission),
// a ResultCache (hot queries), and a view of one or more already-open
// engines. Every accepted connection gets a handler thread that speaks
// the wire protocol (server/wire.h): queries stream one kHit frame per
// result, pulled straight off Engine::Search's ResultCursor — the client
// receives each hit when it is proven, exactly like a local search, and
// every cursor suspension point doubles as the deadline / cancellation /
// client-disconnect poll.
//
// All connections share the engines as-is: one packed tree, one sharded
// buffer pool, one readahead unit per engine — concurrency comes from the
// storage layer's existing thread-safety (the same property SearchBatch
// exploits in-process), not from per-connection replicas. The
// SessionRegistry's pressure probe reads the first pooled engine's live
// pinned-frame fraction, tying admission to actual pool load.
//
// Shutdown() is graceful by construction: stop accepting, flip the
// registry to draining (new queries get kUnavailable), wait for in-flight
// cursors to finish, escalate to CancelAll() if they outlive the drain
// timeout (each search aborts at its next suspension point, releasing its
// pins), then join every handler. A suspended cursor holds zero pool
// frames, so a drained server provably leaks no pins — tests assert
// num_pinned() == 0 after shutdown under load.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "server/result_cache.h"
#include "server/session.h"
#include "server/wire.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace server {

/// Construction-time knobs of a Server.
struct ServerOptions {
  /// Listen address. The default binds loopback only: oasisd has no
  /// authentication, so exposing it wider must be an explicit choice.
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Admission cap on concurrently running queries.
  uint32_t max_inflight = 64;
  /// Admission cap on the shared pool's pinned-frame fraction; 1.0
  /// disables the pressure gate.
  double max_pinned_fraction = 0.95;
  /// Result-cache budget in bytes; 0 disables caching.
  uint64_t result_cache_bytes = 16ull << 20;
  /// Server-side deadline cap in milliseconds, applied to every query: a
  /// request asking for more (or for none) runs under this cap. 0 = no
  /// server-imposed deadline.
  uint64_t max_deadline_ms = 0;
  /// How long Shutdown() waits for in-flight queries before escalating to
  /// cancellation.
  std::chrono::milliseconds drain_timeout{5000};
};

/// One served index: a name (the wire request's `ix=` selector) and the
/// engine that answers for it.
struct ServedIndex {
  std::string name;                    ///< wire selector; must be unique
  const api::Engine* engine = nullptr; ///< non-owned, must outlive the server
};

/// The daemon core. Start() binds + listens + spawns the accept loop;
/// Shutdown() (or destruction) drains and joins everything. All public
/// members are thread-safe.
class Server {
 public:
  /// Binds and starts serving. `indexes` must be non-empty with unique
  /// names; the first entry answers requests that name no index. The
  /// engines must outlive the server.
  static util::StatusOr<std::unique_ptr<Server>> Start(
      std::vector<ServedIndex> indexes, const ServerOptions& options);

  /// Runs Shutdown() if it has not been called yet.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound listen port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }
  /// The bound listen host.
  const std::string& host() const { return options_.host; }

  /// Graceful shutdown: refuse new connections and queries, drain
  /// in-flight cursors (escalating to cancellation after
  /// options.drain_timeout), then join every thread. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  /// The /stats document: admission + cache counters under "server",
  /// each index's epoch and engine storage snapshot (util::StatsJson)
  /// under "indexes".
  std::string StatsJson() const;

  /// Admission counters (also embedded in StatsJson).
  SessionRegistry::Stats session_stats() const { return registry_.stats(); }
  /// Result-cache counters (also embedded in StatsJson).
  ResultCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  struct Connection;

  Server(std::vector<ServedIndex> indexes, const ServerOptions& options,
         int listen_fd, uint16_t port);

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// Runs one query end to end: parse, admit, cache-check, stream.
  /// Returns false when the connection is unusable afterwards.
  bool HandleQuery(Connection* conn, const std::string& payload);
  /// Joins finished connection threads; with `all`, joins every one.
  void ReapConnections(bool all);
  const api::Engine* FindEngine(const std::string& name) const;

  const std::vector<ServedIndex> indexes_;
  const ServerOptions options_;
  SessionRegistry registry_;
  ResultCache cache_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_down_{false};
  std::thread accept_thread_;
  util::Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);
};

}  // namespace server
}  // namespace oasis
