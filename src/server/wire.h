// oasisd's wire protocol: length-prefixed frames over a byte stream.
//
// Hand-rolled on purpose (no new dependencies): every message is one
// frame — a 4-byte little-endian payload length, a 1-byte type, then the
// payload. Requests are flat "key=value\n" text (trivially greppable in a
// packet capture); responses stream one kHit frame per result line so a
// client renders hits as they are proven, exactly like the local CLI.
//
//   client -> server        server -> client
//   kQuery   run a search   kHit       one formatted result line
//   kCancel  abort stream   kDone      stream complete (hits=N cached=0|1)
//   kStats   stats request  kError     terminal failure ("Code: message")
//   kPing    liveness       kStatsJson /stats payload
//                           kPong      liveness reply
//
// A query is exactly one kQuery frame answered by zero or more kHit
// frames terminated by kDone or kError; kCancel may be sent at any point
// mid-stream and is acknowledged with kError(Cancelled). Everything here
// is socket-free (encode/parse on byte buffers) except the two blocking
// helpers at the bottom, so the protocol is unit-testable without a
// listener.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "score/substitution_matrix.h"
#include "util/status.h"

namespace oasis {
namespace server {

/// Frame type tags. Client-to-server types are low, server-to-client
/// high, so a stray response frame can never parse as a request.
enum class FrameType : uint8_t {
  kQuery = 1,      ///< payload: WireRequest::Encode()
  kCancel = 2,     ///< abort the in-flight stream; empty payload
  kStats = 3,      ///< request the /stats document; empty payload
  kPing = 4,       ///< liveness probe; empty payload
  kHit = 17,       ///< payload: one formatted result line
  kDone = 18,      ///< payload: "hits=N cached=0|1"
  kError = 19,     ///< payload: Status::ToString() ("Code: message")
  kStatsJson = 20, ///< payload: the stats JSON document
  kPong = 21,      ///< liveness reply; empty payload
};

/// Frame header size: u32 LE payload length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Upper bound on one frame's payload; a peer announcing more is corrupt
/// or hostile and the connection is dropped. 1 MiB comfortably holds the
/// longest query or stats document anyone has produced.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;  ///< the tag byte
  std::string payload;                ///< payload bytes (may be empty)
};

/// Encodes a frame as header + payload bytes. Precondition: payload.size()
/// <= kMaxFramePayload.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Attempts to decode one frame from the head of `buf`. Returns the bytes
/// consumed, 0 when `buf` does not yet hold a complete frame (read more
/// and retry), or Corruption when the header announces an oversized
/// payload or an unknown type tag.
util::StatusOr<size_t> DecodeFrame(std::string_view buf, Frame* out);

/// A search request in wire form. The canonical encoding is sorted
/// "key=value\n" lines; unknown keys are rejected (a version-skewed peer
/// should fail loudly, not silently drop its knob).
struct WireRequest {
  std::string index;        ///< index name; "" = the server's default
  std::string query;        ///< residue text (required, non-empty)
  double evalue = 10.0;     ///< E-value cutoff (ignored when min_score > 0)
  score::ScoreT min_score = 0;  ///< explicit threshold; 0 = derive from evalue
  uint64_t top_k = 0;       ///< 0 = unlimited
  bool by_evalue = false;   ///< E-value-ordered stream
  uint32_t max_volumes = 0; ///< search only the first N volumes; 0 = all
  /// Search only these manifest volume names; empty = all. Names cannot
  /// contain commas (the wire encoding is comma-separated), which the
  /// vol_NNNN scheme and the legacy "." satisfy by construction.
  std::vector<std::string> volume_filter;
  uint64_t deadline_ms = 0; ///< per-request deadline; 0 = server default
  bool no_cache = false;    ///< bypass the result cache (measurement runs)

  /// Canonical "key=value\n" payload for a kQuery frame. Defaults are
  /// omitted, keys are emitted in a fixed order — two requests that would
  /// run the same search encode to the same bytes.
  std::string Encode() const;

  /// Parses a kQuery payload. InvalidArgument on unknown keys, malformed
  /// or out-of-range values, or a missing query.
  static util::StatusOr<WireRequest> Parse(std::string_view payload);

  /// The result-cache key: the canonical encoding of every field that
  /// changes the result stream. deadline_ms and no_cache are excluded —
  /// a deadline changes when a search is cut off, never what its results
  /// are, so a request with a deadline may still be served from (and,
  /// when it completes, populate) the cache.
  std::string CacheKey() const;
};

/// The kDone terminator's payload ("hits=N cached=0|1").
struct DoneInfo {
  uint64_t hits = 0;     ///< result lines streamed before the terminator
  bool cached = false;   ///< true when the stream replayed a cache entry
};

/// Renders a DoneInfo as the canonical kDone payload.
std::string EncodeDone(const DoneInfo& info);

/// Parses a kDone payload; InvalidArgument on anything malformed.
util::StatusOr<DoneInfo> ParseDone(std::string_view payload);

/// Reconstructs a Status from a kError payload ("Code: message") — the
/// inverse of Status::ToString() for the codes that cross the wire.
/// Unrecognized code names map to Internal with the full payload as the
/// message, so nothing is silently swallowed.
util::Status DecodeError(std::string_view payload);

// --- Blocking socket helpers (the only socket-aware part) -------------------

/// Writes one complete frame to `fd`, retrying on EINTR / partial writes.
util::Status SendFrame(int fd, FrameType type, std::string_view payload);

/// Reads from `fd` into `buf` until it holds one complete frame, decodes
/// it into `out`, and removes it from `buf`. `buf` carries partial bytes
/// across calls (callers keep one per connection). IOError("peer closed
/// connection") on EOF.
util::Status RecvFrame(int fd, std::string* buf, Frame* out);

}  // namespace server
}  // namespace oasis
