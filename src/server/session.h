// Admission control and lifecycle tracking for oasisd's in-flight queries.
//
// Every query the daemon runs holds a Ticket from the SessionRegistry for
// its whole lifetime. Admission is where overload policy lives — a query
// is *rejected up front* (kUnavailable, cheap for the client to retry)
// rather than admitted into a thrashing pool, on any of:
//
//   - the registry is draining (shutdown began),
//   - max_inflight tickets are already live,
//   - the buffer pool's pinned-frame fraction is above the pressure
//     threshold (each live cursor pins frames only while advancing, but
//     enough concurrent cursors can still pin a small pool solid — the
//     pressure probe is the live num_pinned()/num_frames() reading).
//
// Each ticket carries the query's cancellation flag: the connection
// handler hands it to SearchRequest::CancelWith, so CancelAll() — the
// drain-timeout escalation — aborts every live search at its next
// suspension point. WaitIdle() is the graceful half of shutdown: block
// until the live count reaches zero or the timeout lapses.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace server {

/// Thread-safe admission gate + live-query registry. One per server.
class SessionRegistry {
 public:
  /// Admission policy knobs.
  struct Options {
    /// Hard cap on concurrently admitted queries.
    uint32_t max_inflight = 64;
    /// Reject when `pinned_fraction()` exceeds this. 1.0 disables the
    /// pressure check (and is the only sane setting when no probe is
    /// configured).
    double max_pinned_fraction = 0.95;
    /// Live pool-pressure probe: pinned frames / total frames, in [0, 1].
    /// Null = no pressure check (mmap engines have no pool to pressure).
    std::function<double()> pinned_fraction;
  };

  /// Admission counters; every rejection path is separately visible in
  /// /stats so an operator can tell "too many clients" from "pool too
  /// small" at a glance.
  struct Stats {
    uint64_t admitted = 0;           ///< queries admitted since start
    uint64_t rejected_inflight = 0;  ///< max_inflight reached
    uint64_t rejected_pressure = 0;  ///< pinned fraction over threshold
    uint64_t rejected_draining = 0;  ///< shutdown in progress
    uint32_t active = 0;             ///< live tickets right now
  };

  /// RAII admission: constructed only by Admit(), releases its slot on
  /// destruction. Move-only.
  class Ticket {
   public:
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      registry_ = other.registry_;
      id_ = other.id_;
      cancel_ = std::move(other.cancel_);
      other.registry_ = nullptr;
      return *this;
    }
    /// Releases the admission slot (and wakes WaitIdle() when last out).
    ~Ticket() { Release(); }

    /// This query's cancellation flag (stable address for the ticket's
    /// lifetime): pass to SearchRequest::CancelWith. Set by CancelAll()
    /// or by the connection handler on client cancel/disconnect.
    const std::atomic<bool>* cancel_flag() const { return cancel_.get(); }
    /// Requests cancellation of this query (any thread).
    void Cancel() { cancel_->store(true, std::memory_order_relaxed); }

   private:
    friend class SessionRegistry;
    Ticket(SessionRegistry* registry, uint64_t id,
           std::shared_ptr<std::atomic<bool>> cancel)
        : registry_(registry), id_(id), cancel_(std::move(cancel)) {}
    void Release();

    SessionRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
    std::shared_ptr<std::atomic<bool>> cancel_;
  };

  /// A registry starts accepting; BeginDrain() is the only off switch.
  explicit SessionRegistry(const Options& options) : options_(options) {}

  /// Admits one query or explains the rejection (always kUnavailable, with
  /// a message naming the specific gate that fired).
  util::StatusOr<Ticket> Admit();

  /// Flips the registry into draining mode: every later Admit() is
  /// rejected. Idempotent.
  void BeginDrain();

  /// True once BeginDrain() has run.
  bool draining() const;

  /// Blocks until no tickets are live or `timeout` lapses; true on idle.
  bool WaitIdle(std::chrono::milliseconds timeout);

  /// Sets every live ticket's cancellation flag (the drain-timeout
  /// escalation: each search aborts at its next suspension point).
  void CancelAll();

  /// Point-in-time admission counters (for /stats).
  Stats stats() const;

 private:
  friend class Ticket;
  void Release(uint64_t id);

  const Options options_;
  mutable util::Mutex mu_;
  util::CondVar idle_cv_;
  bool draining_ GUARDED_BY(mu_) = false;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> active_
      GUARDED_BY(mu_);
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_inflight_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_pressure_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_draining_ GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace oasis
