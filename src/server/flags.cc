#include "server/flags.h"

#include "util/flag_parse.h"

namespace oasis {
namespace server {

namespace {

/// The default initial window of `--readahead auto`, matching oasis_cli.
constexpr uint32_t kAutoReadaheadInitial = 8;

/// NAME from a "[NAME=]DIR" index spec: explicit, else DIR's basename.
std::pair<std::string, std::string> SplitIndexSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq != std::string::npos) {
    return {spec.substr(0, eq), spec.substr(eq + 1)};
  }
  std::string dir = spec;
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  const size_t slash = dir.find_last_of('/');
  return {slash == std::string::npos ? dir : dir.substr(slash + 1), spec};
}

util::Status MissingValue(const std::string& flag) {
  return util::Status::InvalidArgument(flag + " needs a value");
}

util::Status BadFlag(const std::string& flag, const util::Status& status) {
  return util::Status::InvalidArgument(flag + ": " + status.ToString());
}

}  // namespace

std::string DaemonUsage() {
  return
      "usage: oasisd --index [NAME=]DIR [--index [NAME=]DIR ...]\n"
      "              [--host HOST] [--port PORT]\n"
      "              [--max-inflight N] [--result-cache-mb MB]\n"
      "              [--deadline-ms MS] [--max-pinned-fraction F]\n"
      "              [--drain-timeout-ms MS] [--pool-mb MB]\n"
      "              [--io-mode auto|pooled|mmap] [--readahead K|auto]\n"
      "              [--simd auto|avx2|sse4|off] [--mask off|soft]\n";
}

util::StatusOr<DaemonConfig> ParseDaemonArgs(
    const std::vector<std::string>& args) {
  DaemonConfig config;
  // The daemon's defaults diverge from the CLI where long-running service
  // behaviour differs from one-shot behaviour: pooled I/O (admission and
  // /stats need the pool's counters), and the pool sized by --pool-mb.
  config.engine.io_mode = api::IoMode::kPooled;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (flag == "--index") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto [name, dir] = SplitIndexSpec(*v);
      if (name.empty() || dir.empty()) {
        return util::Status::InvalidArgument(
            "--index expects [NAME=]DIR, got '" + *v + "'");
      }
      config.indexes.emplace_back(std::move(name), std::move(dir));
    } else if (flag == "--host") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      config.server.host = *v;
    } else if (flag == "--port") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint32(*v, 0, 65535);  // 0 = ephemeral
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.port = static_cast<uint16_t>(*parsed);
    } else if (flag == "--max-inflight") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint32(*v, 1, kMaxInflightLimit);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.max_inflight = *parsed;
    } else if (flag == "--result-cache-mb") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint64(*v, 0, kMaxResultCacheMb);  // 0 = off
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.result_cache_bytes = *parsed << 20;
    } else if (flag == "--deadline-ms") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint64(*v, 1, kMaxDeadlineMs);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.max_deadline_ms = *parsed;
    } else if (flag == "--max-pinned-fraction") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      // Below 0.1 the server would reject nearly everything; 1.0 disables
      // the gate.
      auto parsed = util::ParseDouble(*v, 0.1, 1.0);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.max_pinned_fraction = *parsed;
    } else if (flag == "--drain-timeout-ms") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint64(*v, 0, kMaxDrainTimeoutMs);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.server.drain_timeout = std::chrono::milliseconds(*parsed);
    } else if (flag == "--pool-mb") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = util::ParseUint64(*v, 1, kMaxPoolMb);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.engine.pool_bytes = *parsed << 20;
    } else if (flag == "--io-mode") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      if (*v == "auto") {
        config.engine.io_mode = api::IoMode::kAuto;
      } else if (*v == "pooled") {
        config.engine.io_mode = api::IoMode::kPooled;
      } else if (*v == "mmap") {
        config.engine.io_mode = api::IoMode::kMmap;
      } else {
        return util::Status::InvalidArgument("unknown --io-mode '" + *v +
                                             "'");
      }
    } else if (flag == "--readahead") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      if (*v == "auto") {
        config.engine.readahead_adaptive = true;
        config.engine.readahead_blocks = kAutoReadaheadInitial;
      } else {
        auto parsed = util::ParseUint32(*v, 0, api::kMaxReadaheadBlocks);
        if (!parsed.ok()) return BadFlag(flag, parsed.status());
        config.engine.readahead_adaptive = false;
        config.engine.readahead_blocks = *parsed;
      }
    } else if (flag == "--simd") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = align::simd::ParseSimdMode(*v);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.engine.simd_mode = *parsed;
    } else if (flag == "--mask") {
      const std::string* v = next();
      if (v == nullptr) return MissingValue(flag);
      auto parsed = api::ParseMaskMode(*v);
      if (!parsed.ok()) return BadFlag(flag, parsed.status());
      config.engine.mask_mode = *parsed;
    } else {
      return util::Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  if (config.indexes.empty()) {
    return util::Status::InvalidArgument(
        "oasisd needs at least one --index [NAME=]DIR");
  }
  for (size_t i = 0; i < config.indexes.size(); ++i) {
    for (size_t j = i + 1; j < config.indexes.size(); ++j) {
      if (config.indexes[i].first == config.indexes[j].first) {
        return util::Status::InvalidArgument(
            "two indexes share the name '" + config.indexes[i].first +
            "'; disambiguate with --index NAME=DIR");
      }
    }
  }
  return config;
}

}  // namespace server
}  // namespace oasis
