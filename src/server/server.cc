#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <utility>

#include "core/report.h"
#include "util/logging.h"

namespace oasis {
namespace server {

namespace {

/// How often a connection's idle loop and the accept loop wake up to
/// recheck the stop flag.
constexpr int kPollIntervalMs = 100;

/// The streaming poll hook checks the client socket for mid-stream
/// frames (cancel, disconnect) once every this many cursor suspension
/// points. Suspension points are queue pops — microseconds apart — so
/// this keeps the syscall rate negligible while still reacting to a
/// cancel within a fraction of a millisecond of search time.
constexpr uint64_t kSocketCheckInterval = 128;

SessionRegistry::Options MakeRegistryOptions(
    const std::vector<ServedIndex>& indexes, const ServerOptions& options) {
  SessionRegistry::Options out;
  out.max_inflight = options.max_inflight;
  out.max_pinned_fraction = options.max_pinned_fraction;
  // The pressure probe reads the first pooled engine's live pin count:
  // a multi-index server shares one admission gate, and the first pooled
  // pool is where concurrent cursors contend.
  for (const ServedIndex& index : indexes) {
    if (index.engine->uses_pool()) {
      const api::Engine* engine = index.engine;
      out.pinned_fraction = [engine]() {
        const storage::BufferPool& pool = engine->pool();
        const uint32_t frames = pool.num_frames();
        if (frames == 0) return 0.0;
        return static_cast<double>(pool.num_pinned()) / frames;
      };
      break;
    }
  }
  return out;
}

}  // namespace

/// Per-connection state: the socket, the partial-frame receive buffer,
/// and the handler thread that owns both.
struct Server::Connection {
  int fd = -1;
  std::string buf;              ///< bytes received but not yet framed
  std::thread thread;
  std::atomic<bool> finished{false};
};

util::StatusOr<std::unique_ptr<Server>> Server::Start(
    std::vector<ServedIndex> indexes, const ServerOptions& options) {
  if (indexes.empty()) {
    return util::Status::InvalidArgument("server needs at least one index");
  }
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (indexes[i].engine == nullptr) {
      return util::Status::InvalidArgument("served index '" +
                                           indexes[i].name +
                                           "' has no engine");
    }
    for (size_t j = i + 1; j < indexes.size(); ++j) {
      if (indexes[i].name == indexes[j].name) {
        return util::Status::InvalidArgument("duplicate served index name '" +
                                             indexes[i].name + "'");
      }
    }
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("cannot parse listen host '" +
                                         options.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("bind " + options.host + ":" +
                                 std::to_string(options.port) + ": " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::IOError("getsockname: " + err);
  }

  std::unique_ptr<Server> server(
      new Server(std::move(indexes), options, fd, ntohs(addr.sin_port)));
  server->accept_thread_ = std::thread([s = server.get()]() {
    s->AcceptLoop();
  });
  return server;
}

Server::Server(std::vector<ServedIndex> indexes, const ServerOptions& options,
               int listen_fd, uint16_t port)
    : indexes_(std::move(indexes)),
      options_(options),
      registry_(MakeRegistryOptions(indexes_, options)),
      cache_(options.result_cache_bytes),
      listen_fd_(listen_fd),
      port_(port) {}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) {
      // Timeout (recheck stop) or a transient poll error; either way,
      // reap finished handlers so their threads do not pile up.
      ReapConnections(/*all=*/false);
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Hit frames are tiny and latency-sensitive: without TCP_NODELAY,
    // Nagle batches them against the client's delayed ACKs and every
    // request/response turn stalls for tens of milliseconds.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      util::MutexLock lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw]() {
      HandleConnection(raw);
      raw->finished.store(true, std::memory_order_release);
    });
  }
}

void Server::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    util::MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

const api::Engine* Server::FindEngine(const std::string& name) const {
  if (name.empty()) return indexes_.front().engine;
  for (const ServedIndex& index : indexes_) {
    if (index.name == name) return index.engine;
  }
  return nullptr;
}

void Server::HandleConnection(Connection* conn) {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Drain complete frames already buffered before touching the socket.
    Frame frame;
    auto consumed = DecodeFrame(conn->buf, &frame);
    if (!consumed.ok()) break;  // corrupt peer: drop the connection
    if (*consumed > 0) {
      conn->buf.erase(0, *consumed);
      switch (frame.type) {
        case FrameType::kPing:
          if (!SendFrame(conn->fd, FrameType::kPong, "").ok()) goto done;
          break;
        case FrameType::kStats:
          if (!SendFrame(conn->fd, FrameType::kStatsJson, StatsJson()).ok()) {
            goto done;
          }
          break;
        case FrameType::kCancel:
          // No query in flight; nothing to cancel. Harmless (the client
          // raced its cancel against our kDone).
          break;
        case FrameType::kQuery:
          if (!HandleQuery(conn, frame.payload)) goto done;
          break;
        default:
          // A response-typed frame from a client is protocol corruption.
          // The error frame is best-effort: the connection is being
          // dropped either way, so a failed send changes nothing.
          (void)SendFrame(conn->fd, FrameType::kError,
                          util::Status::InvalidArgument(
                              "unexpected frame type from client")
                              .ToString());
          goto done;
      }
      continue;
    }
    // Need more bytes; wait with a bounded poll so shutdown is noticed.
    pollfd pfd{conn->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed (or hard error)
    conn->buf.append(chunk, static_cast<size_t>(n));
  }
done:
  ::close(conn->fd);
  conn->fd = -1;
}

bool Server::HandleQuery(Connection* conn, const std::string& payload) {
  auto request_or = WireRequest::Parse(payload);
  if (!request_or.ok()) {
    return SendFrame(conn->fd, FrameType::kError,
                     request_or.status().ToString())
        .ok();
  }
  const WireRequest& wire = *request_or;

  const api::Engine* engine = FindEngine(wire.index);
  if (engine == nullptr) {
    return SendFrame(conn->fd, FrameType::kError,
                     util::Status::NotFound("no index named '" + wire.index +
                                            "'")
                         .ToString())
        .ok();
  }

  auto ticket_or = registry_.Admit();
  if (!ticket_or.ok()) {
    return SendFrame(conn->fd, FrameType::kError,
                     ticket_or.status().ToString())
        .ok();
  }
  // The ticket lives in an optional so every terminator path can release
  // the admission slot *before* the final frame goes out: a client that
  // has seen kDone/kError may immediately issue its next query without
  // racing a still-occupied server slot.
  std::optional<SessionRegistry::Ticket> ticket(std::move(ticket_or).value());

  // Cache: a completed stream for the same (epoch, canonical request) is
  // replayed verbatim — byte-identical by construction.
  const std::string cache_key =
      std::to_string(engine->epoch()) + "|" + wire.CacheKey();
  if (!wire.no_cache) {
    if (CachedResult cached = cache_.Lookup(cache_key)) {
      for (const std::string& line : *cached) {
        if (!SendFrame(conn->fd, FrameType::kHit, line).ok()) return false;
      }
      ticket.reset();
      return SendFrame(conn->fd, FrameType::kDone,
                       EncodeDone({cached->size(), /*cached=*/true}))
          .ok();
    }
  }

  auto parsed = SearchRequest::FromText(engine->alphabet(), wire.query);
  if (!parsed.ok()) {
    ticket.reset();
    return SendFrame(conn->fd, FrameType::kError, parsed.status().ToString())
        .ok();
  }
  SearchRequest request = std::move(parsed).value();
  if (wire.min_score > 0) {
    request.MinScore(wire.min_score);
  } else {
    request.EValue(wire.evalue);
  }
  request.TopK(wire.top_k).OrderByEValue(wire.by_evalue);
  request.MaxVolumes(wire.max_volumes);
  if (!wire.volume_filter.empty()) request.VolumeFilter(wire.volume_filter);

  // Deadline: the request's ask, capped by the server's max (which also
  // applies when the request asked for none).
  uint64_t deadline_ms = wire.deadline_ms;
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  if (deadline_ms > 0) {
    request.Deadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms));
  }
  request.CancelWith(ticket->cancel_flag());

  // Mid-stream client watch: every kSocketCheckInterval suspension
  // points, peek the socket without blocking — a kCancel frame or a
  // disconnect aborts the search at this very suspension point.
  uint64_t polls = 0;
  request.PollWith([this, conn, &polls]() -> util::Status {
    if (stop_.load(std::memory_order_relaxed)) {
      return util::Status::Cancelled("server shutting down");
    }
    if (++polls % kSocketCheckInterval != 0) return util::Status::OK();
    while (true) {
      char chunk[1024];
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n == 0) return util::Status::Cancelled("client disconnected");
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        return util::Status::IOError(std::string("recv: ") +
                                     std::strerror(errno));
      }
      conn->buf.append(chunk, static_cast<size_t>(n));
    }
    while (true) {
      Frame frame;
      OASIS_ASSIGN_OR_RETURN(size_t consumed, DecodeFrame(conn->buf, &frame));
      if (consumed == 0) break;
      conn->buf.erase(0, consumed);
      if (frame.type == FrameType::kCancel) {
        return util::Status::Cancelled("cancelled by client");
      }
      return util::Status::InvalidArgument(
          "unexpected frame mid-stream (only cancel is legal)");
    }
    return util::Status::OK();
  });

  auto cursor_or = engine->Search(request);
  if (!cursor_or.ok()) {
    ticket.reset();
    return SendFrame(conn->fd, FrameType::kError,
                     cursor_or.status().ToString())
        .ok();
  }

  auto lines = std::make_shared<std::vector<std::string>>();
  util::Status terminal = util::Status::OK();
  {
    // The cursor borrows the ticket's cancel flag, so it must die (and
    // drop its pins) before the ticket can be released below.
    ResultCursor cursor = std::move(cursor_or).value();
    while (true) {
      auto next = cursor.Next();
      if (!next.ok()) {
        terminal = next.status();
        break;
      }
      if (!next->has_value()) break;
      const core::OasisResult& result = **next;
      // SequenceName resolves against the engine's current snapshot, so
      // hit labelling stays safe while Append/Compact swap the set under
      // live traffic (catalog() references would be invalidated).
      std::string line = core::FormatResult(
          result, engine->SequenceName(result.sequence_id), result.evalue);
      if (!SendFrame(conn->fd, FrameType::kHit, line).ok()) return false;
      lines->push_back(std::move(line));
    }
  }
  ticket.reset();
  if (!terminal.ok()) {
    // Deadline / cancellation / IO abort: the hits already streamed
    // stand as the partial result, the error frame is the terminator.
    // Never cache a prefix.
    return SendFrame(conn->fd, FrameType::kError, terminal.ToString()).ok();
  }
  const uint64_t hits = lines->size();
  if (!wire.no_cache) {
    cache_.Insert(cache_key,
                  CachedResult(std::move(lines)));
  }
  return SendFrame(conn->fd, FrameType::kDone,
                   EncodeDone({hits, /*cached=*/false}))
      .ok();
}

void Server::Shutdown() {
  if (shut_down_.exchange(true)) return;

  // 1. Refuse new queries immediately: connections still get answers
  //    (kUnavailable) while the drain runs.
  registry_.BeginDrain();

  // 2. Give in-flight cursors the grace window, then escalate: set every
  //    live ticket's cancel flag, and each search aborts at its next
  //    suspension point, releasing its pins on the way out.
  if (!registry_.WaitIdle(options_.drain_timeout)) {
    registry_.CancelAll();
    registry_.WaitIdle(options_.drain_timeout);
  }

  // 3. Stop the accept loop and every connection handler (their idle
  //    loops poll the stop flag at kPollIntervalMs).
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ReapConnections(/*all=*/true);
}

std::string Server::StatsJson() const {
  const SessionRegistry::Stats session = registry_.stats();
  const ResultCache::Stats cache = cache_.stats();
  std::string out = "{\"server\":{";
  out += "\"draining\":" +
         std::string(registry_.draining() ? "true" : "false");
  out += ",\"sessions\":{\"active\":" + std::to_string(session.active) +
         ",\"admitted\":" + std::to_string(session.admitted) +
         ",\"rejected_inflight\":" + std::to_string(session.rejected_inflight) +
         ",\"rejected_pressure\":" + std::to_string(session.rejected_pressure) +
         ",\"rejected_draining\":" + std::to_string(session.rejected_draining) +
         "}";
  out += ",\"cache\":{\"capacity_bytes\":" +
         std::to_string(cache_.capacity_bytes()) +
         ",\"lookups\":" + std::to_string(cache.lookups) +
         ",\"hits\":" + std::to_string(cache.hits) +
         ",\"insertions\":" + std::to_string(cache.insertions) +
         ",\"evictions\":" + std::to_string(cache.evictions) +
         ",\"entries\":" + std::to_string(cache.entries) +
         ",\"bytes\":" + std::to_string(cache.bytes) + "}";
  out += "},\"indexes\":{";
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const ServedIndex& index = indexes_[i];
    if (i > 0) out += ',';
    out += "\"" + util::JsonEscape(index.name) + "\":{";
    out += "\"epoch\":" + std::to_string(index.engine->epoch());
    out += ",\"engine\":" + util::StatsJson(index.engine->CollectStats());
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace server
}  // namespace oasis
