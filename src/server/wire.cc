#include "server/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>

#include "util/flag_parse.h"
#include "util/logging.h"

namespace oasis {
namespace server {

namespace {

bool KnownFrameType(uint8_t tag) {
  switch (static_cast<FrameType>(tag)) {
    case FrameType::kQuery:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kPing:
    case FrameType::kHit:
    case FrameType::kDone:
    case FrameType::kError:
    case FrameType::kStatsJson:
    case FrameType::kPong:
      return true;
  }
  return false;
}

/// Formats a double with enough digits to round-trip (the canonical
/// request encoding must be stable, not pretty).
std::string EncodeDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  OASIS_CHECK(payload.size() <= kMaxFramePayload)
      << "frame payload exceeds kMaxFramePayload";
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

util::StatusOr<size_t> DecodeFrame(std::string_view buf, Frame* out) {
  if (buf.size() < kFrameHeaderBytes) return size_t{0};
  const auto* b = reinterpret_cast<const unsigned char*>(buf.data());
  const uint32_t len = static_cast<uint32_t>(b[0]) |
                       (static_cast<uint32_t>(b[1]) << 8) |
                       (static_cast<uint32_t>(b[2]) << 16) |
                       (static_cast<uint32_t>(b[3]) << 24);
  if (len > kMaxFramePayload) {
    return util::Status::Corruption(
        "frame announces " + std::to_string(len) +
        "-byte payload, over the " + std::to_string(kMaxFramePayload) +
        " limit");
  }
  if (!KnownFrameType(b[4])) {
    return util::Status::Corruption("unknown frame type tag " +
                                    std::to_string(b[4]));
  }
  if (buf.size() < kFrameHeaderBytes + len) return size_t{0};
  out->type = static_cast<FrameType>(b[4]);
  out->payload.assign(buf.substr(kFrameHeaderBytes, len));
  return kFrameHeaderBytes + len;
}

// --- WireRequest ------------------------------------------------------------

std::string WireRequest::Encode() const {
  // Fixed key order, defaults omitted: the canonical form CacheKey()
  // relies on.
  std::string out;
  if (!index.empty()) out += "ix=" + index + "\n";
  out += "q=" + query + "\n";
  if (min_score > 0) {
    out += "ms=" + std::to_string(min_score) + "\n";
  } else if (evalue != 10.0) {
    out += "ev=" + EncodeDouble(evalue) + "\n";
  }
  if (top_k > 0) out += "top=" + std::to_string(top_k) + "\n";
  if (by_evalue) out += "bye=1\n";
  if (max_volumes > 0) out += "mv=" + std::to_string(max_volumes) + "\n";
  if (!volume_filter.empty()) {
    out += "vf=";
    for (size_t i = 0; i < volume_filter.size(); ++i) {
      if (i > 0) out += ',';
      out += volume_filter[i];
    }
    out += "\n";
  }
  if (deadline_ms > 0) out += "dl=" + std::to_string(deadline_ms) + "\n";
  if (no_cache) out += "nc=1\n";
  return out;
}

util::StatusOr<WireRequest> WireRequest::Parse(std::string_view payload) {
  WireRequest req;
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::Status::InvalidArgument("malformed request line '" +
                                           std::string(line) + "'");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "ix") {
      req.index.assign(value);
    } else if (key == "q") {
      req.query.assign(value);
    } else if (key == "ev") {
      OASIS_ASSIGN_OR_RETURN(req.evalue,
                             util::ParseDouble(value, 1e-300, 1e12));
    } else if (key == "ms") {
      OASIS_ASSIGN_OR_RETURN(
          int64_t ms,
          util::ParseInt64(value, 1,
                           std::numeric_limits<score::ScoreT>::max()));
      req.min_score = static_cast<score::ScoreT>(ms);
    } else if (key == "top") {
      OASIS_ASSIGN_OR_RETURN(req.top_k,
                             util::ParseUint64(value, 1, 1ull << 40));
    } else if (key == "bye") {
      if (value != "1") {
        return util::Status::InvalidArgument("bye must be 1 when present");
      }
      req.by_evalue = true;
    } else if (key == "mv") {
      OASIS_ASSIGN_OR_RETURN(uint64_t mv, util::ParseUint64(value, 1, 4096));
      req.max_volumes = static_cast<uint32_t>(mv);
    } else if (key == "vf") {
      // Comma-separated volume names; empty items are malformed (they
      // would silently select nothing).
      size_t item = 0;
      while (item <= value.size()) {
        size_t comma = value.find(',', item);
        if (comma == std::string_view::npos) comma = value.size();
        const std::string_view name = value.substr(item, comma - item);
        if (name.empty()) {
          return util::Status::InvalidArgument(
              "vf holds an empty volume name");
        }
        req.volume_filter.emplace_back(name);
        item = comma + 1;
      }
    } else if (key == "dl") {
      OASIS_ASSIGN_OR_RETURN(req.deadline_ms,
                             util::ParseUint64(value, 1, 1ull << 31));
    } else if (key == "nc") {
      if (value != "1") {
        return util::Status::InvalidArgument("nc must be 1 when present");
      }
      req.no_cache = true;
    } else {
      // A version-skewed peer's new knob must not be silently ignored:
      // the search it gets would not be the search it asked for.
      return util::Status::InvalidArgument("unknown request key '" +
                                           std::string(key) + "'");
    }
  }
  if (req.query.empty()) {
    return util::Status::InvalidArgument("request carries no query (q=)");
  }
  return req;
}

std::string WireRequest::CacheKey() const {
  // Canonical encoding minus the fields that do not change the result
  // stream. Round-tripping through a copy keeps this exhaustive by
  // construction: any new field added to Encode() is in the key unless
  // explicitly reset here.
  WireRequest canonical = *this;
  canonical.deadline_ms = 0;
  canonical.no_cache = false;
  return canonical.Encode();
}

// --- kDone / kError payloads ------------------------------------------------

std::string EncodeDone(const DoneInfo& info) {
  return "hits=" + std::to_string(info.hits) +
         " cached=" + (info.cached ? std::string("1") : std::string("0"));
}

util::StatusOr<DoneInfo> ParseDone(std::string_view payload) {
  DoneInfo info;
  unsigned long long hits = 0;
  int cached = 0;
  if (std::sscanf(std::string(payload).c_str(), "hits=%llu cached=%d", &hits,
                  &cached) != 2 ||
      (cached != 0 && cached != 1)) {
    return util::Status::Corruption("malformed done payload '" +
                                    std::string(payload) + "'");
  }
  info.hits = hits;
  info.cached = cached == 1;
  return info;
}

util::Status DecodeError(std::string_view payload) {
  const size_t colon = payload.find(": ");
  if (colon != std::string_view::npos) {
    const std::string_view code = payload.substr(0, colon);
    std::string message(payload.substr(colon + 2));
    if (code == "DeadlineExceeded") {
      return util::Status::DeadlineExceeded(std::move(message));
    }
    if (code == "Cancelled") return util::Status::Cancelled(std::move(message));
    if (code == "Unavailable") {
      return util::Status::Unavailable(std::move(message));
    }
    if (code == "InvalidArgument") {
      return util::Status::InvalidArgument(std::move(message));
    }
    if (code == "NotFound") return util::Status::NotFound(std::move(message));
    if (code == "IOError") return util::Status::IOError(std::move(message));
    if (code == "Corruption") {
      return util::Status::Corruption(std::move(message));
    }
  }
  return util::Status::Internal(std::string(payload));
}

// --- Blocking socket helpers ------------------------------------------------

util::Status SendFrame(int fd, FrameType type, std::string_view payload) {
  const std::string frame = EncodeFrame(type, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IOError(std::string("write: ") +
                                   std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return util::Status::OK();
}

util::Status RecvFrame(int fd, std::string* buf, Frame* out) {
  while (true) {
    OASIS_ASSIGN_OR_RETURN(size_t consumed, DecodeFrame(*buf, out));
    if (consumed > 0) {
      buf->erase(0, consumed);
      return util::Status::OK();
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::IOError(std::string("read: ") +
                                   std::strerror(errno));
    }
    if (n == 0) return util::Status::IOError("peer closed connection");
    buf->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace server
}  // namespace oasis
