// SequenceCatalog: the minimal per-sequence metadata (id, description,
// length) persisted next to a packed index as `catalog.meta`.
//
// The packed suffix tree stores only offsets; labelling results used to
// require reloading the source FASTA. The catalog removes that: Engine
// writes it at index-build time and reads it back at open time, so a
// search needs nothing but the index directory.
//
// Format (line-oriented text, like tree.meta):
//   num_sequences N
//   seq <length> <id> [description...]
// one `seq` line per sequence, in sequence-id order. Ids cannot contain
// whitespace (the FASTA parser splits them at the first whitespace), so the
// line is unambiguous; the description runs to end of line.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/database.h"
#include "util/status.h"

namespace oasis {
namespace api {

struct CatalogEntry {
  std::string id;
  std::string description;
  uint64_t length = 0;  ///< residues, excluding the terminator
};

class SequenceCatalog {
 public:
  /// File name inside an index directory.
  static constexpr const char* kFileName = "catalog.meta";

  SequenceCatalog() = default;
  explicit SequenceCatalog(std::vector<CatalogEntry> entries)
      : entries_(std::move(entries)) {}

  /// Builds the catalog of `db` (in sequence-id order).
  static SequenceCatalog FromDatabase(const seq::SequenceDatabase& db);

  /// Verifies that every entry's id is unique. Two records sharing an id
  /// would make every name-based lookup against this catalog silently
  /// ambiguous, so index builds reject the database up front; returns
  /// InvalidArgument naming the offending id and both record positions.
  util::Status CheckUniqueIds() const;

  /// Reads `dir`/catalog.meta.
  static util::StatusOr<SequenceCatalog> Load(const std::string& dir);

  /// Writes `dir`/catalog.meta (overwriting).
  util::Status Save(const std::string& dir) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CatalogEntry& entry(uint32_t id) const { return entries_[id]; }
  const std::vector<CatalogEntry>& entries() const { return entries_; }

  /// Sequence id `id`'s FASTA identifier, or "s<id>" past the end (so
  /// callers can label results even against a catalog-less legacy index).
  std::string name(uint32_t id) const;

 private:
  std::vector<CatalogEntry> entries_;
};

}  // namespace api
}  // namespace oasis
