#include "api/engine.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "seq/fasta.h"
#include "suffix/suffix_tree.h"
#include "util/logging.h"

namespace oasis {
namespace api {

namespace {

const score::SubstitutionMatrix& DefaultMatrix(seq::AlphabetKind kind) {
  return kind == seq::AlphabetKind::kDna ? score::SubstitutionMatrix::Blastn()
                                         : score::SubstitutionMatrix::Pam30();
}

}  // namespace

// --- SearchRequest ----------------------------------------------------------

util::StatusOr<SearchRequest> SearchRequest::FromText(
    const seq::Alphabet& alphabet, std::string_view text) {
  OASIS_ASSIGN_OR_RETURN(std::vector<seq::Symbol> query,
                         alphabet.Encode(text));
  return SearchRequest(std::move(query));
}

// --- ResultCursor -----------------------------------------------------------

ResultCursor::ResultCursor(core::OasisCursor stream)
    : stream_(std::move(stream)) {}

ResultCursor::ResultCursor(std::vector<core::OasisResult> replay)
    : replay_(std::move(replay)) {}

util::StatusOr<std::optional<core::OasisResult>> ResultCursor::Next() {
  if (!abort_status_.ok()) return abort_status_;
  if (closed_) return std::optional<core::OasisResult>();
  if (stream_.has_value()) {
    auto next_or = stream_->Next();
    stats_ = stream_->stats();
    if (!next_or.ok()) {
      // Sticky terminal (deadline, cancellation, I/O failure): the partial
      // stream already delivered stands, the search state is released now,
      // and every later Next() re-reports this status.
      abort_status_ = next_or.status();
      stream_.reset();
      closed_ = true;
      return abort_status_;
    }
    std::optional<core::OasisResult> next = std::move(next_or).value();
    if (!next.has_value()) {
      // Exhausted: release the search state (arena, frontier queue) now
      // rather than at cursor destruction; stats_ stays readable.
      stream_.reset();
      closed_ = true;
    }
    return next;
  }
  if (replay_pos_ >= replay_.size()) return std::optional<core::OasisResult>();
  return std::optional<core::OasisResult>(replay_[replay_pos_++]);
}

void ResultCursor::Close() {
  if (stream_.has_value()) {
    stats_ = stream_->stats();
    stream_.reset();
  }
  replay_.clear();
  replay_.shrink_to_fit();
  closed_ = true;
}

bool ResultCursor::done() const {
  if (!abort_status_.ok()) return true;
  if (closed_) return true;
  if (stream_.has_value()) return stream_->done();
  return replay_pos_ >= replay_.size();
}

// --- Engine factories -------------------------------------------------------

util::StatusOr<std::unique_ptr<Engine>> Engine::Build(
    const std::string& fasta_path, const std::string& index_dir,
    const EngineOptions& options) {
  const seq::Alphabet& alphabet = seq::Alphabet::Get(options.alphabet);
  OASIS_ASSIGN_OR_RETURN(std::vector<seq::Sequence> records,
                         seq::ReadFastaFile(fasta_path, alphabet));
  OASIS_ASSIGN_OR_RETURN(
      seq::SequenceDatabase db,
      seq::SequenceDatabase::Build(alphabet, std::move(records)));
  return BuildFromDatabase(std::move(db), index_dir, options);
}

util::StatusOr<std::unique_ptr<Engine>> Engine::BuildFromDatabase(
    seq::SequenceDatabase db, const std::string& index_dir,
    const EngineOptions& options) {
  OASIS_RETURN_NOT_OK(ValidateOptions(options));
  if (options.block_size == 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::block_size must be positive");
  }
  if (options.block_size % sizeof(suffix::PackedInternalNode) != 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::block_size " + std::to_string(options.block_size) +
        " must be a multiple of the " +
        std::to_string(sizeof(suffix::PackedInternalNode)) +
        "-byte internal-node record");
  }
  // Duplicate record ids would persist a catalog whose name-based lookups
  // are silently ambiguous; reject them before the expensive tree build.
  SequenceCatalog catalog = SequenceCatalog::FromDatabase(db);
  OASIS_RETURN_NOT_OK(catalog.CheckUniqueIds());
  OASIS_ASSIGN_OR_RETURN(suffix::SuffixTree tree,
                         suffix::SuffixTree::BuildUkkonen(db));
  suffix::PackOptions pack;
  pack.block_size = options.block_size;
  OASIS_RETURN_NOT_OK(suffix::PackSuffixTree(tree, index_dir, pack));
  OASIS_RETURN_NOT_OK(catalog.Save(index_dir));
  return OpenInternal(index_dir, options,
                      std::make_unique<seq::SequenceDatabase>(std::move(db)));
}

util::StatusOr<std::unique_ptr<Engine>> Engine::Open(
    const std::string& index_dir, const EngineOptions& options) {
  return OpenInternal(index_dir, options, nullptr);
}

util::Status Engine::ValidateOptions(const EngineOptions& options) {
  // An explicit kMmap engine never creates a pool, so pool_bytes is
  // legitimately irrelevant (0 included). kAuto may still resolve to the
  // pooled path, so it needs a valid size up front.
  if (options.pool_bytes == 0 && options.io_mode != IoMode::kMmap) {
    return util::Status::InvalidArgument(
        "EngineOptions::pool_bytes must be positive (the buffer pool is the "
        "one global cache all pooled-mode searches share)");
  }
  // An absurd speculation window would evict the whole pool per detected
  // run; 1024 blocks (2 MiB at the default block size) is already far past
  // any useful setting and keeps each coalesced read one preadv.
  if (options.readahead_blocks > kMaxReadaheadBlocks) {
    return util::Status::InvalidArgument(
        "EngineOptions::readahead_blocks " +
        std::to_string(options.readahead_blocks) + " exceeds the maximum " +
        std::to_string(kMaxReadaheadBlocks));
  }
  // A forced SIMD ISA the build/CPU cannot run is a configuration error,
  // not a silent scalar fallback (kAuto and kOff always pass).
  OASIS_RETURN_NOT_OK(align::simd::CheckSupported(options.simd_mode));
  if (options.readahead_blocks > 0 && options.readahead_threads == 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::readahead_threads must be positive when readahead "
        "is enabled (readahead_blocks > 0)");
  }
  // Adaptive-window bounds only constrain anything when an adaptive
  // readahead will actually be constructed.
  if (options.readahead_blocks > 0 && options.readahead_adaptive) {
    const uint32_t max_blocks = ResolveReadaheadMax(options);
    if (max_blocks > kMaxReadaheadBlocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_max_blocks " +
          std::to_string(options.readahead_max_blocks) +
          " must be in [1, " + std::to_string(kMaxReadaheadBlocks) + "]");
    }
    if (options.readahead_min_blocks > max_blocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_min_blocks " +
          std::to_string(options.readahead_min_blocks) +
          " exceeds readahead_max_blocks " + std::to_string(max_blocks));
    }
    if (options.readahead_blocks < options.readahead_min_blocks ||
        options.readahead_blocks > max_blocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_blocks " +
          std::to_string(options.readahead_blocks) +
          " (the adaptive initial window) must lie inside [" +
          std::to_string(options.readahead_min_blocks) + ", " +
          std::to_string(max_blocks) + "]");
    }
  }
  return util::Status::OK();
}

uint32_t Engine::ResolveReadaheadMax(const EngineOptions& options) {
  // 0 = auto: 64 blocks of headroom, never less than the configured
  // initial window — so every readahead_blocks value that is valid for
  // fixed-K readahead stays valid under the adaptive default.
  if (options.readahead_max_blocks != 0) return options.readahead_max_blocks;
  return std::max(64u, options.readahead_blocks);
}

util::StatusOr<std::unique_ptr<Engine>> Engine::OpenInternal(
    const std::string& index_dir, const EngineOptions& options,
    std::unique_ptr<seq::SequenceDatabase> resident_db) {
  OASIS_RETURN_NOT_OK(ValidateOptions(options));
  OASIS_ASSIGN_OR_RETURN(uint32_t block_size,
                         suffix::PeekIndexBlockSize(index_dir));

  // Resolve the I/O path: kAuto maps the index when its packed files fit
  // the RAM budget and falls back to the bounded pool otherwise.
  IoMode io_mode = options.io_mode;
  if (io_mode == IoMode::kAuto) {
    OASIS_ASSIGN_OR_RETURN(uint64_t index_bytes,
                           suffix::PackedIndexBytes(index_dir));
    io_mode = index_bytes <= options.mmap_budget_bytes ? IoMode::kMmap
                                                       : IoMode::kPooled;
  }

  // Cannot use make_unique: constructor is private.
  std::unique_ptr<Engine> engine(new Engine());
  engine->index_dir_ = index_dir;
  engine->io_mode_ = io_mode;
  engine->simd_mode_ = options.simd_mode;
  engine->simd_level_ = align::simd::ResolveLevel(options.simd_mode);
  // Monotone process-global counter, starting at 1 so 0 reads as "no
  // engine" in cache keys and diagnostics.
  static std::atomic<uint64_t> next_epoch{1};
  engine->epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
  if (io_mode == IoMode::kMmap) {
    OASIS_ASSIGN_OR_RETURN(engine->tree_,
                           suffix::PackedSuffixTree::OpenMapped(index_dir));
  } else {
    engine->pool_ =
        std::make_unique<storage::BufferPool>(options.pool_bytes, block_size);
    OASIS_ASSIGN_OR_RETURN(
        engine->tree_,
        suffix::PackedSuffixTree::Open(index_dir, engine->pool_.get()));
    if (options.readahead_blocks > 0) {
      storage::Readahead::Options readahead;
      readahead.blocks = options.readahead_blocks;
      readahead.threads = options.readahead_threads;
      readahead.adaptive = options.readahead_adaptive;
      readahead.adaptive_options.min_blocks = options.readahead_min_blocks;
      readahead.adaptive_options.max_blocks = ResolveReadaheadMax(options);
      engine->readahead_ = std::make_unique<storage::Readahead>(
          engine->pool_.get(), readahead);
    }
  }
  engine->fetch_memo_ = options.fetch_memo;
  engine->alphabet_ = &seq::Alphabet::Get(engine->tree_->alphabet_kind());
  engine->matrix_ = options.matrix != nullptr
                        ? options.matrix
                        : &DefaultMatrix(engine->tree_->alphabet_kind());
  if (engine->matrix_->size() != engine->tree_->alphabet_size()) {
    return util::Status::InvalidArgument(
        "matrix alphabet (" + std::to_string(engine->matrix_->size()) +
        " symbols) does not match the indexed database (" +
        std::to_string(engine->tree_->alphabet_size()) + ")");
  }
  engine->search_ = std::make_unique<core::OasisSearch>(engine->tree_.get(),
                                                        engine->matrix_);
  engine->db_ = std::move(resident_db);

  auto catalog = SequenceCatalog::Load(index_dir);
  if (catalog.ok()) {
    if (catalog->size() != engine->tree_->num_sequences()) {
      return util::Status::Corruption(
          "catalog lists " + std::to_string(catalog->size()) +
          " sequences but the index holds " +
          std::to_string(engine->tree_->num_sequences()));
    }
    engine->catalog_ = std::move(catalog).value();
  } else if (!catalog.status().IsNotFound()) {
    return catalog.status();
  }
  // A missing catalog (pre-catalog index) degrades to synthetic "s<i>"
  // labels via SequenceCatalog::name; lengths stay available from the tree.

  auto karlin = score::ComputeKarlinParams(*engine->matrix_);
  if (karlin.ok()) {
    engine->karlin_ = *karlin;
    engine->has_karlin_ = true;
  }
  return engine;
}

uint32_t Engine::readahead_blocks() const {
  return readahead_ != nullptr ? readahead_->blocks() : 0;
}

bool Engine::readahead_adaptive() const {
  return readahead_ != nullptr && readahead_->adaptive();
}

storage::ReadaheadStats Engine::readahead_stats() const {
  OASIS_CHECK(readahead_ != nullptr)
      << "readahead statistics only exist on a pooled engine with "
         "readahead_blocks > 0";
  return readahead_->stats();
}

util::EngineStatsSnapshot Engine::CollectStats() const {
  util::EngineStatsSnapshot snapshot;
  if (pool_ == nullptr) return snapshot;  // mmap: pooled stays false
  snapshot.pooled = true;
  snapshot.frames = pool_->num_frames();
  snapshot.block_size = pool_->block_size();
  snapshot.shards = pool_->num_shards();
  for (storage::SegmentId seg = 0;
       seg < static_cast<storage::SegmentId>(pool_->num_segments()); ++seg) {
    const storage::SegmentStats stats = pool_->stats(seg);
    util::SegmentStatsRow row;
    row.name = pool_->segment_name(seg);
    row.requests = stats.requests;
    row.hits = stats.hits;
    row.hit_ratio = stats.hit_ratio();
    snapshot.segments.push_back(std::move(row));
  }
  const storage::SegmentStats total = pool_->TotalStats();
  snapshot.total.name = "total";
  snapshot.total.requests = total.requests;
  snapshot.total.hits = total.hits;
  snapshot.total.hit_ratio = total.hit_ratio();
  if (readahead_ != nullptr) {
    snapshot.readahead_enabled = true;
    snapshot.readahead_adaptive = readahead_->adaptive();
    snapshot.readahead_blocks = readahead_->blocks();
    const storage::ReadaheadStats ra = readahead_->stats();
    snapshot.readahead_issued = ra.issued;
    snapshot.readahead_used = ra.used;
    snapshot.readahead_wasted = ra.wasted;
    snapshot.readahead_waste_ratio = ra.waste_ratio();
    if (readahead_->adaptive()) {
      const storage::AdaptiveReadahead& ctl = *readahead_->controller();
      for (storage::SegmentId seg = 0;
           seg < static_cast<storage::SegmentId>(pool_->num_segments());
           ++seg) {
        const storage::AdaptiveReadahead::SegmentSnapshot s =
            ctl.snapshot(seg);
        util::AdaptiveWindowRow row;
        row.name = pool_->segment_name(seg);
        row.window = s.window;
        row.ewma = s.ewma;
        row.samples = s.samples;
        row.grows = s.grows;
        row.shrinks = s.shrinks;
        row.probes = s.probes;
        snapshot.windows.push_back(std::move(row));
      }
    }
  }
  return snapshot;
}

// --- Request resolution -----------------------------------------------------

util::StatusOr<score::ScoreT> Engine::ResolveMinScore(
    const SearchRequest& request) const {
  if (request.min_score() > 0) return request.min_score();
  if (!has_karlin_) {
    return util::Status::InvalidArgument(
        "E-value selectivity needs Karlin statistics, which matrix '" +
        matrix_->name() +
        "' does not admit; set SearchRequest::MinScore explicitly");
  }
  return search_->MinScoreForEValue(karlin_, request.evalue(),
                                    request.query().size());
}

util::StatusOr<core::OasisOptions> Engine::ResolveOptions(
    const SearchRequest& request) const {
  core::OasisOptions options;
  OASIS_ASSIGN_OR_RETURN(options.min_score, ResolveMinScore(request));
  options.max_results = request.top_k();
  options.reconstruct_alignments = request.alignments();
  options.all_alignments = request.all_alignments();
  options.order_by_evalue = request.order_by_evalue();
  // The memo only matters on the pooled path (a mapped fetch is already a
  // bounds check); resolving it here gives every entry point — Search,
  // SearchAll, SearchBatch workers — the same per-cursor cache.
  options.use_fetch_memo = fetch_memo_ && pool_ != nullptr;
  if (request.order_by_evalue()) {
    if (!has_karlin_) {
      return util::Status::InvalidArgument(
          "OrderByEValue needs Karlin statistics, which matrix '" +
          matrix_->name() + "' does not admit");
    }
    options.karlin = karlin_;
  }
  // Compose the suspension-point poll: cancellation first (a cancelled
  // client should see kCancelled even if its deadline also lapsed while it
  // waited), then the deadline, then the caller's custom hook. The common
  // case — none of the three set — leaves options.poll null, so the
  // undeadlined search path keeps its zero-overhead loop.
  const std::atomic<bool>* cancel_flag = request.cancel_flag();
  std::optional<std::chrono::steady_clock::time_point> deadline =
      request.deadline();
  std::function<util::Status()> custom_poll = request.poll();
  if (cancel_flag != nullptr || deadline.has_value() || custom_poll) {
    options.poll = [cancel_flag, deadline,
                    custom_poll = std::move(custom_poll)]() -> util::Status {
      if (cancel_flag != nullptr &&
          cancel_flag->load(std::memory_order_relaxed)) {
        return util::Status::Cancelled("search cancelled");
      }
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() >= *deadline) {
        return util::Status::DeadlineExceeded("search deadline exceeded");
      }
      if (custom_poll) return custom_poll();
      return util::Status::OK();
    };
  }
  return options;
}

// --- Queries ----------------------------------------------------------------

util::StatusOr<ResultCursor> Engine::Search(const SearchRequest& request) const {
  OASIS_ASSIGN_OR_RETURN(core::OasisOptions options,
                         ResolveOptions(request));
  OASIS_ASSIGN_OR_RETURN(core::OasisCursor cursor,
                         search_->Cursor(request.query(), options));
  return ResultCursor(std::move(cursor));
}

util::StatusOr<BatchResult> Engine::SearchAll(
    const SearchRequest& request) const {
  OASIS_ASSIGN_OR_RETURN(ResultCursor cursor, Search(request));
  BatchResult out;
  while (true) {
    OASIS_ASSIGN_OR_RETURN(std::optional<core::OasisResult> next,
                           cursor.Next());
    if (!next.has_value()) break;
    out.results.push_back(std::move(*next));
  }
  out.stats = cursor.stats();
  return out;
}

util::StatusOr<std::vector<BatchResult>> Engine::SearchBatch(
    std::span<const SearchRequest> requests,
    const BatchOptions& options) const {
  if (options.threads == 0) {
    return util::Status::InvalidArgument(
        "BatchOptions::threads must be positive");
  }
  const size_t n = requests.size();
  std::vector<BatchResult> out(n);
  if (n == 0) return out;

  // Resolve every request up front on the calling thread: resolution reads
  // shared engine state, and failing fast beats failing mid-fan-out.
  std::vector<core::OasisOptions> resolved(n);
  for (size_t i = 0; i < n; ++i) {
    OASIS_ASSIGN_OR_RETURN(resolved[i], ResolveOptions(requests[i]));
  }

  const uint32_t threads =
      std::min<uint32_t>(options.threads, static_cast<uint32_t>(n));

  // Work-stealing over the shared index: every worker drives the engine's
  // one OasisSearch over the one packed tree and one sharded buffer pool.
  // OasisSearch is stateless/const, the tree's read paths are thread-safe,
  // the pool synchronizes per shard, and the matrix and request vectors are
  // only read — so the workers share cache warmth and write only to
  // distinct output slots.
  std::atomic<size_t> next_request{0};
  std::mutex error_mutex;
  util::Status first_error = util::Status::OK();

  auto worker = [&]() {
    while (true) {
      const size_t i = next_request.fetch_add(1);
      if (i >= n) break;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) break;
      }
      core::OasisStats stats;
      auto results =
          search_->SearchAll(requests[i].query(), resolved[i], &stats);
      if (!results.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = results.status();
        break;
      }
      out[i].results = std::move(results).value();
      out[i].stats = stats;
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();

  OASIS_RETURN_NOT_OK(first_error);
  return out;
}

util::StatusOr<ResultCursor> Engine::BlastSearch(
    const SearchRequest& request, const blast::BlastOptions& blast_options) {
  if (!has_karlin_) {
    return util::Status::InvalidArgument(
        "BLAST E-value statistics need Karlin parameters, which matrix '" +
        matrix_->name() + "' does not admit");
  }
  OASIS_ASSIGN_OR_RETURN(const seq::SequenceDatabase* db, ResidentDatabase());

  // The request's selectivity knob wins, mirroring the OASIS path: an
  // explicit MinScore disables the E-value cutoff entirely (score filtering
  // happens below), otherwise the request's E-value replaces the one in
  // blast_options so both engines run at the same selectivity.
  blast::BlastOptions resolved = blast_options;
  resolved.evalue_cutoff = request.min_score() > 0
                               ? std::numeric_limits<double>::infinity()
                               : request.evalue();
  // A caller-pinned SIMD mode in blast_options wins; kAuto inherits the
  // engine's configured mode so --simd reaches the extension stage.
  if (resolved.simd == align::simd::SimdMode::kAuto) {
    resolved.simd = simd_mode_;
  }
  OASIS_ASSIGN_OR_RETURN(
      blast::BlastQuery prepared,
      blast::BlastQuery::Prepare(request.query(), *matrix_, resolved));
  OASIS_ASSIGN_OR_RETURN(std::vector<blast::BlastHit> hits,
                         blast::Search(prepared, *db, *matrix_, karlin_));

  // Same shape as the OASIS stream: one best hit per sequence, descending
  // score. (Alignment reconstruction is not available for the heuristic
  // baseline; WithAlignments is ignored.)
  std::vector<core::OasisResult> results;
  results.reserve(hits.size());
  for (const blast::BlastHit& hit : hits) {
    if (request.min_score() > 0 && hit.score < request.min_score()) continue;
    core::OasisResult result;
    result.sequence_id = hit.sequence_id;
    result.score = hit.score;
    result.evalue = hit.evalue;
    result.target_end = hit.target_end;
    result.db_end_pos = db->SequenceStart(hit.sequence_id) + hit.target_end;
    result.query_end = static_cast<uint32_t>(hit.query_end);
    results.push_back(result);
    if (request.top_k() != 0 && results.size() >= request.top_k()) break;
  }
  return ResultCursor(std::move(results));
}

// --- Resident database ------------------------------------------------------

util::StatusOr<const seq::SequenceDatabase*> Engine::ResidentDatabase() {
  if (db_ != nullptr) return static_cast<const seq::SequenceDatabase*>(db_.get());

  // Materialize from the packed symbols file: residue bytes decode 1:1 to
  // symbol codes, and sequence boundaries come from the tree metadata.
  std::vector<seq::Sequence> sequences;
  sequences.reserve(tree_->num_sequences());
  std::vector<uint8_t> bytes;
  for (uint32_t id = 0; id < tree_->num_sequences(); ++id) {
    const uint64_t start = tree_->SequenceStart(id);
    const uint64_t len = tree_->TerminatorPos(id) - start;
    // ReadSymbols takes a 32-bit length; read in chunks so sequences are
    // not silently truncated (positions are 64-bit).
    std::vector<seq::Symbol> symbols;
    symbols.reserve(len);
    constexpr uint64_t kChunk = 1u << 20;
    for (uint64_t off = 0; off < len; off += kChunk) {
      const uint32_t n = static_cast<uint32_t>(std::min(kChunk, len - off));
      // One-pass scan of the whole symbols file: the kScan admission hint
      // keeps it from refreshing CLOCK reference bits, so materializing
      // the database cannot evict the hot internal blocks searches use.
      OASIS_RETURN_NOT_OK(tree_->ReadSymbols(start + off, n, &bytes,
                                             storage::Admission::kScan));
      symbols.insert(symbols.end(), bytes.begin(), bytes.end());
    }
    for (seq::Symbol s : symbols) {
      if (s >= alphabet_->size()) {
        return util::Status::Corruption(
            "index symbols contain a non-residue byte inside sequence " +
            std::to_string(id));
      }
    }
    std::string cat_id = catalog_.name(id);
    std::string description =
        id < catalog_.size() ? catalog_.entry(id).description : "";
    sequences.emplace_back(std::move(cat_id), std::move(description),
                           std::move(symbols));
  }
  OASIS_ASSIGN_OR_RETURN(
      seq::SequenceDatabase db,
      seq::SequenceDatabase::Build(*alphabet_, std::move(sequences)));
  db_ = std::make_unique<seq::SequenceDatabase>(std::move(db));
  return static_cast<const seq::SequenceDatabase*>(db_.get());
}

}  // namespace api
}  // namespace oasis
