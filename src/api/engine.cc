#include "api/engine.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mask/tantan.h"
#include "seq/fasta.h"
#include "suffix/partitioned_builder.h"
#include "util/logging.h"

namespace oasis {
namespace api {

namespace {

const score::SubstitutionMatrix& DefaultMatrix(seq::AlphabetKind kind) {
  return kind == seq::AlphabetKind::kDna ? score::SubstitutionMatrix::Blastn()
                                         : score::SubstitutionMatrix::Pam30();
}

/// Process-global epoch counter, starting at 1 so 0 reads as "no engine"
/// in cache keys and diagnostics. Every open *and every mutation* draws a
/// fresh value, so an epoch never aliases across engines or index states.
uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Buffer-pool segment-name prefix of a volume: the legacy root volume
/// keeps the historical unqualified names ("internal"), every real volume
/// qualifies them ("vol_0003/internal") so one pool serves the whole set
/// with per-volume statistics.
std::string SegmentPrefixFor(const std::string& volume_name) {
  if (volume_name == VolumeSetManifest::kLegacyVolumeName) return "";
  return volume_name + "/";
}

/// Slices `sequences`, in order, into volume payloads of roughly
/// `volume_size_bytes` residue bytes each. A sequence is never split; a
/// slice always holds at least one sequence (so an oversized sequence
/// becomes a volume of its own). volume_size_bytes == 0 means one slice.
std::vector<std::vector<seq::Sequence>> SliceByBytes(
    std::vector<seq::Sequence> sequences, uint64_t volume_size_bytes) {
  std::vector<std::vector<seq::Sequence>> slices;
  std::vector<seq::Sequence> current;
  uint64_t current_bytes = 0;
  for (seq::Sequence& sequence : sequences) {
    const uint64_t bytes = sequence.size();
    if (volume_size_bytes > 0 && !current.empty() &&
        current_bytes + bytes > volume_size_bytes) {
      slices.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current_bytes += bytes;
    current.push_back(std::move(sequence));
  }
  if (!current.empty()) slices.push_back(std::move(current));
  return slices;
}

// --- Annotation sidecars ----------------------------------------------------
//
// The packed symbols file stores residue codes only, so a volume's
// soft-masks and base qualities persist next to it in two optional
// sidecars — one byte per residue of the volume, in sequence order,
// terminators excluded. A volume without annotations writes neither file,
// and pre-masking indexes open unchanged.

constexpr char kMaskSidecarFile[] = "mask.side";
constexpr char kQualsSidecarFile[] = "quals.side";
/// quals.side filler for sequences that carry no qualities (real phred
/// values top out far below 0xFF).
constexpr uint8_t kNoQual = 0xFF;

/// Writes the sidecars of a freshly built volume. The mask sidecar is
/// written whenever the build ran soft — its mode field is what makes soft
/// mode sticky across Open/Append even when nothing was masked — or when
/// any sequence carries a mask (lowercase input under mask_mode=off
/// records mode "case"). The quals sidecar is written only when some
/// sequence carries qualities.
util::Status WriteSidecars(const seq::SequenceDatabase& db,
                           const std::string& volume_dir, bool soft) {
  bool any_mask = false;
  bool any_quals = false;
  for (const seq::Sequence& s : db.sequences()) {
    any_mask = any_mask || s.has_mask();
    any_quals = any_quals || s.has_quals();
  }
  const uint64_t num_residues = db.num_residues();
  if (soft || any_mask) {
    const std::string path = volume_dir + "/" + kMaskSidecarFile;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IOError("cannot write " + path);
    out << "oasis-mask 1 " << num_residues << " " << (soft ? "soft" : "case")
        << "\n";
    for (const seq::Sequence& s : db.sequences()) {
      if (s.has_mask()) {
        out.write(reinterpret_cast<const char*>(s.mask().data()),
                  static_cast<std::streamsize>(s.mask().size()));
      } else {
        const std::string zeros(s.size(), '\0');
        out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
      }
    }
    out.flush();
    if (!out) return util::Status::IOError("short write to " + path);
  }
  if (any_quals) {
    const std::string path = volume_dir + "/" + kQualsSidecarFile;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IOError("cannot write " + path);
    out << "oasis-quals 1 " << num_residues << "\n";
    for (const seq::Sequence& s : db.sequences()) {
      if (s.has_quals()) {
        out.write(reinterpret_cast<const char*>(s.quals().data()),
                  static_cast<std::streamsize>(s.quals().size()));
      } else {
        const std::string fill(s.size(), static_cast<char>(kNoQual));
        out.write(fill.data(), static_cast<std::streamsize>(fill.size()));
      }
    }
    out.flush();
    if (!out) return util::Status::IOError("short write to " + path);
  }
  return util::Status::OK();
}

/// Reads just the mask sidecar's header to learn whether the volume was
/// built with soft masking. A missing sidecar reads as "not soft".
util::StatusOr<bool> ReadMaskSidecarSoft(const std::string& volume_dir) {
  const std::string path = volume_dir + "/" + kMaskSidecarFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string header;
  std::string magic;
  std::string mode;
  uint32_t version = 0;
  uint64_t residues = 0;
  if (!std::getline(in, header)) {
    return util::Status::Corruption("truncated mask sidecar " + path);
  }
  std::istringstream fields(header);
  if (!(fields >> magic >> version >> residues >> mode) ||
      magic != "oasis-mask" || version != 1 ||
      (mode != "soft" && mode != "case")) {
    return util::Status::Corruption("malformed mask sidecar header in " + path);
  }
  return mode == "soft";
}

/// One volume's persisted annotations, concatenated in sequence order.
/// Empty vectors when the corresponding sidecar is absent.
struct VolumeAnnotations {
  std::vector<uint8_t> mask;
  std::vector<uint8_t> quals;
};

/// Reads the body of one sidecar: header line (validated against
/// `expected_residues`), then exactly that many raw bytes.
util::Status ReadSidecarBody(const std::string& path, const char* magic,
                             uint64_t expected_residues,
                             std::vector<uint8_t>* body) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::OK();  // absent: leave *body empty
  std::string header;
  if (!std::getline(in, header)) {
    return util::Status::Corruption("truncated sidecar " + path);
  }
  std::istringstream fields(header);
  std::string got_magic;
  uint32_t version = 0;
  uint64_t residues = 0;
  if (!(fields >> got_magic >> version >> residues) || got_magic != magic ||
      version != 1) {
    return util::Status::Corruption("malformed sidecar header in " + path);
  }
  if (residues != expected_residues) {
    return util::Status::Corruption(
        "sidecar " + path + " covers " + std::to_string(residues) +
        " residues but the volume holds " + std::to_string(expected_residues));
  }
  body->resize(residues);
  in.read(reinterpret_cast<char*>(body->data()),
          static_cast<std::streamsize>(residues));
  if (static_cast<uint64_t>(in.gcount()) != residues) {
    return util::Status::Corruption("truncated sidecar body in " + path);
  }
  return util::Status::OK();
}

util::StatusOr<VolumeAnnotations> ReadAnnotations(const std::string& volume_dir,
                                                  uint64_t expected_residues) {
  VolumeAnnotations out;
  OASIS_RETURN_NOT_OK(ReadSidecarBody(volume_dir + "/" + kMaskSidecarFile,
                                      "oasis-mask", expected_residues,
                                      &out.mask));
  OASIS_RETURN_NOT_OK(ReadSidecarBody(volume_dir + "/" + kQualsSidecarFile,
                                      "oasis-quals", expected_residues,
                                      &out.quals));
  return out;
}

}  // namespace

// --- Mask mode --------------------------------------------------------------

util::StatusOr<MaskMode> ParseMaskMode(const std::string& text) {
  if (text == "off") return MaskMode::kOff;
  if (text == "soft") return MaskMode::kSoft;
  return util::Status::InvalidArgument("unknown mask mode '" + text +
                                       "' (expected off or soft)");
}

std::string MaskModeName(MaskMode mode) {
  return mode == MaskMode::kSoft ? "soft" : "off";
}

// --- SearchRequest ----------------------------------------------------------

util::StatusOr<SearchRequest> SearchRequest::FromText(
    const seq::Alphabet& alphabet, std::string_view text) {
  OASIS_ASSIGN_OR_RETURN(std::vector<seq::Symbol> query,
                         alphabet.Encode(text));
  return SearchRequest(std::move(query));
}

// --- ResultCursor -----------------------------------------------------------

ResultCursor::ResultCursor(core::OasisCursor stream)
    : stream_(std::move(stream)) {}

ResultCursor::ResultCursor(core::MergedOasisCursor merged)
    : merged_(std::move(merged)) {}

ResultCursor::ResultCursor(std::vector<core::OasisResult> replay)
    : replay_(std::move(replay)) {}

util::StatusOr<std::optional<core::OasisResult>> ResultCursor::Next() {
  if (!abort_status_.ok()) return abort_status_;
  if (closed_) return std::optional<core::OasisResult>();
  if (stream_.has_value() || merged_.has_value()) {
    auto next_or =
        stream_.has_value() ? stream_->Next() : merged_->Next();
    stats_ = stream_.has_value() ? stream_->stats() : merged_->stats();
    if (!next_or.ok()) {
      // Sticky terminal (deadline, cancellation, I/O failure): the partial
      // stream already delivered stands, the search state is released now,
      // and every later Next() re-reports this status.
      abort_status_ = next_or.status();
      stream_.reset();
      merged_.reset();
      closed_ = true;
      return abort_status_;
    }
    std::optional<core::OasisResult> next = std::move(next_or).value();
    if (!next.has_value()) {
      // Exhausted: release the search state (arena, frontier queue) now
      // rather than at cursor destruction; stats_ stays readable.
      stream_.reset();
      merged_.reset();
      closed_ = true;
    }
    return next;
  }
  if (replay_pos_ >= replay_.size()) return std::optional<core::OasisResult>();
  return std::optional<core::OasisResult>(replay_[replay_pos_++]);
}

void ResultCursor::Close() {
  if (stream_.has_value()) {
    stats_ = stream_->stats();
    stream_.reset();
  }
  if (merged_.has_value()) {
    stats_ = merged_->stats();
    merged_.reset();
  }
  replay_.clear();
  replay_.shrink_to_fit();
  closed_ = true;
}

bool ResultCursor::done() const {
  if (!abort_status_.ok()) return true;
  if (closed_) return true;
  if (stream_.has_value()) return stream_->done();
  if (merged_.has_value()) return merged_->done();
  return replay_pos_ >= replay_.size();
}

// --- Engine factories -------------------------------------------------------

util::StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const std::string& fasta_path, const std::string& index_dir,
    const EngineOptions& options) {
  const seq::Alphabet& alphabet = seq::Alphabet::Get(options.alphabet);
  OASIS_ASSIGN_OR_RETURN(std::vector<seq::Sequence> records,
                         seq::ReadFastaFile(fasta_path, alphabet));
  OASIS_ASSIGN_OR_RETURN(
      seq::SequenceDatabase db,
      seq::SequenceDatabase::Build(alphabet, std::move(records)));
  return CreateFromDatabase(std::move(db), index_dir, options);
}

util::StatusOr<std::unique_ptr<Engine>> Engine::CreateFromDatabase(
    seq::SequenceDatabase db, const std::string& index_dir,
    const EngineOptions& options) {
  OASIS_RETURN_NOT_OK(ValidateOptions(options));
  if (options.block_size == 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::block_size must be positive");
  }
  if (options.block_size % sizeof(suffix::PackedInternalNode) != 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::block_size " + std::to_string(options.block_size) +
        " must be a multiple of the " +
        std::to_string(sizeof(suffix::PackedInternalNode)) +
        "-byte internal-node record");
  }
  // Duplicate record ids would persist a catalog whose name-based lookups
  // are silently ambiguous; reject them before the expensive tree build.
  OASIS_RETURN_NOT_OK(SequenceCatalog::FromDatabase(db).CheckUniqueIds());

  if (options.mask_mode == MaskMode::kSoft) {
    // Repeat detection runs once, at build entry: detected positions OR
    // into the per-sequence masks (lowercase input positions persist too)
    // and the rebuilt database carries them into every volume build.
    const seq::Alphabet& alphabet = db.alphabet();
    std::vector<seq::Sequence> sequences = db.sequences();
    mask::SoftMaskAll(&sequences, alphabet.size());
    OASIS_ASSIGN_OR_RETURN(
        db, seq::SequenceDatabase::Build(alphabet, std::move(sequences)));
  }

  if (options.volume_size_bytes == 0) {
    // Legacy single-directory layout: one volume at the index root, no
    // manifest — byte-compatible with every pre-volume reader. Built
    // through the same BuildVolume path as real volumes (exclusion map,
    // catalog, sidecars); the discarded VolumeInfo is manifest-only.
    OASIS_RETURN_NOT_OK(
        BuildVolume(db, index_dir, VolumeSetManifest::kLegacyVolumeName,
                    options)
            .status());
  } else {
    VolumeSetManifest manifest;
    OASIS_RETURN_NOT_OK(BuildVolumesParallel(db.alphabet(), db.sequences(),
                                             index_dir, options, &manifest));
    OASIS_RETURN_NOT_OK(manifest.Save(index_dir));
  }
  return OpenInternal(index_dir, options,
                      std::make_unique<seq::SequenceDatabase>(std::move(db)));
}

util::StatusOr<std::unique_ptr<Engine>> Engine::Open(
    const std::string& index_dir, const EngineOptions& options) {
  return OpenInternal(index_dir, options, nullptr);
}

Engine::~Engine() { WaitForCompaction(); }

util::Status Engine::ValidateOptions(const EngineOptions& options) {
  // An explicit kMmap engine never creates a pool, so pool_bytes is
  // legitimately irrelevant (0 included). kAuto may still resolve to the
  // pooled path, so it needs a valid size up front.
  if (options.pool_bytes == 0 && options.io_mode != IoMode::kMmap) {
    return util::Status::InvalidArgument(
        "EngineOptions::pool_bytes must be positive (the buffer pool is the "
        "one global cache all pooled-mode searches share)");
  }
  // An absurd speculation window would evict the whole pool per detected
  // run; 1024 blocks (2 MiB at the default block size) is already far past
  // any useful setting and keeps each coalesced read one preadv.
  if (options.readahead_blocks > kMaxReadaheadBlocks) {
    return util::Status::InvalidArgument(
        "EngineOptions::readahead_blocks " +
        std::to_string(options.readahead_blocks) + " exceeds the maximum " +
        std::to_string(kMaxReadaheadBlocks));
  }
  // A forced SIMD ISA the build/CPU cannot run is a configuration error,
  // not a silent scalar fallback (kAuto and kOff always pass).
  OASIS_RETURN_NOT_OK(align::simd::CheckSupported(options.simd_mode));
  if (options.readahead_blocks > 0 && options.readahead_threads == 0) {
    return util::Status::InvalidArgument(
        "EngineOptions::readahead_threads must be positive when readahead "
        "is enabled (readahead_blocks > 0)");
  }
  if (options.build_threads > kMaxBuildThreads) {
    return util::Status::InvalidArgument(
        "EngineOptions::build_threads " +
        std::to_string(options.build_threads) + " exceeds the maximum " +
        std::to_string(kMaxBuildThreads));
  }
  // Adaptive-window bounds only constrain anything when an adaptive
  // readahead will actually be constructed.
  if (options.readahead_blocks > 0 && options.readahead_adaptive) {
    const uint32_t max_blocks = ResolveReadaheadMax(options);
    if (max_blocks > kMaxReadaheadBlocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_max_blocks " +
          std::to_string(options.readahead_max_blocks) +
          " must be in [1, " + std::to_string(kMaxReadaheadBlocks) + "]");
    }
    if (options.readahead_min_blocks > max_blocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_min_blocks " +
          std::to_string(options.readahead_min_blocks) +
          " exceeds readahead_max_blocks " + std::to_string(max_blocks));
    }
    if (options.readahead_blocks < options.readahead_min_blocks ||
        options.readahead_blocks > max_blocks) {
      return util::Status::InvalidArgument(
          "EngineOptions::readahead_blocks " +
          std::to_string(options.readahead_blocks) +
          " (the adaptive initial window) must lie inside [" +
          std::to_string(options.readahead_min_blocks) + ", " +
          std::to_string(max_blocks) + "]");
    }
  }
  return util::Status::OK();
}

uint32_t Engine::ResolveReadaheadMax(const EngineOptions& options) {
  // 0 = auto: 64 blocks of headroom, never less than the configured
  // initial window — so every readahead_blocks value that is valid for
  // fixed-K readahead stays valid under the adaptive default.
  if (options.readahead_max_blocks != 0) return options.readahead_max_blocks;
  return std::max(64u, options.readahead_blocks);
}

// --- Volume building --------------------------------------------------------

util::StatusOr<VolumeInfo> Engine::BuildVolume(const seq::SequenceDatabase& db,
                                               const std::string& volume_dir,
                                               const std::string& volume_name,
                                               const EngineOptions& options) {
  // The partitioned builder produces a bit-identical tree to Ukkonen's
  // (property-tested) within a bounded per-pass memory budget — exactly
  // what parallel volume builds need — and reports the build statistics
  // the manifest persists.
  suffix::PartitionedBuildStats build_stats;
  suffix::PartitionedBuildOptions build_options;
  // Gentle masking: a masked position loses its *leaf* only. The symbols
  // file still stores every residue, so arc labels pass straight through
  // repeats and alignments extend across them at full score — the repeat
  // just cannot start a match.
  const bool soft = options.mask_mode == MaskMode::kSoft;
  std::vector<uint8_t> exclusion;
  if (soft) {
    exclusion = mask::BuildExclusion(db);
    if (!exclusion.empty()) build_options.exclude = &exclusion;
  }
  OASIS_ASSIGN_OR_RETURN(
      suffix::SuffixTree tree,
      suffix::BuildPartitioned(db, build_options, &build_stats));
  suffix::PackOptions pack;
  pack.block_size = options.block_size;
  OASIS_RETURN_NOT_OK(suffix::PackSuffixTree(tree, volume_dir, pack));
  OASIS_RETURN_NOT_OK(SequenceCatalog::FromDatabase(db).Save(volume_dir));
  OASIS_RETURN_NOT_OK(WriteSidecars(db, volume_dir, soft));
  VolumeInfo info;
  info.name = volume_name;
  info.num_sequences = db.num_sequences();
  info.num_residues = db.num_residues();
  info.build_stats = build_stats;
  return info;
}

util::Status Engine::BuildVolumesParallel(const seq::Alphabet& alphabet,
                                          std::vector<seq::Sequence> sequences,
                                          const std::string& index_dir,
                                          const EngineOptions& options,
                                          VolumeSetManifest* manifest) {
  std::vector<std::vector<seq::Sequence>> slices =
      SliceByBytes(std::move(sequences), options.volume_size_bytes);
  const size_t n = slices.size();
  // Volume names are minted serially (the counter is not thread-safe and
  // the manifest order must match the slice order), builds run in parallel.
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.push_back(manifest->NextVolumeName());
  std::vector<VolumeInfo> entries(n);

  uint32_t threads = options.build_threads != 0
                         ? options.build_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<uint32_t>(threads, static_cast<uint32_t>(n));

  // Work-stealing over the slice list: one volume per worker at a time,
  // each build bounded by the partitioned builder's per-pass budget, so
  // peak memory scales with the thread count, not the database size.
  std::atomic<size_t> next_slice{0};
  std::mutex error_mutex;
  util::Status first_error = util::Status::OK();
  auto worker = [&]() {
    while (true) {
      const size_t i = next_slice.fetch_add(1);
      if (i >= n) break;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) break;
      }
      auto build = [&]() -> util::Status {
        OASIS_ASSIGN_OR_RETURN(
            seq::SequenceDatabase db,
            seq::SequenceDatabase::Build(alphabet, std::move(slices[i])));
        OASIS_ASSIGN_OR_RETURN(
            entries[i],
            BuildVolume(db, VolumeSetManifest::VolumeDir(index_dir, names[i]),
                        names[i], options));
        return util::Status::OK();
      };
      const util::Status status = build();
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = status;
        break;
      }
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) workers.emplace_back(worker);
    for (std::thread& t : workers) t.join();
  }
  OASIS_RETURN_NOT_OK(first_error);
  for (VolumeInfo& entry : entries) manifest->AddVolume(std::move(entry));
  return util::Status::OK();
}

// --- Volume-set opening -----------------------------------------------------

util::StatusOr<std::shared_ptr<Engine::VolumeSetState>> Engine::OpenVolumeSet(
    const std::string& index_dir, const EngineOptions& options,
    VolumeSetManifest manifest) {
  auto state = std::make_shared<VolumeSetState>();
  state->manifest = std::move(manifest);
  const std::vector<VolumeInfo>& volumes = state->manifest.volumes();

  // Every volume of one set must share a block size (the shared pool
  // requires it) — validated across all volumes, adopted from the first.
  uint32_t block_size = 0;
  uint64_t index_bytes = 0;
  for (const VolumeInfo& volume : volumes) {
    const std::string dir = VolumeSetManifest::VolumeDir(index_dir, volume.name);
    OASIS_ASSIGN_OR_RETURN(uint32_t vol_block, suffix::PeekIndexBlockSize(dir));
    if (block_size == 0) {
      block_size = vol_block;
    } else if (vol_block != block_size) {
      return util::Status::Corruption(
          "volume '" + volume.name + "' uses block size " +
          std::to_string(vol_block) + " but the set uses " +
          std::to_string(block_size));
    }
    OASIS_ASSIGN_OR_RETURN(uint64_t bytes, suffix::PackedIndexBytes(dir));
    index_bytes += bytes;
  }

  // Resolve the I/O path: kAuto maps the set when its packed files —
  // *all volumes together* — fit the RAM budget, pools otherwise.
  IoMode io_mode = options.io_mode;
  if (io_mode == IoMode::kAuto) {
    io_mode = index_bytes <= options.mmap_budget_bytes ? IoMode::kMmap
                                                       : IoMode::kPooled;
  }
  state->io_mode = io_mode;
  if (io_mode == IoMode::kPooled) {
    state->pool =
        std::make_unique<storage::BufferPool>(options.pool_bytes, block_size);
  }

  std::vector<CatalogEntry> merged_entries;
  std::vector<VolumeInfo> patched = volumes;
  uint32_t id_base = 0;
  uint64_t pos_base = 0;
  bool missing_catalog = false;
  for (size_t i = 0; i < patched.size(); ++i) {
    VolumeInfo& volume = patched[i];
    const std::string dir = VolumeSetManifest::VolumeDir(index_dir, volume.name);
    VolumeHandle handle;
    handle.name = volume.name;
    if (io_mode == IoMode::kMmap) {
      OASIS_ASSIGN_OR_RETURN(handle.tree,
                             suffix::PackedSuffixTree::OpenMapped(dir));
    } else {
      OASIS_ASSIGN_OR_RETURN(
          handle.tree,
          suffix::PackedSuffixTree::Open(dir, state->pool.get(),
                                         SegmentPrefixFor(volume.name)));
    }
    if (i > 0) {
      const VolumeHandle& first = state->volumes.front();
      if (handle.tree->alphabet_kind() != first.tree->alphabet_kind()) {
        return util::Status::Corruption("volume '" + volume.name +
                                        "' uses a different alphabet than "
                                        "the rest of the set");
      }
    }
    const uint64_t tree_sequences = handle.tree->num_sequences();
    const uint64_t tree_residues =
        handle.tree->total_length() - tree_sequences;
    if (volume.num_sequences != 0 && volume.num_sequences != tree_sequences) {
      return util::Status::Corruption(
          "manifest lists " + std::to_string(volume.num_sequences) +
          " sequences for volume '" + volume.name + "' but its tree holds " +
          std::to_string(tree_sequences));
    }
    if (volume.num_residues != 0 && volume.num_residues != tree_residues) {
      return util::Status::Corruption(
          "manifest lists " + std::to_string(volume.num_residues) +
          " residues for volume '" + volume.name + "' but its tree holds " +
          std::to_string(tree_residues));
    }
    // A legacy-synthesized entry carries zero counts; patch in the real
    // ones so stats reporting — and the manifest a later Append persists —
    // describe the volume truthfully.
    volume.num_sequences = tree_sequences;
    volume.num_residues = tree_residues;
    handle.build_stats = volume.build_stats;
    handle.id_base = id_base;
    handle.pos_base = pos_base;
    OASIS_ASSIGN_OR_RETURN(handle.masked_soft, ReadMaskSidecarSoft(dir));

    auto catalog = SequenceCatalog::Load(dir);
    if (catalog.ok()) {
      if (catalog->size() != tree_sequences) {
        return util::Status::Corruption(
            "catalog of volume '" + volume.name + "' lists " +
            std::to_string(catalog->size()) +
            " sequences but its tree holds " +
            std::to_string(tree_sequences));
      }
      for (const CatalogEntry& entry : catalog->entries()) {
        merged_entries.push_back(entry);
      }
    } else if (catalog.status().IsNotFound()) {
      // Tolerated only for a lone legacy volume (pre-catalog index):
      // labels degrade to synthetic "s<i>". In a multi-volume set a
      // missing catalog would silently shift every later volume's labels.
      missing_catalog = true;
    } else {
      return catalog.status();
    }

    id_base += static_cast<uint32_t>(tree_sequences);
    pos_base += handle.tree->total_length();
    state->total_sequences += tree_sequences;
    state->total_length += handle.tree->total_length();
    state->volumes.push_back(std::move(handle));
  }
  if (missing_catalog) {
    if (patched.size() > 1) {
      return util::Status::Corruption(
          "a volume of a multi-volume set is missing its catalog");
    }
    merged_entries.clear();  // lone legacy volume: synthetic labels
  }
  state->manifest.ReplaceVolumes(std::move(patched));
  state->catalog = SequenceCatalog(std::move(merged_entries));

  if (io_mode == IoMode::kPooled && options.readahead_blocks > 0) {
    storage::Readahead::Options readahead;
    readahead.blocks = options.readahead_blocks;
    readahead.threads = options.readahead_threads;
    readahead.adaptive = options.readahead_adaptive;
    readahead.adaptive_options.min_blocks = options.readahead_min_blocks;
    readahead.adaptive_options.max_blocks = ResolveReadaheadMax(options);
    state->readahead =
        std::make_unique<storage::Readahead>(state->pool.get(), readahead);
  }
  return state;
}

util::Status Engine::AttachSearches(VolumeSetState* state) const {
  for (VolumeHandle& volume : state->volumes) {
    if (matrix_->size() != volume.tree->alphabet_size()) {
      return util::Status::InvalidArgument(
          "matrix alphabet (" + std::to_string(matrix_->size()) +
          " symbols) does not match the indexed database (" +
          std::to_string(volume.tree->alphabet_size()) + ")");
    }
    volume.search =
        std::make_unique<core::OasisSearch>(volume.tree.get(), matrix_);
  }
  return util::Status::OK();
}

util::StatusOr<std::unique_ptr<Engine>> Engine::OpenInternal(
    const std::string& index_dir, const EngineOptions& options,
    std::unique_ptr<seq::SequenceDatabase> resident_db) {
  OASIS_RETURN_NOT_OK(ValidateOptions(options));
  OASIS_ASSIGN_OR_RETURN(VolumeSetManifest manifest,
                         VolumeSetManifest::Load(index_dir));
  OASIS_ASSIGN_OR_RETURN(std::shared_ptr<VolumeSetState> state,
                         OpenVolumeSet(index_dir, options, std::move(manifest)));

  // Cannot use make_unique: constructor is private.
  std::unique_ptr<Engine> engine(new Engine());
  engine->index_dir_ = index_dir;
  engine->options_ = options;
  engine->simd_mode_ = options.simd_mode;
  engine->simd_level_ = align::simd::ResolveLevel(options.simd_mode);
  engine->epoch_.store(NextEpoch(), std::memory_order_release);
  engine->fetch_memo_ = options.fetch_memo;
  const seq::AlphabetKind kind = state->volumes.front().tree->alphabet_kind();
  engine->alphabet_ = &seq::Alphabet::Get(kind);
  engine->matrix_ =
      options.matrix != nullptr ? options.matrix : &DefaultMatrix(kind);
  OASIS_RETURN_NOT_OK(engine->AttachSearches(state.get()));
  {
    util::MutexLock lock(engine->maintenance_mu_);
    engine->db_ = std::move(resident_db);
  }
  // Sticky soft mode: an index whose volumes were built soft keeps masking
  // on Append/Compact regardless of the options it reopens with — its
  // trees lack the masked leaves, so the masks are load-bearing.
  engine->mask_soft_ = options.mask_mode == MaskMode::kSoft;
  for (const VolumeHandle& volume : state->volumes) {
    if (volume.masked_soft) engine->mask_soft_ = true;
  }

  auto karlin = score::ComputeKarlinParams(*engine->matrix_);
  if (karlin.ok()) {
    engine->karlin_ = *karlin;
    engine->has_karlin_ = true;
  }
  engine->state_ = std::move(state);
  return engine;
}

// --- Snapshot plumbing ------------------------------------------------------

std::shared_ptr<const Engine::VolumeSetState> Engine::snapshot() const {
  util::MutexLock lock(state_mu_);
  return state_;
}

void Engine::SwapState(std::shared_ptr<const VolumeSetState> next) {
  {
    util::MutexLock lock(state_mu_);
    state_ = std::move(next);
  }
  // New epoch after the new state is visible: a cache entry written under
  // the fresh epoch always describes the fresh state.
  epoch_.store(NextEpoch(), std::memory_order_release);
}

// --- Accessors --------------------------------------------------------------

const suffix::PackedSuffixTree& Engine::tree() const {
  util::MutexLock lock(state_mu_);
  OASIS_CHECK(state_->volumes.size() == 1)
      << "Engine::tree() is single-volume only (this set holds "
      << state_->volumes.size()
      << " volumes); search through the engine instead";
  return *state_->volumes.front().tree;
}

const SequenceCatalog& Engine::catalog() const {
  util::MutexLock lock(state_mu_);
  return state_->catalog;
}

std::string Engine::SequenceName(uint32_t sequence_id) const {
  return snapshot()->catalog.name(sequence_id);
}

size_t Engine::num_volumes() const { return snapshot()->volumes.size(); }

std::vector<std::string> Engine::volume_names() const {
  auto state = snapshot();
  std::vector<std::string> names;
  names.reserve(state->volumes.size());
  for (const VolumeHandle& volume : state->volumes) {
    names.push_back(volume.name);
  }
  return names;
}

uint64_t Engine::generation() const { return snapshot()->manifest.generation(); }

IoMode Engine::io_mode() const { return snapshot()->io_mode; }

bool Engine::uses_pool() const { return snapshot()->pool != nullptr; }

storage::BufferPool& Engine::pool() const {
  util::MutexLock lock(state_mu_);
  OASIS_CHECK(state_->pool != nullptr)
      << "pool() requires a pooled engine (io_mode kPooled)";
  return *state_->pool;
}

bool Engine::uses_readahead() const { return snapshot()->readahead != nullptr; }

uint32_t Engine::readahead_blocks() const {
  auto state = snapshot();
  return state->readahead != nullptr ? state->readahead->blocks() : 0;
}

bool Engine::readahead_adaptive() const {
  auto state = snapshot();
  return state->readahead != nullptr && state->readahead->adaptive();
}

const storage::Readahead& Engine::readahead() const {
  util::MutexLock lock(state_mu_);
  OASIS_CHECK(state_->readahead != nullptr)
      << "readahead() requires a pooled engine with readahead_blocks > 0";
  return *state_->readahead;
}

storage::ReadaheadStats Engine::readahead_stats() const {
  auto state = snapshot();
  OASIS_CHECK(state->readahead != nullptr)
      << "readahead statistics only exist on a pooled engine with "
         "readahead_blocks > 0";
  return state->readahead->stats();
}

uint64_t Engine::num_sequences() const { return snapshot()->total_sequences; }

uint64_t Engine::num_residues() const {
  auto state = snapshot();
  return state->total_length - state->total_sequences;
}

util::EngineStatsSnapshot Engine::CollectStats() const {
  auto state = snapshot();
  util::EngineStatsSnapshot snapshot;
  // Per-volume rows are filled for pooled and mapped engines alike: the
  // sequence/residue counts come from the trees, the build statistics from
  // the manifest (all-zero for legacy volumes built before it existed).
  // The legacy single-volume root set renders no section — see
  // util::StatsText — so historical stats output is byte-identical.
  if (!state->manifest.legacy()) {
    for (size_t i = 0; i < state->volumes.size(); ++i) {
      const VolumeHandle& volume = state->volumes[i];
      util::VolumeStatsRow row;
      row.name = volume.name;
      row.sequences = volume.tree->num_sequences();
      row.residues = volume.tree->total_length() - row.sequences;
      row.partitions = volume.build_stats.num_partitions;
      row.passes = volume.build_stats.num_passes;
      row.max_partition_suffixes = volume.build_stats.max_partition_suffixes;
      row.indexed_suffixes = volume.build_stats.total_suffixes;
      row.masked_suffixes = volume.build_stats.excluded_suffixes;
      snapshot.volumes.push_back(std::move(row));
    }
  }
  if (state->pool == nullptr) return snapshot;  // mmap: pooled stays false
  const storage::BufferPool& pool = *state->pool;
  snapshot.pooled = true;
  snapshot.frames = pool.num_frames();
  snapshot.block_size = pool.block_size();
  snapshot.shards = pool.num_shards();
  for (storage::SegmentId seg = 0;
       seg < static_cast<storage::SegmentId>(pool.num_segments()); ++seg) {
    const storage::SegmentStats stats = pool.stats(seg);
    util::SegmentStatsRow row;
    row.name = pool.segment_name(seg);
    row.requests = stats.requests;
    row.hits = stats.hits;
    row.hit_ratio = stats.hit_ratio();
    snapshot.segments.push_back(std::move(row));
  }
  const storage::SegmentStats total = pool.TotalStats();
  snapshot.total.name = "total";
  snapshot.total.requests = total.requests;
  snapshot.total.hits = total.hits;
  snapshot.total.hit_ratio = total.hit_ratio();
  if (state->readahead != nullptr) {
    const storage::Readahead& readahead = *state->readahead;
    snapshot.readahead_enabled = true;
    snapshot.readahead_adaptive = readahead.adaptive();
    snapshot.readahead_blocks = readahead.blocks();
    const storage::ReadaheadStats ra = readahead.stats();
    snapshot.readahead_issued = ra.issued;
    snapshot.readahead_used = ra.used;
    snapshot.readahead_wasted = ra.wasted;
    snapshot.readahead_waste_ratio = ra.waste_ratio();
    if (readahead.adaptive()) {
      const storage::AdaptiveReadahead& ctl = *readahead.controller();
      for (storage::SegmentId seg = 0;
           seg < static_cast<storage::SegmentId>(pool.num_segments()); ++seg) {
        const storage::AdaptiveReadahead::SegmentSnapshot s = ctl.snapshot(seg);
        util::AdaptiveWindowRow row;
        row.name = pool.segment_name(seg);
        row.window = s.window;
        row.ewma = s.ewma;
        row.samples = s.samples;
        row.grows = s.grows;
        row.shrinks = s.shrinks;
        row.probes = s.probes;
        snapshot.windows.push_back(std::move(row));
      }
    }
  }
  return snapshot;
}

// --- Request resolution -----------------------------------------------------

util::StatusOr<score::ScoreT> Engine::ResolveMinScoreOnState(
    const VolumeSetState& state, const SearchRequest& request) const {
  if (request.min_score() > 0) return request.min_score();
  if (!has_karlin_) {
    return util::Status::InvalidArgument(
        "E-value selectivity needs Karlin statistics, which matrix '" +
        matrix_->name() +
        "' does not admit; set SearchRequest::MinScore explicitly");
  }
  // Paper Eq. 3 against the *composed* set length: E-value selectivity is
  // a property of the whole database, so an N-volume search applies the
  // exact threshold the monolithic build would — the keystone of
  // volume-count-independent results.
  return score::MinScoreForEValue(karlin_, request.evalue(),
                                  request.query().size(),
                                  state.total_length - state.total_sequences);
}

util::StatusOr<score::ScoreT> Engine::ResolveMinScore(
    const SearchRequest& request) const {
  return ResolveMinScoreOnState(*snapshot(), request);
}

util::StatusOr<core::OasisOptions> Engine::ResolveOptionsOnState(
    const VolumeSetState& state, const SearchRequest& request) const {
  core::OasisOptions options;
  OASIS_ASSIGN_OR_RETURN(options.min_score,
                         ResolveMinScoreOnState(state, request));
  options.max_results = request.top_k();
  options.reconstruct_alignments = request.alignments();
  options.all_alignments = request.all_alignments();
  options.order_by_evalue = request.order_by_evalue();
  // The memo only matters on the pooled path (a mapped fetch is already a
  // bounds check); resolving it here gives every entry point — Search,
  // SearchAll, SearchBatch workers — the same per-cursor cache.
  options.use_fetch_memo = fetch_memo_ && state.pool != nullptr;
  if (request.order_by_evalue()) {
    if (!has_karlin_) {
      return util::Status::InvalidArgument(
          "OrderByEValue needs Karlin statistics, which matrix '" +
          matrix_->name() + "' does not admit");
    }
    options.karlin = karlin_;
  }
  // Compose the suspension-point poll: cancellation first (a cancelled
  // client should see kCancelled even if its deadline also lapsed while it
  // waited), then the deadline, then the caller's custom hook. The common
  // case — none of the three set — leaves options.poll null, so the
  // undeadlined search path keeps its zero-overhead loop.
  const std::atomic<bool>* cancel_flag = request.cancel_flag();
  std::optional<std::chrono::steady_clock::time_point> deadline =
      request.deadline();
  std::function<util::Status()> custom_poll = request.poll();
  if (cancel_flag != nullptr || deadline.has_value() || custom_poll) {
    options.poll = [cancel_flag, deadline,
                    custom_poll = std::move(custom_poll)]() -> util::Status {
      if (cancel_flag != nullptr &&
          cancel_flag->load(std::memory_order_relaxed)) {
        return util::Status::Cancelled("search cancelled");
      }
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() >= *deadline) {
        return util::Status::DeadlineExceeded("search deadline exceeded");
      }
      if (custom_poll) return custom_poll();
      return util::Status::OK();
    };
  }
  return options;
}

util::StatusOr<core::OasisOptions> Engine::ResolveOptions(
    const SearchRequest& request) const {
  return ResolveOptionsOnState(*snapshot(), request);
}

util::StatusOr<std::vector<size_t>> Engine::SelectVolumes(
    const VolumeSetState& state, const SearchRequest& request) {
  std::vector<size_t> selected;
  if (request.volume_filter().empty()) {
    selected.resize(state.volumes.size());
    for (size_t i = 0; i < selected.size(); ++i) selected[i] = i;
  } else {
    for (const std::string& name : request.volume_filter()) {
      size_t found = state.volumes.size();
      for (size_t i = 0; i < state.volumes.size(); ++i) {
        if (state.volumes[i].name == name) {
          found = i;
          break;
        }
      }
      if (found == state.volumes.size()) {
        // Failing loudly beats silently searching less than asked for.
        return util::Status::InvalidArgument(
            "VolumeFilter names unknown volume '" + name + "'");
      }
      selected.push_back(found);
    }
    // Global (manifest) order with duplicates collapsed, so the merge's
    // tie-break and the id_base accumulation see volumes exactly once.
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
  }
  if (request.max_volumes() != 0 && selected.size() > request.max_volumes()) {
    selected.resize(request.max_volumes());
  }
  return selected;
}

// --- Queries ----------------------------------------------------------------

util::StatusOr<ResultCursor> Engine::SearchOnState(
    std::shared_ptr<const VolumeSetState> state,
    const SearchRequest& request) const {
  OASIS_ASSIGN_OR_RETURN(std::vector<size_t> selected,
                         SelectVolumes(*state, request));
  OASIS_ASSIGN_OR_RETURN(core::OasisOptions options,
                         ResolveOptionsOnState(*state, request));
  if (selected.size() == 1 && state->volumes[selected[0]].id_base == 0 &&
      state->volumes[selected[0]].pos_base == 0) {
    // Single volume at the origin (the whole single-volume engine fast
    // path): no translation, no merge layer — identical to the
    // pre-volume-set search path.
    OASIS_ASSIGN_OR_RETURN(
        core::OasisCursor cursor,
        state->volumes[selected[0]].search->Cursor(request.query(), options));
    ResultCursor result(std::move(cursor));
    result.retain_ = std::move(state);
    return result;
  }
  // Fan out one cursor per volume and k-way merge. The shard cursors run
  // uncapped — the top-k cap belongs to the *merged* stream, or a strong
  // volume could exhaust its quota while a weaker volume pads the tail —
  // and laziness keeps that free: a shard only does work when the merge
  // pulls on it, so a merged top-k still expands only what the proof of
  // the first k global results requires.
  core::OasisOptions shard_options = options;
  shard_options.max_results = 0;
  std::vector<core::MergeShard> shards;
  shards.reserve(selected.size());
  for (const size_t index : selected) {
    const VolumeHandle& volume = state->volumes[index];
    OASIS_ASSIGN_OR_RETURN(
        core::OasisCursor cursor,
        volume.search->Cursor(request.query(), shard_options));
    shards.push_back(
        core::MergeShard{std::move(cursor), volume.id_base, volume.pos_base});
  }
  core::MergedOasisCursor merged(std::move(shards), options.order_by_evalue,
                                 request.top_k());
  ResultCursor result(std::move(merged));
  result.retain_ = std::move(state);
  return result;
}

util::StatusOr<ResultCursor> Engine::Search(const SearchRequest& request) const {
  return SearchOnState(snapshot(), request);
}

util::StatusOr<BatchResult> Engine::SearchAll(
    const SearchRequest& request) const {
  OASIS_ASSIGN_OR_RETURN(ResultCursor cursor, Search(request));
  BatchResult out;
  while (true) {
    OASIS_ASSIGN_OR_RETURN(std::optional<core::OasisResult> next,
                           cursor.Next());
    if (!next.has_value()) break;
    out.results.push_back(std::move(*next));
  }
  out.stats = cursor.stats();
  return out;
}

util::StatusOr<std::vector<BatchResult>> Engine::SearchBatch(
    std::span<const SearchRequest> requests,
    const BatchOptions& options) const {
  if (options.threads == 0) {
    return util::Status::InvalidArgument(
        "BatchOptions::threads must be positive");
  }
  const size_t n = requests.size();
  std::vector<BatchResult> out(n);
  if (n == 0) return out;

  // One snapshot for the whole batch: every worker searches the same
  // volume-set state even if Append/Compact swaps it mid-flight, so a
  // batch is internally consistent. Resolution runs up front on the
  // calling thread — it reads shared engine state, and failing fast beats
  // failing mid-fan-out.
  std::shared_ptr<const VolumeSetState> state = snapshot();
  for (size_t i = 0; i < n; ++i) {
    OASIS_RETURN_NOT_OK(ResolveOptionsOnState(*state, requests[i]).status());
    OASIS_RETURN_NOT_OK(SelectVolumes(*state, requests[i]).status());
  }

  const uint32_t threads =
      std::min<uint32_t>(options.threads, static_cast<uint32_t>(n));

  // Work-stealing over the shared index: every worker drives per-volume
  // OasisSearch instances over the shared packed trees and the one sharded
  // buffer pool. OasisSearch is stateless/const, the trees' read paths are
  // thread-safe, the pool synchronizes per shard, and the matrix and
  // request vectors are only read — so the workers share cache warmth and
  // write only to distinct output slots.
  std::atomic<size_t> next_request{0};
  std::mutex error_mutex;
  util::Status first_error = util::Status::OK();

  auto worker = [&]() {
    while (true) {
      const size_t i = next_request.fetch_add(1);
      if (i >= n) break;
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error.ok()) break;
      }
      auto run = [&]() -> util::Status {
        OASIS_ASSIGN_OR_RETURN(ResultCursor cursor,
                               SearchOnState(state, requests[i]));
        while (true) {
          OASIS_ASSIGN_OR_RETURN(std::optional<core::OasisResult> next,
                                 cursor.Next());
          if (!next.has_value()) break;
          out[i].results.push_back(std::move(*next));
        }
        out[i].stats = cursor.stats();
        return util::Status::OK();
      };
      const util::Status status = run();
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = status;
        break;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();

  OASIS_RETURN_NOT_OK(first_error);
  return out;
}

util::StatusOr<ResultCursor> Engine::BlastSearch(
    const SearchRequest& request, const blast::BlastOptions& blast_options) {
  if (!has_karlin_) {
    return util::Status::InvalidArgument(
        "BLAST E-value statistics need Karlin parameters, which matrix '" +
        matrix_->name() + "' does not admit");
  }
  OASIS_ASSIGN_OR_RETURN(const seq::SequenceDatabase* db, ResidentDatabase());

  // The request's selectivity knob wins, mirroring the OASIS path: an
  // explicit MinScore disables the E-value cutoff entirely (score filtering
  // happens below), otherwise the request's E-value replaces the one in
  // blast_options so both engines run at the same selectivity.
  blast::BlastOptions resolved = blast_options;
  resolved.evalue_cutoff = request.min_score() > 0
                               ? std::numeric_limits<double>::infinity()
                               : request.evalue();
  // A caller-pinned SIMD mode in blast_options wins; kAuto inherits the
  // engine's configured mode so --simd reaches the extension stage.
  if (resolved.simd == align::simd::SimdMode::kAuto) {
    resolved.simd = simd_mode_;
  }
  // A soft index seeds gently here too: the BLAST word scan skips the same
  // repeat map the suffix trees excluded, so the two engines stay
  // comparable on repeat-dense input.
  resolved.mask_seeds = resolved.mask_seeds || mask_soft_;
  OASIS_ASSIGN_OR_RETURN(
      blast::BlastQuery prepared,
      blast::BlastQuery::Prepare(request.query(), *matrix_, resolved));
  OASIS_ASSIGN_OR_RETURN(std::vector<blast::BlastHit> hits,
                         blast::Search(prepared, *db, *matrix_, karlin_));

  // Same shape as the OASIS stream: one best hit per sequence, descending
  // score. (Alignment reconstruction is not available for the heuristic
  // baseline; WithAlignments is ignored.) The resident database holds the
  // volumes concatenated in global order, so sequence ids and positions
  // are already global.
  std::vector<core::OasisResult> results;
  results.reserve(hits.size());
  for (const blast::BlastHit& hit : hits) {
    if (request.min_score() > 0 && hit.score < request.min_score()) continue;
    core::OasisResult result;
    result.sequence_id = hit.sequence_id;
    result.score = hit.score;
    result.evalue = hit.evalue;
    result.target_end = hit.target_end;
    result.db_end_pos = db->SequenceStart(hit.sequence_id) + hit.target_end;
    result.query_end = static_cast<uint32_t>(hit.query_end);
    results.push_back(result);
    if (request.top_k() != 0 && results.size() >= request.top_k()) break;
  }
  return ResultCursor(std::move(results));
}

// --- Resident database ------------------------------------------------------

util::StatusOr<std::vector<seq::Sequence>> Engine::MaterializeSequences(
    const std::string& index_dir, const VolumeSetState& state,
    size_t first_volume, size_t num_volumes, const seq::Alphabet& alphabet) {
  std::vector<seq::Sequence> sequences;
  std::vector<uint8_t> bytes;
  for (size_t v = first_volume; v < first_volume + num_volumes; ++v) {
    const VolumeHandle& volume = state.volumes[v];
    const suffix::PackedSuffixTree& tree = *volume.tree;
    const uint64_t volume_residues =
        tree.total_length() - tree.num_sequences();
    OASIS_ASSIGN_OR_RETURN(
        VolumeAnnotations annotations,
        ReadAnnotations(VolumeSetManifest::VolumeDir(index_dir, volume.name),
                        volume_residues));
    for (uint32_t id = 0; id < tree.num_sequences(); ++id) {
      const uint32_t gid = volume.id_base + id;
      const uint64_t start = tree.SequenceStart(id);
      const uint64_t len = tree.TerminatorPos(id) - start;
      // ReadSymbols takes a 32-bit length; read in chunks so sequences are
      // not silently truncated (positions are 64-bit).
      std::vector<seq::Symbol> symbols;
      symbols.reserve(len);
      constexpr uint64_t kChunk = 1u << 20;
      for (uint64_t off = 0; off < len; off += kChunk) {
        const uint32_t n = static_cast<uint32_t>(std::min(kChunk, len - off));
        // One-pass scan of the whole symbols file: the kScan admission hint
        // keeps it from refreshing CLOCK reference bits, so materializing
        // the database cannot evict the hot internal blocks searches use.
        OASIS_RETURN_NOT_OK(tree.ReadSymbols(start + off, n, &bytes,
                                             storage::Admission::kScan));
        symbols.insert(symbols.end(), bytes.begin(), bytes.end());
      }
      for (seq::Symbol s : symbols) {
        if (s >= alphabet.size()) {
          return util::Status::Corruption(
              "index symbols contain a non-residue byte inside sequence " +
              std::to_string(gid) + " of volume '" + volume.name + "'");
        }
      }
      std::string cat_id = state.catalog.name(gid);
      std::string description = gid < state.catalog.size()
                                    ? state.catalog.entry(gid).description
                                    : "";
      sequences.emplace_back(std::move(cat_id), std::move(description),
                             std::move(symbols));
      // Residue offset of this sequence within the volume's sidecars:
      // every earlier sequence contributed exactly one terminator to the
      // concatenated buffer, so the residue-only offset is start - id.
      const auto residue_off = static_cast<std::ptrdiff_t>(start - id);
      const auto residue_len = static_cast<std::ptrdiff_t>(len);
      if (!annotations.mask.empty()) {
        // set_mask normalizes an all-zero slice back to "no mask".
        sequences.back().set_mask(std::vector<uint8_t>(
            annotations.mask.begin() + residue_off,
            annotations.mask.begin() + residue_off + residue_len));
      }
      if (!annotations.quals.empty() && len > 0 &&
          annotations.quals[static_cast<size_t>(residue_off)] != kNoQual) {
        // The kNoQual fill is whole-sequence, so the first byte decides.
        sequences.back().set_quals(std::vector<uint8_t>(
            annotations.quals.begin() + residue_off,
            annotations.quals.begin() + residue_off + residue_len));
      }
    }
  }
  return sequences;
}

util::StatusOr<const seq::SequenceDatabase*> Engine::ResidentDatabase() {
  // maintenance_mu_ serializes this lazy materialization against the
  // db_.reset() in Append/Compact — including the *background* compaction
  // thread, which made the previous unlocked fast path a genuine race.
  util::MutexLock lock(maintenance_mu_);
  if (db_ != nullptr) {
    return static_cast<const seq::SequenceDatabase*>(db_.get());
  }
  // Materialize from the packed symbols files — all volumes, in global
  // order, so the rebuilt concatenation (with its regenerated per-sequence
  // terminators) is exactly what a monolithic build would hold.
  auto state = snapshot();
  OASIS_ASSIGN_OR_RETURN(
      std::vector<seq::Sequence> sequences,
      MaterializeSequences(index_dir_, *state, 0, state->volumes.size(),
                           *alphabet_));
  OASIS_ASSIGN_OR_RETURN(
      seq::SequenceDatabase db,
      seq::SequenceDatabase::Build(*alphabet_, std::move(sequences)));
  db_ = std::make_unique<seq::SequenceDatabase>(std::move(db));
  return static_cast<const seq::SequenceDatabase*>(db_.get());
}

// --- Append / Compact -------------------------------------------------------

util::Status Engine::Append(const std::string& fasta_path) {
  OASIS_ASSIGN_OR_RETURN(std::vector<seq::Sequence> records,
                         seq::ReadFastaFile(fasta_path, *alphabet_));
  return AppendSequences(std::move(records));
}

util::Status Engine::AppendSequences(std::vector<seq::Sequence> sequences) {
  if (sequences.empty()) {
    return util::Status::InvalidArgument("Append needs at least one sequence");
  }
  WaitForCompaction();
  util::MutexLock maintenance(maintenance_mu_);
  auto state = snapshot();

  // Reject id collisions — against the existing catalog and within the
  // batch — before anything touches disk. A collision with the existing
  // set names the volume that already holds the id, so the caller can find
  // (and, if intended, replace) the original.
  std::unordered_map<std::string, uint32_t> existing;
  existing.reserve(state->catalog.size());
  for (uint32_t gid = 0; gid < state->catalog.size(); ++gid) {
    existing.emplace(state->catalog.entry(gid).id, gid);
  }
  std::unordered_set<std::string> batch;
  batch.reserve(sequences.size());
  for (const seq::Sequence& sequence : sequences) {
    const auto hit = existing.find(sequence.id());
    if (hit != existing.end()) {
      // The owning volume is the one whose global-id range covers the
      // colliding id.
      std::string owner = "?";
      for (const VolumeHandle& volume : state->volumes) {
        if (hit->second >= volume.id_base &&
            hit->second < volume.id_base + volume.tree->num_sequences()) {
          owner = volume.name;
          break;
        }
      }
      return util::Status::InvalidArgument(
          "appending sequence id '" + sequence.id() +
          "' would collide with an existing sequence in volume '" + owner +
          "'");
    }
    if (!batch.insert(sequence.id()).second) {
      return util::Status::InvalidArgument(
          "appended batch repeats sequence id '" + sequence.id() + "'");
    }
  }

  // Sticky soft mode: the new volume masks under the same policy the set
  // was built with, whatever options this engine reopened with.
  EngineOptions volume_options = options_;
  if (mask_soft_) {
    volume_options.mask_mode = MaskMode::kSoft;
    mask::SoftMaskAll(&sequences, alphabet_->size());
  }

  VolumeSetManifest manifest = state->manifest;
  const std::string name = manifest.NextVolumeName();
  OASIS_ASSIGN_OR_RETURN(
      seq::SequenceDatabase db,
      seq::SequenceDatabase::Build(*alphabet_, std::move(sequences)));
  OASIS_ASSIGN_OR_RETURN(
      VolumeInfo info,
      BuildVolume(db, VolumeSetManifest::VolumeDir(index_dir_, name), name,
                  volume_options));
  manifest.AddVolume(std::move(info));
  manifest.BumpGeneration();
  // Atomic publish: a crash between here and the swap below leaves a fully
  // valid on-disk set (the new manifest names only complete volumes).
  OASIS_RETURN_NOT_OK(manifest.Save(index_dir_));

  // The live pool cannot grow segments mid-flight (registration is
  // setup-time-only), so the successor state re-opens *everything* —
  // fresh pool, all volumes — and swaps in atomically. In-flight cursors
  // hold the old state alive until they drain.
  OASIS_ASSIGN_OR_RETURN(std::shared_ptr<VolumeSetState> next,
                         OpenVolumeSet(index_dir_, options_, std::move(manifest)));
  OASIS_RETURN_NOT_OK(AttachSearches(next.get()));
  SwapState(std::move(next));
  db_.reset();  // resident database is stale; re-materialized on demand
  MaybeScheduleCompaction();
  return util::Status::OK();
}

util::Status Engine::Compact() {
  WaitForCompaction();
  util::MutexLock maintenance(maintenance_mu_);
  return CompactLocked();
}

util::Status Engine::CompactLocked() {
  auto state = snapshot();
  const std::vector<VolumeInfo>& volumes = state->manifest.volumes();
  if (volumes.size() < 2) return util::Status::OK();

  // A volume is "small" when its payload is below the target size (every
  // volume is, when no target is configured); only *adjacent* runs of at
  // least two small volumes merge, preserving the global sequence order
  // without rewriting untouched neighbours.
  auto is_small = [&](const VolumeInfo& volume) {
    return options_.volume_size_bytes == 0 ||
           volume.num_residues < options_.volume_size_bytes;
  };
  struct Run {
    size_t first;
    size_t count;
  };
  std::vector<Run> runs;
  for (size_t i = 0; i < volumes.size();) {
    if (!is_small(volumes[i])) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < volumes.size() && is_small(volumes[j])) ++j;
    if (j - i >= 2) runs.push_back({i, j - i});
    i = j;
  }
  if (runs.empty()) return util::Status::OK();

  VolumeSetManifest manifest = state->manifest;
  std::vector<VolumeInfo> rebuilt;
  std::vector<std::string> replaced;
  size_t next_run = 0;
  for (size_t i = 0; i < volumes.size();) {
    if (next_run < runs.size() && runs[next_run].first == i) {
      const Run run = runs[next_run++];
      OASIS_ASSIGN_OR_RETURN(
          std::vector<seq::Sequence> sequences,
          MaterializeSequences(index_dir_, *state, run.first, run.count,
                               *alphabet_));
      std::vector<std::vector<seq::Sequence>> slices =
          SliceByBytes(std::move(sequences), options_.volume_size_bytes);
      // Sticky soft mode, without re-running repeat detection: the merged
      // volume rebuilds its exclusion map from the masks the sidecars
      // restored, so compaction never changes what is masked.
      EngineOptions volume_options = options_;
      if (mask_soft_) volume_options.mask_mode = MaskMode::kSoft;
      for (std::vector<seq::Sequence>& slice : slices) {
        const std::string name = manifest.NextVolumeName();
        OASIS_ASSIGN_OR_RETURN(
            seq::SequenceDatabase db,
            seq::SequenceDatabase::Build(*alphabet_, std::move(slice)));
        OASIS_ASSIGN_OR_RETURN(
            VolumeInfo info,
            BuildVolume(db, VolumeSetManifest::VolumeDir(index_dir_, name),
                        name, volume_options));
        rebuilt.push_back(std::move(info));
      }
      for (size_t k = run.first; k < run.first + run.count; ++k) {
        replaced.push_back(volumes[k].name);
      }
      i += run.count;
    } else {
      rebuilt.push_back(volumes[i]);
      ++i;
    }
  }
  manifest.ReplaceVolumes(std::move(rebuilt));
  manifest.BumpGeneration();
  OASIS_RETURN_NOT_OK(manifest.Save(index_dir_));

  OASIS_ASSIGN_OR_RETURN(std::shared_ptr<VolumeSetState> next,
                         OpenVolumeSet(index_dir_, options_, std::move(manifest)));
  OASIS_RETURN_NOT_OK(AttachSearches(next.get()));
  SwapState(std::move(next));
  db_.reset();

  // Delete the replaced volumes' files last: cursors on the old snapshot
  // keep their (now-unlinked) files open and finish unharmed — POSIX
  // reclaims the bytes when the last descriptor drops.
  for (const std::string& name : replaced) {
    std::error_code ec;
    if (name == VolumeSetManifest::kLegacyVolumeName) {
      // The legacy root volume's files live next to the manifest; remove
      // them individually rather than the directory.
      for (const char* file :
           {suffix::PackedTreeFiles::kSymbols, suffix::PackedTreeFiles::kInternal,
            suffix::PackedTreeFiles::kLeaves, suffix::PackedTreeFiles::kMeta,
            SequenceCatalog::kFileName,
            static_cast<const char*>(kMaskSidecarFile),
            static_cast<const char*>(kQualsSidecarFile)}) {
        std::filesystem::remove(index_dir_ + "/" + file, ec);
      }
    } else {
      std::filesystem::remove_all(
          VolumeSetManifest::VolumeDir(index_dir_, name), ec);
    }
  }
  return util::Status::OK();
}

void Engine::MaybeScheduleCompaction() {
  if (options_.compact_trigger_volumes == 0) return;
  if (snapshot()->volumes.size() <= options_.compact_trigger_volumes) return;
  util::MutexLock lock(thread_mu_);
  if (compact_thread_.joinable()) return;  // one in flight is enough
  // The thread blocks on maintenance_mu_ until the scheduling mutation
  // releases it, then compacts in the background; mutators and the
  // destructor join it via WaitForCompaction() before proceeding.
  compact_thread_ = std::thread([this]() {
    util::MutexLock maintenance(maintenance_mu_);
    const util::Status status = CompactLocked();
    if (!status.ok()) {
      // Background compaction is an optimization: a failure leaves the
      // (fully valid) uncompacted set serving and is worth a log line,
      // not a crash.
      OASIS_LOG(Warning) << "background compaction failed: "
                         << status.ToString();
    }
  });
}

void Engine::WaitForCompaction() {
  std::thread thread;
  {
    util::MutexLock lock(thread_mu_);
    thread = std::move(compact_thread_);
  }
  if (thread.joinable()) thread.join();
}

}  // namespace api
}  // namespace oasis
