#include "api/volume_set.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "suffix/packed_tree.h"

namespace oasis {
namespace api {

namespace {

/// Current (and only) manifest format version.
constexpr uint64_t kFormatVersion = 1;

}  // namespace

bool VolumeSetManifest::Exists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(dir + "/" + kFileName, ec);
}

util::StatusOr<VolumeSetManifest> VolumeSetManifest::Load(
    const std::string& dir) {
  const std::string path = dir + "/" + kFileName;
  std::ifstream in(path);
  if (!in) {
    // Legacy fallback: a packed tree at the root is a one-volume set.
    std::error_code ec;
    if (std::filesystem::exists(
            dir + "/" + suffix::PackedTreeFiles::kMeta, ec)) {
      VolumeSetManifest manifest;
      manifest.legacy_ = true;
      VolumeInfo volume;
      volume.name = kLegacyVolumeName;
      manifest.volumes_.push_back(std::move(volume));
      return manifest;
    }
    return util::Status::NotFound("'" + dir +
                                  "' holds neither a volume-set manifest "
                                  "nor a legacy packed tree");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return Parse(contents.str(), path);
}

util::StatusOr<VolumeSetManifest> VolumeSetManifest::Parse(
    std::string_view text, const std::string& source) {
  VolumeSetManifest manifest;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_no = 0;
  uint64_t declared_volumes = 0;
  bool saw_header = false;
  auto corrupt = [&](const std::string& what) {
    return util::Status::Corruption("manifest '" + source + "' line " +
                                    std::to_string(line_no) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "oasis_volume_set") {
      uint64_t version = 0;
      fields >> version;
      if (!fields || version != kFormatVersion) {
        return corrupt("unsupported format version");
      }
      saw_header = true;
    } else if (key == "generation") {
      fields >> manifest.generation_;
      if (!fields) return corrupt("malformed generation");
    } else if (key == "next_volume") {
      fields >> manifest.next_volume_;
      if (!fields) return corrupt("malformed next_volume");
    } else if (key == "num_volumes") {
      fields >> declared_volumes;
      if (!fields) return corrupt("malformed num_volumes");
    } else if (key == "volume") {
      VolumeInfo volume;
      fields >> volume.name >> volume.num_sequences >> volume.num_residues >>
          volume.build_stats.num_partitions >> volume.build_stats.num_passes >>
          volume.build_stats.max_partition_suffixes;
      if (!fields) return corrupt("malformed volume record");
      // Optional trailing fields (added with soft masking): indexed and
      // mask-excluded suffix counts. Manifests written before they existed
      // simply end the line here; the counts stay zero.
      uint64_t total_suffixes = 0;
      uint64_t excluded_suffixes = 0;
      if (fields >> total_suffixes >> excluded_suffixes) {
        volume.build_stats.total_suffixes = total_suffixes;
        volume.build_stats.excluded_suffixes = excluded_suffixes;
      }
      if (volume.name != kLegacyVolumeName &&
          (volume.name.find('/') != std::string::npos ||
           volume.name.find("..") != std::string::npos)) {
        // A manifest must not direct readers outside its own directory.
        return corrupt("volume name '" + volume.name +
                       "' escapes the index directory");
      }
      manifest.volumes_.push_back(std::move(volume));
    } else {
      return corrupt("unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    return util::Status::Corruption("manifest '" + source +
                                    "' is missing its format header");
  }
  if (declared_volumes != manifest.volumes_.size()) {
    return util::Status::Corruption(
        "manifest '" + source + "' declares " +
        std::to_string(declared_volumes) + " volumes but lists " +
        std::to_string(manifest.volumes_.size()));
  }
  if (manifest.volumes_.empty()) {
    return util::Status::Corruption("manifest '" + source +
                                    "' lists no volumes");
  }
  return manifest;
}

util::Status VolumeSetManifest::Save(const std::string& dir) const {
  if (volumes_.empty()) {
    return util::Status::InvalidArgument(
        "refusing to save a manifest with no volumes");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("create '" + dir + "': " + ec.message());
  }
  const std::string path = dir + "/" + kFileName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return util::Status::IOError("cannot write manifest temp '" + tmp +
                                   "'");
    }
    out << "oasis_volume_set " << kFormatVersion << "\n";
    out << "generation " << generation_ << "\n";
    out << "next_volume " << next_volume_ << "\n";
    out << "num_volumes " << volumes_.size() << "\n";
    for (const VolumeInfo& volume : volumes_) {
      out << "volume " << volume.name << " " << volume.num_sequences << " "
          << volume.num_residues << " " << volume.build_stats.num_partitions
          << " " << volume.build_stats.num_passes << " "
          << volume.build_stats.max_partition_suffixes << " "
          << volume.build_stats.total_suffixes << " "
          << volume.build_stats.excluded_suffixes << "\n";
    }
    out.flush();
    if (!out) return util::Status::IOError("manifest write failed");
  }
  // Atomic publish: rename is atomic within a filesystem, so a racing
  // reader opens the old manifest or the new one, never a prefix.
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return util::Status::IOError("rename '" + tmp + "' -> '" + path +
                                 "': " + ec.message());
  }
  return util::Status::OK();
}

std::string VolumeSetManifest::VolumeDir(const std::string& index_dir,
                                         const std::string& volume_name) {
  if (volume_name == kLegacyVolumeName) return index_dir;
  return index_dir + "/" + volume_name;
}

std::string VolumeSetManifest::NextVolumeName() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%04llu", kVolumePrefix,
                static_cast<unsigned long long>(next_volume_));
  ++next_volume_;
  return buf;
}

uint64_t VolumeSetManifest::num_sequences() const {
  uint64_t total = 0;
  for (const VolumeInfo& volume : volumes_) total += volume.num_sequences;
  return total;
}

uint64_t VolumeSetManifest::num_residues() const {
  uint64_t total = 0;
  for (const VolumeInfo& volume : volumes_) total += volume.num_residues;
  return total;
}

int VolumeSetManifest::FindVolume(const std::string& name) const {
  for (size_t i = 0; i < volumes_.size(); ++i) {
    if (volumes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace api
}  // namespace oasis
