// VolumeSetManifest: the on-disk description of a multi-volume index.
//
// An index directory is a *volume set*: a manifest file (`volumeset.meta`)
// naming N self-contained volumes, each a subdirectory holding its own
// packed suffix tree and sequence catalog. The concatenation of the
// volumes, in manifest order, IS the database — global sequence ids and
// global positions are assigned by walking the volumes in that order — so
// the manifest's volume order is load-bearing, not cosmetic.
//
// Two layouts open as volume sets:
//
//   volume set   <dir>/volumeset.meta + <dir>/vol_0000/{tree.meta,...}
//   legacy       <dir>/tree.meta at the root, no manifest — synthesized
//                as a one-volume set whose single volume is named "."
//                (the directory itself), so every pre-volume index keeps
//                opening unchanged.
//
// Saves are atomic: the manifest is written to a temp file and renamed
// over the old one, so a reader (or a crash) sees either the old
// generation or the new one, never a torn file. Mutations bump
// `generation`; volume names come from a monotone `next_volume` counter
// that never reuses a name, even after compaction deletes volumes.
//
// This header is the single home of index-dir layout knowledge: the
// Engine asks the manifest where volumes live instead of assembling paths
// itself.
//
// Format (line-oriented text, like tree.meta / catalog.meta):
//   oasis_volume_set 1
//   generation G
//   next_volume K
//   num_volumes N
//   volume <name> <num_sequences> <num_residues> <partitions> <passes> <max_pass_suffixes> [<indexed_suffixes> <masked_suffixes>]
// one `volume` line per volume, in global (concatenation) order. The
// trailing fields persist the volume's PartitionedBuildStats so
// Engine::CollectStats can report them long after the build; the last two
// (suffixes actually indexed / excluded by soft masking) are optional on
// read — manifests written before masking existed omit them and the
// counts read as zero.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "suffix/partitioned_builder.h"
#include "util/status.h"

namespace oasis {
namespace api {

/// One volume of a set: its subdirectory name plus the per-volume counts
/// and build statistics persisted in the manifest.
struct VolumeInfo {
  /// Subdirectory under the index dir ("vol_0003"), or "." for the legacy
  /// root layout (the index directory itself is the volume).
  std::string name;
  uint64_t num_sequences = 0;  ///< database sequences in this volume
  uint64_t num_residues = 0;   ///< residues, terminators excluded
  /// Partitioned-build statistics recorded at build time; all-zero for
  /// legacy volumes (built before the manifest existed).
  suffix::PartitionedBuildStats build_stats;
};

/// The parsed (or synthesized) manifest of one index directory.
class VolumeSetManifest {
 public:
  /// Manifest file name inside an index directory.
  static constexpr const char* kFileName = "volumeset.meta";
  /// Volume-subdirectory name prefix ("vol_0000", "vol_0001", ...).
  static constexpr const char* kVolumePrefix = "vol_";
  /// The reserved volume name of the legacy root layout.
  static constexpr const char* kLegacyVolumeName = ".";

  VolumeSetManifest() = default;

  /// True when `dir` holds a manifest file (an explicit volume set).
  static bool Exists(const std::string& dir);

  /// Loads `dir`'s manifest. A directory without one but with a packed
  /// tree at its root (the legacy layout) synthesizes a one-volume
  /// manifest — volume "." with zero counts (the engine reads the real
  /// counts from the tree) and legacy() == true. NotFound when the
  /// directory holds neither.
  static util::StatusOr<VolumeSetManifest> Load(const std::string& dir);

  /// Parses manifest text (the contents of a volumeset.meta file).
  /// `source` names the input in error messages. Pure — no filesystem
  /// access — which is what Load() is built on and what the manifest
  /// fuzz harness drives: Parse must return Corruption on malformed
  /// input, never crash, for arbitrary bytes.
  static util::StatusOr<VolumeSetManifest> Parse(std::string_view text,
                                                 const std::string& source);

  /// Writes `dir`/volumeset.meta atomically (temp file + rename): readers
  /// racing the save see the old manifest or the new one, never a torn
  /// file. Refuses to save a legacy-synthesized manifest that still has
  /// no real volume entries.
  util::Status Save(const std::string& dir) const;

  /// The directory a volume's packed files live in: `<index_dir>/<name>`,
  /// or `index_dir` itself for the legacy volume ".".
  static std::string VolumeDir(const std::string& index_dir,
                               const std::string& volume_name);

  /// Mints the next volume subdirectory name ("vol_<next_volume>") and
  /// advances the counter. Names are never reused: compaction may delete
  /// vol_0001 while vol_0002 lives on, and a fresh append must not
  /// resurrect the dead name under a reader still holding the old set.
  std::string NextVolumeName();

  /// Appends a volume at the end of the global order.
  void AddVolume(VolumeInfo info) { volumes_.push_back(std::move(info)); }

  /// Replaces the volume list wholesale (compaction rewrites the set).
  void ReplaceVolumes(std::vector<VolumeInfo> volumes) {
    volumes_ = std::move(volumes);
  }

  /// Advances the generation counter (every Append/Compact mutation).
  void BumpGeneration() { ++generation_; }

  /// The volumes in global (concatenation) order.
  const std::vector<VolumeInfo>& volumes() const { return volumes_; }
  /// Number of volumes in the set.
  size_t num_volumes() const { return volumes_.size(); }
  /// Mutation counter; starts at 1 for a freshly built set.
  uint64_t generation() const { return generation_; }
  /// The monotone name counter (== the numeric suffix of the next name).
  uint64_t next_volume() const { return next_volume_; }
  /// True when this manifest was synthesized from a legacy single-volume
  /// directory rather than read from a manifest file.
  bool legacy() const { return legacy_; }

  /// Sum of the per-volume sequence counts.
  uint64_t num_sequences() const;
  /// Sum of the per-volume residue counts.
  uint64_t num_residues() const;

  /// Index of the volume named `name`, or -1.
  int FindVolume(const std::string& name) const;

 private:
  std::vector<VolumeInfo> volumes_;
  uint64_t generation_ = 1;
  uint64_t next_volume_ = 0;
  bool legacy_ = false;
};

}  // namespace api
}  // namespace oasis
