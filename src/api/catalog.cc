#include "api/catalog.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

namespace oasis {
namespace api {

SequenceCatalog SequenceCatalog::FromDatabase(const seq::SequenceDatabase& db) {
  std::vector<CatalogEntry> entries;
  entries.reserve(db.num_sequences());
  for (const seq::Sequence& s : db.sequences()) {
    entries.push_back(CatalogEntry{s.id(), s.description(), s.size()});
  }
  return SequenceCatalog(std::move(entries));
}

util::Status SequenceCatalog::CheckUniqueIds() const {
  std::unordered_map<std::string, size_t> first_seen;
  first_seen.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    auto [it, inserted] = first_seen.emplace(entries_[i].id, i);
    if (!inserted) {
      return util::Status::InvalidArgument(
          "duplicate sequence id '" + entries_[i].id + "': records " +
          std::to_string(it->second) + " and " + std::to_string(i) +
          " share it, which would make name-based lookups ambiguous; "
          "give every FASTA record a unique id");
    }
  }
  return util::Status::OK();
}

util::StatusOr<SequenceCatalog> SequenceCatalog::Load(const std::string& dir) {
  const std::string path = dir + "/" + kFileName;
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open catalog '" + path + "'");
  }
  std::string line;
  uint64_t declared = 0;
  std::vector<CatalogEntry> entries;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "num_sequences") {
      fields >> declared;
    } else if (key == "seq") {
      CatalogEntry entry;
      fields >> entry.length >> entry.id;
      if (!fields) {
        return util::Status::Corruption("catalog '" + path + "' line " +
                                        std::to_string(line_no) +
                                        ": malformed seq record");
      }
      std::getline(fields, entry.description);
      size_t start = entry.description.find_first_not_of(" \t");
      entry.description =
          start == std::string::npos ? "" : entry.description.substr(start);
      entries.push_back(std::move(entry));
    } else {
      return util::Status::Corruption("catalog '" + path + "' line " +
                                      std::to_string(line_no) +
                                      ": unknown key '" + key + "'");
    }
  }
  if (declared != entries.size()) {
    return util::Status::Corruption(
        "catalog '" + path + "' declares " + std::to_string(declared) +
        " sequences but lists " + std::to_string(entries.size()));
  }
  return SequenceCatalog(std::move(entries));
}

util::Status SequenceCatalog::Save(const std::string& dir) const {
  // Engine::BuildFromDatabase rejects duplicates before the expensive
  // tree build; re-checking here keeps the persisted-catalog invariant
  // for any caller that assembles a catalog directly.
  OASIS_RETURN_NOT_OK(CheckUniqueIds());
  const std::string path = dir + "/" + kFileName;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot write catalog '" + path + "'");
  }
  out << "num_sequences " << entries_.size() << "\n";
  for (const CatalogEntry& entry : entries_) {
    // The line format relies on ids being whitespace-free (guaranteed for
    // FASTA-parsed ids, but not for programmatically built databases) and
    // on descriptions being single-line.
    if (entry.id.empty() ||
        entry.id.find_first_of(" \t\r\n") != std::string::npos) {
      return util::Status::InvalidArgument(
          "sequence id '" + entry.id +
          "' is empty or contains whitespace; cannot be cataloged");
    }
    if (entry.description.find_first_of("\r\n") != std::string::npos) {
      return util::Status::InvalidArgument(
          "description of sequence '" + entry.id + "' contains a newline");
    }
    out << "seq " << entry.length << " " << entry.id;
    if (!entry.description.empty()) out << " " << entry.description;
    out << "\n";
  }
  out.flush();
  if (!out) return util::Status::IOError("catalog write failed");
  return util::Status::OK();
}

std::string SequenceCatalog::name(uint32_t id) const {
  if (id < entries_.size()) return entries_[id].id;
  // Spelled out instead of `"s" + std::to_string(id)`: GCC 12's
  // -Wrestrict fires a false positive on that operator+ chain here.
  std::string out = std::to_string(id);
  out.insert(out.begin(), 's');
  return out;
}

}  // namespace api
}  // namespace oasis
