// oasis::Engine — the top-level facade of the library.
//
// Everything below this header (database, packed suffix tree, buffer pool,
// substitution matrix, Karlin statistics, sequence catalog) used to be
// wired together by every consumer separately. The Engine owns that whole
// index lifecycle:
//
//   auto engine = oasis::Engine::Create("db.fasta", "index_dir", options);
//   // ...or, later / in another process, without the FASTA:
//   auto engine = oasis::Engine::Open("index_dir", options);
//   // ...and the index can grow while it serves:
//   (*engine)->Append("more.fasta");   // new sequences, no rebuild
//
// An index directory is a *volume set* (api/volume_set.h): a manifest plus
// N self-contained volumes, each its own packed tree + catalog. Create()
// slices the database into volumes (EngineOptions::volume_size_bytes) and
// builds them in parallel (build_threads), each within the partitioned
// builder's memory budget; Append() adds new sequences as a fresh volume
// and swaps the manifest atomically — searches running meanwhile keep
// their snapshot, new searches see the grown set, and the engine's epoch
// bumps so anything keyed by it (the daemon's result cache) invalidates.
// Compact() merges adjacent small volumes back into full-size ones (also
// run in the background after appends pile volumes up). A legacy
// single-directory index opens unchanged as a one-volume set.
//
// Searches expose the paper's headline property — results streaming out in
// provably non-increasing score order — as a first-class *pull* cursor:
//
//   auto cursor = (*engine)->Search(
//       oasis::SearchRequest(query).EValue(10.0).TopK(40));
//   while (true) {
//     auto next = cursor->Next();
//     if (!next.ok() || !next->has_value()) break;
//     Use(**next);                    // proven next-best when it arrives
//     if (Satisfied()) { cursor->Close(); break; }
//   }
//
// The consumer sets the pace: each Next() advances the A* search only far
// enough to prove the next result. A multi-volume search fans out one
// cursor per volume and k-way-merges them (core/merge.h) — each volume's
// stream is non-increasing, so the merged stream is too, and E-value
// selectivity is resolved against the *total* set length (Karlin
// statistics compose over database length), making an N-volume search
// return exactly what the monolithic build would. SearchBatch() fans N
// requests across a thread pool over one shared buffer pool; all volumes
// of a pooled set read through that one pool under volume-qualified
// segment names. BlastSearch() runs the BLAST-style baseline behind the
// same request/cursor interface.

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "align/simd/dispatch.h"
#include "api/catalog.h"
#include "api/volume_set.h"
#include "blast/blast.h"
#include "core/merge.h"
#include "core/oasis.h"
#include "score/karlin.h"
#include "score/substitution_matrix.h"
#include "seq/database.h"
#include "storage/buffer_pool.h"
#include "storage/readahead.h"
#include "suffix/packed_builder.h"
#include "util/mutex.h"
#include "util/stats_json.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace api {

/// How the engine reads index blocks (the storage layer's two I/O paths).
enum class IoMode {
  /// Pick per index: mmap when the packed files fit the RAM budget
  /// (EngineOptions::mmap_budget_bytes), the buffer pool otherwise.
  kAuto,
  /// Always the sharded CLOCK buffer pool: bounded memory
  /// (EngineOptions::pool_bytes) and per-segment hit statistics — the
  /// disk-resident configuration the paper measures (Figures 7/8).
  kPooled,
  /// Always mmap the packed files: zero-copy block access with no
  /// locking and no pool bookkeeping, at the cost of statistics and of
  /// trusting the OS page cache to hold the index.
  kMmap,
};

/// Largest accepted EngineOptions::readahead_blocks: 2 MiB of speculation
/// per detected run at the default block size, far past any useful
/// window, and small enough that a coalesced run read is one preadv.
inline constexpr uint32_t kMaxReadaheadBlocks = 1024;

/// Largest accepted EngineOptions::build_threads.
inline constexpr uint32_t kMaxBuildThreads = 4096;

/// Build-time handling of low-complexity / repeat regions.
enum class MaskMode {
  /// No repeat detection. Lowercase (soft-masked) residues in the input
  /// still round-trip through the catalog, but every suffix is indexed.
  kOff,
  /// Gentle soft masking (LAST-style): tantan-like repeat detection runs
  /// over the input at Create/Append time, detected positions are ORed
  /// into the per-sequence masks (lowercase input positions count too),
  /// and masked positions are excluded from suffix-tree seeding and from
  /// BLAST word seeding. The residues themselves stay in the index — arc
  /// labels and alignment extensions pass straight through them at full
  /// score — so a real alignment crossing a repeat is reported intact;
  /// the repeat just cannot *start* a match. An index built soft stays
  /// soft: appends and compactions inherit the mode regardless of the
  /// options they run under.
  kSoft,
};

/// Parses "off" / "soft" (the CLI/daemon --mask values). Strict: anything
/// else is InvalidArgument.
util::StatusOr<MaskMode> ParseMaskMode(const std::string& text);
/// The wire/CLI name of a mask mode ("off" / "soft").
std::string MaskModeName(MaskMode mode);

/// Construction-time knobs of an Engine.
struct EngineOptions {
  /// Buffer pool capacity for this engine's searches — one global knob
  /// shared by every concurrent search (including SearchBatch workers)
  /// across every volume of the set. Must be positive unless io_mode is
  /// explicitly kMmap (no pool exists then and the field is ignored; the
  /// factories reject 0 otherwise, kAuto included since it may resolve to
  /// the pooled path).
  uint64_t pool_bytes = 64ull << 20;

  /// I/O path selection; see IoMode.
  IoMode io_mode = IoMode::kAuto;

  /// kAuto picks mmap when the packed index — all volumes together — is
  /// at most this many bytes (0 = never auto-map). The default trusts
  /// indexes up to 1 GiB to sit comfortably in RAM alongside the rest of
  /// the process.
  uint64_t mmap_budget_bytes = 1ull << 30;

  /// Speculative sibling-run readahead window for pooled engines: a pool
  /// miss that *continues a detected sequential run* (the level-first
  /// layout makes sibling runs exactly that) schedules asynchronous,
  /// coalesced reads of the next `readahead_blocks` blocks of the segment
  /// — see storage/readahead.h. Scattered misses never trigger
  /// speculation, so enabling this is safe for random-access workloads
  /// too. 0 disables speculation entirely (the default: readahead pays
  /// off on cold, disk-resident indexes; a warm pool needs none, and
  /// disabled speculation keeps the paper's Figure 7/8 statistics exactly
  /// reproducible). With `readahead_adaptive` (the default) this is the
  /// *initial* window and must lie inside [readahead_min_blocks,
  /// readahead_max_blocks]. Ignored — and readahead_stats() unavailable —
  /// when the engine resolves to mmap, which has no pool to prefetch
  /// into.
  uint32_t readahead_blocks = 0;

  /// Background prefetch threads when readahead is enabled.
  uint32_t readahead_threads = 1;

  /// Scale the speculation window from observed prefetch accuracy instead
  /// of keeping it fixed at `readahead_blocks`: a per-segment feedback
  /// controller (storage::AdaptiveReadahead — windowed EWMA of the
  /// used/wasted outcome stream, additive increase, multiplicative
  /// decrease, hysteresis) grows the window on segments whose speculation
  /// keeps landing and collapses it — to readahead_min_blocks, possibly
  /// zero — on segments where it keeps missing. On by default whenever
  /// readahead is enabled: adaptivity only sheds wasted I/O and results
  /// are byte-identical either way. Set to false for the PR-4 fixed-K
  /// behaviour (what bench_readahead's fixed configurations pin).
  /// Meaningless when readahead_blocks is 0.
  bool readahead_adaptive = true;

  /// Adaptive window floor (blocks). 0 — the default — lets a segment's
  /// window collapse to "no speculation", with occasional probes keeping
  /// recovery possible.
  uint32_t readahead_min_blocks = 0;

  /// Adaptive window ceiling (blocks); at most kMaxReadaheadBlocks and at
  /// least max(1, readahead_min_blocks). 0 — the default — resolves to
  /// max(64, readahead_blocks): 64 blocks (128 KiB at the default block
  /// size) is as deep as one coalesced run read usefully gets, and the
  /// floor at readahead_blocks keeps every window that was valid for
  /// fixed-K readahead valid under the adaptive default too.
  uint32_t readahead_max_blocks = 0;

  /// Give each search cursor a per-thread fetch memo so consecutive
  /// same-block tree reads (sibling runs) skip the buffer pool. On by
  /// default: results are byte-identical and pooled searches only get
  /// faster. Turn off to reproduce the paper's raw buffer statistics,
  /// where every block access counts as a pool request. No effect on
  /// mmap engines.
  bool fetch_memo = true;

  /// Block size for *newly built* indexes (Create / Build). Open() always
  /// adopts the block size recorded in the index metadata; every volume
  /// of one set shares it (the shared pool requires that).
  uint32_t block_size = storage::kDefaultBlockSize;

  /// Target volume payload for Create(): sequences are sliced, in order,
  /// into volumes of roughly this many residue bytes each (a sequence is
  /// never split across volumes). 0 — the default — builds everything
  /// into one volume using the *legacy single-directory layout* (packed
  /// files at the index root, no manifest), byte-compatible with every
  /// pre-volume reader; any positive value produces a manifest + vol_NNNN
  /// subdirectories, even when only one volume results. Compact() reuses
  /// this as its merge target size.
  uint64_t volume_size_bytes = 0;

  /// Worker threads for Create()'s parallel volume builds (one volume per
  /// worker; each build runs within the partitioned builder's per-pass
  /// memory budget). 0 — the default — uses the hardware concurrency,
  /// clamped to the volume count.
  uint32_t build_threads = 0;

  /// Append() schedules a background Compact() once the set holds more
  /// than this many volumes, merging adjacent small volumes back into
  /// full-size ones. 0 disables automatic compaction (explicit Compact()
  /// always works).
  uint32_t compact_trigger_volumes = 8;

  /// SIMD dispatch for the alignment kernels (striped Smith-Waterman and
  /// the BLAST extension stage). kAuto picks the best level the build +
  /// CPU supports; a forced ISA the machine cannot run is rejected by
  /// option validation (strict — a pinned deployment should fail loudly,
  /// not silently degrade). Every mode produces byte-identical results.
  align::simd::SimdMode simd_mode = align::simd::SimdMode::kAuto;

  /// Scoring matrix. nullptr picks the default for the database alphabet:
  /// Blastn for DNA, Pam30 for protein (the paper's matrix for short
  /// queries). The matrix must outlive the engine.
  const score::SubstitutionMatrix* matrix = nullptr;

  /// Alphabet used by Create()/Build() to parse the FASTA file. Ignored
  /// by Open() (recorded in the index) and CreateFromDatabase() (taken
  /// from the db).
  seq::AlphabetKind alphabet = seq::AlphabetKind::kProtein;

  /// Repeat masking for newly built indexes; see MaskMode. On Open() of
  /// an index whose volumes were built soft, the engine adopts soft mode
  /// regardless of this field (the index's masks are load-bearing: its
  /// trees lack the masked leaves).
  MaskMode mask_mode = MaskMode::kOff;
};

/// A fluent search request: what to look for and how to report it. Replaces
/// hand-assembled core::OasisOptions plumbing; the Engine resolves it
/// (E-value -> minScore via the index's Karlin statistics) at search time.
class SearchRequest {
 public:
  /// A request for `query` (encoded residues). Default selectivity is
  /// E-value 10.0, matching BLAST's default.
  explicit SearchRequest(std::vector<seq::Symbol> query)
      : query_(std::move(query)) {}

  /// Parses `text` under `alphabet` (case-insensitive residues).
  static util::StatusOr<SearchRequest> FromText(const seq::Alphabet& alphabet,
                                                std::string_view text);

  /// Explicit score threshold; overrides the E-value cutoff.
  SearchRequest& MinScore(score::ScoreT min_score) {
    min_score_ = min_score;
    return *this;
  }
  /// E-value cutoff, translated to minScore per paper Eq. 3 (the default
  /// selectivity knob; ignored when MinScore() was set). Resolved against
  /// the volume set's *total* length, so selectivity is a property of the
  /// whole database even when MaxVolumes/VolumeFilter scope the search.
  SearchRequest& EValue(double evalue) {
    evalue_ = evalue;
    return *this;
  }
  /// Stop after the top `k` results (0 = unlimited). The online ordering
  /// guarantees these are the true top-k (of the searched volumes).
  SearchRequest& TopK(uint64_t k) {
    top_k_ = k;
    return *this;
  }
  /// Reconstruct the full alignment (operations + coordinates) for each
  /// emitted result.
  SearchRequest& WithAlignments(bool on = true) {
    alignments_ = on;
    return *this;
  }
  /// Report every accepted alignment location instead of only the best per
  /// sequence.
  SearchRequest& AllAlignments(bool on = true) {
    all_alignments_ = on;
    return *this;
  }
  /// Order the stream by per-sequence-adjusted E-value instead of raw score
  /// (paper §4.3). Requires the engine to have Karlin statistics.
  SearchRequest& OrderByEValue(bool on = true) {
    order_by_evalue_ = on;
    return *this;
  }
  /// Search only the first `n` volumes of the set, in global order (0 —
  /// the default — searches them all). Composes with VolumeFilter: the
  /// filter selects, then the cap truncates. A partial search is a
  /// deliberate scope, not an approximation — results are exact for the
  /// searched volumes.
  SearchRequest& MaxVolumes(uint32_t n) {
    max_volumes_ = n;
    return *this;
  }
  /// Search only the named volumes (manifest names, e.g. "vol_0002"; "."
  /// is the legacy root volume). Empty — the default — means all volumes;
  /// naming a volume the set does not hold fails the search with
  /// InvalidArgument rather than silently searching less.
  SearchRequest& VolumeFilter(std::vector<std::string> names) {
    volume_filter_ = std::move(names);
    return *this;
  }
  /// Abort the search once `deadline` passes. Checked at every cursor
  /// suspension point (each queue pop of the A* loop): results already
  /// proven stand as a partial stream, then Next() reports
  /// kDeadlineExceeded — and keeps reporting it. Unset = no deadline.
  SearchRequest& Deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }
  /// Cooperative cancellation: the search polls `flag` at every suspension
  /// point and aborts with kCancelled once it reads true. The flag must
  /// outlive every cursor created from this request; any thread may set it
  /// (the daemon's client-disconnect path does). nullptr = not cancellable.
  SearchRequest& CancelWith(const std::atomic<bool>* flag) {
    cancel_flag_ = flag;
    return *this;
  }
  /// Custom per-suspension-point poll, composed *after* the deadline and
  /// cancellation checks. Returning a non-OK status aborts the search with
  /// that status (the daemon uses this to watch its client socket for
  /// mid-stream CANCEL frames or disconnects). Null = no extra poll.
  SearchRequest& PollWith(std::function<util::Status()> poll) {
    poll_ = std::move(poll);
    return *this;
  }

  const std::vector<seq::Symbol>& query() const { return query_; }  ///< encoded residues
  score::ScoreT min_score() const { return min_score_; }  ///< 0 = derive from evalue()
  double evalue() const { return evalue_; }               ///< E-value cutoff
  uint64_t top_k() const { return top_k_; }               ///< 0 = unlimited
  bool alignments() const { return alignments_; }         ///< reconstruct alignments
  bool all_alignments() const { return all_alignments_; }  ///< all locations per sequence
  bool order_by_evalue() const { return order_by_evalue_; }  ///< E-value stream order
  uint32_t max_volumes() const { return max_volumes_; }   ///< 0 = all volumes
  /// Volume-name filter; empty = all volumes.
  const std::vector<std::string>& volume_filter() const {
    return volume_filter_;
  }
  /// Abort deadline; std::nullopt when none was set.
  const std::optional<std::chrono::steady_clock::time_point>& deadline() const {
    return deadline_;
  }
  /// Cancellation flag; nullptr when the request is not cancellable.
  const std::atomic<bool>* cancel_flag() const { return cancel_flag_; }
  /// Custom suspension-point poll; null when none was set.
  const std::function<util::Status()>& poll() const { return poll_; }

 private:
  std::vector<seq::Symbol> query_;
  score::ScoreT min_score_ = 0;  ///< 0 = derive from evalue_
  double evalue_ = 10.0;
  uint64_t top_k_ = 0;
  bool alignments_ = false;
  bool all_alignments_ = false;
  bool order_by_evalue_ = false;
  uint32_t max_volumes_ = 0;
  std::vector<std::string> volume_filter_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  std::function<util::Status()> poll_;
};

/// The pull stream of one search. Streaming searches (Engine::Search) wrap
/// a live core::OasisCursor (one volume) or core::MergedOasisCursor (the
/// k-way fan-out) — each Next() resumes the A* machinery; adapter searches
/// (Engine::BlastSearch) replay a precomputed result list behind the same
/// interface. A cursor pins the volume-set snapshot it was created from,
/// so it keeps streaming correct results even while Append()/Compact()
/// swap the live set underneath it. Move-only.
class ResultCursor {
 public:
  ResultCursor(ResultCursor&&) noexcept = default;
  ResultCursor& operator=(ResultCursor&&) noexcept = default;

  /// The next proven result, std::nullopt when the stream is exhausted or
  /// the cursor was closed. A non-OK status (an I/O error, or a deadline /
  /// cancellation abort from the request's suspension-point hooks) is a
  /// sticky terminal: the search state is released immediately and every
  /// later Next() reports the same status; stats() stays readable with the
  /// counters at the moment of the abort.
  util::StatusOr<std::optional<core::OasisResult>> Next();

  /// Abandons the remaining stream and releases the search state (arena,
  /// frontier queue, pending results): every later Next() returns
  /// std::nullopt; stats() stays readable. Closing after k results is
  /// exactly equivalent to having requested TopK(k).
  void Close();

  /// True once the stream is exhausted or the cursor was closed.
  bool done() const;

  /// Search statistics so far (summed across volumes for a fan-out
  /// stream; zero-valued for adapter streams).
  const core::OasisStats& stats() const { return stats_; }

 private:
  friend class Engine;
  explicit ResultCursor(core::OasisCursor stream);
  explicit ResultCursor(core::MergedOasisCursor merged);
  explicit ResultCursor(std::vector<core::OasisResult> replay);

  std::optional<core::OasisCursor> stream_;
  std::optional<core::MergedOasisCursor> merged_;
  std::vector<core::OasisResult> replay_;
  size_t replay_pos_ = 0;
  core::OasisStats stats_;
  bool closed_ = false;
  /// Non-OK once the stream aborted; re-reported by every later Next().
  util::Status abort_status_ = util::Status::OK();
  /// Keeps the volume-set snapshot (trees, pool, readahead) alive for as
  /// long as this cursor may touch it.
  std::shared_ptr<const void> retain_;
};

/// One query's outcome within a SearchBatch.
struct BatchResult {
  std::vector<core::OasisResult> results;  ///< the query's full result stream
  core::OasisStats stats;                  ///< its search counters
};

/// Knobs of one SearchBatch call.
struct BatchOptions {
  /// Worker threads (clamped down to the number of requests). Must be
  /// positive; SearchBatch rejects 0.
  uint32_t threads = 4;
};

/// The engine facade. Owns the volume set (manifest + per-volume packed
/// trees + catalogs), the storage layer and the scoring system of one
/// index directory.
///
/// Concurrency contract: all search entry points are const and safe from
/// any number of threads; they snapshot the immutable volume-set state
/// and share one storage layer. The lifecycle mutators — Append() and
/// Compact() — may run concurrently with searches (that is the point:
/// live growth under traffic); they build the new volume on the side,
/// publish the manifest atomically, swap the snapshot, and bump epoch().
/// In-flight cursors keep their snapshot and finish on the old set.
/// Mutators serialize among themselves. The remaining non-const members
/// (BlastSearch / ResidentDatabase, pool() mutation) are single-threaded
/// with respect to each other and to the mutators.
class Engine {
 public:
  // --- Lifecycle ------------------------------------------------------------

  /// Builds an index from `fasta_path` (parsed under options.alphabet)
  /// into `index_dir` (created if missing) and opens it. With
  /// options.volume_size_bytes > 0 the database is sliced into volumes
  /// built in parallel (options.build_threads) and written as a volume
  /// set; with 0 (the default) the index is one volume in the legacy
  /// single-directory layout. The source database stays resident
  /// (database() != nullptr).
  static util::StatusOr<std::unique_ptr<Engine>> Create(
      const std::string& fasta_path, const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  /// Create() for an already-constructed database (workload generators,
  /// tests).
  static util::StatusOr<std::unique_ptr<Engine>> CreateFromDatabase(
      seq::SequenceDatabase db, const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  /// Opens an existing index directory; no FASTA needed. Accepts both
  /// layouts: a volume set (manifest + vol_NNNN subdirectories) and a
  /// legacy single directory, which reads as a one-volume set. Labels
  /// come from the persisted catalogs (synthesized as "s<i>" for
  /// pre-catalog indexes).
  static util::StatusOr<std::unique_ptr<Engine>> Open(
      const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  /// DEPRECATED: use Create(). Thin wrapper kept for source
  /// compatibility; identical behaviour (with the default
  /// volume_size_bytes = 0 it produces the legacy one-volume layout,
  /// exactly as it always did). See src/api/README.md for the migration
  /// note.
  static util::StatusOr<std::unique_ptr<Engine>> Build(
      const std::string& fasta_path, const std::string& index_dir,
      const EngineOptions& options = EngineOptions()) {
    return Create(fasta_path, index_dir, options);
  }

  /// DEPRECATED: use CreateFromDatabase(). Thin wrapper, identical
  /// behaviour; see src/api/README.md.
  static util::StatusOr<std::unique_ptr<Engine>> BuildFromDatabase(
      seq::SequenceDatabase db, const std::string& index_dir,
      const EngineOptions& options = EngineOptions()) {
    return CreateFromDatabase(std::move(db), index_dir, options);
  }

  /// Joins the background compaction thread (if any) before tearing the
  /// engine down.
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Appends `fasta_path`'s sequences (parsed under the index alphabet)
  /// as a fresh volume at the end of the set: no rebuild of existing
  /// volumes, no downtime — searches running concurrently finish on
  /// their snapshot, searches started after see the grown set, and
  /// epoch() bumps so epoch-keyed caches invalidate. Appending to a
  /// legacy single-directory index upgrades it in place to a volume set
  /// (the original index becomes volume "."). Duplicate sequence ids
  /// against the existing catalog are rejected before anything is
  /// written. May schedule a background compaction (see
  /// EngineOptions::compact_trigger_volumes).
  util::Status Append(const std::string& fasta_path);

  /// Append() for already-parsed sequences.
  util::Status AppendSequences(std::vector<seq::Sequence> sequences);

  /// Merges adjacent runs of small volumes (payload below
  /// EngineOptions::volume_size_bytes; every volume counts as small when
  /// that is 0) into full-size volumes, preserving global sequence
  /// order, then publishes the new manifest atomically, swaps the
  /// snapshot, bumps epoch() and deletes the replaced volumes' files.
  /// Searches holding the old snapshot keep streaming from the deleted
  /// (still-open) files. No-op when nothing qualifies.
  util::Status Compact();

  /// Blocks until a scheduled background compaction (if any) has
  /// finished. Tests and orderly shutdowns use this; the destructor
  /// calls it implicitly.
  void WaitForCompaction();

  // --- Queries --------------------------------------------------------------

  /// Starts an online OASIS search; results stream through the returned
  /// cursor in non-increasing score order (or E-value order when
  /// requested), fanned out across the set's volumes and k-way merged.
  util::StatusOr<ResultCursor> Search(const SearchRequest& request) const;

  /// Convenience: drains Search() into a vector.
  util::StatusOr<BatchResult> SearchAll(const SearchRequest& request) const;

  /// Fans `requests` across a thread pool. Every worker searches the same
  /// volume-set snapshot through the shared sharded buffer pool — the
  /// storage layer is concurrent, so the workers share cache warmth and
  /// write only to distinct output slots. Results arrive in request
  /// order, identical to running each request sequentially.
  util::StatusOr<std::vector<BatchResult>> SearchBatch(
      std::span<const SearchRequest> requests,
      const BatchOptions& options = BatchOptions()) const;

  /// The BLAST-style heuristic baseline (word seeding + X-drop extension)
  /// behind the same request/cursor interface, for OASIS-vs-BLAST
  /// comparisons. Not online: the scan completes up front and the cursor
  /// replays its hits in descending score order. Requires the resident
  /// database (materialized from the index — all volumes, in global
  /// order — on first use).
  util::StatusOr<ResultCursor> BlastSearch(
      const SearchRequest& request,
      const blast::BlastOptions& blast_options = blast::BlastOptions());

  /// Resolves the effective minScore of `request` (explicit MinScore, or
  /// E-value translated via paper Eq. 3 against the total set length).
  util::StatusOr<score::ScoreT> ResolveMinScore(
      const SearchRequest& request) const;

  /// Resolves a request into the core-layer options it would run with
  /// (the bridge for callers that drive core::OasisSearch directly).
  util::StatusOr<core::OasisOptions> ResolveOptions(
      const SearchRequest& request) const;

  // --- Components -----------------------------------------------------------

  /// The in-memory sequence database (all volumes concatenated in global
  /// order). Resident after Create / CreateFromDatabase; for Open()ed
  /// engines the first call materializes it from the packed symbols
  /// files + catalogs. Invalidated (and re-materialized on demand) by
  /// Append/Compact.
  util::StatusOr<const seq::SequenceDatabase*> ResidentDatabase();

  /// Resident database if already materialized, else nullptr (non-forcing).
  const seq::SequenceDatabase* database() const {
    util::MutexLock lock(maintenance_mu_);
    return db_.get();
  }

  const std::string& index_dir() const { return index_dir_; }  ///< opened index path
  const seq::Alphabet& alphabet() const { return *alphabet_; }  ///< index alphabet
  const score::SubstitutionMatrix& matrix() const { return *matrix_; }  ///< scoring matrix

  /// The packed index of a single-volume engine (the common case for
  /// benches and tests that measure one tree directly). CHECK-fails on a
  /// multi-volume set — per-volume trees are an implementation detail
  /// there; search through the engine instead.
  const suffix::PackedSuffixTree& tree() const;

  /// The merged id/description labels of the current snapshot, in global
  /// sequence-id order. The reference is invalidated by Append/Compact;
  /// concurrent readers (the daemon) should use SequenceName() instead.
  const SequenceCatalog& catalog() const;

  /// Sequence `id`'s label, resolved against the current snapshot —
  /// safe to call concurrently with Append/Compact.
  std::string SequenceName(uint32_t sequence_id) const;

  /// Number of volumes in the current snapshot.
  size_t num_volumes() const;
  /// Manifest names of the current snapshot's volumes, in global order.
  std::vector<std::string> volume_names() const;
  /// The manifest generation of the current snapshot (1 for a fresh
  /// build; bumped by every Append/Compact).
  uint64_t generation() const;

  /// The I/O path this engine resolved to (never kAuto).
  IoMode io_mode() const;
  /// The requested SIMD mode (as configured, possibly kAuto).
  align::simd::SimdMode simd_mode() const { return simd_mode_; }
  /// The SIMD level the alignment kernels run at (resolved at open).
  align::simd::SimdLevel simd_level() const { return simd_level_; }
  /// True when index blocks go through a buffer pool (io_mode kPooled);
  /// mmap engines have no pool and keep no access statistics.
  bool uses_pool() const;
  /// The buffer pool shared by every volume of the current snapshot.
  /// Precondition: uses_pool().
  storage::BufferPool& pool() const;

  /// True when this engine runs speculative sibling-run readahead (pooled
  /// path with EngineOptions::readahead_blocks > 0).
  bool uses_readahead() const;
  /// The configured readahead window in blocks (0 when disabled or mmap;
  /// the adaptive controller's initial window when adaptive).
  uint32_t readahead_blocks() const;
  /// True when the readahead window adapts to observed prefetch accuracy
  /// (uses_readahead() with EngineOptions::readahead_adaptive).
  bool readahead_adaptive() const;
  /// The readahead unit, for live-window displays and tests.
  /// Precondition: uses_readahead().
  const storage::Readahead& readahead() const;
  /// Prefetch outcome counters (issued / used / wasted). Precondition:
  /// uses_readahead() — an mmap engine has no pool to speculate into, so
  /// callers must report these as unavailable rather than zero.
  storage::ReadaheadStats readahead_stats() const;

  /// Captures the storage-layer statistics (pool geometry, per-segment
  /// counters — volume-qualified on a multi-volume set — readahead
  /// outcomes, adaptive windows) plus the per-volume rows (sequence /
  /// residue counts and the partitioned-build statistics recorded at
  /// build time) as the plain-data snapshot both stats surfaces render —
  /// oasis_cli --stats via util::StatsText, the daemon's /stats endpoint
  /// via util::StatsJson. For an mmap engine the snapshot's `pooled`
  /// flag is false and the pool counter fields are meaningless (the
  /// renderers emit the n/a notices); the volume rows are filled either
  /// way.
  util::EngineStatsSnapshot CollectStats() const;

  /// True when this engine runs in soft-masking mode: configured
  /// MaskMode::kSoft, or opened over an index whose volumes were built
  /// soft (the mode is sticky — see EngineOptions::mask_mode). Appends
  /// and compactions re-apply it, and BlastSearch seeds gently.
  bool soft_masking() const { return mask_soft_; }

  /// Karlin-Altschul statistics of the scoring system (needed for E-value
  /// cutoffs and E-value-ordered streams). Absent for scoring systems with
  /// no valid local-alignment statistics.
  bool has_karlin() const { return has_karlin_; }
  const score::KarlinParams& karlin() const { return karlin_; }  ///< lambda, K, H

  /// Process-unique identifier of this engine's *current index state*,
  /// assigned from a monotone counter at open time and re-assigned by
  /// every Append/Compact. Two Engine objects never share an epoch, and
  /// one engine never reuses an epoch across mutations, so anything
  /// keyed by it — the daemon's result cache — is implicitly invalidated
  /// when an index is reopened or grows.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Number of database sequences across all volumes.
  uint64_t num_sequences() const;
  /// Number of database residues (terminators excluded) across all
  /// volumes.
  uint64_t num_residues() const;

 private:
  /// One opened volume: its packed tree, searcher and the offsets lifting
  /// its local ids/positions into set-wide coordinates.
  struct VolumeHandle {
    std::string name;
    std::unique_ptr<suffix::PackedSuffixTree> tree;
    std::unique_ptr<core::OasisSearch> search;
    uint32_t id_base = 0;
    uint64_t pos_base = 0;
    suffix::PartitionedBuildStats build_stats;
    /// True when the volume's mask sidecar says it was built with soft
    /// masking (its tree lacks the masked leaves).
    bool masked_soft = false;
  };

  /// The immutable state one manifest generation opens to. Searches
  /// snapshot it (shared_ptr) and cursors retain it; Append/Compact build
  /// a successor and swap the pointer. `readahead` is declared last so it
  /// is destroyed first — its worker threads touch the pool's frames and
  /// the trees' block files until the moment they stop.
  struct VolumeSetState {
    VolumeSetManifest manifest;
    IoMode io_mode = IoMode::kPooled;
    std::unique_ptr<storage::BufferPool> pool;  ///< null for mmap
    std::vector<VolumeHandle> volumes;
    SequenceCatalog catalog;  ///< merged, global id order
    uint64_t total_length = 0;     ///< residues + terminators, all volumes
    uint64_t total_sequences = 0;  ///< sequences, all volumes
    std::unique_ptr<storage::Readahead> readahead;  ///< keep last
  };

  Engine() = default;

  /// Rejects invalid construction knobs (pool_bytes == 0) with a clear
  /// Status instead of UB or silent clamping downstream.
  static util::Status ValidateOptions(const EngineOptions& options);

  /// The effective adaptive ceiling: readahead_max_blocks, or its
  /// documented auto default (max(64, readahead_blocks)) when 0.
  static uint32_t ResolveReadaheadMax(const EngineOptions& options);

  /// Builds one volume's packed tree + catalog into `volume_dir` with the
  /// partitioned builder and returns its manifest entry.
  static util::StatusOr<VolumeInfo> BuildVolume(
      const seq::SequenceDatabase& db, const std::string& volume_dir,
      const std::string& volume_name, const EngineOptions& options);

  /// Slices `sequences` into volume-sized databases and builds them in
  /// parallel, appending the new entries to `manifest`.
  static util::Status BuildVolumesParallel(
      const seq::Alphabet& alphabet, std::vector<seq::Sequence> sequences,
      const std::string& index_dir, const EngineOptions& options,
      VolumeSetManifest* manifest);

  /// Opens every volume `manifest` lists under the resolved I/O mode and
  /// assembles the state — everything except the per-volume searchers,
  /// which AttachSearches() adds once the matrix is resolved (the state is
  /// immutable from the moment it is published, not before).
  static util::StatusOr<std::shared_ptr<VolumeSetState>> OpenVolumeSet(
      const std::string& index_dir, const EngineOptions& options,
      VolumeSetManifest manifest);

  /// Creates each volume's core::OasisSearch against the resolved matrix
  /// (validating matrix/alphabet agreement per volume).
  util::Status AttachSearches(VolumeSetState* state) const;

  /// Shared tail of the factory functions: open the volume set, pick the
  /// matrix, compute Karlin statistics.
  static util::StatusOr<std::unique_ptr<Engine>> OpenInternal(
      const std::string& index_dir, const EngineOptions& options,
      std::unique_ptr<seq::SequenceDatabase> resident_db);

  /// The current immutable state (thread-safe shared_ptr copy).
  std::shared_ptr<const VolumeSetState> snapshot() const;
  /// Publishes `next` as the current state and bumps the epoch.
  void SwapState(std::shared_ptr<const VolumeSetState> next);

  /// Search/resolve against one pinned snapshot (the fan-out core).
  util::StatusOr<ResultCursor> SearchOnState(
      std::shared_ptr<const VolumeSetState> state,
      const SearchRequest& request) const;
  util::StatusOr<core::OasisOptions> ResolveOptionsOnState(
      const VolumeSetState& state, const SearchRequest& request) const;
  util::StatusOr<score::ScoreT> ResolveMinScoreOnState(
      const VolumeSetState& state, const SearchRequest& request) const;
  /// Volume indices `request` selects (VolumeFilter then MaxVolumes).
  static util::StatusOr<std::vector<size_t>> SelectVolumes(
      const VolumeSetState& state, const SearchRequest& request);

  /// Reads every sequence of `volumes` back out of their packed symbol
  /// files, in order (the compaction / resident-database source), and
  /// re-attaches the per-sequence masks and qualities persisted in the
  /// volumes' sidecar files under `index_dir`.
  static util::StatusOr<std::vector<seq::Sequence>> MaterializeSequences(
      const std::string& index_dir, const VolumeSetState& state,
      size_t first_volume, size_t num_volumes, const seq::Alphabet& alphabet);

  /// Compact() body; caller holds maintenance_mu_.
  util::Status CompactLocked() REQUIRES(maintenance_mu_);
  /// Schedules a background compaction when the volume count crossed the
  /// trigger; caller holds maintenance_mu_.
  void MaybeScheduleCompaction() REQUIRES(maintenance_mu_);

  std::string index_dir_;
  EngineOptions options_;  ///< as configured (reused by Append/Compact)
  const seq::Alphabet* alphabet_ = nullptr;
  const score::SubstitutionMatrix* matrix_ = nullptr;
  align::simd::SimdMode simd_mode_ = align::simd::SimdMode::kAuto;
  align::simd::SimdLevel simd_level_ = align::simd::SimdLevel::kScalar;
  bool fetch_memo_ = true;  ///< resolved EngineOptions::fetch_memo
  /// Resident database; may be null. Guarded by maintenance_mu_: the
  /// background compaction thread resets it (CompactLocked), so the
  /// lazy materialization in ResidentDatabase() and every peek must
  /// synchronize — the annotation pass flagged the previous unlocked
  /// access as a real race.
  std::unique_ptr<seq::SequenceDatabase> db_ GUARDED_BY(maintenance_mu_);
  score::KarlinParams karlin_;
  bool has_karlin_ = false;
  /// Effective soft-masking mode: options say kSoft, or any opened volume
  /// was built soft. Sticky — see soft_masking().
  bool mask_soft_ = false;
  std::atomic<uint64_t> epoch_{0};  ///< process-unique; see epoch()

  mutable util::Mutex state_mu_;  ///< guards state_ (pointer swap only)
  std::shared_ptr<const VolumeSetState> state_ GUARDED_BY(state_mu_);

  /// Serializes Append/Compact bodies and guards db_. Acquired before
  /// state_mu_ / thread_mu_ when held together (never the reverse).
  mutable util::Mutex maintenance_mu_;
  util::Mutex thread_mu_;  ///< guards compact_thread_
  std::thread compact_thread_ GUARDED_BY(thread_mu_);
};

}  // namespace api

// The facade types are the library's front door; export them at the top
// level so consumers write oasis::Engine / oasis::SearchRequest.
using api::BatchOptions;
using api::BatchResult;
using api::Engine;
using api::EngineOptions;
using api::IoMode;
using api::ResultCursor;
using api::SearchRequest;
using api::VolumeInfo;
using api::VolumeSetManifest;

}  // namespace oasis
