// oasis::Engine — the top-level facade of the library.
//
// Everything below this header (database, packed suffix tree, buffer pool,
// substitution matrix, Karlin statistics, sequence catalog) used to be
// wired together by every consumer separately. The Engine owns that whole
// index lifecycle:
//
//   auto engine = oasis::Engine::Build("db.fasta", "index_dir", options);
//   // ...or, later / in another process, without the FASTA:
//   auto engine = oasis::Engine::Open("index_dir", options);
//
// and exposes the paper's headline property — results streaming out in
// provably non-increasing score order — as a first-class *pull* cursor:
//
//   auto cursor = (*engine)->Search(
//       oasis::SearchRequest(query).EValue(10.0).TopK(40));
//   while (true) {
//     auto next = cursor->Next();
//     if (!next.ok() || !next->has_value()) break;
//     Use(**next);                    // proven next-best when it arrives
//     if (Satisfied()) { cursor->Close(); break; }
//   }
//
// The consumer sets the pace: each Next() advances the A* search only far
// enough to prove the next result, so stopping after the top few matches
// costs a few node expansions, not a database scan. SearchBatch() fans N
// requests across a thread pool; every worker reads the engine's one
// packed tree through its one sharded buffer pool, so cache warmth is
// shared across all of them and pool_bytes is a single global knob.
// BlastSearch() runs the BLAST-style baseline behind the same
// request/cursor interface so OASIS-vs-BLAST comparisons share one API.

#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "align/simd/dispatch.h"
#include "api/catalog.h"
#include "blast/blast.h"
#include "core/oasis.h"
#include "score/karlin.h"
#include "score/substitution_matrix.h"
#include "seq/database.h"
#include "storage/buffer_pool.h"
#include "storage/readahead.h"
#include "suffix/packed_builder.h"
#include "util/stats_json.h"
#include "util/status.h"

namespace oasis {
namespace api {

/// How the engine reads index blocks (the storage layer's two I/O paths).
enum class IoMode {
  /// Pick per index: mmap when the packed files fit the RAM budget
  /// (EngineOptions::mmap_budget_bytes), the buffer pool otherwise.
  kAuto,
  /// Always the sharded CLOCK buffer pool: bounded memory
  /// (EngineOptions::pool_bytes) and per-segment hit statistics — the
  /// disk-resident configuration the paper measures (Figures 7/8).
  kPooled,
  /// Always mmap the three packed files: zero-copy block access with no
  /// locking and no pool bookkeeping, at the cost of statistics and of
  /// trusting the OS page cache to hold the index.
  kMmap,
};

/// Largest accepted EngineOptions::readahead_blocks: 2 MiB of speculation
/// per detected run at the default block size, far past any useful
/// window, and small enough that a coalesced run read is one preadv.
inline constexpr uint32_t kMaxReadaheadBlocks = 1024;

/// Construction-time knobs of an Engine.
struct EngineOptions {
  /// Buffer pool capacity for this engine's searches — one global knob
  /// shared by every concurrent search (including SearchBatch workers).
  /// Must be positive unless io_mode is explicitly kMmap (no pool exists
  /// then and the field is ignored; the factories reject 0 otherwise,
  /// kAuto included since it may resolve to the pooled path).
  uint64_t pool_bytes = 64ull << 20;

  /// I/O path selection; see IoMode.
  IoMode io_mode = IoMode::kAuto;

  /// kAuto picks mmap when the packed index is at most this many bytes
  /// (0 = never auto-map). The default trusts indexes up to 1 GiB to sit
  /// comfortably in RAM alongside the rest of the process.
  uint64_t mmap_budget_bytes = 1ull << 30;

  /// Speculative sibling-run readahead window for pooled engines: a pool
  /// miss that *continues a detected sequential run* (the level-first
  /// layout makes sibling runs exactly that) schedules asynchronous,
  /// coalesced reads of the next `readahead_blocks` blocks of the segment
  /// — see storage/readahead.h. Scattered misses never trigger
  /// speculation, so enabling this is safe for random-access workloads
  /// too. 0 disables speculation entirely (the default: readahead pays
  /// off on cold, disk-resident indexes; a warm pool needs none, and
  /// disabled speculation keeps the paper's Figure 7/8 statistics exactly
  /// reproducible). With `readahead_adaptive` (the default) this is the
  /// *initial* window and must lie inside [readahead_min_blocks,
  /// readahead_max_blocks]. Ignored — and readahead_stats() unavailable —
  /// when the engine resolves to mmap, which has no pool to prefetch
  /// into.
  uint32_t readahead_blocks = 0;

  /// Background prefetch threads when readahead is enabled.
  uint32_t readahead_threads = 1;

  /// Scale the speculation window from observed prefetch accuracy instead
  /// of keeping it fixed at `readahead_blocks`: a per-segment feedback
  /// controller (storage::AdaptiveReadahead — windowed EWMA of the
  /// used/wasted outcome stream, additive increase, multiplicative
  /// decrease, hysteresis) grows the window on segments whose speculation
  /// keeps landing and collapses it — to readahead_min_blocks, possibly
  /// zero — on segments where it keeps missing. On by default whenever
  /// readahead is enabled: adaptivity only sheds wasted I/O and results
  /// are byte-identical either way. Set to false for the PR-4 fixed-K
  /// behaviour (what bench_readahead's fixed configurations pin).
  /// Meaningless when readahead_blocks is 0.
  bool readahead_adaptive = true;

  /// Adaptive window floor (blocks). 0 — the default — lets a segment's
  /// window collapse to "no speculation", with occasional probes keeping
  /// recovery possible.
  uint32_t readahead_min_blocks = 0;

  /// Adaptive window ceiling (blocks); at most kMaxReadaheadBlocks and at
  /// least max(1, readahead_min_blocks). 0 — the default — resolves to
  /// max(64, readahead_blocks): 64 blocks (128 KiB at the default block
  /// size) is as deep as one coalesced run read usefully gets, and the
  /// floor at readahead_blocks keeps every window that was valid for
  /// fixed-K readahead valid under the adaptive default too.
  uint32_t readahead_max_blocks = 0;

  /// Give each search cursor a per-thread fetch memo so consecutive
  /// same-block tree reads (sibling runs) skip the buffer pool. On by
  /// default: results are byte-identical and pooled searches only get
  /// faster. Turn off to reproduce the paper's raw buffer statistics,
  /// where every block access counts as a pool request. No effect on
  /// mmap engines.
  bool fetch_memo = true;

  /// Block size for *newly built* indexes (Build / BuildFromDatabase).
  /// Open() always adopts the block size recorded in the index metadata.
  uint32_t block_size = storage::kDefaultBlockSize;

  /// SIMD dispatch for the alignment kernels (striped Smith-Waterman and
  /// the BLAST extension stage). kAuto picks the best level the build +
  /// CPU supports; a forced ISA the machine cannot run is rejected by
  /// option validation (strict — a pinned deployment should fail loudly,
  /// not silently degrade). Every mode produces byte-identical results.
  align::simd::SimdMode simd_mode = align::simd::SimdMode::kAuto;

  /// Scoring matrix. nullptr picks the default for the database alphabet:
  /// Blastn for DNA, Pam30 for protein (the paper's matrix for short
  /// queries). The matrix must outlive the engine.
  const score::SubstitutionMatrix* matrix = nullptr;

  /// Alphabet used by Build() to parse the FASTA file. Ignored by Open()
  /// (recorded in the index) and BuildFromDatabase() (taken from the db).
  seq::AlphabetKind alphabet = seq::AlphabetKind::kProtein;
};

/// A fluent search request: what to look for and how to report it. Replaces
/// hand-assembled core::OasisOptions plumbing; the Engine resolves it
/// (E-value -> minScore via the index's Karlin statistics) at search time.
class SearchRequest {
 public:
  /// A request for `query` (encoded residues). Default selectivity is
  /// E-value 10.0, matching BLAST's default.
  explicit SearchRequest(std::vector<seq::Symbol> query)
      : query_(std::move(query)) {}

  /// Parses `text` under `alphabet` (case-insensitive residues).
  static util::StatusOr<SearchRequest> FromText(const seq::Alphabet& alphabet,
                                                std::string_view text);

  /// Explicit score threshold; overrides the E-value cutoff.
  SearchRequest& MinScore(score::ScoreT min_score) {
    min_score_ = min_score;
    return *this;
  }
  /// E-value cutoff, translated to minScore per paper Eq. 3 (the default
  /// selectivity knob; ignored when MinScore() was set).
  SearchRequest& EValue(double evalue) {
    evalue_ = evalue;
    return *this;
  }
  /// Stop after the top `k` results (0 = unlimited). The online ordering
  /// guarantees these are the true top-k.
  SearchRequest& TopK(uint64_t k) {
    top_k_ = k;
    return *this;
  }
  /// Reconstruct the full alignment (operations + coordinates) for each
  /// emitted result.
  SearchRequest& WithAlignments(bool on = true) {
    alignments_ = on;
    return *this;
  }
  /// Report every accepted alignment location instead of only the best per
  /// sequence.
  SearchRequest& AllAlignments(bool on = true) {
    all_alignments_ = on;
    return *this;
  }
  /// Order the stream by per-sequence-adjusted E-value instead of raw score
  /// (paper §4.3). Requires the engine to have Karlin statistics.
  SearchRequest& OrderByEValue(bool on = true) {
    order_by_evalue_ = on;
    return *this;
  }
  /// Abort the search once `deadline` passes. Checked at every cursor
  /// suspension point (each queue pop of the A* loop): results already
  /// proven stand as a partial stream, then Next() reports
  /// kDeadlineExceeded — and keeps reporting it. Unset = no deadline.
  SearchRequest& Deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }
  /// Cooperative cancellation: the search polls `flag` at every suspension
  /// point and aborts with kCancelled once it reads true. The flag must
  /// outlive every cursor created from this request; any thread may set it
  /// (the daemon's client-disconnect path does). nullptr = not cancellable.
  SearchRequest& CancelWith(const std::atomic<bool>* flag) {
    cancel_flag_ = flag;
    return *this;
  }
  /// Custom per-suspension-point poll, composed *after* the deadline and
  /// cancellation checks. Returning a non-OK status aborts the search with
  /// that status (the daemon uses this to watch its client socket for
  /// mid-stream CANCEL frames or disconnects). Null = no extra poll.
  SearchRequest& PollWith(std::function<util::Status()> poll) {
    poll_ = std::move(poll);
    return *this;
  }

  const std::vector<seq::Symbol>& query() const { return query_; }  ///< encoded residues
  score::ScoreT min_score() const { return min_score_; }  ///< 0 = derive from evalue()
  double evalue() const { return evalue_; }               ///< E-value cutoff
  uint64_t top_k() const { return top_k_; }               ///< 0 = unlimited
  bool alignments() const { return alignments_; }         ///< reconstruct alignments
  bool all_alignments() const { return all_alignments_; }  ///< all locations per sequence
  bool order_by_evalue() const { return order_by_evalue_; }  ///< E-value stream order
  /// Abort deadline; std::nullopt when none was set.
  const std::optional<std::chrono::steady_clock::time_point>& deadline() const {
    return deadline_;
  }
  /// Cancellation flag; nullptr when the request is not cancellable.
  const std::atomic<bool>* cancel_flag() const { return cancel_flag_; }
  /// Custom suspension-point poll; null when none was set.
  const std::function<util::Status()>& poll() const { return poll_; }

 private:
  std::vector<seq::Symbol> query_;
  score::ScoreT min_score_ = 0;  ///< 0 = derive from evalue_
  double evalue_ = 10.0;
  uint64_t top_k_ = 0;
  bool alignments_ = false;
  bool all_alignments_ = false;
  bool order_by_evalue_ = false;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  std::function<util::Status()> poll_;
};

/// The pull stream of one search. Streaming searches (Engine::Search) wrap
/// a live core::OasisCursor — each Next() resumes the A* loop; adapter
/// searches (Engine::BlastSearch) replay a precomputed result list behind
/// the same interface. Move-only.
class ResultCursor {
 public:
  ResultCursor(ResultCursor&&) noexcept = default;
  ResultCursor& operator=(ResultCursor&&) noexcept = default;

  /// The next proven result, std::nullopt when the stream is exhausted or
  /// the cursor was closed. A non-OK status (an I/O error, or a deadline /
  /// cancellation abort from the request's suspension-point hooks) is a
  /// sticky terminal: the search state is released immediately and every
  /// later Next() reports the same status; stats() stays readable with the
  /// counters at the moment of the abort.
  util::StatusOr<std::optional<core::OasisResult>> Next();

  /// Abandons the remaining stream and releases the search state (arena,
  /// frontier queue, pending results): every later Next() returns
  /// std::nullopt; stats() stays readable. Closing after k results is
  /// exactly equivalent to having requested TopK(k).
  void Close();

  /// True once the stream is exhausted or the cursor was closed.
  bool done() const;

  /// Search statistics so far (zero-valued for adapter streams).
  const core::OasisStats& stats() const { return stats_; }

 private:
  friend class Engine;
  explicit ResultCursor(core::OasisCursor stream);
  explicit ResultCursor(std::vector<core::OasisResult> replay);

  std::optional<core::OasisCursor> stream_;
  std::vector<core::OasisResult> replay_;
  size_t replay_pos_ = 0;
  core::OasisStats stats_;
  bool closed_ = false;
  /// Non-OK once the stream aborted; re-reported by every later Next().
  util::Status abort_status_ = util::Status::OK();
};

/// One query's outcome within a SearchBatch.
struct BatchResult {
  std::vector<core::OasisResult> results;  ///< the query's full result stream
  core::OasisStats stats;                  ///< its search counters
};

/// Knobs of one SearchBatch call.
struct BatchOptions {
  /// Worker threads (clamped down to the number of requests). Must be
  /// positive; SearchBatch rejects 0.
  uint32_t threads = 4;
};

/// The engine facade. Owns database metadata + packed suffix tree +
/// storage layer + scoring for one index directory. All search entry
/// points are const and safe to call from any number of threads
/// concurrently: they share the engine's one packed tree, read through
/// one of the two storage paths — the sharded buffer pool, or mmapped
/// index files when io_mode resolves to kMmap (then uses_pool() is false
/// and pool() must not be called) — and SearchBatch is just a convenience
/// fan-out over the same machinery. The non-const members (BlastSearch
/// via ResidentDatabase, pool() mutation) are single-threaded.
class Engine {
 public:
  /// Builds an index: parse `fasta_path` under options.alphabet, build the
  /// generalized suffix tree, pack it into `index_dir` (created if
  /// missing), write the sequence catalog, and open the result. The source
  /// database stays resident (database() != nullptr).
  static util::StatusOr<std::unique_ptr<Engine>> Build(
      const std::string& fasta_path, const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  /// Build() for an already-constructed database (workload generators,
  /// tests).
  static util::StatusOr<std::unique_ptr<Engine>> BuildFromDatabase(
      seq::SequenceDatabase db, const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  /// Opens an existing index directory; no FASTA needed. Labels come from
  /// the persisted catalog (synthesized as "s<i>" for pre-catalog indexes).
  static util::StatusOr<std::unique_ptr<Engine>> Open(
      const std::string& index_dir,
      const EngineOptions& options = EngineOptions());

  // --- Queries --------------------------------------------------------------

  /// Starts an online OASIS search; results stream through the returned
  /// cursor in non-increasing score order (or E-value order when
  /// requested).
  util::StatusOr<ResultCursor> Search(const SearchRequest& request) const;

  /// Convenience: drains Search() into a vector.
  util::StatusOr<BatchResult> SearchAll(const SearchRequest& request) const;

  /// Fans `requests` across a thread pool. Every worker searches the
  /// engine's shared packed tree through the shared sharded buffer pool —
  /// OasisSearch is stateless/const and the storage layer is concurrent,
  /// so the workers share cache warmth and nothing mutable beyond the pool
  /// internals (which synchronize per shard). Results arrive in request
  /// order, identical to running each request sequentially.
  util::StatusOr<std::vector<BatchResult>> SearchBatch(
      std::span<const SearchRequest> requests,
      const BatchOptions& options = BatchOptions()) const;

  /// The BLAST-style heuristic baseline (word seeding + X-drop extension)
  /// behind the same request/cursor interface, for OASIS-vs-BLAST
  /// comparisons. Not online: the scan completes up front and the cursor
  /// replays its hits in descending score order. Requires the resident
  /// database (materialized from the index on first use).
  util::StatusOr<ResultCursor> BlastSearch(
      const SearchRequest& request,
      const blast::BlastOptions& blast_options = blast::BlastOptions());

  /// Resolves the effective minScore of `request` (explicit MinScore, or
  /// E-value translated via paper Eq. 3).
  util::StatusOr<score::ScoreT> ResolveMinScore(
      const SearchRequest& request) const;

  /// Resolves a request into the core-layer options it would run with
  /// (the bridge for callers that drive core::OasisSearch directly).
  util::StatusOr<core::OasisOptions> ResolveOptions(
      const SearchRequest& request) const;

  // --- Components -----------------------------------------------------------

  /// The in-memory sequence database. Resident after Build /
  /// BuildFromDatabase; for Open()ed engines the first call materializes it
  /// from the packed symbols file + catalog.
  util::StatusOr<const seq::SequenceDatabase*> ResidentDatabase();

  /// Resident database if already materialized, else nullptr (non-forcing).
  const seq::SequenceDatabase* database() const { return db_.get(); }

  const std::string& index_dir() const { return index_dir_; }  ///< opened index path
  const seq::Alphabet& alphabet() const { return *alphabet_; }  ///< index alphabet
  const score::SubstitutionMatrix& matrix() const { return *matrix_; }  ///< scoring matrix
  const suffix::PackedSuffixTree& tree() const { return *tree_; }  ///< the packed index
  const SequenceCatalog& catalog() const { return catalog_; }  ///< id/description labels

  /// The I/O path this engine resolved to (never kAuto).
  IoMode io_mode() const { return io_mode_; }
  /// The requested SIMD mode (as configured, possibly kAuto).
  align::simd::SimdMode simd_mode() const { return simd_mode_; }
  /// The SIMD level the alignment kernels run at (resolved at open).
  align::simd::SimdLevel simd_level() const { return simd_level_; }
  /// True when index blocks go through a buffer pool (io_mode kPooled);
  /// mmap engines have no pool and keep no access statistics.
  bool uses_pool() const { return pool_ != nullptr; }
  /// The buffer pool. Precondition: uses_pool().
  storage::BufferPool& pool() {
    OASIS_CHECK(pool_ != nullptr) << "mmap engine has no buffer pool";
    return *pool_;
  }
  /// Const overload of pool(). Precondition: uses_pool().
  const storage::BufferPool& pool() const {
    OASIS_CHECK(pool_ != nullptr) << "mmap engine has no buffer pool";
    return *pool_;
  }

  /// True when this engine runs speculative sibling-run readahead (pooled
  /// path with EngineOptions::readahead_blocks > 0).
  bool uses_readahead() const { return readahead_ != nullptr; }
  /// The configured readahead window in blocks (0 when disabled or mmap;
  /// the adaptive controller's initial window when adaptive).
  uint32_t readahead_blocks() const;
  /// True when the readahead window adapts to observed prefetch accuracy
  /// (uses_readahead() with EngineOptions::readahead_adaptive).
  bool readahead_adaptive() const;
  /// The readahead unit, for live-window displays and tests.
  /// Precondition: uses_readahead().
  const storage::Readahead& readahead() const {
    OASIS_CHECK(readahead_ != nullptr) << "engine runs no readahead";
    return *readahead_;
  }
  /// Prefetch outcome counters (issued / used / wasted). Precondition:
  /// uses_readahead() — an mmap engine has no pool to speculate into, so
  /// callers must report these as unavailable rather than zero.
  storage::ReadaheadStats readahead_stats() const;

  /// Captures the storage-layer statistics (pool geometry, per-segment
  /// counters, readahead outcomes, adaptive windows) as the plain-data
  /// snapshot both stats surfaces render — oasis_cli --stats via
  /// util::StatsText, the daemon's /stats endpoint via util::StatsJson.
  /// For an mmap engine the snapshot's `pooled` flag is false and the
  /// counter fields are meaningless (the renderers emit the n/a notices).
  util::EngineStatsSnapshot CollectStats() const;

  /// Karlin-Altschul statistics of the scoring system (needed for E-value
  /// cutoffs and E-value-ordered streams). Absent for scoring systems with
  /// no valid local-alignment statistics.
  bool has_karlin() const { return has_karlin_; }
  const score::KarlinParams& karlin() const { return karlin_; }  ///< lambda, K, H

  /// Process-unique identifier of this engine instance, assigned at
  /// open/build time from a monotone counter. Two Engine objects never
  /// share an epoch, so anything keyed by it — the daemon's result cache —
  /// is implicitly invalidated when an index is reopened (rebuilt, swapped
  /// on disk, or just closed and opened again).
  uint64_t epoch() const { return epoch_; }

  /// Number of database sequences in the index.
  uint64_t num_sequences() const { return tree_->num_sequences(); }
  /// Number of database residues (terminators excluded).
  uint64_t num_residues() const {
    return tree_->total_length() - tree_->num_sequences();
  }

 private:
  Engine() = default;

  /// Rejects invalid construction knobs (pool_bytes == 0) with a clear
  /// Status instead of UB or silent clamping downstream.
  static util::Status ValidateOptions(const EngineOptions& options);

  /// The effective adaptive ceiling: readahead_max_blocks, or its
  /// documented auto default (max(64, readahead_blocks)) when 0.
  static uint32_t ResolveReadaheadMax(const EngineOptions& options);

  /// Shared tail of the factory functions: open the packed tree, pick the
  /// matrix, compute Karlin statistics.
  static util::StatusOr<std::unique_ptr<Engine>> OpenInternal(
      const std::string& index_dir, const EngineOptions& options,
      std::unique_ptr<seq::SequenceDatabase> resident_db);

  std::string index_dir_;
  const seq::Alphabet* alphabet_ = nullptr;
  const score::SubstitutionMatrix* matrix_ = nullptr;
  IoMode io_mode_ = IoMode::kPooled;  ///< resolved; never kAuto
  align::simd::SimdMode simd_mode_ = align::simd::SimdMode::kAuto;
  align::simd::SimdLevel simd_level_ = align::simd::SimdLevel::kScalar;
  std::unique_ptr<storage::BufferPool> pool_;  ///< null for mmap engines
  std::unique_ptr<suffix::PackedSuffixTree> tree_;
  /// Speculative prefetcher; null when disabled or mmap. Declared after
  /// pool_ AND tree_ so it is destroyed before both: its destructor joins
  /// the worker threads, which touch the pool's frames and the tree's
  /// block files until the moment they stop.
  std::unique_ptr<storage::Readahead> readahead_;
  bool fetch_memo_ = true;  ///< resolved EngineOptions::fetch_memo
  std::unique_ptr<core::OasisSearch> search_;
  std::unique_ptr<seq::SequenceDatabase> db_;  ///< resident; may be null
  SequenceCatalog catalog_;
  score::KarlinParams karlin_;
  bool has_karlin_ = false;
  uint64_t epoch_ = 0;  ///< process-unique; see epoch()
};

}  // namespace api

// The facade types are the library's front door; export them at the top
// level so consumers write oasis::Engine / oasis::SearchRequest.
using api::BatchOptions;
using api::BatchResult;
using api::Engine;
using api::EngineOptions;
using api::IoMode;
using api::ResultCursor;
using api::SearchRequest;

}  // namespace oasis
