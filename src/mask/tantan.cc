#include "mask/tantan.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace mask {

namespace {

/// Forward-backward is run over bounded chunks so memory stays O(chunk ×
/// periods) on arbitrarily long sequences. Chunks overlap by several
/// periods and only the interior of each chunk commits its posterior, so
/// the chunking is invisible in the output (the HMM mixes in far fewer
/// steps than the overlap).
constexpr size_t kChunkLength = 16384;

/// Repeat-model emission probability at absolute position `i`, period `d`.
/// Before a full period of history exists the repeat state is
/// uninformative (background emission).
inline double RepeatEmission(const std::vector<seq::Symbol>& s, size_t i,
                             uint32_t d, double match_prob, double mismatch,
                             double background) {
  if (i < d) return background;
  return s[i] == s[i - d] ? match_prob : mismatch;
}

void ForwardBackwardChunk(const std::vector<seq::Symbol>& s, size_t begin,
                          size_t end, size_t commit_begin, size_t commit_end,
                          uint32_t sigma, const TantanOptions& options,
                          const std::vector<double>& period_weight,
                          std::vector<uint8_t>* flags) {
  const uint32_t periods = options.max_period;
  const size_t len = end - begin;
  const double background = 1.0 / sigma;
  const double mismatch =
      sigma > 1 ? (1.0 - options.match_prob) / (sigma - 1) : 0.0;
  const double rs = options.repeat_start_prob;
  const double re = options.repeat_end_prob;

  // forward[i * (periods + 1) + 0] is the background state, + (1 + k) the
  // repeat state of period k + 1. Each row is normalized to sum 1 (the
  // scale cancels in the posterior).
  std::vector<double> forward(len * (periods + 1));

  // Row 0: the chain starts in the background (the overlap ahead of the
  // committed region lets the state distribution mix before it matters).
  {
    double* row = forward.data();
    row[0] = background;
    for (uint32_t k = 0; k < periods; ++k) {
      row[1 + k] = rs * period_weight[k] *
                   RepeatEmission(s, begin, k + 1, options.match_prob,
                                  mismatch, background);
    }
    double total = 0;
    for (uint32_t k = 0; k <= periods; ++k) total += row[k];
    const double inv = total > 0 ? 1.0 / total : 0.0;
    for (uint32_t k = 0; k <= periods; ++k) row[k] *= inv;
  }

  for (size_t i = 1; i < len; ++i) {
    const double* prev = forward.data() + (i - 1) * (periods + 1);
    double* row = forward.data() + i * (periods + 1);
    double from_repeats = 0;
    for (uint32_t k = 0; k < periods; ++k) from_repeats += prev[1 + k];
    row[0] = (prev[0] * (1.0 - rs) + from_repeats * re) * background;
    double total = row[0];
    for (uint32_t k = 0; k < periods; ++k) {
      const double e = RepeatEmission(s, begin + i, k + 1, options.match_prob,
                                      mismatch, background);
      row[1 + k] =
          (prev[0] * rs * period_weight[k] + prev[1 + k] * (1.0 - re)) * e;
      total += row[1 + k];
    }
    const double inv = total > 0 ? 1.0 / total : 0.0;
    for (uint32_t k = 0; k <= periods; ++k) row[k] *= inv;
  }

  // Backward pass, rolling a single row; each row renormalized (posterior
  // normalizes per position, so independent scaling is exact).
  std::vector<double> bwd(periods + 1, 1.0), next(periods + 1);
  for (size_t i = len; i-- > 0;) {
    const double* f = forward.data() + i * (periods + 1);
    if (i + 1 < len) {
      std::swap(bwd, next);
      const size_t pos = begin + i + 1;
      const double eb = background;
      double total = 0;
      // next currently holds bwd[i+1] after the swap.
      double repeat_entry = 0;
      for (uint32_t k = 0; k < periods; ++k) {
        const double e = RepeatEmission(s, pos, k + 1, options.match_prob,
                                        mismatch, background);
        repeat_entry += rs * period_weight[k] * e * next[1 + k];
        bwd[1 + k] = re * eb * next[0] + (1.0 - re) * e * next[1 + k];
        total += bwd[1 + k];
      }
      bwd[0] = (1.0 - rs) * eb * next[0] + repeat_entry;
      total += bwd[0];
      const double inv = total > 0 ? 1.0 / total : 0.0;
      for (uint32_t k = 0; k <= periods; ++k) bwd[k] *= inv;
    }
    const size_t pos = begin + i;
    if (pos < commit_begin || pos >= commit_end) continue;
    double repeat = 0, total = 0;
    for (uint32_t k = 0; k <= periods; ++k) {
      const double p = f[k] * bwd[k];
      total += p;
      if (k > 0) repeat += p;
    }
    if (total > 0 && repeat / total > options.mask_threshold) {
      (*flags)[pos] = 1;
    }
  }
}

}  // namespace

std::vector<uint8_t> FindRepeats(const std::vector<seq::Symbol>& symbols,
                                 uint32_t sigma, const TantanOptions& options) {
  OASIS_CHECK_GE(sigma, 2u);
  OASIS_CHECK_GE(options.max_period, 1u);
  std::vector<uint8_t> flags(symbols.size(), 0);
  if (symbols.empty()) return flags;

  // Period prior: period_weight[k] ∝ period_decay^(k+1), normalized.
  std::vector<double> period_weight(options.max_period);
  double w = 1.0, total = 0.0;
  for (uint32_t k = 0; k < options.max_period; ++k) {
    w *= options.period_decay;
    period_weight[k] = w;
    total += w;
  }
  for (double& x : period_weight) x /= total;

  // The overlap must cover both the longest period's history and the
  // repeat-state dwell time (mean 1/repeat_end_prob).
  const size_t overlap =
      std::max<size_t>(4 * options.max_period, kChunkLength / 8);
  size_t commit_begin = 0;
  while (commit_begin < symbols.size()) {
    const size_t commit_end =
        std::min(symbols.size(), commit_begin + kChunkLength);
    const size_t begin = commit_begin > overlap ? commit_begin - overlap : 0;
    const size_t end = std::min(symbols.size(), commit_end + overlap);
    ForwardBackwardChunk(symbols, begin, end, commit_begin, commit_end, sigma,
                         options, period_weight, &flags);
    commit_begin = commit_end;
  }
  return flags;
}

uint64_t SoftMask(seq::Sequence* sequence, uint32_t sigma,
                  const TantanOptions& options) {
  if (sequence->empty()) return 0;
  std::vector<uint8_t> flags =
      FindRepeats(sequence->symbols(), sigma, options);
  uint64_t newly_masked = 0;
  std::vector<uint8_t> merged = sequence->mask();
  merged.resize(sequence->size(), 0);
  for (size_t i = 0; i < flags.size(); ++i) {
    if (flags[i] && !merged[i]) {
      merged[i] = 1;
      ++newly_masked;
    }
  }
  sequence->set_mask(std::move(merged));
  return newly_masked;
}

uint64_t SoftMaskAll(std::vector<seq::Sequence>* sequences, uint32_t sigma,
                     const TantanOptions& options) {
  uint64_t newly_masked = 0;
  for (seq::Sequence& sequence : *sequences) {
    newly_masked += SoftMask(&sequence, sigma, options);
  }
  return newly_masked;
}

std::vector<uint8_t> BuildExclusion(const seq::SequenceDatabase& db) {
  bool any = false;
  for (const seq::Sequence& sequence : db.sequences()) {
    if (sequence.has_mask()) {
      any = true;
      break;
    }
  }
  if (!any) return {};
  std::vector<uint8_t> exclusion(db.total_length(), 0);
  for (seq::SequenceId id = 0; id < db.num_sequences(); ++id) {
    const seq::Sequence& sequence = db.sequence(id);
    if (!sequence.has_mask()) continue;
    const seq::GlobalPos start = db.SequenceStart(id);
    for (size_t i = 0; i < sequence.mask().size(); ++i) {
      if (sequence.mask()[i]) exclusion[start + i] = 1;
    }
  }
  return exclusion;
}

}  // namespace mask
}  // namespace oasis
