// tantan-style low-complexity / tandem-repeat detection.
//
// Implements the repeat model of Frith's tantan ("A new repeat-masking
// method enables specific detection of remote homologs", LAST paper
// lineage, SNIPPETS.md Snippet 1): a hidden Markov model with one
// background state and one repeat state per period d in 1..max_period.
// The repeat state of period d emits a residue matching the residue d
// positions earlier with probability `match_prob`, so tandem repeats and
// homopolymer runs of any short period light up the repeat states. The
// per-position posterior probability of being in *any* repeat state is
// computed by forward-backward; positions above `mask_threshold` are
// soft-masked.
//
// Masking here is "gentle" in LAST's sense: a masked position keeps its
// residue everywhere (sequence output, suffix-tree arc labels, alignment
// extension) and is only excluded from *seeding* — suffix-tree leaf
// insertion and BLAST word hits (see suffix/partitioned_builder.h and
// blast/blast.h).
//
// Deterministic: same input, same options, same mask — on every platform
// (plain double arithmetic, no randomness).

#pragma once

#include <cstdint>
#include <vector>

#include "seq/database.h"
#include "seq/sequence.h"

namespace oasis {
namespace mask {

/// Tuning knobs of the repeat HMM. The defaults mask tandem repeats of
/// roughly seven or more repeated positions and leave random sequence
/// untouched with high probability.
struct TantanOptions {
  /// Largest tandem period the model tracks (repeat states r_1..r_max).
  uint32_t max_period = 50;
  /// Probability of entering a repeat state from the background per step.
  double repeat_start_prob = 0.005;
  /// Probability of leaving a repeat state back to the background.
  double repeat_end_prob = 0.05;
  /// Probability that a repeat-state emission copies the residue one
  /// period earlier.
  double match_prob = 0.9;
  /// Geometric weight decay over periods: the prior of period d is
  /// proportional to period_decay^d (short periods are more common).
  double period_decay = 0.9;
  /// Positions with repeat posterior above this are masked.
  double mask_threshold = 0.5;
};

/// Per-position repeat flags (1 = repeat posterior > threshold) for an
/// encoded residue vector over an alphabet of `sigma` symbols. `symbols`
/// must hold residue codes only (no terminators). Returns an all-zero
/// vector of the same length when nothing crosses the threshold.
std::vector<uint8_t> FindRepeats(const std::vector<seq::Symbol>& symbols,
                                 uint32_t sigma,
                                 const TantanOptions& options = {});

/// Runs FindRepeats on `sequence` and ORs the result into its soft-mask
/// (lowercase input masking is preserved). Returns the number of *newly*
/// masked positions.
uint64_t SoftMask(seq::Sequence* sequence, uint32_t sigma,
                  const TantanOptions& options = {});

/// SoftMask over every sequence; returns the total newly-masked count.
uint64_t SoftMaskAll(std::vector<seq::Sequence>* sequences, uint32_t sigma,
                     const TantanOptions& options = {});

/// Global-position exclusion map for a database: one byte per position of
/// the concatenated buffer, 1 where the owning sequence soft-masks the
/// residue (terminator positions are always 0). Returns an empty vector
/// when no sequence carries a mask — the cheap "nothing to exclude"
/// signal the suffix-tree builder tests for.
std::vector<uint8_t> BuildExclusion(const seq::SequenceDatabase& db);

}  // namespace mask
}  // namespace oasis
