// Speculative sibling-run readahead over the sharded buffer pool.
//
// The packed suffix tree stores internal nodes in *level-first* (BFS)
// order, so all internal siblings of a node are physically adjacent — and
// the OASIS A* search expands all children of a node together. When a
// pooled Fetch misses on block b of a segment, blocks b+1, b+2, ... of the
// same segment are therefore the statistically likely next demand reads.
// Readahead turns that prediction into overlap: the pool reports each
// demand miss here (BufferPool::SetReadahead), Schedule() queues the next
// K blocks of the run, and a small background I/O worker drains the queue
// through BufferPool::Prefetch, which loads each block off-lock using the
// exact in-flight protocol of a demand miss. A demand Fetch that arrives
// while its block is still prefetch-loading lands on the loading frame's
// condition variable and resolves as a hit — one disk read, shared.
//
// Speculation is strictly best-effort and self-limiting:
//   - prefetched frames are admitted with scan semantics (no CLOCK
//     reference bit) and stay marked until their first demand hit, so a
//     wrong guess is the first thing evicted and can never displace a hot
//     block that demand traffic keeps referenced;
//   - Prefetch declines (rather than yields or retries) when the target
//     shard has no free victim, so a pool smaller than the readahead
//     window degrades to no-op speculation instead of thrashing;
//   - the schedule queue is bounded; when the worker falls behind, the
//     *oldest* runs are dropped first — stale speculation is the least
//     likely to still be wanted.
//
// The window is either fixed (Options::blocks every run, PR-4 behaviour —
// the paper-accounting configuration the figure benches pin) or adaptive
// (Options::adaptive): an AdaptiveReadahead controller sizes each
// scheduled run from the segment's recent prefetch accuracy, growing the
// window on a hot sequential segment and collapsing it to zero on a
// scattered one. The pool feeds the controller through ReportOutcome
// (every speculative block eventually resolves used or wasted) and
// Schedule() asks it for the window of each run it queues.
//
// Thread-safety: Schedule() may be called from any number of threads (the
// pool calls it on concurrent miss paths); the worker threads run until
// destruction. Construction and destruction are single-threaded and must
// bracket all pool traffic that can trigger scheduling. The Readahead must
// be destroyed before its pool (it detaches itself and joins its workers
// first, so no prefetch can touch a dying pool).

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "storage/adaptive_readahead.h"
#include "storage/buffer_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace storage {

/// The background prefetcher. One instance serves one BufferPool.
class Readahead {
 public:
  /// Construction-time knobs.
  struct Options {
    /// Speculative reads issued per demand miss: the next `blocks` blocks
    /// of the missed segment's level-first run. Must be positive (a zero
    /// window means "no readahead" — simply don't construct one). With
    /// `adaptive` set this is the controller's *initial* window and must
    /// lie inside its [min_blocks, max_blocks] bounds.
    uint32_t blocks = 8;
    /// Background I/O worker threads draining the schedule queue.
    uint32_t threads = 1;
    /// Maximum queued runs; beyond it the oldest (stalest) run is dropped.
    uint32_t queue_capacity = 256;
    /// Scale the window per segment from observed prefetch accuracy
    /// instead of using `blocks` verbatim; see AdaptiveReadahead.
    bool adaptive = false;
    /// Control-law knobs when `adaptive` is set (initial_blocks is
    /// overridden by `blocks` above, so there is exactly one knob for the
    /// starting window).
    AdaptiveReadahead::Options adaptive_options;
  };

  /// Attaches to `pool` (which must outlive this object) and starts the
  /// worker threads. Registers itself via BufferPool::SetReadahead, so
  /// demand misses start scheduling immediately.
  Readahead(BufferPool* pool, const Options& options);

  /// Detaches from the pool, then stops and joins the workers (dropping
  /// whatever was still queued). Any in-flight prefetch completes first.
  ~Readahead();

  Readahead(const Readahead&) = delete;
  Readahead& operator=(const Readahead&) = delete;

  /// Queues a speculative run: blocks [first, first + W) of `segment`
  /// (clipped to the segment's end by Prefetch), where W is blocks() in
  /// fixed mode or the controller's current window for the segment in
  /// adaptive mode (a zero window drops the run; a collapsed window still
  /// probes occasionally — see AdaptiveReadahead). Called by the pool on
  /// every demand miss; callable from any thread. Never blocks on I/O —
  /// the queue push is the entire cost on the caller.
  void Schedule(SegmentId segment, BlockId first) EXCLUDES(mutex_);

  /// One resolved prefetch outcome on `segment` (used = a demand Fetch
  /// consumed the block; wasted otherwise). Called by the pool alongside
  /// its own ReadaheadStats accounting, possibly with a shard mutex held;
  /// a no-op in fixed mode, a controller update in adaptive mode. Never
  /// touches this object's queue mutex.
  void ReportOutcome(SegmentId segment, bool used) {
    if (adaptive_ != nullptr) adaptive_->RecordOutcome(segment, used);
  }

  /// Blocks until the queue is empty and no worker is mid-prefetch. For
  /// tests and benches that need deterministic "speculation done" points;
  /// concurrent Schedule() calls can of course re-fill the queue.
  void Drain() EXCLUDES(mutex_);

  /// The configured window (Options::blocks): the per-miss window in
  /// fixed mode, the initial window in adaptive mode.
  uint32_t blocks() const { return blocks_; }

  /// True when an AdaptiveReadahead controller sizes the window.
  bool adaptive() const { return adaptive_ != nullptr; }

  /// The live window for `segment`: the controller's current window in
  /// adaptive mode, blocks() in fixed mode.
  uint32_t window(SegmentId segment) const {
    return adaptive_ != nullptr ? adaptive_->window(segment) : blocks_;
  }

  /// The controller, or nullptr in fixed mode (for stats displays and
  /// tests; scheduling goes through Schedule, never through this).
  const AdaptiveReadahead* controller() const { return adaptive_.get(); }

  /// Prefetch outcome counters, straight from the pool.
  ReadaheadStats stats() const { return pool_->readahead_stats(); }

 private:
  /// One queued speculative run. The window is resolved at schedule time
  /// (the controller's answer for *this* trigger), so a queued run is not
  /// retroactively resized by later controller decisions.
  struct Run {
    SegmentId segment;
    BlockId first;
    uint32_t count;
  };

  /// Worker loop: pop a run, Prefetch each of its blocks, repeat.
  void WorkerLoop() EXCLUDES(mutex_);

  BufferPool* pool_;
  const uint32_t blocks_;
  const uint32_t queue_capacity_;
  /// Window controller; nullptr in fixed mode.
  std::unique_ptr<AdaptiveReadahead> adaptive_;

  util::Mutex mutex_;
  util::CondVar work_available_;  ///< signalled on push / stop
  util::CondVar idle_;            ///< signalled when drained
  std::deque<Run> queue_ GUARDED_BY(mutex_);
  /// Workers currently inside a prefetch.
  uint32_t active_workers_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace storage
}  // namespace oasis
