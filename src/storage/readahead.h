// Speculative sibling-run readahead over the sharded buffer pool.
//
// The packed suffix tree stores internal nodes in *level-first* (BFS)
// order, so all internal siblings of a node are physically adjacent — and
// the OASIS A* search expands all children of a node together. When a
// pooled Fetch misses on block b of a segment, blocks b+1, b+2, ... of the
// same segment are therefore the statistically likely next demand reads.
// Readahead turns that prediction into overlap: the pool reports each
// demand miss here (BufferPool::SetReadahead), Schedule() queues the next
// K blocks of the run, and a small background I/O worker drains the queue
// through BufferPool::Prefetch, which loads each block off-lock using the
// exact in-flight protocol of a demand miss. A demand Fetch that arrives
// while its block is still prefetch-loading lands on the loading frame's
// condition variable and resolves as a hit — one disk read, shared.
//
// Speculation is strictly best-effort and self-limiting:
//   - prefetched frames are admitted with scan semantics (no CLOCK
//     reference bit) and stay marked until their first demand hit, so a
//     wrong guess is the first thing evicted and can never displace a hot
//     block that demand traffic keeps referenced;
//   - Prefetch declines (rather than yields or retries) when the target
//     shard has no free victim, so a pool smaller than the readahead
//     window degrades to no-op speculation instead of thrashing;
//   - the schedule queue is bounded; when the worker falls behind, the
//     *oldest* runs are dropped first — stale speculation is the least
//     likely to still be wanted.
//
// Thread-safety: Schedule() may be called from any number of threads (the
// pool calls it on concurrent miss paths); the worker threads run until
// destruction. Construction and destruction are single-threaded and must
// bracket all pool traffic that can trigger scheduling. The Readahead must
// be destroyed before its pool (it detaches itself and joins its workers
// first, so no prefetch can touch a dying pool).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"

namespace oasis {
namespace storage {

/// The background prefetcher. One instance serves one BufferPool.
class Readahead {
 public:
  /// Construction-time knobs.
  struct Options {
    /// Speculative reads issued per demand miss: the next `blocks` blocks
    /// of the missed segment's level-first run. Must be positive (a zero
    /// window means "no readahead" — simply don't construct one).
    uint32_t blocks = 8;
    /// Background I/O worker threads draining the schedule queue.
    uint32_t threads = 1;
    /// Maximum queued runs; beyond it the oldest (stalest) run is dropped.
    uint32_t queue_capacity = 256;
  };

  /// Attaches to `pool` (which must outlive this object) and starts the
  /// worker threads. Registers itself via BufferPool::SetReadahead, so
  /// demand misses start scheduling immediately.
  Readahead(BufferPool* pool, const Options& options);

  /// Detaches from the pool, then stops and joins the workers (dropping
  /// whatever was still queued). Any in-flight prefetch completes first.
  ~Readahead();

  Readahead(const Readahead&) = delete;
  Readahead& operator=(const Readahead&) = delete;

  /// Queues a speculative run: blocks [first, first + blocks()) of
  /// `segment` (clipped to the segment's end by Prefetch). Called by the
  /// pool on every demand miss; callable from any thread. Never blocks on
  /// I/O — the queue push is the entire cost on the caller.
  void Schedule(SegmentId segment, BlockId first);

  /// Blocks until the queue is empty and no worker is mid-prefetch. For
  /// tests and benches that need deterministic "speculation done" points;
  /// concurrent Schedule() calls can of course re-fill the queue.
  void Drain();

  /// The per-miss speculation window (Options::blocks).
  uint32_t blocks() const { return blocks_; }

  /// Prefetch outcome counters, straight from the pool.
  ReadaheadStats stats() const { return pool_->readahead_stats(); }

 private:
  /// One queued speculative run.
  struct Run {
    SegmentId segment;
    BlockId first;
  };

  /// Worker loop: pop a run, Prefetch each of its blocks, repeat.
  void WorkerLoop();

  BufferPool* pool_;
  const uint32_t blocks_;
  const uint32_t queue_capacity_;

  std::mutex mutex_;
  std::condition_variable work_available_;   ///< signalled on push / stop
  std::condition_variable idle_;             ///< signalled when drained
  std::deque<Run> queue_;
  uint32_t active_workers_ = 0;  ///< workers currently inside a prefetch
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace storage
}  // namespace oasis
