// PageSource: the one interface the tree layers read blocks through.
//
// Two I/O paths sit behind it:
//
//   pooled  Fetch goes to the sharded CLOCK BufferPool — frames, eviction,
//           per-segment hit statistics (Figures 7/8), the right choice for
//           disk-resident indexes.
//
//   mapped  the segment is a read-only mmap (MappedFile) and Fetch is a
//           bounds check plus pointer arithmetic — no lock, no page table,
//           no memcpy, no bookkeeping of any kind. The right choice when
//           the index fits in RAM; statistics are undefined by design
//           (every access would be a "hit").
//
// PageSource is deliberately non-virtual: the mode test is one predictable
// branch, so the mapped fast path stays a handful of instructions and the
// pooled path pays nothing it didn't already pay.

#pragma once

#include <deque>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/mapped_file.h"
#include "util/status.h"

namespace oasis {
namespace storage {

/// What a reader holds while looking at one block: a pinned pool page or a
/// raw pointer into a mapping. data() stays valid while the ref is alive
/// (for mapped refs, while the MappedFile is alive). Move-only, like the
/// PageHandle it may wrap.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept
      : handle_(std::move(other.handle_)), data_(other.data_) {
    other.data_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      handle_ = std::move(other.handle_);
      data_ = other.data_;
      other.data_ = nullptr;
    }
    return *this;
  }

  const uint8_t* data() const { return data_; }  ///< the block's bytes
  bool valid() const { return data_ != nullptr; }  ///< false once moved-from

 private:
  friend class PageSource;
  explicit PageRef(const uint8_t* raw) : data_(raw) {}
  explicit PageRef(PageHandle handle) : handle_(std::move(handle)) {
    data_ = handle_.data();
  }

  PageHandle handle_;  ///< empty for mapped refs
  const uint8_t* data_ = nullptr;
};

/// Block access for a set of registered segments, in one of the two modes.
/// Like the pool, segment registration is single-threaded setup; Fetch is
/// safe for any number of concurrent readers in both modes afterwards.
class PageSource {
 public:
  /// A source that fetches through `pool` (which must outlive it).
  static PageSource Pooled(BufferPool* pool) {
    PageSource source;
    source.pool_ = pool;
    return source;
  }

  /// A source that resolves blocks inside mmapped files.
  static PageSource Mapped() { return PageSource(); }

  PageSource() = default;

  bool mapped() const { return pool_ == nullptr; }  ///< which of the two modes
  BufferPool* pool() const { return pool_; }  ///< the pool, nullptr when mapped

  /// Registers a backing file as the next segment. The BlockFile overload
  /// is pooled-mode only, the MappedFile overload mapped-mode only; the
  /// file must outlive the source.
  util::StatusOr<SegmentId> AddSegment(std::string name,
                                       const BlockFile* file) {
    if (mapped()) {
      return util::Status::InvalidArgument(
          "BlockFile segment '" + name + "' on a mapped PageSource");
    }
    return pool_->RegisterSegment(std::move(name), file);
  }
  /// Mapped-mode overload of AddSegment.
  util::StatusOr<SegmentId> AddSegment(std::string name,
                                       const MappedFile* file) {
    if (!mapped()) {
      return util::Status::InvalidArgument(
          "MappedFile segment '" + name + "' on a pooled PageSource");
    }
    mapped_.push_back(MappedSegment{file, std::move(name)});
    return static_cast<SegmentId>(mapped_.size() - 1);
  }

  /// Resolves one block. Mapped mode: a bounds check and a pointer into the
  /// mapping. Pooled mode: BufferPool::Fetch with `admission` forwarded.
  util::StatusOr<PageRef> Fetch(SegmentId segment, BlockId block,
                                Admission admission = Admission::kNormal) const {
    if (mapped()) {
      if (segment >= mapped_.size()) {
        return util::Status::InvalidArgument("unknown segment id " +
                                             std::to_string(segment));
      }
      const MappedFile& file = *mapped_[segment].file;
      if (block >= file.num_blocks()) {
        return util::Status::OutOfRange(
            "block " + std::to_string(block) + " beyond end (" +
            std::to_string(file.num_blocks()) + " blocks)");
      }
      return PageRef(file.block(block));
    }
    OASIS_ASSIGN_OR_RETURN(PageHandle handle,
                           pool_->Fetch(segment, block, admission));
    return PageRef(std::move(handle));
  }

 private:
  struct MappedSegment {
    const MappedFile* file;
    std::string name;
  };

  BufferPool* pool_ = nullptr;  ///< nullptr == mapped mode
  std::vector<MappedSegment> mapped_;
};

/// A tiny per-thread fetch cache over one pooled PageSource: the last
/// PageRef of each segment, keyed by block. Consecutive reads that land on
/// the same block — the common case on a level-first sibling run, where a
/// 2K block holds 128 adjacent internal records — skip the pool entirely:
/// no shard lock, no hash probe, no pin traffic, no stats bump.
///
/// The memo *owns* the cached refs, so it holds at most one pinned frame
/// per segment. Replacing an entry releases the old pin before fetching
/// the new block, and when the pins themselves exhaust a tiny pool the
/// memo clears itself and retries once bare — a pool with a single frame
/// degrades to memo-less behavior instead of deadlocking.
///
/// NOT thread-safe, by design: one memo belongs to one search thread
/// (suffix::TreeCursor embeds one per cursor, and every cursor is
/// thread-confined). In mapped mode Get() simply forwards to the source —
/// a mapped fetch is already a bounds check, so memoizing it would only
/// add work.
///
/// Skipped fetches do not count as pool requests or hits: a memo-enabled
/// search reports *fewer* pool requests, which is the point. The Figure
/// 7/8 benches therefore run memo-less (they measure the paper's pool).
class FetchMemo {
 public:
  FetchMemo() = default;
  FetchMemo(const FetchMemo&) = delete;
  FetchMemo& operator=(const FetchMemo&) = delete;

  /// Resolves one block through the memo. The returned ref is valid until
  /// the next Get() on the same segment, Clear(), or memo destruction
  /// (entries live in a deque, so a first Get() on a new segment never
  /// moves existing entries) — callers copy the bytes out (which is what
  /// every tree read does) rather than holding the pointer.
  util::StatusOr<const PageRef*> Get(const PageSource& source,
                                     SegmentId segment, BlockId block,
                                     Admission admission = Admission::kNormal) {
    if (source.mapped()) {
      OASIS_ASSIGN_OR_RETURN(scratch_, source.Fetch(segment, block, admission));
      return static_cast<const PageRef*>(&scratch_);
    }
    while (entries_.size() <= segment) entries_.emplace_back();
    Entry& entry = entries_[segment];
    if (entry.ref.valid() && entry.block == block) {
      ++hits_;
      return static_cast<const PageRef*>(&entry.ref);
    }
    ++misses_;
    // Release the old pin *before* fetching: the memo must never hold the
    // frame its own replacement fetch needs as a victim.
    entry.ref = PageRef();
    auto fetched = source.Fetch(segment, block, admission);
    if (!fetched.ok() && fetched.status().IsInternal()) {
      // "All frames pinned" — our other segments' memo pins may be the
      // blockers on a tiny pool. Drop every pin and retry once.
      Clear();
      fetched = source.Fetch(segment, block, admission);
    }
    OASIS_RETURN_NOT_OK(fetched.status());
    entry.ref = std::move(fetched).value();
    entry.block = block;
    return static_cast<const PageRef*>(&entry.ref);
  }

  /// Releases every cached pin (the memo stays usable).
  void Clear() {
    for (Entry& entry : entries_) entry.ref = PageRef();
  }

  /// Fetches served from the memo, for tests and stats displays.
  uint64_t hits() const { return hits_; }
  /// Fetches that had to go to the underlying source.
  uint64_t misses() const { return misses_; }

 private:
  /// The cached (block, ref) of one segment.
  struct Entry {
    BlockId block = 0;
    PageRef ref;
  };

  /// Indexed by segment id. A deque so growing for a new segment leaves
  /// references to existing entries (and their returned PageRefs) valid.
  std::deque<Entry> entries_;
  PageRef scratch_;             ///< mapped-mode pass-through slot
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace storage
}  // namespace oasis
