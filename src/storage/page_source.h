// PageSource: the one interface the tree layers read blocks through.
//
// Two I/O paths sit behind it:
//
//   pooled  Fetch goes to the sharded CLOCK BufferPool — frames, eviction,
//           per-segment hit statistics (Figures 7/8), the right choice for
//           disk-resident indexes.
//
//   mapped  the segment is a read-only mmap (MappedFile) and Fetch is a
//           bounds check plus pointer arithmetic — no lock, no page table,
//           no memcpy, no bookkeeping of any kind. The right choice when
//           the index fits in RAM; statistics are undefined by design
//           (every access would be a "hit").
//
// PageSource is deliberately non-virtual: the mode test is one predictable
// branch, so the mapped fast path stays a handful of instructions and the
// pooled path pays nothing it didn't already pay.

#pragma once

#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/mapped_file.h"
#include "util/status.h"

namespace oasis {
namespace storage {

/// What a reader holds while looking at one block: a pinned pool page or a
/// raw pointer into a mapping. data() stays valid while the ref is alive
/// (for mapped refs, while the MappedFile is alive). Move-only, like the
/// PageHandle it may wrap.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept
      : handle_(std::move(other.handle_)), data_(other.data_) {
    other.data_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      handle_ = std::move(other.handle_);
      data_ = other.data_;
      other.data_ = nullptr;
    }
    return *this;
  }

  const uint8_t* data() const { return data_; }
  bool valid() const { return data_ != nullptr; }

 private:
  friend class PageSource;
  explicit PageRef(const uint8_t* raw) : data_(raw) {}
  explicit PageRef(PageHandle handle) : handle_(std::move(handle)) {
    data_ = handle_.data();
  }

  PageHandle handle_;  ///< empty for mapped refs
  const uint8_t* data_ = nullptr;
};

/// Block access for a set of registered segments, in one of the two modes.
/// Like the pool, segment registration is single-threaded setup; Fetch is
/// safe for any number of concurrent readers in both modes afterwards.
class PageSource {
 public:
  /// A source that fetches through `pool` (which must outlive it).
  static PageSource Pooled(BufferPool* pool) {
    PageSource source;
    source.pool_ = pool;
    return source;
  }

  /// A source that resolves blocks inside mmapped files.
  static PageSource Mapped() { return PageSource(); }

  PageSource() = default;

  bool mapped() const { return pool_ == nullptr; }
  BufferPool* pool() const { return pool_; }

  /// Registers a backing file as the next segment. The BlockFile overload
  /// is pooled-mode only, the MappedFile overload mapped-mode only; the
  /// file must outlive the source.
  util::StatusOr<SegmentId> AddSegment(std::string name,
                                       const BlockFile* file) {
    if (mapped()) {
      return util::Status::InvalidArgument(
          "BlockFile segment '" + name + "' on a mapped PageSource");
    }
    return pool_->RegisterSegment(std::move(name), file);
  }
  util::StatusOr<SegmentId> AddSegment(std::string name,
                                       const MappedFile* file) {
    if (!mapped()) {
      return util::Status::InvalidArgument(
          "MappedFile segment '" + name + "' on a pooled PageSource");
    }
    mapped_.push_back(MappedSegment{file, std::move(name)});
    return static_cast<SegmentId>(mapped_.size() - 1);
  }

  /// Resolves one block. Mapped mode: a bounds check and a pointer into the
  /// mapping. Pooled mode: BufferPool::Fetch with `admission` forwarded.
  util::StatusOr<PageRef> Fetch(SegmentId segment, BlockId block,
                                Admission admission = Admission::kNormal) const {
    if (mapped()) {
      if (segment >= mapped_.size()) {
        return util::Status::InvalidArgument("unknown segment id " +
                                             std::to_string(segment));
      }
      const MappedFile& file = *mapped_[segment].file;
      if (block >= file.num_blocks()) {
        return util::Status::OutOfRange(
            "block " + std::to_string(block) + " beyond end (" +
            std::to_string(file.num_blocks()) + " blocks)");
      }
      return PageRef(file.block(block));
    }
    OASIS_ASSIGN_OR_RETURN(PageHandle handle,
                           pool_->Fetch(segment, block, admission));
    return PageRef(std::move(handle));
  }

 private:
  struct MappedSegment {
    const MappedFile* file;
    std::string name;
  };

  BufferPool* pool_ = nullptr;  ///< nullptr == mapped mode
  std::vector<MappedSegment> mapped_;
};

}  // namespace storage
}  // namespace oasis
