// File-backed fixed-size block storage.
//
// The packed suffix tree (paper §3.4) is stored as three block-organized
// arrays. BlockFile provides the raw block read/write layer beneath the
// buffer pool; block size defaults to the paper's 2 KB.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace oasis {
namespace storage {

/// Default block size used throughout (the paper's implementation used 2K).
inline constexpr uint32_t kDefaultBlockSize = 2048;

using BlockId = uint64_t;

/// A fixed-block-size file. Reads are positional (pread) and touch no
/// mutable state, so any number of threads may ReadBlock concurrently —
/// this is what lets the sharded buffer pool serve all search threads from
/// one set of file descriptors. Writes (AppendBlock / Flush / Close) are
/// single-threaded, build-time operations.
class BlockFile {
 public:
  BlockFile() = default;
  ~BlockFile();  ///< closes the descriptor (Close is idempotent)

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;
  BlockFile(BlockFile&& other) noexcept;
  BlockFile& operator=(BlockFile&& other) noexcept;

  /// Creates (truncates) a block file for writing.
  static util::StatusOr<BlockFile> Create(const std::string& path,
                                          uint32_t block_size = kDefaultBlockSize);

  /// Opens an existing block file for reading. Fails if the file size is not
  /// a multiple of `block_size`.
  static util::StatusOr<BlockFile> Open(const std::string& path,
                                        uint32_t block_size = kDefaultBlockSize);

  uint32_t block_size() const { return block_size_; }  ///< bytes per block
  /// Number of whole blocks currently in the file.
  uint64_t num_blocks() const { return num_blocks_; }
  const std::string& path() const { return path_; }  ///< path it was opened from

  /// Appends one block (`block_size` bytes). Returns its id.
  util::StatusOr<BlockId> AppendBlock(const void* data);

  /// Reads block `id` into `out` (must hold block_size bytes).
  util::Status ReadBlock(BlockId id, void* out) const;

  /// Reads the `count` consecutive blocks starting at `first` into
  /// `slots[0..count)` (each holding block_size bytes) with a single
  /// scatter read (preadv): one syscall — and, cold, one contiguous
  /// device read — where a loop over ReadBlock would pay `count` of each.
  /// This is what makes speculative run prefetching cheaper than the
  /// demand misses it replaces, not just concurrent with them. The slots
  /// may be scattered (buffer-pool frames land on different shards).
  util::Status ReadBlocks(BlockId first, uint32_t count,
                          uint8_t* const* slots) const;

  /// Asks the OS to drop this file's page-cache pages (best-effort:
  /// flushes dirty pages first, then POSIX_FADV_DONTNEED). Reads stay
  /// correct either way — the next ReadBlock just pays real I/O latency.
  /// This is how the cold-cache benches (bench_readahead) measure the
  /// disk-resident regime without reboot-style cache purges; the eviction
  /// applies to the file's shared page cache, so it cools every open
  /// descriptor of the file, not only this one.
  util::Status DropOsCache() const;

  /// Declares this descriptor's access pattern random
  /// (POSIX_FADV_RANDOM), disabling the kernel's sequential readahead for
  /// reads through it. The storage layer caches (BufferPool) and
  /// speculates (storage::Readahead) on its own terms; stacking the
  /// kernel's file-level prefetcher underneath makes "cold" measurements
  /// lie and doubles speculative I/O. Unlike DropOsCache this advice is
  /// per descriptor, so it does not perturb other readers of the file.
  util::Status AdviseRandom() const;

  /// Flushes buffered writes to the OS.
  util::Status Flush();

  /// Closes the file; further operations fail. Idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }  ///< false after Close

 private:
  BlockFile(int fd, std::string path, uint32_t block_size, uint64_t num_blocks)
      : fd_(fd), path_(std::move(path)), block_size_(block_size),
        num_blocks_(num_blocks) {}

  int fd_ = -1;
  std::string path_;
  uint32_t block_size_ = kDefaultBlockSize;
  uint64_t num_blocks_ = 0;
};

/// Convenience writer that packs a stream of fixed-size records into blocks,
/// zero-padding the tail of each block. Records never straddle blocks when
/// `record_size` divides `block_size`; otherwise the writer fails at
/// construction (the packed-tree formats are designed so it always divides).
class RecordBlockWriter {
 public:
  /// A writer packing `record_size`-byte records into `file` (which must
  /// outlive it). Fails when record_size does not divide the block size.
  static util::StatusOr<RecordBlockWriter> Create(BlockFile* file,
                                                  uint32_t record_size);

  /// Number of records that fit in one block.
  uint32_t records_per_block() const { return records_per_block_; }

  /// Appends one record of `record_size` bytes.
  util::Status Append(const void* record);

  /// Flushes the final partial block (zero padded). Must be called once at
  /// the end; Append after Finish fails.
  util::Status Finish();

  uint64_t num_records() const { return num_records_; }  ///< records appended

 private:
  RecordBlockWriter(BlockFile* file, uint32_t record_size,
                    uint32_t records_per_block)
      : file_(file), record_size_(record_size),
        records_per_block_(records_per_block),
        buffer_(file->block_size(), 0) {}

  BlockFile* file_;
  uint32_t record_size_;
  uint32_t records_per_block_;
  std::vector<uint8_t> buffer_;
  uint32_t in_buffer_ = 0;
  uint64_t num_records_ = 0;
  bool finished_ = false;
};

}  // namespace storage
}  // namespace oasis
