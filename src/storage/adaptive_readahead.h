// AdaptiveReadahead: a per-pool feedback controller that sizes the
// speculation window from observed prefetch accuracy.
//
// PR 4's readahead speculates a *fixed* K blocks per detected sequential
// run. That knob has no right value: a cold level-first scan wants the
// largest window the pool can absorb (bigger coalesced reads, more
// overlap), while a scattered A* frontier that only occasionally stumbles
// into two adjacent misses wants no speculation at all. The accuracy
// signal needed to tell the two apart already exists — every speculative
// block eventually resolves as `used` (a demand Fetch arrived) or `wasted`
// (evicted or dropped untouched) — this controller closes the loop, in the
// lineage of hint-driven buffer managers (DBMIN) and modern pools that
// size speculation from feedback rather than configuration.
//
// The control law, per segment (segments have independent access patterns;
// the level-first internal-node file can be mid-scan while the symbols
// file hops randomly):
//
//   sample   outcomes are accumulated until `sample_outcomes` of them
//            complete; the sample's used-ratio is one measurement. Folding
//            whole samples (rather than every outcome) makes the signal a
//            *windowed* one: a burst of stale wasted notices from a pool
//            Clear() is one bad sample, not `sample_outcomes` bad signals.
//   EWMA     measurements feed an exponentially weighted moving average,
//            so the window tracks the recent regime, not all history.
//   AIMD     an EWMA at or above `grow_threshold` grows the window
//            additively (+`grow_step`, clamped to `max_blocks`); at or
//            below `shrink_threshold` it halves (clamped to `min_blocks`,
//            which may be 0 = stop speculating entirely). Between the two
//            thresholds nothing moves.
//   hysteresis  a resize needs `grow_hysteresis` / `shrink_hysteresis`
//            *consecutive* same-direction signals, and the neutral band
//            between the thresholds resets both streaks — one aberrant
//            sample cannot flap the window.
//   probe    a collapsed window (0) would never observe another outcome
//            and so could never recover; instead every `probe_interval`-th
//            scheduled run issues a `probe_blocks`-block probe. A regime
//            change back to sequential turns the probes into used outcomes
//            and the EWMA re-opens the window; sustained scatter keeps the
//            probe cost at one block per `probe_interval` triggers.
//
// Thread-safety: all methods are safe from any number of threads.
// RecordOutcome is called by the pool with a shard mutex held, so it must
// stay cheap and must never touch pool state: it bumps per-segment
// counters and, once per completed sample, folds the EWMA under a small
// per-segment mutex (never held while taking any other lock).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "storage/buffer_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace storage {

/// The feedback controller. One instance serves one Readahead (and so one
/// BufferPool); constructed after all segments are registered.
class AdaptiveReadahead {
 public:
  /// Control-law knobs. The defaults are deliberately quick to grow and
  /// deliberate to shrink: a mis-sized window costs at most one window of
  /// wasted reads per sample, while a window stuck at zero costs the whole
  /// sequential-scan win.
  struct Options {
    /// Window floor. 0 lets a segment stop speculating entirely (probes
    /// keep recovery possible); a positive floor keeps a minimum window
    /// regardless of observed waste.
    uint32_t min_blocks = 0;
    /// Window ceiling. Must be >= max(1, min_blocks).
    uint32_t max_blocks = 64;
    /// Starting window of every segment; clamped into [min, max] bounds by
    /// the constructor's caller (the engine validates, tests may rely on
    /// the CHECK).
    uint32_t initial_blocks = 8;
    /// Completed prefetch outcomes folded into one EWMA measurement.
    uint32_t sample_outcomes = 8;
    /// Weight of the newest sample in the EWMA (0 < alpha <= 1).
    double ewma_alpha = 0.4;
    /// EWMA used-ratio at or above which the window grows.
    double grow_threshold = 0.60;
    /// EWMA used-ratio at or below which the window halves.
    double shrink_threshold = 0.30;
    /// Additive increase per grow decision. Sized so recovery from a
    /// collapsed window back to a deep one takes a handful of accurate
    /// samples — a window stuck low costs the whole sequential-scan win,
    /// while one overshooting sample costs at most one window of waste.
    uint32_t grow_step = 8;
    /// Consecutive grow signals required before a grow (>= 1).
    uint32_t grow_hysteresis = 1;
    /// Consecutive shrink signals required before a shrink (>= 1). The
    /// default demands two bad samples, so one burst of stale wasted
    /// outcomes (a pool Clear) cannot halve a productive window.
    uint32_t shrink_hysteresis = 2;
    /// With the window collapsed to 0, every `probe_interval`-th scheduled
    /// run still speculates `probe_blocks` blocks so the accuracy signal
    /// stays alive. 0 disables probing (a collapsed window is then final).
    uint32_t probe_interval = 2;
    /// Blocks per recovery probe (>= 1 when probe_interval > 0).
    uint32_t probe_blocks = 2;
  };

  /// Live controller state of one segment, for stats displays and tests.
  struct SegmentSnapshot {
    uint32_t window = 0;    ///< current speculation window in blocks
    double ewma = -1.0;     ///< smoothed used-ratio; -1 before any sample
    uint64_t samples = 0;   ///< EWMA measurements folded so far
    uint64_t grows = 0;     ///< additive-increase decisions taken
    uint64_t shrinks = 0;   ///< multiplicative-decrease decisions taken
    uint64_t probes = 0;    ///< recovery probes issued from a 0 window
  };

  /// A controller for `num_segments` independent segments, each starting
  /// at `options.initial_blocks`. Checks option sanity (bounds ordered,
  /// thresholds ordered and in [0, 1], positive sample/step/hysteresis).
  AdaptiveReadahead(size_t num_segments, const Options& options);

  AdaptiveReadahead(const AdaptiveReadahead&) = delete;
  AdaptiveReadahead& operator=(const AdaptiveReadahead&) = delete;

  /// The window to use for a run being scheduled on `segment` right now.
  /// Returns 0 when speculation is currently suppressed (the caller drops
  /// the run); when the window is collapsed this returns `probe_blocks`
  /// every `probe_interval`-th call — the recovery probe.
  uint32_t WindowForSchedule(SegmentId segment);

  /// One completed prefetch outcome on `segment`: `used` is true when a
  /// demand Fetch consumed the speculative block, false when it was
  /// evicted or dropped untouched. Called by the pool (possibly with a
  /// shard mutex held); cheap, and never takes any lock besides the
  /// segment's own controller mutex.
  void RecordOutcome(SegmentId segment, bool used);

  /// The current window of `segment`, with no probing side effects.
  uint32_t window(SegmentId segment) const;

  /// Full controller state of `segment`.
  SegmentSnapshot snapshot(SegmentId segment) const;

  size_t num_segments() const { return states_.size(); }  ///< controlled segments
  const Options& options() const { return options_; }     ///< construction knobs

 private:
  /// Per-segment control state, its own cache line so outcome recording on
  /// one segment never false-shares with another's window reads.
  struct alignas(64) SegmentState {
    std::atomic<uint32_t> window{0};
    std::atomic<uint32_t> probe_clock{0};  ///< schedules seen while collapsed
    std::atomic<uint64_t> grows{0};
    std::atomic<uint64_t> shrinks{0};
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> samples{0};
    /// Guards the sample accumulator and EWMA below (cold: taken once per
    /// outcome, held for a few arithmetic ops). A LEAF lock: it is taken
    /// with a pool shard mutex already held (RecordOutcome runs inside the
    /// pool's eviction/hit paths) and must never be held while acquiring
    /// any other lock — ci/oasis_lint.py enforces that order.
    mutable util::Mutex mutex;
    uint32_t sample_used GUARDED_BY(mutex) = 0;
    uint32_t sample_total GUARDED_BY(mutex) = 0;
    /// -1 until the first sample completes.
    double ewma GUARDED_BY(mutex) = -1.0;
    uint32_t grow_streak GUARDED_BY(mutex) = 0;
    uint32_t shrink_streak GUARDED_BY(mutex) = 0;
  };

  /// Folds a completed sample into the EWMA and applies the AIMD +
  /// hysteresis decision. Caller holds `state.mutex`.
  void FoldSample(SegmentState& state) REQUIRES(state.mutex);

  const Options options_;
  /// deque: SegmentState holds a mutex and atomics (immovable).
  std::deque<SegmentState> states_;
};

}  // namespace storage
}  // namespace oasis
