#include "storage/block_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace oasis {
namespace storage {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

BlockFile::~BlockFile() { Close(); }

util::Status BlockFile::DropOsCache() const {
  if (fd_ < 0) return util::Status::InvalidArgument("file is closed");
  // Dirty pages survive DONTNEED, so flush first; fdatasync is legal on a
  // read-only descriptor and a no-op when nothing is dirty.
  if (::fdatasync(fd_) != 0) {
    return util::Status::IOError(Errno("fdatasync", path_));
  }
  const int err = ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
  if (err != 0) {
    return util::Status::IOError("posix_fadvise '" + path_ +
                                 "': " + std::strerror(err));
  }
  return util::Status::OK();
}

util::Status BlockFile::AdviseRandom() const {
  if (fd_ < 0) return util::Status::InvalidArgument("file is closed");
  const int err = ::posix_fadvise(fd_, 0, 0, POSIX_FADV_RANDOM);
  if (err != 0) {
    return util::Status::IOError("posix_fadvise '" + path_ +
                                 "': " + std::strerror(err));
  }
  return util::Status::OK();
}

BlockFile::BlockFile(BlockFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)),
      block_size_(other.block_size_), num_blocks_(other.num_blocks_) {
  other.fd_ = -1;
}

BlockFile& BlockFile::operator=(BlockFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    block_size_ = other.block_size_;
    num_blocks_ = other.num_blocks_;
    other.fd_ = -1;
  }
  return *this;
}

util::StatusOr<BlockFile> BlockFile::Create(const std::string& path,
                                            uint32_t block_size) {
  if (block_size == 0) {
    return util::Status::InvalidArgument("block size must be positive");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return util::Status::IOError(Errno("create", path));
  return BlockFile(fd, path, block_size, 0);
}

util::StatusOr<BlockFile> BlockFile::Open(const std::string& path,
                                          uint32_t block_size) {
  if (block_size == 0) {
    return util::Status::InvalidArgument("block size must be positive");
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return util::Status::IOError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IOError(Errno("stat", path));
  }
  if (st.st_size % block_size != 0) {
    ::close(fd);
    return util::Status::Corruption(
        "file '" + path + "' size " + std::to_string(st.st_size) +
        " is not a multiple of block size " + std::to_string(block_size));
  }
  return BlockFile(fd, path, block_size,
                   static_cast<uint64_t>(st.st_size) / block_size);
}

util::StatusOr<BlockId> BlockFile::AppendBlock(const void* data) {
  if (fd_ < 0) return util::Status::IOError("block file is closed");
  off_t offset = static_cast<off_t>(num_blocks_) * block_size_;
  ssize_t written = ::pwrite(fd_, data, block_size_, offset);
  if (written != static_cast<ssize_t>(block_size_)) {
    return util::Status::IOError(Errno("write", path_));
  }
  return num_blocks_++;
}

util::Status BlockFile::ReadBlock(BlockId id, void* out) const {
  if (fd_ < 0) return util::Status::IOError("block file is closed");
  if (id >= num_blocks_) {
    return util::Status::OutOfRange("block " + std::to_string(id) +
                                    " beyond end (" +
                                    std::to_string(num_blocks_) + " blocks)");
  }
  off_t offset = static_cast<off_t>(id) * block_size_;
  ssize_t got = ::pread(fd_, out, block_size_, offset);
  if (got != static_cast<ssize_t>(block_size_)) {
    return util::Status::IOError(Errno("read", path_));
  }
  return util::Status::OK();
}

util::Status BlockFile::ReadBlocks(BlockId first, uint32_t count,
                                   uint8_t* const* slots) const {
  if (fd_ < 0) return util::Status::IOError("block file is closed");
  if (count == 0) return util::Status::OK();
  if (first + count > num_blocks_) {
    return util::Status::OutOfRange(
        "blocks [" + std::to_string(first) + ", +" + std::to_string(count) +
        ") beyond end (" + std::to_string(num_blocks_) + " blocks)");
  }
  // One preadv accepts at most IOV_MAX (typically 1024) segments; larger
  // runs go out as a sequence of maximal chunks, still contiguous on disk.
  const uint32_t max_iov = static_cast<uint32_t>(
      std::min<long>(::sysconf(_SC_IOV_MAX) > 0 ? ::sysconf(_SC_IOV_MAX)
                                                : 1024,
                     1024));
  std::vector<struct iovec> iov;
  for (uint32_t begin = 0; begin < count; begin += max_iov) {
    const uint32_t n = std::min(max_iov, count - begin);
    iov.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      iov[i].iov_base = slots[begin + i];
      iov[i].iov_len = block_size_;
    }
    off_t offset = static_cast<off_t>(first + begin) * block_size_;
    size_t remaining = static_cast<size_t>(n) * block_size_;
    struct iovec* head = iov.data();
    int iov_count = static_cast<int>(n);
    // preadv may return short on signal or near resource limits; resume
    // from where it stopped, trimming consumed iovec entries.
    while (remaining > 0) {
      ssize_t got = ::preadv(fd_, head, iov_count, offset);
      if (got <= 0) return util::Status::IOError(Errno("preadv", path_));
      remaining -= static_cast<size_t>(got);
      offset += got;
      while (got > 0 && static_cast<size_t>(got) >= head->iov_len) {
        got -= static_cast<ssize_t>(head->iov_len);
        ++head;
        --iov_count;
      }
      if (got > 0) {
        head->iov_base = static_cast<uint8_t*>(head->iov_base) + got;
        head->iov_len -= static_cast<size_t>(got);
      }
    }
  }
  return util::Status::OK();
}

util::Status BlockFile::Flush() {
  if (fd_ < 0) return util::Status::IOError("block file is closed");
  if (::fsync(fd_) != 0) return util::Status::IOError(Errno("fsync", path_));
  return util::Status::OK();
}

void BlockFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::StatusOr<RecordBlockWriter> RecordBlockWriter::Create(BlockFile* file,
                                                            uint32_t record_size) {
  OASIS_CHECK(file != nullptr);
  if (record_size == 0 || record_size > file->block_size()) {
    return util::Status::InvalidArgument("record size must be in (0, block_size]");
  }
  if (file->block_size() % record_size != 0) {
    return util::Status::InvalidArgument(
        "record size " + std::to_string(record_size) +
        " must divide block size " + std::to_string(file->block_size()));
  }
  return RecordBlockWriter(file, record_size, file->block_size() / record_size);
}

util::Status RecordBlockWriter::Append(const void* record) {
  if (finished_) return util::Status::Internal("Append after Finish");
  std::memcpy(buffer_.data() + static_cast<size_t>(in_buffer_) * record_size_,
              record, record_size_);
  ++in_buffer_;
  ++num_records_;
  if (in_buffer_ == records_per_block_) {
    OASIS_ASSIGN_OR_RETURN(BlockId id, file_->AppendBlock(buffer_.data()));
    (void)id;
    std::memset(buffer_.data(), 0, buffer_.size());
    in_buffer_ = 0;
  }
  return util::Status::OK();
}

util::Status RecordBlockWriter::Finish() {
  if (finished_) return util::Status::OK();
  finished_ = true;
  if (in_buffer_ > 0) {
    OASIS_ASSIGN_OR_RETURN(BlockId id, file_->AppendBlock(buffer_.data()));
    (void)id;
    in_buffer_ = 0;
  }
  return file_->Flush();
}

}  // namespace storage
}  // namespace oasis
