#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oasis {
namespace storage {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)),
      block_size_(other.block_size_), opened_(other.opened_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.opened_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = other.data_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    block_size_ = other.block_size_;
    opened_ = other.opened_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.opened_ = false;
  }
  return *this;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

util::StatusOr<MappedFile> MappedFile::Open(const std::string& path,
                                            uint32_t block_size) {
  if (block_size == 0) {
    return util::Status::InvalidArgument("block size must be positive");
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return util::Status::IOError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IOError(Errno("stat", path));
  }
  if (st.st_size % block_size != 0) {
    ::close(fd);
    return util::Status::Corruption(
        "file '" + path + "' size " + std::to_string(st.st_size) +
        " is not a multiple of block size " + std::to_string(block_size));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0, path, block_size);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point, success or failure.
  ::close(fd);
  if (map == MAP_FAILED) return util::Status::IOError(Errno("mmap", path));
  // Ask the kernel to fault the range in eagerly: the fast path exists for
  // indexes that fit in RAM, so cold-start page faults are front-loaded.
  ::madvise(map, size, MADV_WILLNEED);
  return MappedFile(static_cast<const uint8_t*>(map), size, path, block_size);
}

}  // namespace storage
}  // namespace oasis
