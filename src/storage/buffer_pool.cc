#include "storage/buffer_pool.h"

#include <algorithm>
#include <thread>

#include "storage/readahead.h"
#include "util/logging.h"

namespace oasis {
namespace storage {

namespace {

/// Largest power of two <= x (x >= 1).
uint32_t FloorPow2(uint32_t x) {
  uint32_t p = 1;
  while (p * 2 <= x && p * 2 != 0) p *= 2;
  return p;
}

uint32_t PickShardCount(uint32_t num_frames, uint32_t requested) {
  if (requested != 0) {
    return FloorPow2(std::clamp<uint32_t>(requested, 1, num_frames));
  }
  // Auto: enough stripes to keep threads off each other's locks, but never
  // fewer than 8 frames per shard — tiny (test-sized) pools collapse to one
  // shard so their CLOCK behaviour stays deterministic.
  uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  uint32_t limit = std::max(1u, num_frames / 8);
  return FloorPow2(std::min({4 * hw, 64u, limit}));
}

}  // namespace

BufferPool::BufferPool(uint64_t capacity_bytes, uint32_t block_size,
                       uint32_t num_shards)
    : block_size_(block_size) {
  OASIS_CHECK_GT(block_size, 0u);
  uint64_t frames = capacity_bytes / block_size;
  num_frames_ = static_cast<uint32_t>(
      std::clamp<uint64_t>(frames, 1, 1u << 28));
  memory_.resize(static_cast<size_t>(num_frames_) * block_size_);

  const uint32_t shard_count = PickShardCount(num_frames_, num_shards);
  shard_mask_ = shard_count - 1;
  uint32_t assigned = 0;
  for (uint32_t s = 0; s < shard_count; ++s) {
    Shard& shard = shards_.emplace_back();
    // Spread the remainder so every shard gets >= 1 frame. The lock is
    // uncontended (nothing else can see the shard yet) but satisfies the
    // thread-safety analysis, which cannot know construction is
    // single-threaded.
    util::MutexLock lock(shard.mutex);
    uint32_t count = num_frames_ / shard_count +
                     (s < num_frames_ % shard_count ? 1 : 0);
    shard.frames.resize(count);
    shard.memory = memory_.data() + static_cast<size_t>(assigned) * block_size_;
    assigned += count;
  }
  OASIS_CHECK_EQ(assigned, num_frames_);
}

BufferPool::~BufferPool() { OASIS_CHECK_EQ(num_pinned(), 0u); }

util::StatusOr<SegmentId> BufferPool::RegisterSegment(std::string name,
                                                      const BlockFile* file) {
  OASIS_CHECK(file != nullptr);
  if (file->block_size() != block_size_) {
    return util::Status::InvalidArgument(
        "segment '" + name + "' block size " +
        std::to_string(file->block_size()) + " != pool block size " +
        std::to_string(block_size_));
  }
  files_.push_back(file);
  names_.push_back(std::move(name));
  stats_.emplace_back(shards_.size());
  run_position_.emplace_back(UINT64_MAX);
  return static_cast<SegmentId>(files_.size() - 1);
}

util::StatusOr<PageHandle> BufferPool::Fetch(SegmentId segment, BlockId block,
                                             Admission admission) {
  if (segment >= files_.size()) {
    return util::Status::InvalidArgument("unknown segment id " +
                                         std::to_string(segment));
  }
  const uint64_t key = Key(segment, block);
  const size_t shard_index = Mix(key) & shard_mask_;
  Shard& shard = shards_[shard_index];
  SegmentStatsCell& st = stats_[segment].cells[shard_index];
  st.requests.fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(shard.mutex);

  uint32_t victim = 0;
  int exhausted_sweeps = 0;
  while (true) {
    auto it = shard.page_table.find(key);
    if (it != shard.page_table.end()) {
      st.hits.fetch_add(1, std::memory_order_relaxed);
      Frame& f = shard.frames[it->second];
      f.pin_count.fetch_add(1, std::memory_order_relaxed);
      if (admission == Admission::kNormal) f.referenced = true;
      if (f.prefetched) {
        // First demand touch of a speculatively loaded frame: the
        // prefetch paid off, and from here on the frame competes in CLOCK
        // like any other (the reference bit above now gets set normally).
        // Advancing the run detector here keeps a detected sequential run
        // alive across its prefetched stretch, so the next miss — one
        // window ahead — still reads as a continuation.
        f.prefetched = false;
        prefetch_used_.fetch_add(1, std::memory_order_relaxed);
        if (readahead_ != nullptr) {
          run_position_[segment].store(block, std::memory_order_relaxed);
          readahead_->ReportOutcome(segment, /*used=*/true);
        }
      }
      return PageHandle(&f.pin_count,
                        shard.memory +
                            static_cast<size_t>(it->second) * block_size_);
    }
    // Another thread may already be reading this exact block: wait for its
    // load instead of duplicating the I/O, then re-check the page table. A
    // successful load resolves as a hit above; a failed one (the frame
    // reverts to unoccupied, possibly already reused for a different key)
    // comes back around and retries as a fresh miss.
    auto inflight = shard.in_flight.find(key);
    if (inflight != shard.in_flight.end()) {
      Frame& f = shard.frames[inflight->second];
      f.ready->Wait(shard.mutex, [&] {
        return !(f.loading && f.segment == segment && f.block == block);
      });
      continue;
    }
    util::StatusOr<uint32_t> victim_or = FindVictim(shard);
    if (victim_or.ok()) {
      victim = *victim_or;
      break;
    }
    // A shard can be *transiently* fully pinned when concurrent fetches
    // collide on it. Drop the mutex while yielding: plain pin holders
    // release lock-free, but an in-flight loader can only publish (and so
    // drop its pin) after re-acquiring this lock. Then retry from the top
    // — while the lock was gone the block may even have been published,
    // which the page-table re-check must catch before a second load. The
    // hard error is reserved for pins that never go away (a caller
    // holding more handles than the shard has frames).
    if (++exhausted_sweeps > 256) return victim_or.status();
    lock.Unlock();
    std::this_thread::yield();
    lock.Lock();
  }
  Frame& f = shard.frames[victim];
  EvictFrame(shard, f);
  // Claim the frame for this key and drop the lock for the read. The
  // loader's pin keeps CLOCK off the frame, the in-flight entry routes
  // concurrent requesters of the same key onto the frame's condvar, and
  // the key stays out of the page table until the data is actually there —
  // so hits and unrelated misses proceed while the pread is outstanding.
  f.segment = segment;
  f.block = block;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.loading = true;
  shard.in_flight.emplace(key, victim);
  uint8_t* slot = shard.memory + static_cast<size_t>(victim) * block_size_;
  lock.Unlock();
  // The miss commits this thread to a disk read anyway; if it continues
  // the segment's current sequential run — the signature of a level-first
  // sibling run — let the readahead worker speculate ahead of it.
  // Scheduling is a bounded queue push; the speculative reads happen on
  // the worker's thread, overlapping this demand read and the work after
  // it. A miss that does not continue the run (the A* frontier hopping
  // across the tree) only re-arms the detector: scattered traffic must
  // never amplify its own I/O. Scan traffic is excluded outright — a
  // one-pass scan announces its own future and must not trigger
  // speculation that competes with it.
  if (readahead_ != nullptr && admission == Admission::kNormal) {
    const uint64_t prev =
        run_position_[segment].exchange(block, std::memory_order_relaxed);
    if (block == prev + 1) readahead_->Schedule(segment, block + 1);
  }
  util::Status read = files_[segment]->ReadBlock(block, slot);
  lock.Lock();
  shard.in_flight.erase(key);
  f.loading = false;
  if (!read.ok()) {
    // Release the claim; the frame is free (and possibly garbage-filled),
    // exactly like a failed under-lock read used to leave it.
    f.pin_count.store(0, std::memory_order_relaxed);
    f.ready->NotifyAll();
    return read;
  }
  f.referenced = admission == Admission::kNormal;
  f.occupied = true;
  f.prefetched = false;  // a demand load, whatever the frame held before
  shard.page_table[key] = victim;
  f.ready->NotifyAll();
  return PageHandle(&f.pin_count, slot);
}

uint32_t BufferPool::PrefetchRun(SegmentId segment, BlockId first,
                                 uint32_t count) {
  if (segment >= files_.size()) return 0;
  const uint64_t num_blocks = files_[segment]->num_blocks();
  if (first >= num_blocks) return 0;
  count = static_cast<uint32_t>(
      std::min<uint64_t>(count, num_blocks - first));

  // Phase 1 — claim. Per block: decline quietly whenever the speculation
  // is moot or would cost demand traffic anything (already resident,
  // already loading — demand or a sibling prefetch — or no evictable
  // frame in the shard right now; no stats bump for any of these:
  // ReadaheadStats counts reads, not intentions). Otherwise claim exactly
  // like a demand miss — loader pin, loading mark, in-flight entry — so a
  // racing demand Fetch of the block waits on the frame's condvar and
  // shares this read. Only one shard lock is held at a time.
  struct Claim {
    Shard* shard;
    uint32_t frame;
    uint8_t* slot;
    BlockId block;
  };
  std::vector<Claim> claims;
  claims.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const BlockId block = first + i;
    const uint64_t key = Key(segment, block);
    Shard& shard = shards_[Mix(key) & shard_mask_];
    util::MutexLock lock(shard.mutex);
    if (shard.page_table.contains(key)) continue;
    if (shard.in_flight.contains(key)) continue;
    util::StatusOr<uint32_t> victim_or = FindVictim(shard);
    if (!victim_or.ok()) continue;
    Frame& f = shard.frames[*victim_or];
    EvictFrame(shard, f);
    f.segment = segment;
    f.block = block;
    f.pin_count.store(1, std::memory_order_relaxed);
    f.loading = true;
    shard.in_flight.emplace(key, *victim_or);
    claims.push_back(Claim{
        &shard, *victim_or,
        shard.memory + static_cast<size_t>(*victim_or) * block_size_, block});
  }
  if (claims.empty()) return 0;
  prefetch_issued_.fetch_add(claims.size(), std::memory_order_relaxed);

  // Phase 2 + 3 — read then publish, one contiguous stretch of claimed
  // blocks at a time. The scatter pread turns the whole stretch into one
  // syscall (and, cold, one sequential device read) landing directly in
  // the claimed frames; this coalescing is the half of readahead that
  // pays off even with nothing to overlap. No locks are held during the
  // read.
  std::vector<uint8_t*> slots;
  size_t begin = 0;
  while (begin < claims.size()) {
    size_t end = begin + 1;
    while (end < claims.size() &&
           claims[end].block == claims[end - 1].block + 1) {
      ++end;
    }
    slots.clear();
    for (size_t i = begin; i < end; ++i) slots.push_back(claims[i].slot);
    util::Status read = files_[segment]->ReadBlocks(
        claims[begin].block, static_cast<uint32_t>(end - begin),
        slots.data());
    for (size_t i = begin; i < end; ++i) {
      const Claim& claim = claims[i];
      // The lock must come before the frame access: `frames` is guarded,
      // and forming the reference off-lock was a (benign) discipline hole
      // the annotations now reject.
      util::MutexLock lock(claim.shard->mutex);
      Frame& f = claim.shard->frames[claim.frame];
      claim.shard->in_flight.erase(Key(segment, claim.block));
      f.loading = false;
      f.pin_count.store(0, std::memory_order_relaxed);
      if (read.ok()) {
        // Scan admission — reference bit clear — plus the prefetched
        // mark, so unused speculation is first in line for eviction and
        // measurable.
        f.referenced = false;
        f.occupied = true;
        f.prefetched = true;
        claim.shard->page_table[Key(segment, claim.block)] = claim.frame;
      } else {
        // A failed speculative read is a non-event for correctness:
        // release the claim and let any demand requester retry (and
        // surface the error) itself.
        prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
        if (readahead_ != nullptr) {
          readahead_->ReportOutcome(segment, /*used=*/false);
        }
      }
      f.ready->NotifyAll();
    }
    begin = end;
  }
  return static_cast<uint32_t>(claims.size());
}

void BufferPool::EvictFrame(Shard& shard, Frame& frame) {
  if (!frame.occupied) return;
  // Drop the victim's old identity *before* the read: if ReadBlock fails
  // the slot may be partially overwritten, and a frame still carrying the
  // old (segment, block) would serve that corrupt data on a later fetch.
  shard.page_table.erase(Key(frame.segment, frame.block));
  frame.occupied = false;
  if (frame.prefetched) {
    frame.prefetched = false;
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    if (readahead_ != nullptr) {
      readahead_->ReportOutcome(frame.segment, /*used=*/false);
    }
  }
}

util::StatusOr<uint32_t> BufferPool::FindVictim(Shard& shard) {
  // CLOCK: sweep at most two full revolutions; first pass clears reference
  // bits, second pass must find an unpinned frame unless all are pinned.
  const uint32_t n = static_cast<uint32_t>(shard.frames.size());
  for (uint64_t step = 0; step < 2ull * n + 1; ++step) {
    Frame& f = shard.frames[shard.clock_hand];
    uint32_t candidate = shard.clock_hand;
    shard.clock_hand = (shard.clock_hand + 1) % n;
    // Acquire pairs with the release decrement in PageHandle::Release: once
    // we observe pin_count == 0 here, every read the last holder made
    // through the frame happened-before our overwrite. A count can only
    // rise again under this shard's lock, which we hold. The pin check must
    // precede the occupancy check: a frame with an off-lock read in flight
    // is unoccupied but carries its loader's pin, and stealing it would put
    // two reads into one slot.
    if (f.pin_count.load(std::memory_order_acquire) > 0) continue;
    if (!f.occupied) return candidate;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    return candidate;
  }
  return util::Status::Internal(
      "buffer pool exhausted: all frames of the shard pinned");
}

ReadaheadStats BufferPool::readahead_stats() const {
  ReadaheadStats out;
  out.issued = prefetch_issued_.load(std::memory_order_relaxed);
  out.used = prefetch_used_.load(std::memory_order_relaxed);
  out.wasted = prefetch_wasted_.load(std::memory_order_relaxed);
  return out;
}

SegmentStats BufferPool::stats(SegmentId segment) const {
  SegmentStats out;
  for (const SegmentStatsCell& cell : stats_[segment].cells) {
    out.requests += cell.requests.load(std::memory_order_relaxed);
    out.hits += cell.hits.load(std::memory_order_relaxed);
  }
  return out;
}

SegmentStats BufferPool::TotalStats() const {
  SegmentStats total;
  for (size_t seg = 0; seg < stats_.size(); ++seg) {
    const SegmentStats s = stats(static_cast<SegmentId>(seg));
    total.requests += s.requests;
    total.hits += s.hits;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (AtomicSegmentStats& s : stats_) {
    for (SegmentStatsCell& cell : s.cells) {
      cell.requests.store(0, std::memory_order_relaxed);
      cell.hits.store(0, std::memory_order_relaxed);
    }
  }
}

void BufferPool::Clear() {
  OASIS_CHECK_EQ(num_pinned(), 0u);
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    for (Frame& f : shard.frames) {
      if (f.occupied && f.prefetched) {
        // Dropped before any demand fetch saw it — by the accounting's
        // definition, speculation that missed.
        prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
        if (readahead_ != nullptr) {
          readahead_->ReportOutcome(f.segment, /*used=*/false);
        }
      }
      f.segment = 0;
      f.block = 0;
      f.pin_count.store(0, std::memory_order_relaxed);
      f.referenced = false;
      f.occupied = false;
      f.loading = false;
      f.prefetched = false;
    }
    shard.page_table.clear();
    shard.in_flight.clear();
    shard.clock_hand = 0;
  }
}

uint32_t BufferPool::num_pinned() const {
  uint32_t pinned = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    for (const Frame& f : shard.frames) {
      // Any non-zero pin counts — including a loading frame's loader pin
      // (pinned but not yet occupied) — so the quiescence checks in
      // Clear() and the destructor stay loud while a read is in flight.
      if (f.pin_count.load(std::memory_order_acquire) > 0) ++pinned;
    }
  }
  return pinned;
}

}  // namespace storage
}  // namespace oasis
