#include "storage/buffer_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace storage {

PageHandle::~PageHandle() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

PageHandle::PageHandle(PageHandle&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = other.pool_;
    frame_ = other.frame_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

BufferPool::BufferPool(uint64_t capacity_bytes, uint32_t block_size)
    : block_size_(block_size) {
  OASIS_CHECK_GT(block_size, 0u);
  uint64_t frames = capacity_bytes / block_size;
  num_frames_ = static_cast<uint32_t>(
      std::clamp<uint64_t>(frames, 1, 1u << 28));
  memory_.resize(static_cast<size_t>(num_frames_) * block_size_);
  frames_.resize(num_frames_);
}

BufferPool::~BufferPool() { OASIS_CHECK_EQ(num_pinned(), 0u); }

util::StatusOr<SegmentId> BufferPool::RegisterSegment(std::string name,
                                                      const BlockFile* file) {
  OASIS_CHECK(file != nullptr);
  if (file->block_size() != block_size_) {
    return util::Status::InvalidArgument(
        "segment '" + name + "' block size " +
        std::to_string(file->block_size()) + " != pool block size " +
        std::to_string(block_size_));
  }
  files_.push_back(file);
  names_.push_back(std::move(name));
  stats_.emplace_back();
  return static_cast<SegmentId>(files_.size() - 1);
}

util::StatusOr<PageHandle> BufferPool::Fetch(SegmentId segment, BlockId block) {
  if (segment >= files_.size()) {
    return util::Status::InvalidArgument("unknown segment id " +
                                         std::to_string(segment));
  }
  SegmentStats& st = stats_[segment];
  ++st.requests;

  // Single-entry memo: repeated fetches of the same block (sibling record
  // runs, sequential arc reads) skip the hash probe.
  const uint64_t key = Key(segment, block);
  if (key == memo_key_) {
    Frame& f = frames_[memo_frame_];
    if (f.occupied && f.segment == segment && f.block == block) {
      ++st.hits;
      ++f.pin_count;
      f.referenced = true;
      return PageHandle(this, memo_frame_,
                        memory_.data() +
                            static_cast<size_t>(memo_frame_) * block_size_);
    }
  }

  auto it = page_table_.find(key);
  if (it != page_table_.end()) {
    ++st.hits;
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.referenced = true;
    memo_key_ = key;
    memo_frame_ = it->second;
    return PageHandle(this, it->second,
                      memory_.data() + static_cast<size_t>(it->second) * block_size_);
  }

  OASIS_ASSIGN_OR_RETURN(uint32_t victim, FindVictim());
  Frame& f = frames_[victim];
  if (f.occupied) {
    page_table_.erase(Key(f.segment, f.block));
  }
  uint8_t* slot = memory_.data() + static_cast<size_t>(victim) * block_size_;
  OASIS_RETURN_NOT_OK(files_[segment]->ReadBlock(block, slot));
  f.segment = segment;
  f.block = block;
  f.pin_count = 1;
  f.referenced = true;
  f.occupied = true;
  page_table_[key] = victim;
  memo_key_ = key;
  memo_frame_ = victim;
  return PageHandle(this, victim, slot);
}

util::StatusOr<uint32_t> BufferPool::FindVictim() {
  // CLOCK: sweep at most two full revolutions; first pass clears reference
  // bits, second pass must find an unpinned frame unless all are pinned.
  for (uint64_t step = 0; step < 2ull * num_frames_ + 1; ++step) {
    Frame& f = frames_[clock_hand_];
    uint32_t candidate = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_frames_;
    if (!f.occupied) return candidate;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    return candidate;
  }
  return util::Status::Internal("buffer pool exhausted: all frames pinned");
}

void BufferPool::Unpin(uint32_t frame) {
  Frame& f = frames_[frame];
  OASIS_CHECK_GT(f.pin_count, 0u);
  --f.pin_count;
}

SegmentStats BufferPool::TotalStats() const {
  SegmentStats total;
  for (const SegmentStats& s : stats_) {
    total.requests += s.requests;
    total.hits += s.hits;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (SegmentStats& s : stats_) s = SegmentStats{};
}

void BufferPool::Clear() {
  OASIS_CHECK_EQ(num_pinned(), 0u);
  for (Frame& f : frames_) f = Frame{};
  page_table_.clear();
  clock_hand_ = 0;
  memo_key_ = ~0ull;
  memo_frame_ = 0;
}

uint32_t BufferPool::num_pinned() const {
  uint32_t pinned = 0;
  for (const Frame& f : frames_) {
    if (f.occupied && f.pin_count > 0) ++pinned;
  }
  return pinned;
}

}  // namespace storage
}  // namespace oasis
