#include "storage/readahead.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace storage {

Readahead::Readahead(BufferPool* pool, const Options& options)
    : pool_(pool),
      blocks_(options.blocks),
      queue_capacity_(std::max(1u, options.queue_capacity)) {
  OASIS_CHECK(pool != nullptr);
  OASIS_CHECK_GT(options.blocks, 0u);
  OASIS_CHECK_GT(options.threads, 0u);
  if (options.adaptive) {
    // Segment registration is setup-time and precedes Readahead
    // construction (the engine opens the tree first), so the pool's
    // segment count is final here and the controller can own one state
    // slot per segment.
    AdaptiveReadahead::Options adaptive = options.adaptive_options;
    adaptive.initial_blocks = options.blocks;
    adaptive_ = std::make_unique<AdaptiveReadahead>(pool->num_segments(),
                                                    adaptive);
  }
  workers_.reserve(options.threads);
  for (uint32_t t = 0; t < options.threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  pool_->SetReadahead(this);
}

Readahead::~Readahead() {
  // Detach first so no Fetch miss can schedule into a stopping queue.
  // (Setup/teardown contract: no pool traffic races this destructor.)
  pool_->SetReadahead(nullptr);
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
    queue_.clear();
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void Readahead::Schedule(SegmentId segment, BlockId first) {
  // Resolve the window before touching the queue: a suppressed segment
  // (adaptive window 0, no probe due) costs the caller one atomic load.
  uint32_t count = blocks_;
  if (adaptive_ != nullptr) {
    count = adaptive_->WindowForSchedule(segment);
    if (count == 0) return;
  }
  {
    util::MutexLock lock(mutex_);
    if (stop_) return;
    // Adjacent misses schedule overlapping runs; collapsing an exact
    // duplicate of the newest entry is a cheap dedupe that covers the
    // common same-block miss storm (Prefetch de-dupes the rest against
    // the page table and in-flight table).
    if (!queue_.empty() && queue_.back().segment == segment &&
        queue_.back().first == first) {
      return;
    }
    queue_.push_back(Run{segment, first, count});
    // Bounded queue: drop the oldest run — if the worker is that far
    // behind, the search has long moved past those blocks.
    if (queue_.size() > queue_capacity_) queue_.pop_front();
  }
  work_available_.NotifyOne();
}

void Readahead::Drain() {
  util::MutexLock lock(mutex_);
  // Explicit wait loop (not the predicate overload) so the guarded reads
  // in the condition stay visible to the thread-safety analysis.
  while (!((queue_.empty() && active_workers_ == 0) || stop_)) {
    idle_.Wait(mutex_);
  }
}

void Readahead::WorkerLoop() {
  util::MutexLock lock(mutex_);
  while (true) {
    while (!stop_ && queue_.empty()) work_available_.Wait(mutex_);
    if (stop_) return;
    const Run run = queue_.front();
    queue_.pop_front();
    ++active_workers_;
    lock.Unlock();
    // The reads happen off this object's mutex, so Schedule stays a pure
    // queue push even while a prefetch read is outstanding. PrefetchRun
    // clips past-the-end blocks, declines resident/loading ones, and
    // coalesces each contiguous stretch it claims into one scatter pread.
    pool_->PrefetchRun(run.segment, run.first, run.count);
    lock.Lock();
    --active_workers_;
    if (queue_.empty() && active_workers_ == 0) idle_.NotifyAll();
  }
}

}  // namespace storage
}  // namespace oasis
