#include "storage/adaptive_readahead.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace storage {

AdaptiveReadahead::AdaptiveReadahead(size_t num_segments,
                                     const Options& options)
    : options_(options) {
  OASIS_CHECK_GT(options.max_blocks, 0u);
  OASIS_CHECK(options.min_blocks <= options.max_blocks);
  OASIS_CHECK(options.initial_blocks >= options.min_blocks &&
              options.initial_blocks <= options.max_blocks);
  OASIS_CHECK_GT(options.sample_outcomes, 0u);
  OASIS_CHECK(options.ewma_alpha > 0.0 && options.ewma_alpha <= 1.0);
  OASIS_CHECK(options.shrink_threshold >= 0.0 &&
              options.shrink_threshold < options.grow_threshold &&
              options.grow_threshold <= 1.0);
  OASIS_CHECK_GT(options.grow_step, 0u);
  OASIS_CHECK_GT(options.grow_hysteresis, 0u);
  OASIS_CHECK_GT(options.shrink_hysteresis, 0u);
  if (options.probe_interval > 0) OASIS_CHECK_GT(options.probe_blocks, 0u);
  for (size_t s = 0; s < num_segments; ++s) {
    states_.emplace_back().window.store(options.initial_blocks,
                                        std::memory_order_relaxed);
  }
}

uint32_t AdaptiveReadahead::WindowForSchedule(SegmentId segment) {
  if (segment >= states_.size()) return 0;
  SegmentState& state = states_[segment];
  const uint32_t window = state.window.load(std::memory_order_relaxed);
  if (window > 0) return window;
  if (options_.probe_interval == 0) return 0;
  // Collapsed: speculation is off, but a regime change back to sequential
  // would be invisible without fresh outcomes. Issue a small probe every
  // probe_interval-th trigger; its outcomes re-open the window if they
  // start landing. fetch_add gives each concurrent caller a distinct tick,
  // so the probe rate stays one-in-probe_interval under any thread count.
  const uint32_t tick =
      state.probe_clock.fetch_add(1, std::memory_order_relaxed);
  if (tick % options_.probe_interval != 0) return 0;
  state.probes.fetch_add(1, std::memory_order_relaxed);
  return std::min(options_.probe_blocks, options_.max_blocks);
}

void AdaptiveReadahead::RecordOutcome(SegmentId segment, bool used) {
  if (segment >= states_.size()) return;
  SegmentState& state = states_[segment];
  util::MutexLock lock(state.mutex);
  ++state.sample_total;
  if (used) ++state.sample_used;
  if (state.sample_total >= options_.sample_outcomes) FoldSample(state);
}

void AdaptiveReadahead::FoldSample(SegmentState& state) {
  const double ratio =
      static_cast<double>(state.sample_used) / state.sample_total;
  state.sample_used = 0;
  state.sample_total = 0;
  state.ewma = state.ewma < 0.0
                   ? ratio
                   : options_.ewma_alpha * ratio +
                         (1.0 - options_.ewma_alpha) * state.ewma;
  state.samples.fetch_add(1, std::memory_order_relaxed);

  const uint32_t window = state.window.load(std::memory_order_relaxed);
  if (state.ewma >= options_.grow_threshold) {
    state.shrink_streak = 0;
    if (++state.grow_streak < options_.grow_hysteresis) return;
    state.grow_streak = 0;
    // Additive increase: speculation that keeps landing earns a slightly
    // deeper window; the clamp keeps one run's coalesced read bounded.
    const uint32_t grown =
        std::min(options_.max_blocks, window + options_.grow_step);
    if (grown != window) {
      state.window.store(grown, std::memory_order_relaxed);
      state.grows.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (state.ewma <= options_.shrink_threshold) {
    state.grow_streak = 0;
    if (++state.shrink_streak < options_.shrink_hysteresis) return;
    state.shrink_streak = 0;
    // Multiplicative decrease: waste compounds with the window, so a
    // window that misses gets out of the way fast. Halving from 1 hits 0
    // (speculation off) unless min_blocks keeps a floor.
    const uint32_t shrunk = std::max(options_.min_blocks, window / 2);
    if (shrunk != window) {
      state.window.store(shrunk, std::memory_order_relaxed);
      state.shrinks.fetch_add(1, std::memory_order_relaxed);
      // Restart the probe cadence so a fresh collapse probes promptly.
      state.probe_clock.store(0, std::memory_order_relaxed);
    }
  } else {
    // Neutral band: the hysteresis zone. Streaks reset, so a window only
    // moves on *consecutive* conviction, never on a split signal.
    state.grow_streak = 0;
    state.shrink_streak = 0;
  }
}

uint32_t AdaptiveReadahead::window(SegmentId segment) const {
  if (segment >= states_.size()) return 0;
  return states_[segment].window.load(std::memory_order_relaxed);
}

AdaptiveReadahead::SegmentSnapshot AdaptiveReadahead::snapshot(
    SegmentId segment) const {
  SegmentSnapshot out;
  if (segment >= states_.size()) return out;
  const SegmentState& state = states_[segment];
  out.window = state.window.load(std::memory_order_relaxed);
  out.samples = state.samples.load(std::memory_order_relaxed);
  out.grows = state.grows.load(std::memory_order_relaxed);
  out.shrinks = state.shrinks.load(std::memory_order_relaxed);
  out.probes = state.probes.load(std::memory_order_relaxed);
  util::MutexLock lock(state.mutex);
  out.ewma = state.ewma;
  return out;
}

}  // namespace storage
}  // namespace oasis
