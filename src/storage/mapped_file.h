// Read-only memory mapping over a block file.
//
// The mmap fast path of the storage layer: when an index fits in RAM (or
// the OS page cache is trusted), the three packed files are mapped once and
// every block access resolves to a pointer into the mapping — no Fetch, no
// memcpy, no pool bookkeeping, and nothing shared between reader threads.
// The file descriptor is closed right after mmap; the mapping keeps the
// pages alive until the MappedFile is destroyed.

#pragma once

#include <cstdint>
#include <string>

#include "storage/block_file.h"
#include "util/status.h"

namespace oasis {
namespace storage {

/// An immutable, page-cache-backed view of a whole block file. All
/// accessors are const and touch no mutable state, so any number of threads
/// may read concurrently with no synchronization at all.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps an existing block file read-only. Fails if the file size is not a
  /// multiple of `block_size` (same contract as BlockFile::Open). An empty
  /// file maps to a valid zero-block view. The kernel is advised to fault
  /// the whole range in eagerly (MADV_WILLNEED).
  static util::StatusOr<MappedFile> Open(
      const std::string& path, uint32_t block_size = kDefaultBlockSize);

  uint32_t block_size() const { return block_size_; }
  uint64_t num_blocks() const { return size_ / block_size_; }
  uint64_t size_bytes() const { return size_; }
  const std::string& path() const { return path_; }
  /// True for any successfully Open()ed file, including an empty one;
  /// false for a default-constructed or moved-from instance.
  bool is_open() const { return opened_; }

  /// Start of the mapping (nullptr for an empty file).
  const uint8_t* data() const { return data_; }

  /// Pointer to block `id`. Caller must keep id < num_blocks(); the pointer
  /// stays valid for the lifetime of the MappedFile.
  const uint8_t* block(BlockId id) const {
    return data_ + static_cast<size_t>(id) * block_size_;
  }

 private:
  MappedFile(const uint8_t* data, uint64_t size, std::string path,
             uint32_t block_size)
      : data_(data), size_(size), path_(std::move(path)),
        block_size_(block_size), opened_(true) {}

  void Unmap();

  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
  uint32_t block_size_ = kDefaultBlockSize;
  bool opened_ = false;
};

}  // namespace storage
}  // namespace oasis
