// Buffer pool with CLOCK (second-chance) replacement.
//
// The paper's implementation "reads disk pages from a buffer pool, which
// uses a simple clock replacement policy" (§4.2) with a 2K block size, and
// evaluates performance against the pool size (Figure 7) and per-component
// buffer hit ratios (Figure 8). Each logical component of the packed suffix
// tree (symbols / internal nodes / leaves) registers as a separate *segment*
// backed by its own BlockFile; frames are shared across segments so the
// pool size is a single global knob, while request/hit statistics are kept
// per segment.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/block_file.h"
#include "util/status.h"

namespace oasis {
namespace storage {

using SegmentId = uint32_t;

/// Request/hit counters for one segment.
struct SegmentStats {
  uint64_t requests = 0;
  uint64_t hits = 0;

  uint64_t misses() const { return requests - hits; }
  double hit_ratio() const {
    return requests == 0 ? 1.0 : static_cast<double>(hits) / requests;
  }
};

/// A page pinned in the pool. Unpins on destruction. The data pointer stays
/// valid while the handle is alive; the pool never evicts pinned frames.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle();
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;

  const uint8_t* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }

 private:
  friend class BufferPool;
  PageHandle(class BufferPool* pool, uint32_t frame, const uint8_t* data)
      : pool_(pool), frame_(frame), data_(data) {}

  class BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  const uint8_t* data_ = nullptr;
};

/// Fixed-capacity shared buffer pool over registered block files.
///
/// Not thread-safe (single-threaded searches, matching the paper).
class BufferPool {
 public:
  /// `capacity_bytes` is rounded down to whole frames of `block_size`;
  /// at least one frame is always allocated.
  BufferPool(uint64_t capacity_bytes, uint32_t block_size = kDefaultBlockSize);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a backing file as a segment. The file must outlive the pool
  /// and have the pool's block size.
  util::StatusOr<SegmentId> RegisterSegment(std::string name, const BlockFile* file);

  uint32_t block_size() const { return block_size_; }
  uint32_t num_frames() const { return num_frames_; }
  uint64_t capacity_bytes() const {
    return static_cast<uint64_t>(num_frames_) * block_size_;
  }

  /// Fetches block `block` of `segment`, pinning it. Counts one request,
  /// and one hit when the block was already resident.
  util::StatusOr<PageHandle> Fetch(SegmentId segment, BlockId block);

  /// Statistics for one segment.
  const SegmentStats& stats(SegmentId segment) const { return stats_[segment]; }
  const std::string& segment_name(SegmentId segment) const {
    return names_[segment];
  }
  size_t num_segments() const { return files_.size(); }

  /// Aggregate statistics over all segments.
  SegmentStats TotalStats() const;

  /// Zeroes all statistics (the cached pages stay resident).
  void ResetStats();

  /// Drops all cached pages (fails any future hit) and resets the clock.
  /// Precondition: no pages pinned.
  void Clear();

  /// Number of currently pinned frames (for tests).
  uint32_t num_pinned() const;

 private:
  friend class PageHandle;

  struct Frame {
    SegmentId segment = 0;
    BlockId block = 0;
    uint32_t pin_count = 0;
    bool referenced = false;
    bool occupied = false;
  };

  void Unpin(uint32_t frame);
  /// CLOCK sweep; returns a victim frame index or fails when all pinned.
  util::StatusOr<uint32_t> FindVictim();

  uint32_t block_size_;
  uint32_t num_frames_;
  std::vector<uint8_t> memory_;  ///< num_frames_ * block_size_ bytes.
  std::vector<Frame> frames_;
  uint32_t clock_hand_ = 0;

  std::vector<const BlockFile*> files_;
  std::vector<std::string> names_;
  mutable std::vector<SegmentStats> stats_;

  /// (segment, block) -> frame index.
  std::unordered_map<uint64_t, uint32_t> page_table_;
  /// Last-fetch memo (hot-path shortcut; see Fetch).
  uint64_t memo_key_ = ~0ull;
  uint32_t memo_frame_ = 0;
  static uint64_t Key(SegmentId segment, BlockId block) {
    return (static_cast<uint64_t>(segment) << 48) | block;
  }
};

}  // namespace storage
}  // namespace oasis
