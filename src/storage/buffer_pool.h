// Concurrent sharded buffer pool with CLOCK (second-chance) replacement.
//
// The paper's implementation "reads disk pages from a buffer pool, which
// uses a simple clock replacement policy" (§4.2) with a 2K block size, and
// evaluates performance against the pool size (Figure 7) and per-component
// buffer hit ratios (Figure 8). Each logical component of the packed suffix
// tree (symbols / internal nodes / leaves) registers as a separate *segment*
// backed by its own BlockFile; frames are shared across segments so the
// pool size is a single global knob, while request/hit statistics are kept
// per segment.
//
// Concurrency model (lock striping, the standard design in disk engines):
// the frames are partitioned into shards, each an independent CLOCK region
// with its own mutex, page table and clock hand. A block's shard is fixed
// by a hash of its (segment, block) key, so any number of threads can
// Fetch() concurrently and only collide when their blocks land on the same
// shard. Pin counts are atomic — PageHandle release never takes a lock —
// and per-segment statistics are relaxed atomics striped per shard (each
// slice on its own cache line), so the hot path shares nothing across
// shards while single-threaded runs (the Figure 7/8 benches) still
// aggregate exactly. Block reads use pread through BlockFile, which is
// safe for concurrent readers.
//
// Miss I/O runs OFF the shard lock: a miss claims a victim frame, registers
// the (segment, block) key in the shard's in-flight table, and releases the
// mutex for the duration of the pread — hits and unrelated misses on the
// same shard proceed while the disk read is outstanding. Concurrent
// requesters of a block that is already loading find its in-flight entry
// and block on the loading frame's condition variable instead of issuing a
// duplicate read; they resolve as hits once the loader publishes the page
// (or retry as fresh misses if the load failed). The shard mutex is only
// ever held for table and clock bookkeeping.
//
// Speculative readahead (storage/readahead.h) layers on top of the same
// machinery: PrefetchRun() is a best-effort, self-throttling variant of
// the miss path that loads a run of blocks without returning handles,
// coalescing each contiguous stretch into one scatter pread. A prefetched
// frame is admitted with scan semantics (no CLOCK reference bit) and
// carries a `prefetched` mark until its first demand Fetch, so unused
// speculation is first in line for eviction — never ahead of frames
// demand traffic keeps referenced — and its accuracy is measurable: the
// pool counts prefetches issued, used (first demand hit) and wasted
// (evicted unused). Because a prefetch registers in the shard's in-flight
// table exactly like a demand miss, a demand Fetch racing a prefetch of
// the same block waits on the loading frame and resolves as a hit: one
// disk read, never two.
//
// RegisterSegment and SetReadahead are the exceptions: both are setup-time
// calls that must complete before the first concurrent Fetch (the engine
// makes them at index open time, before any search runs).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/block_file.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace oasis {
namespace storage {

using SegmentId = uint32_t;

/// How a fetched page should be treated by the replacement policy.
///
/// kNormal sets the CLOCK reference bit, giving the page a second chance.
/// kScan is the admission hint for sequential scans (e.g. materializing the
/// resident database streams the whole symbols file through the pool): the
/// page is cached but its reference bit is left untouched, so a one-pass
/// scan cannot evict the hot internal blocks that real searches keep warm.
enum class Admission { kNormal, kScan };

class Readahead;

/// Outcome counters of the speculative readahead path: a plain-value
/// snapshot of the pool's internal atomic counters. Demand traffic is
/// deliberately excluded — prefetch reads never count as segment requests
/// or hits, so Figure 7/8 statistics stay exact with readahead enabled.
struct ReadaheadStats {
  /// Speculative reads actually started (resident / in-flight / frameless
  /// prefetch attempts are skipped and counted nowhere).
  uint64_t issued = 0;
  /// Prefetched frames that served at least one demand Fetch.
  uint64_t used = 0;
  /// Prefetched frames evicted (or dropped by Clear) before any demand
  /// Fetch touched them — the speculation that missed.
  uint64_t wasted = 0;

  /// Wasted fraction of issued prefetches (0 when none were issued).
  double waste_ratio() const {
    return issued == 0 ? 0.0 : static_cast<double>(wasted) / issued;
  }
};

/// Request/hit counters for one segment: a plain-value snapshot of the
/// pool's internal atomic counters.
struct SegmentStats {
  uint64_t requests = 0;  ///< demand fetches of the segment's blocks
  uint64_t hits = 0;      ///< requests served without a disk read

  uint64_t misses() const { return requests - hits; }  ///< requests - hits
  /// hits / requests. Vacuously 1.0 when no requests were made — consumers
  /// gating on this ratio must therefore also check `requests` (the CI
  /// bench gate does: ci/bench_gate.py rejects gated ratios whose
  /// denominator count is below a sanity floor).
  double hit_ratio() const {
    return requests == 0 ? 1.0 : static_cast<double>(hits) / requests;
  }
};

/// A page pinned in the pool. Unpins on destruction. The data pointer stays
/// valid while the handle is alive; the pool never evicts pinned frames.
/// Release is a single lock-free atomic decrement, so handles can be
/// dropped from any thread.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }  ///< unpins (lock-free)
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  PageHandle(PageHandle&& other) noexcept
      : pin_(other.pin_), data_(other.data_) {
    other.pin_ = nullptr;
    other.data_ = nullptr;
  }
  PageHandle& operator=(PageHandle&& other) noexcept {
    if (this != &other) {
      Release();
      pin_ = other.pin_;
      data_ = other.data_;
      other.pin_ = nullptr;
      other.data_ = nullptr;
    }
    return *this;
  }

  const uint8_t* data() const { return data_; }  ///< the pinned block's bytes
  bool valid() const { return pin_ != nullptr; }  ///< false once released/moved-from

 private:
  friend class BufferPool;
  PageHandle(std::atomic<uint32_t>* pin, const uint8_t* data)
      : pin_(pin), data_(data) {}

  void Release() {
    if (pin_ != nullptr) {
      // Release order: page reads made through data_ happen-before the
      // eviction that observes pin_count == 0 and overwrites the frame.
      const uint32_t prior = pin_->fetch_sub(1, std::memory_order_release);
      OASIS_DCHECK(prior > 0);  // underflow would pin the frame forever
      (void)prior;
      pin_ = nullptr;
      data_ = nullptr;
    }
  }

  std::atomic<uint32_t>* pin_ = nullptr;
  const uint8_t* data_ = nullptr;
};

/// Fixed-capacity shared buffer pool over registered block files.
///
/// Thread-safe for concurrent Fetch / handle release / stats reads once all
/// segments are registered. Clear() and ResetStats() take every shard lock
/// and require quiescence only in the sense documented on each.
class BufferPool {
 public:
  /// `capacity_bytes` is rounded down to whole frames of `block_size`;
  /// at least one frame is always allocated. `num_shards` of 0 picks a
  /// power of two sized to the hardware concurrency, never more than one
  /// shard per 8 frames (tiny pools degrade to a single CLOCK region, which
  /// keeps their eviction order deterministic).
  BufferPool(uint64_t capacity_bytes, uint32_t block_size = kDefaultBlockSize,
             uint32_t num_shards = 0);
  /// Checks full quiescence (no pinned frames) on the way out.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Registers a backing file as a segment. The file must outlive the pool
  /// and have the pool's block size. Not thread-safe: all registrations
  /// must complete before the first concurrent Fetch.
  util::StatusOr<SegmentId> RegisterSegment(std::string name, const BlockFile* file);

  uint32_t block_size() const { return block_size_; }  ///< bytes per frame
  uint32_t num_frames() const { return num_frames_; }  ///< total frames, all shards
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }  ///< CLOCK regions
  /// num_frames() * block_size() — the capacity after rounding.
  uint64_t capacity_bytes() const {
    return static_cast<uint64_t>(num_frames_) * block_size_;
  }

  /// Fetches block `block` of `segment`, pinning it. Counts one request,
  /// and one hit when the block was already resident (or became resident
  /// via another thread's in-flight read while this call waited). Safe to
  /// call from any number of threads concurrently. `admission` is the
  /// replacement-policy hint; kScan keeps one-pass scans from refreshing
  /// the reference bit.
  util::StatusOr<PageHandle> Fetch(SegmentId segment, BlockId block,
                                   Admission admission = Admission::kNormal);

  /// Best-effort speculative load of the run [first, first + count),
  /// clipped to the segment's end; never returns a handle. Returns the
  /// number of reads actually issued; blocks that are already resident or
  /// loading, or whose shard has no evictable frame right now, are
  /// silently skipped (speculation never yields, retries, or evicts under
  /// contention — demand traffic always wins). Skips split the run;
  /// every maximal contiguous stretch of claimed blocks is read with ONE
  /// scatter pread (BlockFile::ReadBlocks), which is where run prefetching
  /// beats the per-block demand misses it replaces. Loaded frames are
  /// admitted with scan semantics plus a `prefetched` mark; see
  /// ReadaheadStats for the accounting. Each claimed block sits in its
  /// shard's in-flight table for the duration, so a demand Fetch racing
  /// the prefetch waits on the loading frame and shares the read. Safe to
  /// call concurrently with Fetch from any thread (the readahead worker
  /// does).
  uint32_t PrefetchRun(SegmentId segment, BlockId first, uint32_t count);

  /// PrefetchRun of a single block; true when the read was issued.
  bool Prefetch(SegmentId segment, BlockId block) {
    return PrefetchRun(segment, block, 1) != 0;
  }

  /// Attaches (or detaches, with nullptr) the readahead unit driven by
  /// demand traffic. Speculation is gated on *detected sequential runs*,
  /// not on every miss: a miss on `block` schedules the next
  /// `readahead->blocks()` blocks of the segment only when `block`
  /// continues the segment's previous miss (or a prefetched hit) — the
  /// signature of a sibling run in the level-first layout. Scattered
  /// misses (the A* frontier hopping around the tree) therefore trigger
  /// nothing, so enabling readahead cannot amplify random I/O. A demand
  /// hit on a prefetched frame advances the run position, keeping a
  /// detected run triggering once per window instead of dying after the
  /// first one. The pool also reports every resolved prefetch outcome to
  /// the attached unit (Readahead::ReportOutcome — used on the first
  /// demand hit, wasted on eviction/drop/failed read), which is the
  /// feedback an adaptive window controller sizes speculation from.
  /// Setup-time only, like RegisterSegment: must not race any Fetch. The
  /// readahead unit must outlive every subsequent Fetch
  /// (storage::Readahead detaches itself on destruction).
  void SetReadahead(Readahead* readahead) { readahead_ = readahead; }

  /// Prefetch outcome counters (see ReadaheadStats). Exact after
  /// quiescence, like stats().
  ReadaheadStats readahead_stats() const;

  /// Statistics snapshot for one segment. Exact after quiescence; during
  /// concurrent traffic each counter is individually exact (relaxed loads).
  SegmentStats stats(SegmentId segment) const;
  /// The name a segment was registered under.
  const std::string& segment_name(SegmentId segment) const {
    return names_[segment];
  }
  size_t num_segments() const { return files_.size(); }  ///< registered segments

  /// Aggregate statistics over all segments.
  SegmentStats TotalStats() const;

  /// Zeroes all statistics (the cached pages stay resident).
  void ResetStats();

  /// Drops all cached pages (fails any future hit) and resets every clock.
  /// Precondition: no pages pinned.
  void Clear();

  /// Number of currently pinned frames (for tests).
  uint32_t num_pinned() const;

 private:
  struct Frame {
    SegmentId segment = 0;
    BlockId block = 0;
    std::atomic<uint32_t> pin_count{0};
    bool referenced = false;
    bool occupied = false;
    /// True while a miss read into this frame is outstanding off-lock. A
    /// loading frame is pinned by its loader (so CLOCK skips it) and its
    /// key lives in the shard's in-flight table, not the page table.
    bool loading = false;
    /// True from a speculative load until the first demand Fetch of the
    /// frame (then it counts as `used`) or its eviction (then `wasted`).
    bool prefetched = false;
    /// Signalled (under the shard mutex) when a load into this frame
    /// finishes, success or failure. Heap-allocated so frames stay movable
    /// during shard construction.
    std::unique_ptr<util::CondVar> ready;

    Frame() : ready(std::make_unique<util::CondVar>()) {}
    // Move is only used while the shard's frame vector is being built,
    // strictly before any concurrent access.
    Frame(Frame&& other) noexcept
        : segment(other.segment), block(other.block),
          pin_count(other.pin_count.load(std::memory_order_relaxed)),
          referenced(other.referenced), occupied(other.occupied),
          loading(other.loading), prefetched(other.prefetched),
          ready(std::move(other.ready)) {}
  };

  /// One independent CLOCK region: its own lock, frames, table and hand.
  /// Everything but `memory` (set once at construction) is guarded by the
  /// shard mutex; the thread-safety analysis enforces that on the clang
  /// CI leg. Frame *fields* cannot carry GUARDED_BY themselves (their
  /// mutex lives in the enclosing shard), so the guarded member is the
  /// `frames` vector: every access path starts there, under the lock.
  struct Shard {
    mutable util::Mutex mutex;
    std::vector<Frame> frames GUARDED_BY(mutex);
    /// (segment, block) key -> index into `frames`.
    std::unordered_map<uint64_t, uint32_t> page_table GUARDED_BY(mutex);
    /// Keys whose miss read is currently outstanding -> loading frame.
    /// Requesters of an in-flight key wait on that frame's condvar instead
    /// of duplicating the I/O.
    std::unordered_map<uint64_t, uint32_t> in_flight GUARDED_BY(mutex);
    uint32_t clock_hand GUARDED_BY(mutex) = 0;
    uint8_t* memory = nullptr;  ///< frames.size() * block_size bytes.
  };

  /// One shard's slice of a segment's counters, its own cache line:
  /// threads fetching through different shards never share a stats line,
  /// so the hot path stays contention-free end to end. stats() sums the
  /// slices (cold path); after quiescence the totals are exact, which is
  /// what the Figure 7/8 benches aggregate.
  struct alignas(64) SegmentStatsCell {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> hits{0};
  };
  struct AtomicSegmentStats {
    std::vector<SegmentStatsCell> cells;  ///< one per shard
    explicit AtomicSegmentStats(size_t num_shards) : cells(num_shards) {}
  };

  /// CLOCK sweep within one shard (its mutex held); returns a victim frame
  /// index or fails when every frame of the shard is pinned.
  util::StatusOr<uint32_t> FindVictim(Shard& shard) REQUIRES(shard.mutex);

  /// Strips a victim frame of its old identity (shard mutex held),
  /// counting a wasted prefetch if speculation loaded it and no demand
  /// Fetch ever came.
  void EvictFrame(Shard& shard, Frame& frame) REQUIRES(shard.mutex);

  static uint64_t Key(SegmentId segment, BlockId block) {
    return (static_cast<uint64_t>(segment) << 48) | block;
  }
  /// splitmix64 finalizer: decorrelates the shard choice from the block id
  /// so sequential scans spread across shards.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  uint32_t block_size_;
  uint32_t num_frames_;
  uint64_t shard_mask_ = 0;  ///< shards_.size() - 1 (power of two).
  std::vector<uint8_t> memory_;  ///< num_frames_ * block_size_ bytes.
  std::deque<Shard> shards_;     ///< deque: Shard holds a mutex (immovable).

  std::vector<const BlockFile*> files_;
  std::vector<std::string> names_;
  mutable std::deque<AtomicSegmentStats> stats_;

  /// Attached readahead unit (nullptr = no speculation). Written only at
  /// setup time (SetReadahead); read without synchronization on the Fetch
  /// miss path, same contract as the segment tables.
  Readahead* readahead_ = nullptr;
  /// Per-segment sequential-run detector: the last block demand-missed
  /// (or hit prefetched) in each segment. A heuristic, so plain relaxed
  /// atomics; deque because atomics don't move on growth. UINT64_MAX
  /// sentinel wraps to 0, so a scan starting at block 0 triggers on its
  /// very first miss.
  std::deque<std::atomic<uint64_t>> run_position_;
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_used_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
};

}  // namespace storage
}  // namespace oasis
