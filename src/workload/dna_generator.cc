#include <algorithm>

#include "util/logging.h"
#include "workload/workload.h"

namespace oasis {
namespace workload {

namespace {

std::vector<seq::Symbol> RandomDna(util::Random& rng, size_t length) {
  std::vector<seq::Symbol> out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<seq::Symbol>(rng.Uniform(4)));
  }
  return out;
}

/// Copies `element` with per-symbol divergence (random substitutions).
std::vector<seq::Symbol> DivergedCopy(util::Random& rng,
                                      const std::vector<seq::Symbol>& element,
                                      double divergence) {
  std::vector<seq::Symbol> out = element;
  for (seq::Symbol& s : out) {
    if (rng.Bernoulli(divergence)) {
      s = static_cast<seq::Symbol>((s + 1 + rng.Uniform(3)) % 4);
    }
  }
  return out;
}

}  // namespace

util::StatusOr<seq::SequenceDatabase> GenerateDnaDatabase(
    const DnaDatabaseOptions& options) {
  if (options.num_sequences == 0 || options.target_residues == 0) {
    return util::Status::InvalidArgument("empty database requested");
  }
  if (options.repeat_fraction < 0.0 || options.repeat_fraction > 0.9) {
    return util::Status::InvalidArgument("repeat_fraction must be in [0, 0.9]");
  }
  util::Random rng(options.seed);

  // Repeat element library (genomic DNA shares long suffix-tree paths
  // through repeat families; planting them reproduces that structure).
  std::vector<std::vector<seq::Symbol>> elements;
  for (uint32_t f = 0; f < options.num_repeat_families; ++f) {
    elements.push_back(RandomDna(rng, options.repeat_element_length));
  }

  const uint64_t per_seq =
      std::max<uint64_t>(1, options.target_residues / options.num_sequences);
  std::vector<seq::Sequence> sequences;
  for (uint32_t s = 0; s < options.num_sequences; ++s) {
    std::vector<seq::Symbol> residues;
    residues.reserve(per_seq);
    while (residues.size() < per_seq) {
      bool plant_repeat = !elements.empty() &&
                          rng.Bernoulli(options.repeat_fraction) &&
                          residues.size() + options.repeat_element_length <=
                              per_seq + options.repeat_element_length;
      if (plant_repeat) {
        std::vector<seq::Symbol> copy = DivergedCopy(
            rng, elements[rng.Uniform(elements.size())],
            options.repeat_divergence);
        residues.insert(residues.end(), copy.begin(), copy.end());
      } else {
        std::vector<seq::Symbol> chunk =
            RandomDna(rng, std::min<uint64_t>(256, per_seq));
        residues.insert(residues.end(), chunk.begin(), chunk.end());
      }
    }
    residues.resize(per_seq);
    sequences.emplace_back("SCAF" + std::to_string(s), std::move(residues));
  }
  return seq::SequenceDatabase::Build(seq::Alphabet::Dna(),
                                      std::move(sequences));
}

}  // namespace workload
}  // namespace oasis
