#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "workload/workload.h"

namespace oasis {
namespace workload {

namespace {

/// Draws a replacement residue for `original`, weighted by
/// exp(S(original, b) / 2) over b != original — a crude single PAM step
/// conditioned on the scoring matrix, so mutations mostly land on
/// positively-scoring (biochemically similar) residues.
seq::Symbol MutateResidue(util::Random& rng,
                          const score::SubstitutionMatrix& matrix,
                          seq::Symbol original, uint32_t num_residues) {
  std::vector<double> weights(num_residues, 0.0);
  for (uint32_t b = 0; b < num_residues; ++b) {
    if (b == original) continue;
    weights[b] = std::exp(matrix.Score(original, b) / 2.0);
  }
  return static_cast<seq::Symbol>(rng.Categorical(weights));
}

}  // namespace

util::StatusOr<std::vector<MotifQuery>> GenerateMotifQueries(
    const seq::SequenceDatabase& db, const score::SubstitutionMatrix& matrix,
    const MotifQueryOptions& options) {
  if (options.min_length == 0 || options.min_length > options.max_length) {
    return util::Status::InvalidArgument("invalid query length range");
  }
  // Mutations draw from the standard residues only (the first 20 protein
  // codes, or all 4 DNA codes).
  const uint32_t num_residues =
      db.alphabet().kind() == seq::AlphabetKind::kProtein
          ? 20
          : db.alphabet().size();

  util::Random rng(options.seed);
  std::vector<MotifQuery> queries;
  queries.reserve(options.num_queries);

  uint32_t attempts = 0;
  while (queries.size() < options.num_queries) {
    if (++attempts > options.num_queries * 100) {
      return util::Status::Internal(
          "query generation stalled: database sequences too short for the "
          "requested query lengths");
    }
    double len_draw =
        std::exp(options.log_mean + options.log_sigma * rng.NextGaussian());
    uint32_t len = static_cast<uint32_t>(
        std::clamp<double>(len_draw, options.min_length, options.max_length));

    seq::SequenceId sid =
        static_cast<seq::SequenceId>(rng.Uniform(db.num_sequences()));
    const seq::Sequence& source = db.sequence(sid);
    if (source.size() < len) continue;
    uint64_t offset = rng.Uniform(source.size() - len + 1);

    MotifQuery query;
    query.source_sequence = sid;
    query.source_offset = offset;
    query.symbols.assign(source.symbols().begin() + offset,
                         source.symbols().begin() + offset + len);

    // Point substitutions.
    for (seq::Symbol& s : query.symbols) {
      if (rng.Bernoulli(options.substitution_rate)) {
        s = MutateResidue(rng, matrix, s, num_residues);
      }
    }
    // Rare short indel.
    if (rng.Bernoulli(options.indel_probability) && query.symbols.size() > 4) {
      uint32_t indel_len = 1 + static_cast<uint32_t>(rng.Uniform(2));
      uint64_t pos = rng.Uniform(query.symbols.size() - indel_len);
      if (rng.Bernoulli(0.5)) {
        query.symbols.erase(query.symbols.begin() + pos,
                            query.symbols.begin() + pos + indel_len);
      } else {
        for (uint32_t k = 0; k < indel_len; ++k) {
          query.symbols.insert(
              query.symbols.begin() + pos,
              static_cast<seq::Symbol>(rng.Uniform(num_residues)));
        }
      }
    }
    if (query.symbols.size() < options.min_length) continue;
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace workload
}  // namespace oasis
