#include <algorithm>
#include <cmath>

#include "score/karlin.h"
#include "util/logging.h"
#include "workload/workload.h"

namespace oasis {
namespace workload {

std::vector<seq::Symbol> RandomProteinResidues(util::Random& rng,
                                               size_t length) {
  // Robinson-Robinson background (score/karlin.cc) over the 20 standard
  // residues; ambiguity codes are never generated.
  static const std::vector<double> weights = [] {
    std::vector<double> bg =
        score::BackgroundFrequencies(seq::Alphabet::Protein());
    bg.resize(20);
    return bg;
  }();
  std::vector<seq::Symbol> out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<seq::Symbol>(rng.Categorical(weights)));
  }
  return out;
}

util::StatusOr<seq::SequenceDatabase> GenerateProteinDatabase(
    const ProteinDatabaseOptions& options) {
  if (options.min_length == 0 || options.min_length > options.max_length) {
    return util::Status::InvalidArgument("invalid length range");
  }
  if (options.target_residues == 0) {
    return util::Status::InvalidArgument("target_residues must be positive");
  }
  util::Random rng(options.seed);
  std::vector<seq::Sequence> sequences;
  uint64_t total = 0;
  uint32_t index = 0;
  while (total < options.target_residues) {
    double len_draw =
        std::exp(options.log_mean + options.log_sigma * rng.NextGaussian());
    uint32_t len = static_cast<uint32_t>(
        std::clamp<double>(len_draw, options.min_length, options.max_length));
    // Do not overshoot the target by more than one sequence; trim the last
    // sequence to land close to target_residues (but never below min).
    if (total + len > options.target_residues) {
      uint64_t remaining = options.target_residues - total;
      len = static_cast<uint32_t>(
          std::max<uint64_t>(remaining, options.min_length));
    }
    sequences.emplace_back("SP" + std::to_string(index++),
                           RandomProteinResidues(rng, len));
    total += len;
  }
  return seq::SequenceDatabase::Build(seq::Alphabet::Protein(),
                                      std::move(sequences));
}

}  // namespace workload
}  // namespace oasis
