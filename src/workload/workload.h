// Synthetic workload generators substituting for the paper's data sets
// (see DESIGN.md §2 for the substitution rationale):
//   * ProteinDatabaseGenerator  — SWISS-PROT-shaped protein database
//     (log-normal lengths clamped to [7, 2048], Robinson-Robinson residue
//     background);
//   * DnaDatabaseGenerator      — Drosophila-shaped nucleotide database
//     with planted repeat families;
//   * MotifQueryGenerator       — ProClass-motif-shaped query workload:
//     substrings of database sequences mutated by a substitution-matrix-
//     aware point process plus rare short indels, so queries have genuine
//     homologous targets.
//
// All generators are deterministic given the seed.

#pragma once

#include <cstdint>
#include <vector>

#include "score/substitution_matrix.h"
#include "seq/database.h"
#include "util/random.h"
#include "util/status.h"

namespace oasis {
namespace workload {

struct ProteinDatabaseOptions {
  uint64_t target_residues = 1 << 20;  ///< approximate total residue count
  uint32_t min_length = 7;             ///< SWISS-PROT range (paper §4.1)
  uint32_t max_length = 2048;
  double log_mean = 5.7;   ///< log-normal length parameters: median ~300,
  double log_sigma = 0.75; ///< matching SWISS-PROT's ~400-residue mean
  uint64_t seed = 42;
};

/// Generates a protein database. Sequence ids are "SP<index>".
util::StatusOr<seq::SequenceDatabase> GenerateProteinDatabase(
    const ProteinDatabaseOptions& options);

struct DnaDatabaseOptions {
  uint64_t target_residues = 1 << 20;
  uint32_t num_sequences = 64;
  /// Fraction of the database covered by copies of repeat elements.
  double repeat_fraction = 0.2;
  uint32_t repeat_element_length = 400;
  uint32_t num_repeat_families = 8;
  /// Per-symbol divergence applied to each planted repeat copy.
  double repeat_divergence = 0.05;
  uint64_t seed = 43;
};

/// Generates a nucleotide database with planted repeat families. Sequence
/// ids are "SCAF<index>".
util::StatusOr<seq::SequenceDatabase> GenerateDnaDatabase(
    const DnaDatabaseOptions& options);

struct MotifQueryOptions {
  uint32_t num_queries = 100;   ///< the paper's workload size
  uint32_t min_length = 6;      ///< paper: queries range 6..56, mean 16
  uint32_t max_length = 56;
  double log_mean = 2.7;        ///< log-normal centred near length 15-16
  double log_sigma = 0.45;
  /// Per-residue probability of a point substitution (drawn from the
  /// matrix-conditioned mutation distribution).
  double substitution_rate = 0.10;
  /// Probability of one short (1-2 residue) indel per query.
  double indel_probability = 0.10;
  uint64_t seed = 44;
};

/// One generated query with its provenance (for accuracy checks).
struct MotifQuery {
  std::vector<seq::Symbol> symbols;
  seq::SequenceId source_sequence = 0;
  uint64_t source_offset = 0;
};

/// Samples mutated substrings of `db` sequences as queries. The mutation
/// process favours substitutions the matrix scores highly (a crude PAM
/// step), so planted homologies have realistic score distributions.
util::StatusOr<std::vector<MotifQuery>> GenerateMotifQueries(
    const seq::SequenceDatabase& db, const score::SubstitutionMatrix& matrix,
    const MotifQueryOptions& options);

/// Robinson-Robinson-weighted random protein residues (exposed for tests).
std::vector<seq::Symbol> RandomProteinResidues(util::Random& rng, size_t length);

}  // namespace workload
}  // namespace oasis
