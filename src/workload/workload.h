// Synthetic workload generators substituting for the paper's data sets
// (see DESIGN.md §2 for the substitution rationale):
//   * ProteinDatabaseGenerator  — SWISS-PROT-shaped protein database
//     (log-normal lengths clamped to [7, 2048], Robinson-Robinson residue
//     background);
//   * DnaDatabaseGenerator      — Drosophila-shaped nucleotide database
//     with planted repeat families;
//   * MotifQueryGenerator       — ProClass-motif-shaped query workload:
//     substrings of database sequences mutated by a substitution-matrix-
//     aware point process plus rare short indels, so queries have genuine
//     homologous targets.
//
// All generators are deterministic given the seed.

#pragma once

#include <cstdint>
#include <vector>

#include "score/substitution_matrix.h"
#include "seq/database.h"
#include "util/random.h"
#include "util/status.h"

namespace oasis {
namespace workload {

struct ProteinDatabaseOptions {
  uint64_t target_residues = 1 << 20;  ///< approximate total residue count
  uint32_t min_length = 7;             ///< SWISS-PROT range (paper §4.1)
  uint32_t max_length = 2048;
  double log_mean = 5.7;   ///< log-normal length parameters: median ~300,
  double log_sigma = 0.75; ///< matching SWISS-PROT's ~400-residue mean
  uint64_t seed = 42;
};

/// Generates a protein database. Sequence ids are "SP<index>".
util::StatusOr<seq::SequenceDatabase> GenerateProteinDatabase(
    const ProteinDatabaseOptions& options);

struct DnaDatabaseOptions {
  uint64_t target_residues = 1 << 20;
  uint32_t num_sequences = 64;
  /// Fraction of the database covered by copies of repeat elements.
  double repeat_fraction = 0.2;
  uint32_t repeat_element_length = 400;
  uint32_t num_repeat_families = 8;
  /// Per-symbol divergence applied to each planted repeat copy.
  double repeat_divergence = 0.05;
  uint64_t seed = 43;
};

/// Generates a nucleotide database with planted repeat families. Sequence
/// ids are "SCAF<index>".
util::StatusOr<seq::SequenceDatabase> GenerateDnaDatabase(
    const DnaDatabaseOptions& options);

struct MotifQueryOptions {
  uint32_t num_queries = 100;   ///< the paper's workload size
  uint32_t min_length = 6;      ///< paper: queries range 6..56, mean 16
  uint32_t max_length = 56;
  double log_mean = 2.7;        ///< log-normal centred near length 15-16
  double log_sigma = 0.45;
  /// Per-residue probability of a point substitution (drawn from the
  /// matrix-conditioned mutation distribution).
  double substitution_rate = 0.10;
  /// Probability of one short (1-2 residue) indel per query.
  double indel_probability = 0.10;
  uint64_t seed = 44;
};

/// One generated query with its provenance (for accuracy checks).
struct MotifQuery {
  std::vector<seq::Symbol> symbols;
  seq::SequenceId source_sequence = 0;
  uint64_t source_offset = 0;
};

/// Samples mutated substrings of `db` sequences as queries. The mutation
/// process favours substitutions the matrix scores highly (a crude PAM
/// step), so planted homologies have realistic score distributions.
util::StatusOr<std::vector<MotifQuery>> GenerateMotifQueries(
    const seq::SequenceDatabase& db, const score::SubstitutionMatrix& matrix,
    const MotifQueryOptions& options);

struct RepeatBombOptions {
  uint64_t target_residues = 1 << 20;
  uint32_t num_sequences = 32;
  /// Fraction of each sequence covered by tandem low-complexity runs (the
  /// "bomb"): every such run is a short unit repeated back to back, the
  /// seeding pathology soft masking exists to defuse.
  double repeat_fraction = 0.8;
  /// Tandem unit lengths are drawn uniformly from [1, max_unit_length]
  /// (period-1 gives homopolymer runs).
  uint32_t max_unit_length = 6;
  /// Length of one tandem run (unit repeated until the run is this long).
  uint32_t run_length = 300;
  /// Per-symbol divergence applied within a run, so the repeats are
  /// realistic near-copies rather than exact ones.
  double run_divergence = 0.02;
  uint64_t seed = 45;
};

/// Generates a repeat-dense DNA database: tandem low-complexity runs
/// (homopolymers and short-period microsatellites) interleaved with unique
/// random sequence. An unmasked suffix-tree or BLAST search drowns in seed
/// hits inside the runs; a soft-masked build indexes only the unique
/// fraction. Sequence ids are "BOMB<index>".
util::StatusOr<seq::SequenceDatabase> GenerateRepeatBombDatabase(
    const RepeatBombOptions& options);

struct QualityDegradedReadOptions {
  uint32_t num_reads = 100;
  uint32_t read_length = 100;
  /// Phred quality at the first cycle of each read.
  uint8_t start_quality = 38;
  /// Phred quality the last cycles degrade to (Illumina-style 3' decay;
  /// the ramp between start and end is linear with per-cycle jitter).
  uint8_t end_quality = 5;
  /// Sequencing errors are injected per position with the probability the
  /// phred value encodes (10^(-q/10)), so low-quality tails really do
  /// carry most of the mismatches.
  uint64_t seed = 46;
};

/// Samples error-injected reads with per-base qualities from `db` (the
/// template "genome"): each read copies a random substring of a random
/// sequence, assigns a decaying phred ramp, then substitutes each position
/// with its phred-encoded error probability. Read ids are "READ<index>";
/// every read carries quals() for the quality-aware scoring path.
util::StatusOr<std::vector<seq::Sequence>> GenerateQualityDegradedReads(
    const seq::SequenceDatabase& db, const QualityDegradedReadOptions& options);

/// Robinson-Robinson-weighted random protein residues (exposed for tests).
std::vector<seq::Symbol> RandomProteinResidues(util::Random& rng, size_t length);

}  // namespace workload
}  // namespace oasis
