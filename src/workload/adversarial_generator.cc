// Adversarial workloads for the masking / quality subsystems: a
// repeat-bomb DNA database whose tandem runs swamp unmasked seeding, and
// quality-degraded reads whose error positions follow their phred values.

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "workload/workload.h"

namespace oasis {
namespace workload {

namespace {

std::vector<seq::Symbol> RandomDna(util::Random& rng, size_t length) {
  std::vector<seq::Symbol> out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<seq::Symbol>(rng.Uniform(4)));
  }
  return out;
}

/// One tandem run: a random short unit repeated back to back until the run
/// reaches `run_length`, with per-symbol divergence.
std::vector<seq::Symbol> TandemRun(util::Random& rng, uint32_t max_unit_length,
                                   uint32_t run_length, double divergence) {
  const uint32_t unit_length =
      1 + static_cast<uint32_t>(rng.Uniform(max_unit_length));
  const std::vector<seq::Symbol> unit = RandomDna(rng, unit_length);
  std::vector<seq::Symbol> out;
  out.reserve(run_length);
  while (out.size() < run_length) {
    for (seq::Symbol s : unit) {
      if (out.size() >= run_length) break;
      if (rng.Bernoulli(divergence)) {
        s = static_cast<seq::Symbol>((s + 1 + rng.Uniform(3)) % 4);
      }
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

util::StatusOr<seq::SequenceDatabase> GenerateRepeatBombDatabase(
    const RepeatBombOptions& options) {
  if (options.num_sequences == 0 || options.target_residues == 0) {
    return util::Status::InvalidArgument("empty database requested");
  }
  if (options.repeat_fraction < 0.0 || options.repeat_fraction > 1.0) {
    return util::Status::InvalidArgument("repeat_fraction must be in [0, 1]");
  }
  if (options.max_unit_length == 0 || options.run_length == 0) {
    return util::Status::InvalidArgument(
        "max_unit_length and run_length must be positive");
  }
  util::Random rng(options.seed);

  const uint64_t per_seq =
      std::max<uint64_t>(1, options.target_residues / options.num_sequences);
  std::vector<seq::Sequence> sequences;
  for (uint32_t s = 0; s < options.num_sequences; ++s) {
    std::vector<seq::Symbol> residues;
    residues.reserve(per_seq);
    while (residues.size() < per_seq) {
      if (rng.Bernoulli(options.repeat_fraction)) {
        std::vector<seq::Symbol> run =
            TandemRun(rng, options.max_unit_length, options.run_length,
                      options.run_divergence);
        residues.insert(residues.end(), run.begin(), run.end());
      } else {
        // Unique spacer, sized like one run so the configured fraction
        // holds in expectation.
        std::vector<seq::Symbol> chunk = RandomDna(
            rng, std::min<uint64_t>(options.run_length, per_seq));
        residues.insert(residues.end(), chunk.begin(), chunk.end());
      }
    }
    residues.resize(per_seq);
    sequences.emplace_back("BOMB" + std::to_string(s), std::move(residues));
  }
  return seq::SequenceDatabase::Build(seq::Alphabet::Dna(),
                                      std::move(sequences));
}

util::StatusOr<std::vector<seq::Sequence>> GenerateQualityDegradedReads(
    const seq::SequenceDatabase& db, const QualityDegradedReadOptions& options) {
  if (db.num_sequences() == 0) {
    return util::Status::InvalidArgument("template database is empty");
  }
  if (options.num_reads == 0 || options.read_length == 0) {
    return util::Status::InvalidArgument(
        "num_reads and read_length must be positive");
  }
  const uint32_t sigma = db.alphabet().size();
  util::Random rng(options.seed);

  std::vector<seq::Sequence> reads;
  reads.reserve(options.num_reads);
  for (uint32_t r = 0; r < options.num_reads; ++r) {
    // Pick a template long enough for a full-length read; fall back to the
    // template's own length when none is (short-template corner).
    const seq::SequenceId sid =
        static_cast<seq::SequenceId>(rng.Uniform(db.num_sequences()));
    const std::vector<seq::Symbol>& source = db.sequence(sid).symbols();
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(options.read_length, source.size()));
    if (len == 0) {
      return util::Status::InvalidArgument(
          "template database contains an empty sequence");
    }
    const uint64_t offset = rng.Uniform(source.size() - len + 1);

    std::vector<seq::Symbol> symbols(source.begin() + offset,
                                     source.begin() + offset + len);
    std::vector<uint8_t> quals(len);
    const double q_start = options.start_quality;
    const double q_end = options.end_quality;
    for (uint32_t i = 0; i < len; ++i) {
      // Linear 3' decay with per-cycle jitter, clamped to the phred range
      // the FASTQ writer can represent.
      const double frac = len > 1 ? static_cast<double>(i) / (len - 1) : 0.0;
      double q = q_start + (q_end - q_start) * frac;
      q += static_cast<double>(rng.UniformInt(-2, 2));
      q = std::clamp(q, 0.0, 93.0);
      const uint8_t phred = static_cast<uint8_t>(std::lround(q));
      quals[i] = phred;
      // Inject an error with exactly the probability the phred encodes.
      if (rng.Bernoulli(std::pow(10.0, -static_cast<double>(phred) / 10.0))) {
        symbols[i] = static_cast<seq::Symbol>(
            (symbols[i] + 1 + rng.Uniform(sigma - 1)) % sigma);
      }
    }
    seq::Sequence read("READ" + std::to_string(r), std::move(symbols));
    read.set_quals(std::move(quals));
    reads.push_back(std::move(read));
  }
  return reads;
}

}  // namespace workload
}  // namespace oasis
