// Serializes an in-memory SuffixTree to the packed on-disk form
// (packed_tree.h). Internal nodes are emitted in level-first (BFS) order so
// siblings land in adjacent records; leaf-chain links are written at the
// leaf's fixed array slot (== suffix position).

#pragma once

#include <string>

#include "suffix/packed_tree.h"
#include "suffix/suffix_tree.h"

namespace oasis {
namespace suffix {

struct PackOptions {
  uint32_t block_size = storage::kDefaultBlockSize;

  /// Layout-ablation switch (bench/bench_ablation_layout.cc): place sibling
  /// groups of internal nodes in a pseudo-random order instead of
  /// level-first. Sibling runs stay contiguous (the format requires it);
  /// only the *clustering of related groups into common blocks* — the §3.4
  /// optimization — is destroyed. Never use for production indexes.
  bool scatter_internal_nodes = false;
  uint64_t scatter_seed = 1;
};

/// Writes the four packed-tree files into directory `dir` (created if
/// missing). Overwrites any previous tree in that directory.
util::Status PackSuffixTree(const SuffixTree& tree, const std::string& dir,
                            const PackOptions& options = PackOptions());

/// Convenience: Ukkonen-build + pack + open in one call.
util::StatusOr<std::unique_ptr<PackedSuffixTree>> BuildAndOpenPacked(
    const seq::SequenceDatabase& db, const std::string& dir,
    storage::BufferPool* pool, const PackOptions& options = PackOptions());

}  // namespace suffix
}  // namespace oasis
