#include "suffix/suffix_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace suffix {

namespace {
/// Sentinel "still growing" edge end used during Ukkonen construction.
constexpr uint64_t kOpenEnd = ~0ull;
}  // namespace

// ---------------------------------------------------------------------------
// TreeBuilder primitives
// ---------------------------------------------------------------------------

TreeBuilder::TreeBuilder(const seq::SequenceDatabase& db)
    : db_(&db), tree_(&db) {
  // Node 0: root.
  tree_.nodes_.emplace_back();
  tree_.nodes_[0].parent = kInvalidNode;
}

NodeId TreeBuilder::NewInternal(uint64_t start, uint64_t end, NodeId parent) {
  NodeId id = static_cast<NodeId>(tree_.nodes_.size());
  tree_.nodes_.emplace_back();
  SuffixTree::Node& n = tree_.nodes_.back();
  n.start = start;
  n.end = end;
  n.parent = parent;
  return id;
}

NodeId TreeBuilder::NewLeaf(uint64_t start, uint64_t end, NodeId parent,
                            uint64_t suffix_start) {
  NodeId id = NewInternal(start, end, parent);
  tree_.nodes_[id].is_leaf = true;
  tree_.nodes_[id].suffix_start = suffix_start;
  ++tree_.num_leaves_;
  return id;
}

NodeId TreeBuilder::FindChild(NodeId node, seq::Symbol symbol) const {
  const auto& kids = tree_.nodes_[node].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), symbol,
      [](const SuffixTree::ChildEdge& e, seq::Symbol s) { return e.first < s; });
  if (it != kids.end() && it->first == symbol) return it->second;
  return kInvalidNode;
}

void TreeBuilder::SetChild(NodeId node, seq::Symbol symbol, NodeId child) {
  auto& kids = tree_.nodes_[node].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), symbol,
      [](const SuffixTree::ChildEdge& e, seq::Symbol s) { return e.first < s; });
  if (it != kids.end() && it->first == symbol) {
    it->second = child;
  } else {
    kids.insert(it, {symbol, child});
  }
  tree_.nodes_[child].parent = node;
}

uint64_t TreeBuilder::EdgeStart(NodeId node) const {
  return tree_.nodes_[node].start;
}
uint64_t TreeBuilder::EdgeEnd(NodeId node) const {
  return tree_.nodes_[node].end;
}
void TreeBuilder::SetEdgeStart(NodeId node, uint64_t start) {
  tree_.nodes_[node].start = start;
}
void TreeBuilder::SetEdgeEnd(NodeId node, uint64_t end) {
  tree_.nodes_[node].end = end;
}
NodeId TreeBuilder::SuffixLink(NodeId node) const {
  return tree_.nodes_[node].link;
}
void TreeBuilder::SetSuffixLink(NodeId node, NodeId target) {
  tree_.nodes_[node].link = target;
}

void TreeBuilder::InsertSuffixFromRoot(uint64_t suffix_pos) {
  const std::vector<seq::Symbol>& text = db_->symbols();
  seq::SequenceCoord coord = db_->Locate(suffix_pos);
  // The suffix runs through its sequence's terminator, inclusive.
  const uint64_t suffix_end = db_->SequenceEnd(coord.sequence_id) + 1;
  OASIS_DCHECK(suffix_pos < suffix_end);

  NodeId node = tree_.root();
  uint64_t pos = suffix_pos;
  while (true) {
    NodeId child = FindChild(node, text[pos]);
    if (child == kInvalidNode) {
      NodeId leaf = NewLeaf(pos, suffix_end, node, suffix_pos);
      SetChild(node, text[pos], leaf);
      return;
    }
    // Match along the child's arc.
    const uint64_t arc_start = tree_.nodes_[child].start;
    const uint64_t arc_end = tree_.nodes_[child].end;
    uint64_t k = arc_start;
    while (k < arc_end && pos < suffix_end && text[k] == text[pos]) {
      ++k;
      ++pos;
    }
    if (k == arc_end) {
      // Fully matched the arc; descend. pos < suffix_end is guaranteed:
      // the terminator is unique, so the suffix cannot be exhausted at an
      // existing node (no other path contains this terminator).
      OASIS_DCHECK(pos < suffix_end);
      node = child;
      continue;
    }
    // Mismatch inside the arc (k > arc_start because FindChild matched the
    // first symbol): split and hang a new leaf.
    NodeId split = NewInternal(arc_start, k, node);
    SetChild(node, text[arc_start], split);
    tree_.nodes_[child].start = k;
    SetChild(split, text[k], child);
    NodeId leaf = NewLeaf(pos, suffix_end, split, suffix_pos);
    SetChild(split, text[pos], leaf);
    return;
  }
}

util::StatusOr<SuffixTree> TreeBuilder::Finish(
    const std::vector<uint8_t>* excluded) {
  OASIS_RETURN_NOT_OK(tree_.Validate(excluded));
  return std::move(tree_);
}

// ---------------------------------------------------------------------------
// Ukkonen construction
// ---------------------------------------------------------------------------

namespace {

/// Classic Ukkonen active-point construction, processed sequence by
/// sequence. Leaves created while processing sequence k carry the open-end
/// sentinel; after the terminator phase of sequence k they are frozen at
/// the terminator position + 1, the active point is back at the root and
/// the next sequence starts cleanly. (See suffix_tree.h header comment.)
class UkkonenBuilder {
 public:
  explicit UkkonenBuilder(const seq::SequenceDatabase& db)
      : db_(db), text_(db.symbols()), b_(db) {}

  util::StatusOr<SuffixTree> BuildRaw() {
    for (seq::SequenceId s = 0; s < db_.num_sequences(); ++s) {
      const uint64_t begin = db_.SequenceStart(s);
      const uint64_t term = db_.SequenceEnd(s);  // terminator position
      open_leaves_.clear();
      for (uint64_t pos = begin; pos <= term; ++pos) ExtendWith(pos);
      OASIS_CHECK_EQ(remainder_, 0u)
          << "unique terminator must flush all pending suffixes";
      OASIS_CHECK_EQ(active_len_, 0u);
      active_node_ = b_.tree().root();
      // Freeze this sequence's leaves at terminator + 1.
      for (NodeId leaf : open_leaves_) b_.SetEdgeEnd(leaf, term + 1);
    }
    // Skip TreeBuilder::Finish(): suffix starts are not derived yet, so
    // Validate() would fail; BuildUkkonen validates after deriving them.
    return std::move(b_.tree());
  }

 private:
  uint64_t NodeEnd(NodeId n, uint64_t phase_pos) {
    uint64_t e = b_.EdgeEnd(n);
    return e == kOpenEnd ? phase_pos + 1 : e;
  }
  uint64_t EdgeLen(NodeId n, uint64_t phase_pos) {
    return NodeEnd(n, phase_pos) - b_.EdgeStart(n);
  }

  NodeId NewOpenLeaf(uint64_t start, NodeId parent) {
    NodeId leaf = b_.NewLeaf(start, kOpenEnd, parent, /*suffix_start=*/0);
    open_leaves_.push_back(leaf);
    return leaf;
  }

  void AddSuffixLink(NodeId node) {
    if (pending_link_ != kInvalidNode && pending_link_ != node) {
      b_.SetSuffixLink(pending_link_, node);
    }
    pending_link_ = node;
  }

  /// Walk-down (canonize): when the active length spans the whole active
  /// edge, descend one node and retry.
  bool WalkDown(NodeId next, uint64_t phase_pos) {
    uint64_t len = EdgeLen(next, phase_pos);
    if (active_len_ >= len) {
      active_edge_pos_ += len;
      active_len_ -= len;
      active_node_ = next;
      return true;
    }
    return false;
  }

  void ExtendWith(uint64_t pos) {
    const seq::Symbol c = text_[pos];
    pending_link_ = kInvalidNode;
    ++remainder_;
    while (remainder_ > 0) {
      if (active_len_ == 0) active_edge_pos_ = pos;
      NodeId next = b_.FindChild(active_node_, text_[active_edge_pos_]);
      if (next == kInvalidNode) {
        // Rule 2: new leaf directly under active_node_.
        NodeId leaf = NewOpenLeaf(pos, active_node_);
        b_.SetChild(active_node_, c, leaf);
        AddSuffixLink(active_node_);
      } else {
        if (WalkDown(next, pos)) continue;
        if (text_[b_.EdgeStart(next) + active_len_] == c) {
          // Rule 3: already present. Stop this phase.
          AddSuffixLink(active_node_);
          ++active_len_;
          break;
        }
        // Rule 2 with split.
        uint64_t split_point = b_.EdgeStart(next) + active_len_;
        NodeId split =
            b_.NewInternal(b_.EdgeStart(next), split_point, active_node_);
        b_.SetChild(active_node_, text_[b_.EdgeStart(next)], split);
        b_.SetEdgeStart(next, split_point);
        b_.SetChild(split, text_[split_point], next);
        NodeId leaf = NewOpenLeaf(pos, split);
        b_.SetChild(split, c, leaf);
        AddSuffixLink(split);
      }
      --remainder_;
      if (active_node_ == b_.tree().root() && active_len_ > 0) {
        --active_len_;
        active_edge_pos_ = pos - remainder_ + 1;
      } else if (active_node_ != b_.tree().root()) {
        active_node_ = b_.SuffixLink(active_node_);
      }
    }
  }

  const seq::SequenceDatabase& db_;
  const std::vector<seq::Symbol>& text_;
  TreeBuilder b_;

  NodeId active_node_ = 0;
  uint64_t active_edge_pos_ = 0;
  uint64_t active_len_ = 0;
  uint32_t remainder_ = 0;
  NodeId pending_link_ = kInvalidNode;
  std::vector<NodeId> open_leaves_;
};

}  // namespace

util::StatusOr<SuffixTree> SuffixTree::BuildUkkonen(
    const seq::SequenceDatabase& db) {
  UkkonenBuilder builder(db);
  OASIS_ASSIGN_OR_RETURN(SuffixTree tree, builder.BuildRaw());
  // Derive suffix_start for every leaf: suffix_start = edge_end - depth.
  // Iterative DFS carrying path depth.
  std::vector<std::pair<NodeId, uint32_t>> stack;  // (node, depth at node)
  stack.push_back({tree.root(), 0});
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    for (const ChildEdge& e : tree.nodes_[node].children) {
      Node& child = tree.nodes_[e.second];
      uint32_t child_depth =
          depth + static_cast<uint32_t>(child.end - child.start);
      if (child.is_leaf) {
        child.suffix_start = child.end - child_depth;
      } else {
        stack.push_back({e.second, child_depth});
      }
    }
  }
  OASIS_RETURN_NOT_OK(tree.Validate());
  return tree;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

uint32_t SuffixTree::depth(NodeId id) const {
  uint32_t d = 0;
  while (id != root()) {
    d += edge_length(id);
    id = nodes_[id].parent;
  }
  return d;
}

NodeId SuffixTree::FindChild(NodeId id, seq::Symbol symbol) const {
  const auto& kids = nodes_[id].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), symbol,
      [](const ChildEdge& e, seq::Symbol s) { return e.first < s; });
  if (it != kids.end() && it->first == symbol) return it->second;
  return kInvalidNode;
}

NodeId SuffixTree::MatchPattern(std::span<const seq::Symbol> pattern) const {
  if (pattern.empty()) return root();
  const std::vector<seq::Symbol>& text = db_->symbols();
  NodeId node = root();
  size_t matched = 0;
  while (matched < pattern.size()) {
    NodeId child = FindChild(node, pattern[matched]);
    if (child == kInvalidNode) return kInvalidNode;
    uint64_t k = nodes_[child].start;
    uint64_t end = nodes_[child].end;
    while (k < end && matched < pattern.size()) {
      if (text[k] != pattern[matched]) return kInvalidNode;
      ++k;
      ++matched;
    }
    node = child;
  }
  return node;
}

bool SuffixTree::ContainsSubstring(std::span<const seq::Symbol> pattern) const {
  return MatchPattern(pattern) != kInvalidNode;
}

std::vector<uint64_t> SuffixTree::FindOccurrences(
    std::span<const seq::Symbol> pattern) const {
  std::vector<uint64_t> out;
  NodeId node = MatchPattern(pattern);
  if (node == kInvalidNode) return out;
  // Collect suffix starts of all leaf descendants.
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (nodes_[n].is_leaf) {
      out.push_back(nodes_[n].suffix_start);
      continue;
    }
    for (const ChildEdge& e : nodes_[n].children) stack.push_back(e.second);
  }
  return out;
}

util::Status SuffixTree::Validate(
    const std::vector<uint8_t>* excluded) const {
  const std::vector<seq::Symbol>& text = db_->symbols();
  if (nodes_.empty()) return util::Status::Corruption("no root node");
  if (excluded != nullptr && excluded->size() != db_->total_length()) {
    return util::Status::Corruption("exclusion map length mismatch");
  }
  uint64_t expected_leaves = db_->total_length();
  if (excluded != nullptr) {
    for (uint8_t e : *excluded) expected_leaves -= (e != 0);
  }
  if (num_leaves_ != expected_leaves) {
    return util::Status::Corruption(
        "leaf count " + std::to_string(num_leaves_) + " != suffix count " +
        std::to_string(expected_leaves));
  }
  // DFS: check compactness, child ordering, edge first-symbol consistency,
  // parent pointers, and leaf suffix labels.
  std::vector<std::pair<NodeId, uint32_t>> stack{{root(), 0}};
  size_t visited = 0;
  std::vector<bool> leaf_seen(db_->total_length(), false);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    ++visited;
    const Node& n = nodes_[node];
    if (n.is_leaf) {
      if (!n.children.empty()) {
        return util::Status::Corruption("leaf has children");
      }
      uint64_t ss = n.suffix_start;
      if (ss >= db_->total_length() || leaf_seen[ss]) {
        return util::Status::Corruption("bad or duplicate leaf suffix start");
      }
      if (excluded != nullptr && (*excluded)[ss]) {
        return util::Status::Corruption(
            "excluded suffix " + std::to_string(ss) + " present as a leaf");
      }
      leaf_seen[ss] = true;
      // The leaf's path must equal the suffix: depth symbols ending just
      // past the terminator of its sequence.
      seq::SequenceCoord c = db_->Locate(ss);
      uint64_t expect_end = db_->SequenceEnd(c.sequence_id) + 1;
      if (ss + depth != expect_end) {
        return util::Status::Corruption(
            "leaf path length mismatch at suffix " + std::to_string(ss));
      }
      continue;
    }
    if (node != root() && n.children.size() < 2) {
      return util::Status::Corruption("non-compact internal node");
    }
    seq::Symbol prev_sym = 0;
    bool first = true;
    for (const ChildEdge& e : n.children) {
      if (!first && e.first <= prev_sym) {
        return util::Status::Corruption("children not strictly sorted");
      }
      first = false;
      prev_sym = e.first;
      const Node& child = nodes_[e.second];
      if (child.parent != node) {
        return util::Status::Corruption("bad parent pointer");
      }
      if (child.start >= child.end || child.end > text.size()) {
        return util::Status::Corruption("bad edge range");
      }
      if (text[child.start] != e.first) {
        return util::Status::Corruption("edge first symbol != child key");
      }
      stack.push_back(
          {e.second, depth + static_cast<uint32_t>(child.end - child.start)});
    }
  }
  if (visited != nodes_.size()) {
    return util::Status::Corruption("orphan nodes present");
  }
  for (size_t i = 0; i < leaf_seen.size(); ++i) {
    if (excluded != nullptr && (*excluded)[i]) continue;
    if (!leaf_seen[i]) {
      return util::Status::Corruption("suffix " + std::to_string(i) +
                                      " missing from tree");
    }
  }
  return util::Status::OK();
}

bool SuffixTree::Equal(const SuffixTree& a, const SuffixTree& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_leaves() != b.num_leaves()) {
    return false;
  }
  const std::vector<seq::Symbol>& ta = a.db_->symbols();
  const std::vector<seq::Symbol>& tb = b.db_->symbols();
  // Parallel DFS comparing structure and labels (node ids may differ).
  std::vector<std::pair<NodeId, NodeId>> stack{{a.root(), b.root()}};
  while (!stack.empty()) {
    auto [na, nb] = stack.back();
    stack.pop_back();
    const Node& x = a.nodes_[na];
    const Node& y = b.nodes_[nb];
    if (x.is_leaf != y.is_leaf) return false;
    if (x.is_leaf) {
      if (x.suffix_start != y.suffix_start) return false;
      continue;
    }
    if (x.children.size() != y.children.size()) return false;
    for (size_t i = 0; i < x.children.size(); ++i) {
      if (x.children[i].first != y.children[i].first) return false;
      const Node& cx = a.nodes_[x.children[i].second];
      const Node& cy = b.nodes_[y.children[i].second];
      uint64_t len_x = cx.end - cx.start;
      uint64_t len_y = cy.end - cy.start;
      if (len_x != len_y) return false;
      for (uint64_t k = 0; k < len_x; ++k) {
        if (ta[cx.start + k] != tb[cy.start + k]) return false;
      }
      stack.push_back({x.children[i].second, y.children[i].second});
    }
  }
  return true;
}

}  // namespace suffix
}  // namespace oasis
