#include "suffix/packed_builder.h"

#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>

#include "storage/block_file.h"
#include "util/random.h"
#include "util/logging.h"

namespace oasis {
namespace suffix {

namespace {

util::Status WriteSymbolsFile(const SuffixTree& tree, const std::string& path,
                              uint32_t block_size) {
  const seq::SequenceDatabase& db = tree.database();
  OASIS_ASSIGN_OR_RETURN(storage::BlockFile file,
                         storage::BlockFile::Create(path, block_size));
  OASIS_ASSIGN_OR_RETURN(storage::RecordBlockWriter writer,
                         storage::RecordBlockWriter::Create(&file, 1));
  const uint32_t sigma = db.alphabet().size();
  for (seq::Symbol s : db.symbols()) {
    uint8_t byte = s < sigma ? static_cast<uint8_t>(s) : kTerminatorByte;
    OASIS_RETURN_NOT_OK(writer.Append(&byte));
  }
  return writer.Finish();
}

util::Status WriteMeta(const SuffixTree& tree, uint64_t num_internal,
                       const std::string& path, uint32_t block_size) {
  const seq::SequenceDatabase& db = tree.database();
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot write metadata '" + path + "'");
  out << "num_internal " << num_internal << "\n";
  out << "total_length " << db.total_length() << "\n";
  out << "sigma " << db.alphabet().size() << "\n";
  out << "block_size " << block_size << "\n";
  out << "alphabet_kind "
      << (db.alphabet().kind() == seq::AlphabetKind::kDna ? 0 : 1) << "\n";
  out << "num_sequences " << db.num_sequences() << "\n";
  for (size_t i = 0; i < db.num_sequences(); ++i) {
    out << "seq_start " << db.SequenceStart(static_cast<seq::SequenceId>(i))
        << "\n";
  }
  out.flush();
  if (!out) return util::Status::IOError("metadata write failed");
  return util::Status::OK();
}

}  // namespace

util::Status PackSuffixTree(const SuffixTree& tree, const std::string& dir,
                            const PackOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IOError("cannot create index directory '" + dir +
                                 "': " + ec.message());
  }
  const seq::SequenceDatabase& db = tree.database();
  if (db.alphabet().size() >= kTerminatorByte) {
    return util::Status::NotSupported("alphabet too large for packed format");
  }
  if (db.total_length() > 0x7FFFFFFFull) {
    return util::Status::NotSupported(
        "database too large for 31-bit packed node pointers");
  }

  // --- Pass 1: BFS over internal nodes assigns level-first indices. -------
  // BFS processes each internal node's internal children as one contiguous
  // run, which is exactly the sibling-adjacency the format requires.
  //
  // In scatter mode (layout ablation), the sibling *groups* gathered by the
  // BFS are permuted before index assignment: runs stay contiguous, but
  // related groups no longer share blocks.
  std::vector<NodeId> bfs_order;          // packed idx -> in-memory node id
  std::vector<uint32_t> packed_idx(tree.num_nodes(), kNone);
  {
    std::vector<std::vector<NodeId>> groups;
    groups.push_back({tree.root()});
    std::deque<NodeId> queue{tree.root()};
    while (!queue.empty()) {
      NodeId node = queue.front();
      queue.pop_front();
      std::vector<NodeId> group;
      for (const SuffixTree::ChildEdge& e : tree.children(node)) {
        if (!tree.is_leaf(e.second)) {
          group.push_back(e.second);
          queue.push_back(e.second);
        }
      }
      if (!group.empty()) groups.push_back(std::move(group));
    }
    if (options.scatter_internal_nodes && groups.size() > 2) {
      // Fisher-Yates over groups[1..] (the root stays at index 0).
      util::Random rng(options.scatter_seed);
      for (size_t i = groups.size() - 1; i > 1; --i) {
        size_t j = 1 + static_cast<size_t>(rng.Uniform(i));
        std::swap(groups[i], groups[j]);
      }
    }
    for (const std::vector<NodeId>& group : groups) {
      for (NodeId node : group) {
        packed_idx[node] = static_cast<uint32_t>(bfs_order.size());
        bfs_order.push_back(node);
      }
    }
  }
  const uint64_t num_internal = bfs_order.size();

  // Depths of internal nodes, computed top-down over the tree itself
  // (bfs_order may be permuted in scatter mode, so parents are not
  // guaranteed to precede children there).
  std::vector<uint32_t> depth(num_internal, 0);
  {
    std::vector<std::pair<NodeId, uint32_t>> stack{{tree.root(), 0}};
    while (!stack.empty()) {
      auto [node, d] = stack.back();
      stack.pop_back();
      depth[packed_idx[node]] = d;
      for (const SuffixTree::ChildEdge& e : tree.children(node)) {
        if (!tree.is_leaf(e.second)) {
          stack.push_back({e.second, d + tree.edge_length(e.second)});
        }
      }
    }
  }

  // --- Pass 2: build records and the leaf chains. --------------------------
  std::vector<PackedInternalNode> records(num_internal);
  std::vector<uint32_t> leaf_next(db.total_length(), kNone);

  // Depth/offset first; the child-linking pass below ORs last-sibling flags
  // into *child* records, which must not be overwritten afterwards.
  for (uint64_t i = 0; i < num_internal; ++i) {
    records[i].depth_and_flag = depth[i];
    records[i].sym_offset = static_cast<uint32_t>(tree.edge_start(bfs_order[i]));
    records[i].first_internal = kNone;
    records[i].first_leaf = kNone;
  }
  for (uint64_t i = 0; i < num_internal; ++i) {
    NodeId node = bfs_order[i];
    PackedInternalNode& rec = records[i];
    uint32_t last_internal_child = kNone;
    uint32_t prev_leaf = kNone;
    for (const SuffixTree::ChildEdge& e : tree.children(node)) {
      if (tree.is_leaf(e.second)) {
        uint32_t leaf = static_cast<uint32_t>(tree.suffix_start(e.second));
        if (rec.first_leaf == kNone) {
          rec.first_leaf = leaf;
        } else {
          leaf_next[prev_leaf] = leaf;
        }
        prev_leaf = leaf;
      } else {
        uint32_t child = packed_idx[e.second];
        if (rec.first_internal == kNone) rec.first_internal = child;
        last_internal_child = child;
      }
    }
    if (last_internal_child != kNone) {
      records[last_internal_child].depth_and_flag |= 0x80000000u;
    }
  }
  // The root has no siblings; mark it last for well-formedness.
  records[0].depth_and_flag |= 0x80000000u;

  // --- Write the files. -----------------------------------------------------
  OASIS_RETURN_NOT_OK(WriteSymbolsFile(
      tree, dir + "/" + PackedTreeFiles::kSymbols, options.block_size));

  {
    OASIS_ASSIGN_OR_RETURN(
        storage::BlockFile file,
        storage::BlockFile::Create(dir + "/" + PackedTreeFiles::kInternal,
                                   options.block_size));
    OASIS_ASSIGN_OR_RETURN(
        storage::RecordBlockWriter writer,
        storage::RecordBlockWriter::Create(&file, sizeof(PackedInternalNode)));
    for (const PackedInternalNode& rec : records) {
      OASIS_RETURN_NOT_OK(writer.Append(&rec));
    }
    OASIS_RETURN_NOT_OK(writer.Finish());
  }
  {
    OASIS_ASSIGN_OR_RETURN(
        storage::BlockFile file,
        storage::BlockFile::Create(dir + "/" + PackedTreeFiles::kLeaves,
                                   options.block_size));
    OASIS_ASSIGN_OR_RETURN(storage::RecordBlockWriter writer,
                           storage::RecordBlockWriter::Create(&file, 4));
    for (uint32_t next : leaf_next) {
      OASIS_RETURN_NOT_OK(writer.Append(&next));
    }
    OASIS_RETURN_NOT_OK(writer.Finish());
  }
  return WriteMeta(tree, num_internal, dir + "/" + PackedTreeFiles::kMeta,
                   options.block_size);
}

util::StatusOr<std::unique_ptr<PackedSuffixTree>> BuildAndOpenPacked(
    const seq::SequenceDatabase& db, const std::string& dir,
    storage::BufferPool* pool, const PackOptions& options) {
  OASIS_ASSIGN_OR_RETURN(SuffixTree tree, SuffixTree::BuildUkkonen(db));
  OASIS_RETURN_NOT_OK(PackSuffixTree(tree, dir, options));
  return PackedSuffixTree::Open(dir, pool);
}

}  // namespace suffix
}  // namespace oasis
