#include "suffix/tree_cursor.h"

#include "util/logging.h"

namespace oasis {
namespace suffix {

util::Status TreeCursor::ForEachChild(
    PackedNodeRef parent, uint32_t parent_depth,
    const std::function<bool(const ChildArc&)>& fn) const {
  OASIS_CHECK(!parent.is_leaf) << "leaves have no children";
  OASIS_ASSIGN_OR_RETURN(PackedInternalNode rec,
                         tree_->ReadInternal(parent.index, memo_.get()));
  OASIS_DCHECK(rec.depth() == parent_depth);

  // Internal children: a contiguous run starting at first_internal, ended
  // by the last-sibling flag. The run is physically contiguous (level-first
  // layout), so with a memo every sibling after the first in a block is a
  // pool-free read.
  if (rec.first_internal != kNone) {
    uint32_t idx = rec.first_internal;
    while (true) {
      OASIS_ASSIGN_OR_RETURN(PackedInternalNode child,
                             tree_->ReadInternal(idx, memo_.get()));
      ChildArc arc;
      arc.node = PackedNodeRef::Internal(idx);
      arc.depth = child.depth();
      arc.arc_len = child.depth() - parent_depth;
      arc.arc_start = child.sym_offset;
      if (!fn(arc)) return util::Status::OK();
      if (child.last_sibling()) break;
      ++idx;
    }
  }

  // Leaf children: a linked chain of leaf-array slots.
  uint32_t leaf = rec.first_leaf;
  while (leaf != kNone) {
    // The leaf's suffix runs from position `leaf` through its sequence's
    // terminator; the unconsumed arc label starts parent_depth symbols in.
    uint64_t term = tree_->TerminatorPos(tree_->SequenceOf(leaf));
    uint64_t label_start = static_cast<uint64_t>(leaf) + parent_depth;
    OASIS_DCHECK(label_start <= term);
    ChildArc arc;
    arc.node = PackedNodeRef::Leaf(leaf);
    arc.arc_start = label_start;
    arc.arc_len = static_cast<uint32_t>(term - label_start);
    arc.depth = parent_depth + arc.arc_len;
    if (!fn(arc)) return util::Status::OK();
    OASIS_ASSIGN_OR_RETURN(leaf, tree_->ReadLeafNext(leaf, memo_.get()));
  }
  return util::Status::OK();
}

util::Status TreeCursor::CollectLeafPositions(PackedNodeRef node,
                                              std::vector<uint64_t>* out,
                                              size_t limit) const {
  if (node.is_leaf) {
    out->push_back(node.index);
    return util::Status::OK();
  }
  // Iterative DFS over packed records. Depth argument to ForEachChild must
  // be the node's own depth, which we fetch from its record.
  std::vector<PackedNodeRef> stack{node};
  while (!stack.empty()) {
    PackedNodeRef n = stack.back();
    stack.pop_back();
    if (n.is_leaf) {
      out->push_back(n.index);
      if (limit != 0 && out->size() >= limit) return util::Status::OK();
      continue;
    }
    OASIS_ASSIGN_OR_RETURN(PackedInternalNode rec,
                           tree_->ReadInternal(n.index, memo_.get()));
    OASIS_RETURN_NOT_OK(ForEachChild(n, rec.depth(),
                                     [&stack](const ChildArc& arc) {
                                       stack.push_back(arc.node);
                                       return true;
                                     }));
  }
  return util::Status::OK();
}

util::StatusOr<bool> TreeCursor::ContainsSubstring(
    const std::vector<uint8_t>& pattern) const {
  PackedNodeRef node = Root();
  uint32_t node_depth = 0;
  size_t matched = 0;
  std::vector<uint8_t> label;
  while (matched < pattern.size()) {
    if (node.is_leaf) return false;
    // Find the child whose arc starts with pattern[matched].
    bool found = false;
    ChildArc next;
    util::Status status = ForEachChild(
        node, node_depth, [&](const ChildArc& arc) {
          if (arc.arc_len == 0) return true;  // terminator-only leaf arc
          // Peek the first symbol of the arc.
          std::vector<uint8_t> first;
          util::Status s = ReadArcSymbols(arc.arc_start, 1, &first);
          if (!s.ok()) return true;  // surfaced by the full read below
          if (first[0] == pattern[matched]) {
            next = arc;
            found = true;
            return false;
          }
          return true;
        });
    OASIS_RETURN_NOT_OK(status);
    if (!found) return false;
    uint32_t take = std::min<uint32_t>(
        next.arc_len, static_cast<uint32_t>(pattern.size() - matched));
    OASIS_RETURN_NOT_OK(ReadArcSymbols(next.arc_start, take, &label));
    for (uint32_t k = 0; k < take; ++k) {
      if (label[k] != pattern[matched + k]) return false;
    }
    matched += take;
    if (matched < pattern.size() && take == next.arc_len) {
      node = next.node;
      node_depth = next.depth;
      continue;
    }
    if (matched == pattern.size()) return true;
    return false;  // pattern continues but the arc ended at a terminator
  }
  return true;  // empty pattern
}

}  // namespace suffix
}  // namespace oasis
