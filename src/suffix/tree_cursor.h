// Traversal layer over PackedSuffixTree: typed node references, child
// enumeration (internal run + leaf chain), arc-label fetching and leaf-
// descendant collection. This is the interface the OASIS search consumes.
//
// A cursor can carry a per-thread storage::FetchMemo (opt-in at
// construction): sibling-run traversal reads the same 2K block over and
// over — 128 internal records per block in level-first order — and the
// memo lets every read after the first skip the buffer pool entirely (no
// shard lock, no hash probe, no pin traffic). The memo is a no-op over
// mapped trees, whose fetch is already a bounds check. A memo-carrying
// cursor is thread-confined: one cursor per search thread, which is how
// every caller already uses it (core::internal::SearchRun owns one per
// search). Memo-less cursors remain stateless and shareable.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "suffix/packed_tree.h"

namespace oasis {
namespace suffix {

/// Reference to a packed node: either an internal record index or a leaf
/// array index (== suffix start position).
struct PackedNodeRef {
  uint32_t index = 0;    ///< record index (internal) or suffix start (leaf)
  bool is_leaf = false;  ///< which array `index` points into

  static PackedNodeRef Internal(uint32_t idx) { return {idx, false}; }  ///< internal-node ref
  static PackedNodeRef Leaf(uint32_t idx) { return {idx, true}; }  ///< leaf ref
  bool operator==(const PackedNodeRef&) const = default;  ///< memberwise equality
};

/// One child produced by TreeCursor::ForEachChild.
struct ChildArc {
  PackedNodeRef node;      ///< the child node itself
  uint64_t arc_start = 0;  ///< first symbol position of the arc label
  uint32_t arc_len = 0;    ///< residue symbols on the arc (terminator excluded)
  uint32_t depth = 0;      ///< child path depth in residues (terminator excluded)
};

/// Cursor utilities over one packed tree. All operations return Status
/// because every access may touch disk through the buffer pool. Stateless
/// (and thread-safe) without a memo; thread-confined with one.
class TreeCursor {
 public:
  /// A cursor over `tree` (which must outlive it). `use_memo` enables the
  /// per-thread fetch memo described in the file comment.
  explicit TreeCursor(const PackedSuffixTree* tree, bool use_memo = false)
      : tree_(tree), memo_(use_memo ? std::make_unique<storage::FetchMemo>()
                                    : nullptr) {}

  const PackedSuffixTree& tree() const { return *tree_; }  ///< the traversed tree

  /// The cursor's fetch memo, or nullptr when constructed without one.
  /// Exposed so the search layer can route its own direct tree reads
  /// (record re-reads, arc-label fetches) through the same cache.
  storage::FetchMemo* memo() const { return memo_.get(); }

  PackedNodeRef Root() const { return PackedNodeRef::Internal(0); }  ///< record 0 by construction

  /// Invokes `fn` for every child of internal node `parent` (depth
  /// `parent_depth`): first the contiguous internal-sibling run, then the
  /// leaf chain. `fn` returning false stops the iteration early.
  ///
  /// For a leaf child the arc label is implicit: it starts at
  /// leaf_index + parent_depth and runs to the sequence terminator; arc_len
  /// counts only the residues (possibly zero for a terminator-only arc).
  util::Status ForEachChild(PackedNodeRef parent, uint32_t parent_depth,
                            const std::function<bool(const ChildArc&)>& fn) const;

  /// Collects the suffix start positions of every leaf in `node`'s subtree.
  /// For a leaf, that is the leaf itself. `limit` caps the result size
  /// (0 = unlimited).
  util::Status CollectLeafPositions(PackedNodeRef node,
                                    std::vector<uint64_t>* out,
                                    size_t limit = 0) const;

  /// Reads `len` residue bytes of an arc label starting at `pos`.
  util::Status ReadArcSymbols(uint64_t pos, uint32_t len,
                              std::vector<uint8_t>* out) const {
    return tree_->ReadSymbols(pos, len, out, storage::Admission::kNormal,
                              memo_.get());
  }

  /// Exact-substring test over the packed tree (paper §2.3.1); used by
  /// tests to validate the packed form against the in-memory form.
  /// `pattern` holds residue codes.
  util::StatusOr<bool> ContainsSubstring(const std::vector<uint8_t>& pattern) const;

 private:
  const PackedSuffixTree* tree_;
  /// Owned per-cursor fetch memo; unique_ptr keeps memo-less cursors as
  /// cheap as before and the cursor movable.
  std::unique_ptr<storage::FetchMemo> memo_;
};

}  // namespace suffix
}  // namespace oasis
