// Traversal layer over PackedSuffixTree: typed node references, child
// enumeration (internal run + leaf chain), arc-label fetching and leaf-
// descendant collection. This is the interface the OASIS search consumes.

#pragma once

#include <functional>
#include <vector>

#include "suffix/packed_tree.h"

namespace oasis {
namespace suffix {

/// Reference to a packed node: either an internal record index or a leaf
/// array index (== suffix start position).
struct PackedNodeRef {
  uint32_t index = 0;
  bool is_leaf = false;

  static PackedNodeRef Internal(uint32_t idx) { return {idx, false}; }
  static PackedNodeRef Leaf(uint32_t idx) { return {idx, true}; }
  bool operator==(const PackedNodeRef&) const = default;
};

/// One child produced by TreeCursor::ForEachChild.
struct ChildArc {
  PackedNodeRef node;
  uint64_t arc_start = 0;  ///< first symbol position of the arc label
  uint32_t arc_len = 0;    ///< residue symbols on the arc (terminator excluded)
  uint32_t depth = 0;      ///< child path depth in residues (terminator excluded)
};

/// Stateless cursor utilities over one packed tree. All operations return
/// Status because every access may touch disk through the buffer pool.
class TreeCursor {
 public:
  explicit TreeCursor(const PackedSuffixTree* tree) : tree_(tree) {}

  const PackedSuffixTree& tree() const { return *tree_; }

  PackedNodeRef Root() const { return PackedNodeRef::Internal(0); }

  /// Invokes `fn` for every child of internal node `parent` (depth
  /// `parent_depth`): first the contiguous internal-sibling run, then the
  /// leaf chain. `fn` returning false stops the iteration early.
  ///
  /// For a leaf child the arc label is implicit: it starts at
  /// leaf_index + parent_depth and runs to the sequence terminator; arc_len
  /// counts only the residues (possibly zero for a terminator-only arc).
  util::Status ForEachChild(PackedNodeRef parent, uint32_t parent_depth,
                            const std::function<bool(const ChildArc&)>& fn) const;

  /// Collects the suffix start positions of every leaf in `node`'s subtree.
  /// For a leaf, that is the leaf itself. `limit` caps the result size
  /// (0 = unlimited).
  util::Status CollectLeafPositions(PackedNodeRef node,
                                    std::vector<uint64_t>* out,
                                    size_t limit = 0) const;

  /// Reads `len` residue bytes of an arc label starting at `pos`.
  util::Status ReadArcSymbols(uint64_t pos, uint32_t len,
                              std::vector<uint8_t>* out) const {
    return tree_->ReadSymbols(pos, len, out);
  }

  /// Exact-substring test over the packed tree (paper §2.3.1); used by
  /// tests to validate the packed form against the in-memory form.
  /// `pattern` holds residue codes.
  util::StatusOr<bool> ContainsSubstring(const std::vector<uint8_t>& pattern) const;

 private:
  const PackedSuffixTree* tree_;
};

}  // namespace suffix
}  // namespace oasis
