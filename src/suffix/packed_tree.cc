#include "suffix/packed_tree.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/logging.h"

namespace oasis {
namespace suffix {

namespace {
// Metadata file format: a line-oriented key=value text file (easy to
// inspect with standard tools; read once at open).
struct Meta {
  uint64_t num_internal = 0;
  uint64_t total_length = 0;
  uint32_t sigma = 0;
  uint32_t block_size = 0;
  int alphabet_kind = 1;  // 0 = dna, 1 = protein
  std::vector<uint64_t> seq_starts;
};

util::StatusOr<Meta> ReadMeta(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open metadata '" + path + "'");
  Meta meta;
  std::string key;
  while (in >> key) {
    if (key == "num_internal") {
      in >> meta.num_internal;
    } else if (key == "total_length") {
      in >> meta.total_length;
    } else if (key == "sigma") {
      in >> meta.sigma;
    } else if (key == "block_size") {
      in >> meta.block_size;
    } else if (key == "alphabet_kind") {
      in >> meta.alphabet_kind;
    } else if (key == "num_sequences") {
      uint64_t n;
      in >> n;
      meta.seq_starts.reserve(n);
    } else if (key == "seq_start") {
      uint64_t s;
      in >> s;
      meta.seq_starts.push_back(s);
    } else {
      return util::Status::Corruption("unknown metadata key '" + key + "'");
    }
    if (!in && !in.eof()) {
      return util::Status::Corruption("malformed metadata value for '" + key + "'");
    }
  }
  if (meta.total_length == 0 || meta.sigma == 0 || meta.block_size == 0 ||
      meta.seq_starts.empty()) {
    return util::Status::Corruption("incomplete metadata in '" + path + "'");
  }
  return meta;
}
}  // namespace

util::StatusOr<uint32_t> PeekIndexBlockSize(const std::string& dir) {
  OASIS_ASSIGN_OR_RETURN(Meta meta,
                         ReadMeta(dir + "/" + PackedTreeFiles::kMeta));
  return meta.block_size;
}

util::StatusOr<uint64_t> PackedIndexBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const char* name : {PackedTreeFiles::kSymbols,
                           PackedTreeFiles::kInternal,
                           PackedTreeFiles::kLeaves}) {
    std::error_code ec;
    const uint64_t size =
        std::filesystem::file_size(dir + "/" + std::string(name), ec);
    if (ec) {
      return util::Status::IOError("stat '" + dir + "/" + name +
                                   "': " + ec.message());
    }
    total += size;
  }
  return total;
}

util::StatusOr<std::unique_ptr<PackedSuffixTree>> PackedSuffixTree::OpenCommon(
    const std::string& dir) {
  OASIS_ASSIGN_OR_RETURN(Meta meta,
                         ReadMeta(dir + "/" + PackedTreeFiles::kMeta));
  // Cannot use make_unique: constructor is private.
  std::unique_ptr<PackedSuffixTree> tree(new PackedSuffixTree());
  tree->num_internal_ = meta.num_internal;
  tree->total_length_ = meta.total_length;
  tree->sigma_ = meta.sigma;
  tree->kind_ = meta.alphabet_kind == 0 ? seq::AlphabetKind::kDna
                                        : seq::AlphabetKind::kProtein;
  tree->seq_starts_ = std::move(meta.seq_starts);
  tree->block_size_ = meta.block_size;
  return tree;
}

util::StatusOr<std::unique_ptr<PackedSuffixTree>> PackedSuffixTree::Open(
    const std::string& dir, storage::BufferPool* pool,
    const std::string& segment_prefix) {
  OASIS_CHECK(pool != nullptr);
  OASIS_ASSIGN_OR_RETURN(std::unique_ptr<PackedSuffixTree> tree,
                         OpenCommon(dir));
  if (tree->block_size_ != pool->block_size()) {
    return util::Status::InvalidArgument(
        "packed tree block size " + std::to_string(tree->block_size_) +
        " != buffer pool block size " + std::to_string(pool->block_size()));
  }
  tree->source_ = storage::PageSource::Pooled(pool);

  OASIS_ASSIGN_OR_RETURN(
      tree->symbols_file_,
      storage::BlockFile::Open(dir + "/" + PackedTreeFiles::kSymbols,
                               tree->block_size_));
  OASIS_ASSIGN_OR_RETURN(
      tree->internal_file_,
      storage::BlockFile::Open(dir + "/" + PackedTreeFiles::kInternal,
                               tree->block_size_));
  OASIS_ASSIGN_OR_RETURN(
      tree->leaves_file_,
      storage::BlockFile::Open(dir + "/" + PackedTreeFiles::kLeaves,
                               tree->block_size_));
  tree->index_bytes_ =
      (tree->symbols_file_.num_blocks() + tree->internal_file_.num_blocks() +
       tree->leaves_file_.num_blocks()) *
      static_cast<uint64_t>(tree->block_size_);

  OASIS_ASSIGN_OR_RETURN(
      tree->seg_symbols_,
      tree->source_.AddSegment(segment_prefix + "symbols", &tree->symbols_file_));
  OASIS_ASSIGN_OR_RETURN(
      tree->seg_internal_,
      tree->source_.AddSegment(segment_prefix + "internal",
                               &tree->internal_file_));
  OASIS_ASSIGN_OR_RETURN(
      tree->seg_leaves_,
      tree->source_.AddSegment(segment_prefix + "leaves", &tree->leaves_file_));
  return tree;
}

util::StatusOr<std::unique_ptr<PackedSuffixTree>> PackedSuffixTree::OpenMapped(
    const std::string& dir) {
  OASIS_ASSIGN_OR_RETURN(std::unique_ptr<PackedSuffixTree> tree,
                         OpenCommon(dir));
  tree->source_ = storage::PageSource::Mapped();

  OASIS_ASSIGN_OR_RETURN(
      tree->symbols_map_,
      storage::MappedFile::Open(dir + "/" + PackedTreeFiles::kSymbols,
                                tree->block_size_));
  OASIS_ASSIGN_OR_RETURN(
      tree->internal_map_,
      storage::MappedFile::Open(dir + "/" + PackedTreeFiles::kInternal,
                                tree->block_size_));
  OASIS_ASSIGN_OR_RETURN(
      tree->leaves_map_,
      storage::MappedFile::Open(dir + "/" + PackedTreeFiles::kLeaves,
                                tree->block_size_));
  tree->index_bytes_ = tree->symbols_map_.size_bytes() +
                       tree->internal_map_.size_bytes() +
                       tree->leaves_map_.size_bytes();

  OASIS_ASSIGN_OR_RETURN(
      tree->seg_symbols_,
      tree->source_.AddSegment("symbols", &tree->symbols_map_));
  OASIS_ASSIGN_OR_RETURN(
      tree->seg_internal_,
      tree->source_.AddSegment("internal", &tree->internal_map_));
  OASIS_ASSIGN_OR_RETURN(
      tree->seg_leaves_,
      tree->source_.AddSegment("leaves", &tree->leaves_map_));
  return tree;
}

util::Status PackedSuffixTree::AdviseRandomAccess() const {
  if (source_.mapped()) {
    return util::Status::InvalidArgument(
        "AdviseRandomAccess is for pooled trees; a mapped tree relies on "
        "the kernel's readahead");
  }
  OASIS_RETURN_NOT_OK(symbols_file_.AdviseRandom());
  OASIS_RETURN_NOT_OK(internal_file_.AdviseRandom());
  OASIS_RETURN_NOT_OK(leaves_file_.AdviseRandom());
  return util::Status::OK();
}

uint32_t PackedSuffixTree::SequenceOf(uint64_t pos) const {
  OASIS_DCHECK(pos < total_length_);
  auto it = std::upper_bound(seq_starts_.begin(), seq_starts_.end(), pos);
  return static_cast<uint32_t>(it - seq_starts_.begin() - 1);
}

namespace {

/// Resolves one block through the memo when one is supplied, else straight
/// through the source. Returns a pointer to the block's bytes, valid until
/// the next read through the same memo (callers memcpy immediately).
util::StatusOr<const uint8_t*> BlockData(const storage::PageSource& source,
                                         storage::FetchMemo* memo,
                                         storage::SegmentId segment,
                                         storage::BlockId block,
                                         storage::Admission admission,
                                         storage::PageRef* scratch) {
  if (memo != nullptr) {
    OASIS_ASSIGN_OR_RETURN(const storage::PageRef* page,
                           memo->Get(source, segment, block, admission));
    return page->data();
  }
  OASIS_ASSIGN_OR_RETURN(*scratch, source.Fetch(segment, block, admission));
  return scratch->data();
}

}  // namespace

util::StatusOr<PackedInternalNode> PackedSuffixTree::ReadInternal(
    uint32_t idx, storage::FetchMemo* memo) const {
  if (idx >= num_internal_) {
    return util::Status::OutOfRange("internal node " + std::to_string(idx) +
                                    " out of range");
  }
  const uint32_t per_block = block_size_ / sizeof(PackedInternalNode);
  storage::PageRef scratch;
  OASIS_ASSIGN_OR_RETURN(
      const uint8_t* data,
      BlockData(source_, memo, seg_internal_, idx / per_block,
                storage::Admission::kNormal, &scratch));
  PackedInternalNode node;
  std::memcpy(&node,
              data + static_cast<size_t>(idx % per_block) *
                                sizeof(PackedInternalNode),
              sizeof(node));
  return node;
}

util::StatusOr<uint32_t> PackedSuffixTree::ReadLeafNext(
    uint32_t idx, storage::FetchMemo* memo) const {
  if (idx >= total_length_) {
    return util::Status::OutOfRange("leaf " + std::to_string(idx) +
                                    " out of range");
  }
  const uint32_t per_block = block_size_ / sizeof(uint32_t);
  storage::PageRef scratch;
  OASIS_ASSIGN_OR_RETURN(
      const uint8_t* data,
      BlockData(source_, memo, seg_leaves_, idx / per_block,
                storage::Admission::kNormal, &scratch));
  uint32_t next;
  std::memcpy(&next,
              data + static_cast<size_t>(idx % per_block) * sizeof(uint32_t),
              sizeof(next));
  return next;
}

util::Status PackedSuffixTree::ReadSymbols(uint64_t pos, uint32_t len,
                                           std::vector<uint8_t>* out,
                                           storage::Admission admission,
                                           storage::FetchMemo* memo) const {
  if (pos + len > total_length_) {
    return util::Status::OutOfRange("symbol range [" + std::to_string(pos) +
                                    ", +" + std::to_string(len) +
                                    ") out of range");
  }
  out->resize(len);
  uint32_t written = 0;
  while (written < len) {
    uint64_t p = pos + written;
    storage::BlockId block = p / block_size_;
    uint32_t offset = static_cast<uint32_t>(p % block_size_);
    uint32_t chunk = std::min(len - written, block_size_ - offset);
    storage::PageRef scratch;
    OASIS_ASSIGN_OR_RETURN(
        const uint8_t* data,
        BlockData(source_, memo, seg_symbols_, block, admission, &scratch));
    std::memcpy(out->data() + written, data + offset, chunk);
    written += chunk;
  }
  return util::Status::OK();
}

}  // namespace suffix
}  // namespace oasis
