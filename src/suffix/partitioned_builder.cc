#include "suffix/partitioned_builder.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace oasis {
namespace suffix {

namespace {

// Prefixes are encoded as base-(sigma+1) integers of exactly
// `prefix_length` digits. Residues map to their code; any terminator maps
// to the single digit `sigma` (terminators all sort together: each
// terminated suffix is unique anyway, and partitioning only needs a
// *disjoint cover*, not a total order refined to individual terminators).
// Suffixes shorter than the prefix length are padded with the terminator
// digit, which is correct because every suffix really does continue with
// its terminator and then nothing.
class PrefixCoder {
 public:
  PrefixCoder(const seq::SequenceDatabase& db, uint32_t prefix_length)
      : db_(db), sigma_(db.alphabet().size()), len_(prefix_length) {
    num_codes_ = 1;
    for (uint32_t i = 0; i < len_; ++i) num_codes_ *= (sigma_ + 1);
  }

  uint64_t num_codes() const { return num_codes_; }

  /// Code of the suffix starting at global position `pos`.
  uint64_t Encode(uint64_t pos) const {
    const std::vector<seq::Symbol>& text = db_.symbols();
    uint64_t code = 0;
    uint64_t p = pos;
    bool past_end = false;
    for (uint32_t i = 0; i < len_; ++i) {
      uint32_t digit;
      if (past_end || p >= text.size()) {
        digit = sigma_;
      } else {
        seq::Symbol s = text[p];
        if (s >= sigma_) {
          digit = sigma_;  // terminator: the suffix ends here
          past_end = true;
        } else {
          digit = s;
        }
        ++p;
      }
      code = code * (sigma_ + 1) + digit;
    }
    return code;
  }

 private:
  const seq::SequenceDatabase& db_;
  uint32_t sigma_;
  uint32_t len_;
  uint64_t num_codes_;
};

}  // namespace

util::StatusOr<SuffixTree> BuildPartitioned(
    const seq::SequenceDatabase& db, const PartitionedBuildOptions& options,
    PartitionedBuildStats* stats_out) {
  if (options.prefix_length == 0 || options.prefix_length > 8) {
    return util::Status::InvalidArgument("prefix_length must be in [1, 8]");
  }
  if (options.max_suffixes_per_pass == 0) {
    return util::Status::InvalidArgument("max_suffixes_per_pass must be positive");
  }
  PrefixCoder coder(db, options.prefix_length);
  if (coder.num_codes() > (1ull << 28)) {
    return util::Status::InvalidArgument(
        "prefix_length too large for this alphabet (code space overflow)");
  }

  const uint64_t n = db.total_length();
  const std::vector<uint8_t>* exclude = options.exclude;
  if (exclude != nullptr && exclude->empty()) exclude = nullptr;
  if (exclude != nullptr && exclude->size() != n) {
    return util::Status::InvalidArgument(
        "exclusion map length " + std::to_string(exclude->size()) +
        " != database length " + std::to_string(n));
  }

  PartitionedBuildStats stats;

  // Pass 0: count suffixes per prefix code (excluded positions never get
  // a leaf, so they never count toward a partition's budget either).
  std::vector<uint64_t> counts(coder.num_codes(), 0);
  for (uint64_t pos = 0; pos < n; ++pos) {
    if (exclude != nullptr && (*exclude)[pos]) {
      ++stats.excluded_suffixes;
      continue;
    }
    ++counts[coder.Encode(pos)];
  }

  // Greedily group consecutive codes into partitions under the budget.
  // Partition i covers codes [bounds[i], bounds[i+1]).
  std::vector<uint64_t> bounds{0};
  uint64_t running = 0;
  for (uint64_t code = 0; code < coder.num_codes(); ++code) {
    if (running > 0 && running + counts[code] > options.max_suffixes_per_pass) {
      bounds.push_back(code);
      running = 0;
    }
    running += counts[code];
  }
  bounds.push_back(coder.num_codes());

  stats.num_partitions = static_cast<uint32_t>(bounds.size() - 1);

  // One pass per partition: insert the partition's suffixes.
  TreeBuilder builder(db);
  for (size_t part = 0; part + 1 < bounds.size(); ++part) {
    const uint64_t lo = bounds[part];
    const uint64_t hi = bounds[part + 1];
    uint64_t inserted = 0;
    for (uint64_t pos = 0; pos < n; ++pos) {
      if (exclude != nullptr && (*exclude)[pos]) continue;
      uint64_t code = coder.Encode(pos);
      if (code >= lo && code < hi) {
        builder.InsertSuffixFromRoot(pos);
        ++inserted;
      }
    }
    ++stats.num_passes;
    stats.max_partition_suffixes =
        std::max(stats.max_partition_suffixes, inserted);
    stats.total_suffixes += inserted;
  }

  if (stats_out != nullptr) *stats_out = stats;
  return builder.Finish(exclude);
}

}  // namespace suffix
}  // namespace oasis
