// Partitioned suffix-tree construction (paper §3.4.1, Hunt et al. [16]
// style).
//
// Traditional in-memory construction algorithms (Ukkonen, McCreight) need
// the whole tree plus active state resident during construction. The
// technique the paper adopts instead builds sub-trees "stemming from
// fixed-length prefixes of each suffix ... by making one pass through the
// sequence data for each subtree", selecting the lexical range of each pass
// from the observed content of the database.
//
// This implementation follows that structure:
//   1. one counting pass computes the frequency of every length-L prefix;
//   2. consecutive prefixes are greedily grouped into partitions whose
//      suffix counts stay below a budget (the "memory bound": the working
//      set of a pass is proportional to the partition's subtree);
//   3. one pass per partition scans the database and inserts exactly the
//      suffixes whose prefix falls in the partition's lexical range.
//
// Suffix insertion walks from the root (O(matched depth) per suffix, i.e.
// O(n log_sigma n) expected total). The result is bit-for-bit the same tree
// Ukkonen's algorithm produces (property-tested), so either builder can
// feed the packed on-disk form.

#pragma once

#include <cstdint>

#include "suffix/suffix_tree.h"

namespace oasis {
namespace suffix {

struct PartitionedBuildOptions {
  /// Length of the classifying prefix (the paper's "fixed-length prefixes").
  uint32_t prefix_length = 2;
  /// Target maximum number of suffixes handled in one pass. A single
  /// prefix whose count exceeds the budget still forms its own partition
  /// (it cannot be split at this prefix length).
  uint64_t max_suffixes_per_pass = 1u << 20;
  /// Optional seeding exclusion: one byte per global position (must match
  /// db.total_length() when set); positions flagged 1 get NO leaf — the
  /// soft-masked half of LAST-style gentle masking. The excluded residues
  /// still appear in the concatenated symbols (and hence on arc labels),
  /// so alignment extension passes straight through them; they just never
  /// *seed* a search. Not owned; must outlive the call.
  const std::vector<uint8_t>* exclude = nullptr;
};

/// Statistics of a partitioned build (exposed for tests and benches).
struct PartitionedBuildStats {
  uint32_t num_partitions = 0;
  uint64_t num_passes = 0;  ///< == num_partitions (one scan per partition)
  uint64_t max_partition_suffixes = 0;
  uint64_t total_suffixes = 0;     ///< leaves actually inserted
  uint64_t excluded_suffixes = 0;  ///< suffixes skipped by the exclusion map
};

/// Builds the generalized suffix tree with the multi-pass partitioned
/// algorithm. `stats_out` may be null.
util::StatusOr<SuffixTree> BuildPartitioned(
    const seq::SequenceDatabase& db,
    const PartitionedBuildOptions& options = PartitionedBuildOptions(),
    PartitionedBuildStats* stats_out = nullptr);

}  // namespace suffix
}  // namespace oasis
