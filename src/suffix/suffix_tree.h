// In-memory generalized suffix tree (paper §2.3).
//
// The tree is *compact* (PATRICIA): every node is the root, a branching
// node, or a leaf. It is built over the SequenceDatabase concatenation,
// where sequence i ends with the unique terminator symbol
// alphabet.size() + i. Unique terminators guarantee:
//   * no path spans a sequence boundary (a terminator occurs once, so any
//     string containing one occurs once and cannot label an internal path);
//   * there is exactly one leaf per suffix, total_length() leaves in all.
//
// Two construction algorithms produce identical trees:
//   * SuffixTree::BuildUkkonen        — online linear-time (Ukkonen [38]),
//     processing sequence by sequence with leaf-edge freezing at each
//     terminator;
//   * BuildPartitioned (partitioned_builder.h) — the Hunt et al. [16] style
//     multi-pass construction the paper uses for larger-than-memory data.
//
// This in-memory form is the construction intermediate; searches run
// against the disk-oriented PackedSuffixTree (packed_tree.h) derived
// from it.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/database.h"
#include "util/status.h"

namespace oasis {
namespace suffix {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Compact generalized suffix tree. Node 0 is always the root.
class SuffixTree {
 public:
  /// One child edge: first symbol of the arc label -> child node.
  using ChildEdge = std::pair<seq::Symbol, NodeId>;

  /// Builds the tree with Ukkonen's algorithm. O(total_length) expected
  /// (child lookups are O(log branching)).
  static util::StatusOr<SuffixTree> BuildUkkonen(const seq::SequenceDatabase& db);

  const seq::SequenceDatabase& database() const { return *db_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const { return num_leaves_; }
  size_t num_internal() const { return nodes_.size() - num_leaves_; }
  NodeId root() const { return 0; }

  bool is_leaf(NodeId id) const { return nodes_[id].is_leaf; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }

  /// Incoming-arc label range [edge_start, edge_end) in database symbols.
  /// The root's range is empty.
  uint64_t edge_start(NodeId id) const { return nodes_[id].start; }
  uint64_t edge_end(NodeId id) const { return nodes_[id].end; }
  uint32_t edge_length(NodeId id) const {
    return static_cast<uint32_t>(nodes_[id].end - nodes_[id].start);
  }

  /// Path length from the root (number of symbols on the path). O(depth).
  uint32_t depth(NodeId id) const;

  /// Children in ascending first-symbol order.
  const std::vector<ChildEdge>& children(NodeId id) const {
    return nodes_[id].children;
  }

  /// Child whose arc starts with `symbol`, or kInvalidNode.
  NodeId FindChild(NodeId id, seq::Symbol symbol) const;

  /// Global start position of the suffix ending at leaf `id`.
  /// Precondition: is_leaf(id).
  uint64_t suffix_start(NodeId id) const { return nodes_[id].suffix_start; }

  /// True when `pattern` (residue codes) occurs in the database (§2.3.1).
  bool ContainsSubstring(std::span<const seq::Symbol> pattern) const;

  /// All global positions where `pattern` occurs, in no particular order.
  std::vector<uint64_t> FindOccurrences(std::span<const seq::Symbol> pattern) const;

  /// Structural invariants: leaf count, suffix coverage, compactness,
  /// child ordering, edge-label consistency. O(total path length); intended
  /// for tests.
  ///
  /// `excluded` (optional, one byte per global position) marks suffixes
  /// deliberately left out of the tree — soft-masked seeding exclusion.
  /// With it, the leaf count must equal the number of *non*-excluded
  /// positions, an excluded suffix appearing as a leaf is corruption, and
  /// the suffix-coverage sweep skips excluded positions. Compactness
  /// still holds for any suffix subset: unique terminators mean every
  /// inserted suffix gets its own leaf and internal nodes only arise from
  /// edge splits (always >= 2 children).
  util::Status Validate(const std::vector<uint8_t>* excluded = nullptr) const;

  /// True when both trees are structurally identical (same shape, labels
  /// and suffix starts).
  static bool Equal(const SuffixTree& a, const SuffixTree& b);

 private:
  friend class TreeBuilder;  // shared by Ukkonen and partitioned builders

  struct Node {
    uint64_t start = 0;  ///< arc label [start, end)
    uint64_t end = 0;
    uint64_t suffix_start = 0;  ///< leaves only
    NodeId parent = kInvalidNode;
    NodeId link = 0;  ///< Ukkonen suffix link (root if unset)
    bool is_leaf = false;
    std::vector<ChildEdge> children;  ///< sorted by symbol
  };

  explicit SuffixTree(const seq::SequenceDatabase* db) : db_(db) {}

  /// Descends matching `pattern`; returns the node at/below which the match
  /// ends, or kInvalidNode. (Helper for Contains/FindOccurrences.)
  NodeId MatchPattern(std::span<const seq::Symbol> pattern) const;

  const seq::SequenceDatabase* db_;
  std::vector<Node> nodes_;
  size_t num_leaves_ = 0;
};

/// Low-level mutable tree used by both construction algorithms. Exposed so
/// partitioned_builder.cc can share node bookkeeping; not part of the
/// public API surface.
class TreeBuilder {
 public:
  explicit TreeBuilder(const seq::SequenceDatabase& db);

  /// Inserts one suffix [suffix_pos, end-of-its-sequence] by walking from
  /// the root (brute-force insertion used by the partitioned builder).
  void InsertSuffixFromRoot(uint64_t suffix_pos);

  /// Finalizes: sorts/validates bookkeeping and returns the tree.
  /// `excluded` marks suffix positions deliberately not inserted (masked
  /// seeding exclusion); validation then expects exactly the non-excluded
  /// suffixes as leaves.
  util::StatusOr<SuffixTree> Finish(
      const std::vector<uint8_t>* excluded = nullptr);

  // --- primitives shared with the Ukkonen builder -------------------------
  NodeId NewInternal(uint64_t start, uint64_t end, NodeId parent);
  NodeId NewLeaf(uint64_t start, uint64_t end, NodeId parent, uint64_t suffix_start);
  NodeId FindChild(NodeId node, seq::Symbol symbol) const;
  void SetChild(NodeId node, seq::Symbol symbol, NodeId child);
  uint64_t EdgeStart(NodeId node) const;
  uint64_t EdgeEnd(NodeId node) const;
  void SetEdgeStart(NodeId node, uint64_t start);
  void SetEdgeEnd(NodeId node, uint64_t end);
  NodeId SuffixLink(NodeId node) const;
  void SetSuffixLink(NodeId node, NodeId target);
  SuffixTree& tree() { return tree_; }
  const seq::SequenceDatabase& db() const { return *db_; }

 private:
  const seq::SequenceDatabase* db_;
  SuffixTree tree_;
};

}  // namespace suffix
}  // namespace oasis
