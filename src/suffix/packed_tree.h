// Disk-based suffix-tree representation (paper §3.4).
//
// Three block-organized arrays, each in its own file, all read through a
// storage::PageSource — either a shared BufferPool with per-segment hit
// statistics (disk-resident indexes) or read-only mmaps (the in-RAM fast
// path):
//
//   symbols   one byte per position of the concatenated database: residue
//             codes 0..sigma-1, or kTerminatorByte for any terminator
//             (terminator identity is recovered from position via the
//             sequence-start table, which lives in the metadata file).
//
//   internal  16-byte records in *level-first* (BFS) order, so all internal
//             siblings are physically adjacent — the layout optimization
//             the paper calls out, since OASIS expands all children of a
//             node together. Fields (paper: depth, seq_index, firstChild,
//             lastSibling):
//               depth_and_flag   bit31 = last-sibling flag, bits 0..30 =
//                                path depth (symbols from root)
//               sym_offset       start of the incoming-arc label in the
//                                symbols array (arc length = depth -
//                                parent.depth)
//               first_internal   index of the first internal child
//                                (siblings follow contiguously until one
//                                carries the last-sibling flag), or kNone
//               first_leaf       head of this node's leaf-child chain,
//                                or kNone
//
//   leaves    4-byte records where *array index == suffix start position*
//             (so a leaf's arc label is implicit: it runs from
//             suffix_start + parent.depth to its sequence's terminator).
//             The record is just the next-sibling leaf index, or kNone —
//             leaves cannot be clustered next to their siblings because
//             their index is fixed by the suffix position, exactly the
//             paper's trade-off (and what Figure 8 measures).
//
// A small metadata file stores counts, the alphabet kind and the
// sequence-start table.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "seq/database.h"
#include "storage/buffer_pool.h"
#include "storage/mapped_file.h"
#include "storage/page_source.h"
#include "util/status.h"

namespace oasis {
namespace suffix {

/// Byte written in the symbols file for every terminator position.
inline constexpr uint8_t kTerminatorByte = 0xFF;
/// Null child / sibling pointer.
inline constexpr uint32_t kNone = 0xFFFFFFFFu;

/// On-disk internal-node record. 16 bytes; 128 per 2K block.
struct PackedInternalNode {
  uint32_t depth_and_flag;   ///< bit31 last-sibling flag, bits 0..30 depth
  uint32_t sym_offset;       ///< incoming-arc label start in the symbols array
  uint32_t first_internal;   ///< first internal child, or kNone
  uint32_t first_leaf;       ///< head of the leaf-child chain, or kNone

  uint32_t depth() const { return depth_and_flag & 0x7FFFFFFFu; }  ///< path depth in symbols
  bool last_sibling() const { return (depth_and_flag & 0x80000000u) != 0; }  ///< ends its sibling run
};
static_assert(sizeof(PackedInternalNode) == 16);

/// File names inside a packed-tree directory.
struct PackedTreeFiles {
  static constexpr const char* kSymbols = "symbols.blk";    ///< concatenated database bytes
  static constexpr const char* kInternal = "internal.blk";  ///< level-first internal records
  static constexpr const char* kLeaves = "leaves.blk";      ///< leaf next-sibling array
  static constexpr const char* kMeta = "tree.meta";         ///< counts + sequence starts
};

/// Reads just the block size recorded in `dir`'s metadata, so callers can
/// size a BufferPool to match before Open (which rejects mismatched pools).
util::StatusOr<uint32_t> PeekIndexBlockSize(const std::string& dir);

/// Total on-disk size of the three packed files, without opening them —
/// what EngineOptions::io_mode == kAuto compares against the RAM budget.
util::StatusOr<uint64_t> PackedIndexBytes(const std::string& dir);

/// Read-only handle over the three packed files. All block reads go through
/// a storage::PageSource in one of two modes:
///
///   Open(dir, pool)   pooled — the sharded CLOCK BufferPool, whose
///                     per-segment statistics directly reproduce the
///                     paper's Figure 8 measurements;
///   OpenMapped(dir)   mapped — the three files are mmapped and every
///                     block access is a pointer into the mapping (the
///                     in-RAM fast path; no pool, no statistics).
///
/// All read paths are const and thread-safe in both modes: the metadata is
/// immutable after Open, pooled reads go through the concurrent sharded
/// pool (positional preads underneath), and mapped reads touch no mutable
/// state at all. One tree can therefore serve any number of concurrent
/// searches — no per-thread replicas needed (api::Engine::SearchBatch
/// relies on exactly this).
class PackedSuffixTree {
 public:
  /// Opens a packed tree from `dir`, registering its three segments with
  /// `pool`. The pool must outlive the returned tree. `segment_prefix`
  /// qualifies the segment names ("vol_0000/internal" instead of
  /// "internal") so several trees — the volumes of one index set — can
  /// share a single pool with per-volume statistics; the default empty
  /// prefix keeps the historical names for single-tree pools.
  static util::StatusOr<std::unique_ptr<PackedSuffixTree>> Open(
      const std::string& dir, storage::BufferPool* pool,
      const std::string& segment_prefix = "");

  /// Opens a packed tree from `dir` with all three files memory-mapped:
  /// the zero-copy fast path for indexes that fit in RAM. pool() is
  /// nullptr for such a tree and no access statistics are kept.
  static util::StatusOr<std::unique_ptr<PackedSuffixTree>> OpenMapped(
      const std::string& dir);

  // --- metadata (memory resident) -----------------------------------------
  uint64_t num_internal() const { return num_internal_; }  ///< internal-node count
  uint64_t num_leaves() const { return total_length_; }    ///< one leaf per position
  uint64_t total_length() const { return total_length_; }  ///< residues + terminators
  uint32_t alphabet_size() const { return sigma_; }        ///< residue code count
  seq::AlphabetKind alphabet_kind() const { return kind_; }  ///< DNA or protein
  uint64_t num_sequences() const { return seq_starts_.size(); }  ///< database sequences

  /// Start position of sequence `id` in the concatenation.
  uint64_t SequenceStart(uint32_t id) const { return seq_starts_[id]; }
  /// Terminator position of sequence `id` (== one past its last residue).
  uint64_t TerminatorPos(uint32_t id) const {
    return (id + 1 < seq_starts_.size() ? seq_starts_[id + 1]
                                        : total_length_) -
           1;
  }
  /// Sequence owning global position `pos` (terminators belong to their
  /// sequence).
  uint32_t SequenceOf(uint64_t pos) const;

  /// Sum of the three file sizes in bytes (for the space-utilization table).
  uint64_t index_bytes() const { return index_bytes_; }

  // --- block-level access (through the buffer pool) -----------------------
  //
  // Each read takes an optional storage::FetchMemo: a per-thread cache of
  // the last page per segment that lets consecutive same-block reads (the
  // level-first layout makes sibling runs exactly that) skip the pool.
  // Pass nullptr (the default) to fetch through the PageSource directly;
  // a memo is a no-op on mapped trees. A non-null memo makes the call
  // thread-confined to the memo's owner — see suffix::TreeCursor, which
  // embeds one per cursor.

  /// Reads the internal-node record `idx`.
  util::StatusOr<PackedInternalNode> ReadInternal(
      uint32_t idx, storage::FetchMemo* memo = nullptr) const;

  /// Reads the next-sibling pointer of leaf `idx` (== suffix position).
  util::StatusOr<uint32_t> ReadLeafNext(
      uint32_t idx, storage::FetchMemo* memo = nullptr) const;

  /// Reads `len` symbol bytes starting at `pos` into `out` (resized).
  /// `admission` is the replacement-policy hint for pooled trees: pass
  /// storage::Admission::kScan for one-pass sequential scans so they do
  /// not refresh CLOCK reference bits (ignored by mapped trees).
  util::Status ReadSymbols(
      uint64_t pos, uint32_t len, std::vector<uint8_t>* out,
      storage::Admission admission = storage::Admission::kNormal,
      storage::FetchMemo* memo = nullptr) const;

  /// Segment ids (for stats reporting; order: symbols, internal, leaves).
  storage::SegmentId symbols_segment() const { return seg_symbols_; }
  storage::SegmentId internal_segment() const { return seg_internal_; }  ///< internal records
  storage::SegmentId leaves_segment() const { return seg_leaves_; }  ///< leaf sibling array
  /// The buffer pool behind a pooled tree, nullptr for a mapped one.
  storage::BufferPool* pool() const { return source_.pool(); }
  /// True when this tree reads through mmapped files (OpenMapped).
  bool mapped() const { return source_.mapped(); }

  /// Disables the kernel's sequential readahead on the three backing
  /// block files (POSIX_FADV_RANDOM) so the buffer pool — and, when
  /// enabled, storage::Readahead — is the only prefetcher in the stack.
  /// The honest configuration for disk-resident measurements (the
  /// cold-cache benches call it); a semantic no-op either way. Pooled
  /// trees only: a mapped tree wants the kernel's readahead.
  util::Status AdviseRandomAccess() const;

 private:
  PackedSuffixTree() = default;

  /// Reads the metadata and fills the memory-resident fields; the factory
  /// functions then attach their mode's files and segments.
  static util::StatusOr<std::unique_ptr<PackedSuffixTree>> OpenCommon(
      const std::string& dir);

  storage::PageSource source_;
  storage::BlockFile symbols_file_;    // pooled mode
  storage::BlockFile internal_file_;
  storage::BlockFile leaves_file_;
  storage::MappedFile symbols_map_;    // mapped mode
  storage::MappedFile internal_map_;
  storage::MappedFile leaves_map_;
  storage::SegmentId seg_symbols_ = 0;
  storage::SegmentId seg_internal_ = 0;
  storage::SegmentId seg_leaves_ = 0;

  uint64_t num_internal_ = 0;
  uint64_t total_length_ = 0;
  uint32_t sigma_ = 0;
  seq::AlphabetKind kind_ = seq::AlphabetKind::kProtein;
  std::vector<uint64_t> seq_starts_;
  uint64_t index_bytes_ = 0;
  uint32_t block_size_ = storage::kDefaultBlockSize;
};

}  // namespace suffix
}  // namespace oasis
