// Quality-weighted match scoring (LAST's "incorporating sequence quality
// data" idea, integerized).
//
// A base call with error probability e contributes less evidence than a
// confident one: the expected substitution score of aligning query residue
// a against an *uncertain* target residue b is approximately
//
//   (1 - e) * S(a, b) + e * Sbg(a)
//
// where Sbg(a) is a's score against the residue background (we use the
// row mean). QualityAdjust precomputes that blend as integer tables over a
// small number of phred-quality bins, so both the scalar DP and the SIMD
// striped kernels can keep using plain table lookups:
//
//   * scalar: Score(a, b, bin) — a direct three-index lookup;
//   * SIMD:   the target is re-coded into "effective symbols"
//     bin * sigma + b and the query profile is built with kNumBins * sigma
//     striped columns; the kernels' inner loop (column = lanes +
//     target[j] * stride) is unchanged.
//
// The top bin (confident calls) is the *identity*: its adjusted scores
// equal the raw matrix entries. A record without qualities never enters
// this path at all, which is what keeps no-quality results byte-identical
// to the pre-quality engine. All adjusted scores are clamped into
// [matrix.min_score(), matrix.max_score()], so every layout/bias rule the
// SIMD profiles derive from the raw matrix stays valid.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "score/substitution_matrix.h"
#include "seq/alphabet.h"

namespace oasis {
namespace score {

/// Precomputed quality-binned substitution tables for one matrix.
/// Immutable after construction; cheap to build (kNumBins * sigma^2
/// entries).
class QualityAdjust {
 public:
  /// Number of phred-quality bins. Four bins keep the SIMD profile small
  /// (kNumBins * sigma striped columns) while separating junk calls,
  /// low-confidence calls, decent calls and confident calls.
  static constexpr uint32_t kNumBins = 4;

  /// Builds the binned tables for `matrix`. The matrix must outlive this
  /// object.
  explicit QualityAdjust(const SubstitutionMatrix& matrix);

  /// The underlying raw matrix.
  const SubstitutionMatrix& matrix() const { return *matrix_; }

  /// Residue alphabet size of the underlying matrix.
  uint32_t sigma() const { return sigma_; }

  /// Number of effective target symbols: kNumBins * sigma().
  uint32_t effective_sigma() const { return kNumBins * sigma_; }

  /// Quality bin of a phred value. Bin boundaries (error-probability
  /// representatives in parentheses): <=5 (0.5), 6-12 (0.1), 13-19
  /// (0.04), >=20 (0 — the identity bin).
  static uint32_t BinOf(uint8_t phred) {
    if (phred <= 5) return 0;
    if (phred <= 12) return 1;
    if (phred <= 19) return 2;
    return 3;
  }

  /// Effective symbol for target residue `b` in quality bin `bin`.
  seq::Symbol EffectiveCode(uint32_t bin, seq::Symbol b) const {
    return bin * sigma_ + b;
  }

  /// Quality-adjusted score of query residue `a` vs target residue `b`
  /// whose base call falls in `bin`. Preconditions: a, b < sigma(),
  /// bin < kNumBins.
  ScoreT Score(seq::Symbol a, seq::Symbol b, uint32_t bin) const {
    return table_[a * effective_sigma() + bin * sigma_ + b];
  }

  /// Score of query residue `a` vs effective target symbol `e`
  /// (== Score(a, b, bin) with e == EffectiveCode(bin, b)).
  ScoreT ScoreEffective(seq::Symbol a, seq::Symbol e) const {
    return table_[a * effective_sigma() + e];
  }

  /// Raw table, row-major [sigma() rows] x [effective_sigma() columns]:
  /// ScoreEffective(a, e) == table_data()[a * effective_sigma() + e]. The
  /// SIMD query profiles gather from it directly; stable for the object's
  /// lifetime.
  const ScoreT* table_data() const { return table_.data(); }

  /// Re-codes a target span into effective symbols from its phred
  /// qualities (quals.size() must equal target.size(); target must hold
  /// residue codes only). Clears and fills `out`.
  void EffectiveTarget(std::span<const seq::Symbol> target,
                       std::span<const uint8_t> quals,
                       std::vector<seq::Symbol>* out) const;

 private:
  const SubstitutionMatrix* matrix_;
  uint32_t sigma_;
  std::vector<ScoreT> table_;  ///< sigma x (kNumBins * sigma), row-major
};

}  // namespace score
}  // namespace oasis
