#include "score/quality.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace oasis {
namespace score {

namespace {

/// Representative base-call error probability per quality bin. The top
/// bin is exactly zero so its table is the raw matrix (identity bin).
constexpr double kBinErrorProb[QualityAdjust::kNumBins] = {0.5, 0.1, 0.04,
                                                           0.0};

}  // namespace

QualityAdjust::QualityAdjust(const SubstitutionMatrix& matrix)
    : matrix_(&matrix), sigma_(matrix.size()) {
  table_.resize(static_cast<size_t>(sigma_) * effective_sigma());
  const ScoreT lo = matrix.min_score();
  const ScoreT hi = matrix.max_score();
  for (seq::Symbol a = 0; a < sigma_; ++a) {
    // Background score of `a`: its row mean (what aligning `a` against a
    // residue we know nothing about is worth on average).
    double background = 0;
    for (seq::Symbol b = 0; b < sigma_; ++b) background += matrix.Score(a, b);
    background /= sigma_;
    for (uint32_t bin = 0; bin < kNumBins; ++bin) {
      const double e = kBinErrorProb[bin];
      for (seq::Symbol b = 0; b < sigma_; ++b) {
        const ScoreT raw = matrix.Score(a, b);
        ScoreT adjusted;
        if (e == 0.0) {
          adjusted = raw;  // identity bin: bit-exact raw matrix
        } else {
          const double blended = (1.0 - e) * raw + e * background;
          adjusted = static_cast<ScoreT>(std::lround(blended));
          adjusted = std::clamp(adjusted, lo, hi);
        }
        table_[a * effective_sigma() + bin * sigma_ + b] = adjusted;
      }
    }
  }
}

void QualityAdjust::EffectiveTarget(std::span<const seq::Symbol> target,
                                    std::span<const uint8_t> quals,
                                    std::vector<seq::Symbol>* out) const {
  OASIS_CHECK_EQ(target.size(), quals.size());
  out->clear();
  out->reserve(target.size());
  for (size_t i = 0; i < target.size(); ++i) {
    out->push_back(EffectiveCode(BinOf(quals[i]), target[i]));
  }
}

}  // namespace score
}  // namespace oasis
