// Karlin-Altschul local-alignment statistics.
//
// The paper relates BLAST's E-value selectivity knob to OASIS's minScore
// threshold (Equations 2 and 3):
//
//     E = K * m * n * exp(-lambda * S)                             (Eq. 2)
//     minScore = ceil( ln(K * m * n / E) / lambda )                (Eq. 3)
//
// where m is the query length, n the database size, and (lambda, K) the
// Karlin-Altschul parameters of the scoring system under the residue
// background distribution. We compute lambda exactly (unique positive root
// of sum_s p_s e^{lambda s} = 1), the relative entropy H, and K by the
// Karlin-Altschul (1990) series method (the same computation as NCBI
// BLAST's ungapped K): with sigma = sum_{i>=1} (1/i) * [ P(S_i >= 0) +
// sum_{j<0} P(S_i = j) e^{lambda j} ],
//
//     K = d * lambda * exp(-2 * sigma) / (H * (1 - e^{-d * lambda}))
//
// where d is the gcd of attainable scores and S_i the i-step random walk of
// pair scores. The series converges geometrically because the expected pair
// score is negative.

#pragma once

#include <vector>

#include "score/substitution_matrix.h"
#include "util/status.h"

namespace oasis {
namespace score {

/// Karlin-Altschul parameters of a scoring system.
struct KarlinParams {
  double lambda = 0.0;  ///< scale of the score distribution (nats/score unit)
  double K = 0.0;       ///< search-space size correction factor
  double H = 0.0;       ///< relative entropy per aligned pair (nats)
};

/// Residue background frequencies used to derive the pair-score
/// distribution. Returns the Robinson-Robinson frequencies for the protein
/// alphabet (ambiguity codes B/Z/X get frequency 0) and uniform 1/4 for DNA.
std::vector<double> BackgroundFrequencies(const seq::Alphabet& alphabet);

/// Computes (lambda, K, H) for `matrix` under `background` frequencies.
///
/// Fails with InvalidArgument when the scoring system is invalid for local
/// alignment statistics: the expected pair score must be negative and the
/// maximum pair score positive.
util::StatusOr<KarlinParams> ComputeKarlinParams(
    const SubstitutionMatrix& matrix, const std::vector<double>& background);

/// ComputeKarlinParams with the default background for the matrix alphabet.
util::StatusOr<KarlinParams> ComputeKarlinParams(const SubstitutionMatrix& matrix);

/// Eq. 2: the E-value of an alignment with score `s` for a query of length
/// `query_len` against a database of `db_len` residues.
double EValueForScore(const KarlinParams& params, double s, uint64_t query_len,
                      uint64_t db_len);

/// Eq. 3: the smallest integer score whose E-value is <= `evalue`.
/// Scores below 1 are clamped to 1 (a local alignment score is positive).
ScoreT MinScoreForEValue(const KarlinParams& params, double evalue,
                         uint64_t query_len, uint64_t db_len);

}  // namespace score
}  // namespace oasis
