// Substitution matrices and the (fixed / linear) gap model of the paper.
//
// Every alignment operation is a replacement "a -> b"; insertions are
// "- -> b" and deletions "a -> -" (paper §2.1). A SubstitutionMatrix stores
// the residue-by-residue scores plus the gap row/column. The paper (and our
// implementation, like the paper's) uses the *fixed* gap penalty model: a
// run of k insertions or deletions contributes k * gap_penalty.

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "util/status.h"

namespace oasis {
namespace score {

/// Alignment scores are small; int32 leaves ample headroom for sums over
/// maximum-length queries.
using ScoreT = int32_t;

/// Sentinel for pruned / impossible alignment cells.
inline constexpr ScoreT kNegInf = std::numeric_limits<ScoreT>::min() / 4;

/// A residue substitution matrix bound to an alphabet, plus a linear gap
/// penalty. Immutable after construction.
class SubstitutionMatrix {
 public:
  /// Builds a matrix from a dense row-major table of size n*n where
  /// n == alphabet.size(). `gap_penalty` must be negative (a non-negative
  /// gap cost breaks the heuristic admissibility argument of §3.1 and is
  /// rejected).
  static util::StatusOr<SubstitutionMatrix> Create(const seq::Alphabet& alphabet,
                                                   std::string name,
                                                   std::vector<ScoreT> table,
                                                   ScoreT gap_penalty);

  /// The paper's Table 1 "unit edit distance" matrix on the DNA alphabet:
  /// +1 match, -1 mismatch, -1 gap.
  static const SubstitutionMatrix& UnitDna();

  /// blastn-style DNA scoring: +5 match, -4 mismatch, -6 gap.
  static const SubstitutionMatrix& Blastn();

  /// NCBI PAM30 (protein; the paper's matrix for short queries) with the
  /// linear gap penalty -11.
  static const SubstitutionMatrix& Pam30();

  /// NCBI BLOSUM62 (protein) with the linear gap penalty -8.
  static const SubstitutionMatrix& Blosum62();

  const seq::Alphabet& alphabet() const { return *alphabet_; }
  const std::string& name() const { return name_; }
  uint32_t size() const { return n_; }
  ScoreT gap_penalty() const { return gap_; }

  /// Score of replacing residue code `a` with residue code `b`.
  /// Precondition: a, b < size().
  ScoreT Score(seq::Symbol a, seq::Symbol b) const { return table_[a * n_ + b]; }

  /// Score of a replacement where either side may be a terminator symbol
  /// (code >= size()): aligning against a terminator is impossible.
  ScoreT ScoreOrNegInf(seq::Symbol a, seq::Symbol b) const {
    if (a >= n_ || b >= n_) return kNegInf;
    return table_[a * n_ + b];
  }

  /// max_b Score(a, b): the best score residue `a` can achieve against any
  /// database residue. Used by the OASIS heuristic vector (§3.1).
  ScoreT MaxScoreForResidue(seq::Symbol a) const { return row_max_[a]; }

  /// Largest entry in the matrix.
  ScoreT max_score() const { return max_score_; }
  /// Smallest entry in the matrix.
  ScoreT min_score() const { return min_score_; }

  /// Raw n*n row-major score table: Score(a, b) == table_data()[a * size() + b].
  /// The SIMD alignment kernels gather from it directly; stable for the
  /// matrix's lifetime.
  const ScoreT* table_data() const { return table_.data(); }

  /// True when the matrix is symmetric (all built-ins are).
  bool IsSymmetric() const;

  /// Returns a copy with a different gap penalty (must be negative).
  util::StatusOr<SubstitutionMatrix> WithGapPenalty(ScoreT gap_penalty) const;

 private:
  SubstitutionMatrix(const seq::Alphabet* alphabet, std::string name,
                     std::vector<ScoreT> table, ScoreT gap);

  const seq::Alphabet* alphabet_;
  std::string name_;
  uint32_t n_;
  std::vector<ScoreT> table_;    ///< n*n row-major residue scores.
  std::vector<ScoreT> row_max_;  ///< per-row maxima.
  ScoreT gap_;
  ScoreT max_score_;
  ScoreT min_score_;
};

namespace internal {
/// Raw tables defined in matrices_data.cc (row-major, alphabet code order).
extern const ScoreT kPam30Table[23 * 23];
extern const ScoreT kBlosum62Table[23 * 23];
}  // namespace internal

}  // namespace score
}  // namespace oasis
