#include "score/substitution_matrix.h"

#include <algorithm>

#include "util/logging.h"

namespace oasis {
namespace score {

SubstitutionMatrix::SubstitutionMatrix(const seq::Alphabet* alphabet,
                                       std::string name,
                                       std::vector<ScoreT> table, ScoreT gap)
    : alphabet_(alphabet),
      name_(std::move(name)),
      n_(alphabet->size()),
      table_(std::move(table)),
      gap_(gap) {
  row_max_.resize(n_, kNegInf);
  max_score_ = kNegInf;
  min_score_ = -kNegInf;
  for (uint32_t a = 0; a < n_; ++a) {
    for (uint32_t b = 0; b < n_; ++b) {
      ScoreT s = table_[a * n_ + b];
      row_max_[a] = std::max(row_max_[a], s);
      max_score_ = std::max(max_score_, s);
      min_score_ = std::min(min_score_, s);
    }
  }
}

util::StatusOr<SubstitutionMatrix> SubstitutionMatrix::Create(
    const seq::Alphabet& alphabet, std::string name, std::vector<ScoreT> table,
    ScoreT gap_penalty) {
  const size_t expected =
      static_cast<size_t>(alphabet.size()) * alphabet.size();
  if (table.size() != expected) {
    return util::Status::InvalidArgument(
        "matrix '" + name + "': table has " + std::to_string(table.size()) +
        " entries, expected " + std::to_string(expected));
  }
  if (gap_penalty >= 0) {
    return util::Status::InvalidArgument(
        "matrix '" + name + "': gap penalty must be negative, got " +
        std::to_string(gap_penalty));
  }
  return SubstitutionMatrix(&alphabet, std::move(name), std::move(table),
                            gap_penalty);
}

const SubstitutionMatrix& SubstitutionMatrix::UnitDna() {
  static const SubstitutionMatrix* m = [] {
    const seq::Alphabet& a = seq::Alphabet::Dna();
    std::vector<ScoreT> t(16, -1);
    for (uint32_t i = 0; i < 4; ++i) t[i * 4 + i] = 1;
    auto result = Create(a, "unit", std::move(t), -1);
    OASIS_CHECK(result.ok());
    return new SubstitutionMatrix(std::move(result).value());
  }();
  return *m;
}

const SubstitutionMatrix& SubstitutionMatrix::Blastn() {
  static const SubstitutionMatrix* m = [] {
    const seq::Alphabet& a = seq::Alphabet::Dna();
    std::vector<ScoreT> t(16, -4);
    for (uint32_t i = 0; i < 4; ++i) t[i * 4 + i] = 5;
    auto result = Create(a, "blastn", std::move(t), -6);
    OASIS_CHECK(result.ok());
    return new SubstitutionMatrix(std::move(result).value());
  }();
  return *m;
}

const SubstitutionMatrix& SubstitutionMatrix::Pam30() {
  static const SubstitutionMatrix* m = [] {
    const seq::Alphabet& a = seq::Alphabet::Protein();
    std::vector<ScoreT> t(internal::kPam30Table, internal::kPam30Table + 23 * 23);
    auto result = Create(a, "PAM30", std::move(t), -11);
    OASIS_CHECK(result.ok());
    return new SubstitutionMatrix(std::move(result).value());
  }();
  return *m;
}

const SubstitutionMatrix& SubstitutionMatrix::Blosum62() {
  static const SubstitutionMatrix* m = [] {
    const seq::Alphabet& a = seq::Alphabet::Protein();
    std::vector<ScoreT> t(internal::kBlosum62Table,
                          internal::kBlosum62Table + 23 * 23);
    auto result = Create(a, "BLOSUM62", std::move(t), -8);
    OASIS_CHECK(result.ok());
    return new SubstitutionMatrix(std::move(result).value());
  }();
  return *m;
}

bool SubstitutionMatrix::IsSymmetric() const {
  for (uint32_t a = 0; a < n_; ++a) {
    for (uint32_t b = a + 1; b < n_; ++b) {
      if (table_[a * n_ + b] != table_[b * n_ + a]) return false;
    }
  }
  return true;
}

util::StatusOr<SubstitutionMatrix> SubstitutionMatrix::WithGapPenalty(
    ScoreT gap_penalty) const {
  return Create(*alphabet_, name_, table_, gap_penalty);
}

}  // namespace score
}  // namespace oasis
